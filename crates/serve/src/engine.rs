//! The serving engine: admission, continuous batching, shared-cache replay.
//!
//! [`ServeEngine::run`] drives a closed batch of [`GenRequest`]s (all queued
//! at t = 0) to completion:
//!
//! 1. **Admission.** Up to `max_concurrent` sessions hold a KV-cache slot;
//!    whenever a slot frees, the scheduler admits the next waiting request.
//!    Decode states are recycled through [`lm::DecodeStatePool`].
//! 2. **Token loop.** The schedule is token-granular — each schedule
//!    position serves one token of one session, and the simulated memory
//!    bus serialises positions — but *execution* is batched
//!    ([`ExecutionMode::Batched`], the default): the engine groups
//!    consecutive schedule positions into **batch lanes** (runs of distinct
//!    same-spec sessions, or one session's prompt chunk) and computes each
//!    lane in a single fused pass over the weights
//!    ([`lm::TransformerModel::forward_tokens_batch_into`] /
//!    [`lm::TransformerModel::forward_prompt_into`]). Lane formation
//!    re-asks the scheduler *per position* after committing each token's
//!    bookkeeping, so the schedule — and therefore every recorded access,
//!    RNG draw, trace and price — is **bitwise identical** to serving one
//!    token at a time; [`ExecutionMode::Sequential`] keeps the
//!    token-at-a-time path as the oracle (see
//!    `tests/batched_equivalence.rs` and DESIGN.md §11). Every served
//!    token's weight accesses are recorded into the session's
//!    [`hwsim::AccessTrace`], and the position's session into the global
//!    interleave order.
//! 3. **Pricing.** The per-session traces are replayed in that exact order
//!    through one *shared* DRAM column cache
//!    ([`hwsim::simulate_concurrent`]), which prices every token and yields
//!    wall-clock completion times under multi-tenant cache contention.
//!    Batched execution changes *how fast the host computes* the schedule,
//!    never the simulated cost of a token.
//!
//! The decode pass and the pricing pass are deliberately separate: model
//! execution decides *which* columns each token needs (for DIP-CA, guided by
//! the shared cache model), while the hardware replay decides what that
//! traffic *costs* on a given device.
//!
//! # Observability
//!
//! The engine is instrumented end to end: attach an
//! [`crate::telemetry::EngineTelemetry`] pipeline via
//! [`ServeEngine::attach_telemetry`] and every run records token/shed/
//! preemption counters, TTFT/TBT/queue-delay histograms, batch-lane widths,
//! span events on a preallocated ring and a virtual-time timeline — all
//! through pre-registered handles, so the zero-allocation decode loop stays
//! allocation-free. Telemetry is write-only from the engine's side; attaching
//! any sink leaves the [`ServeReport`] bitwise identical
//! (`tests/open_loop_determinism.rs`).

use crate::admission::{AdmissionConfig, AdmissionController};
use crate::error::{Result, ServeError};
use crate::layout::{layout_for_serving, to_token_access_batch_row};
use crate::report::{
    percentile, OpenLoopStats, Percentiles, RequestStats, ServeReport, StrategyClassStats,
    TierStats,
};
use crate::request::{GenRequest, TIERS};
use crate::scheduler::{AdmissionCandidate, SchedulerPolicy};
use crate::session::{PlannedToken, Session, SessionPhase};
use crate::strategy::{resolve_axes, StrategyFactory, StrategySpec};
use crate::telemetry::EngineTelemetry;
use crate::workload::Workload;
use hwsim::{simulate_concurrent, AccessTrace, DeviceConfig, EvictionPolicy, TokenPricer};
use lm::mlp::DenseMlp;
use lm::{
    ActivationTrace, BatchScratch, BatchStrategies, DecodeStatePool, MlpForward, ModelConfig,
    TransformerModel,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// How the engine computes the token-granular schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// Fuse consecutive schedule positions into batch lanes (cross-session
    /// fused decode, chunked prefill) — one pass over the weights per lane.
    /// Bitwise identical to [`ExecutionMode::Sequential`] by construction.
    #[default]
    Batched,
    /// Serve one token at a time through the single-token path. Kept as the
    /// equivalence oracle for `tests/batched_equivalence.rs` and for
    /// honest before/after benchmarking.
    Sequential,
}

/// Upper bound on a prefill chunk (bounds the batch scratch: logits and
/// activations scale with the chunk height).
const MAX_PREFILL_CHUNK: usize = 64;

/// Configuration of a serving deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// KV-cache slots: the maximum number of concurrently active sessions.
    /// Each slot pins one full-context KV cache in DRAM.
    pub max_concurrent: usize,
    /// Continuous-batching scheduler policy.
    pub scheduler: SchedulerPolicy,
    /// Eviction policy of the shared DRAM column cache.
    pub eviction: EvictionPolicy,
    /// The simulated device the deployment runs on.
    pub device: DeviceConfig,
    /// Weight precision in bits (4.0 = INT4, the paper's serving setup).
    pub bits_per_weight: f64,
    /// Per-session context budget in tokens (`None` = the model's full
    /// `max_seq_len`). Each KV slot pins this much context in DRAM, so
    /// bounding it frees DRAM for the shared weight cache.
    pub kv_budget_tokens: Option<usize>,
    /// Seed for sampling temperature > 0 requests.
    pub seed: u64,
    /// Admission policy of open-loop runs (ignored by closed batches).
    pub admission: AdmissionConfig,
    /// Batched-lane or sequential (oracle) execution of the schedule.
    pub execution: ExecutionMode,
}

impl ServeConfig {
    /// A default serving configuration on the given device: 8 slots, FIFO
    /// continuous batching, LFU shared cache, INT4 weights, default
    /// admission policy.
    pub fn new(device: DeviceConfig) -> Self {
        ServeConfig {
            max_concurrent: 8,
            scheduler: SchedulerPolicy::Fifo,
            eviction: EvictionPolicy::Lfu,
            device,
            bits_per_weight: 4.0,
            kv_budget_tokens: None,
            seed: 0x5e42,
            admission: AdmissionConfig::default(),
            execution: ExecutionMode::default(),
        }
    }

    /// Returns a copy with the given execution mode.
    pub fn with_execution(mut self, execution: ExecutionMode) -> Self {
        self.execution = execution;
        self
    }

    /// Returns a copy with the given per-session context budget.
    pub fn with_kv_budget(mut self, tokens: usize) -> Self {
        self.kv_budget_tokens = Some(tokens);
        self
    }

    /// Returns a copy with the given number of KV slots.
    pub fn with_max_concurrent(mut self, slots: usize) -> Self {
        self.max_concurrent = slots;
        self
    }

    /// Returns a copy with the given scheduler policy.
    pub fn with_scheduler(mut self, scheduler: SchedulerPolicy) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Returns a copy with the given eviction policy.
    pub fn with_eviction(mut self, eviction: EvictionPolicy) -> Self {
        self.eviction = eviction;
        self
    }

    /// Returns a copy with the given open-loop admission policy.
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = admission;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for zero slots, a non-positive
    /// bit width, or an invalid device.
    pub fn validate(&self) -> Result<()> {
        if self.max_concurrent == 0 {
            return Err(ServeError::InvalidConfig {
                field: "max_concurrent",
                reason: "need at least one KV slot".to_string(),
            });
        }
        if !(self.bits_per_weight.is_finite() && self.bits_per_weight > 0.0) {
            return Err(ServeError::InvalidConfig {
                field: "bits_per_weight",
                reason: format!("must be positive, got {}", self.bits_per_weight),
            });
        }
        if let Some(budget) = self.kv_budget_tokens {
            if budget < 2 {
                return Err(ServeError::InvalidConfig {
                    field: "kv_budget_tokens",
                    reason: format!("context budget must be at least 2 tokens, got {budget}"),
                });
            }
        }
        self.admission.validate()?;
        self.device.validate()?;
        Ok(())
    }
}

/// Which shape of fused pass a batch plan executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PlanKind {
    /// A run of consecutive prompt tokens of one session.
    Chunk,
    /// One token each of a run of distinct same-spec sessions.
    Lane,
}

/// One schedule position of a batch plan.
#[derive(Debug, Clone, Copy)]
struct PlanRow {
    /// Index into the engine's `active` session vector.
    idx: usize,
    /// The session's stream id (for the interleave order).
    stream: usize,
    /// The planning flags committed for this position.
    planned: PlannedToken,
}

/// A planned batch: consecutive scheduler decisions the engine executes in
/// one fused pass. Buffers are engine-owned and reused across batches.
#[derive(Default)]
struct BatchPlan {
    kind: Option<PlanKind>,
    rows: Vec<PlanRow>,
}

/// Reused take-out buffers for batch execution (session states, strategy
/// boxes and tokens are moved out for the fused call and restored after).
#[derive(Default)]
struct ExecBuffers {
    tokens: Vec<u32>,
    states: Vec<lm::DecodeState>,
    strategies: Vec<Box<dyn MlpForward>>,
}

/// A multi-session token-generation serving engine.
pub struct ServeEngine {
    model: TransformerModel,
    config: ServeConfig,
    pool: DecodeStatePool,
    calibration: Option<ActivationTrace>,
    /// Single-token decode workspace (sequential oracle path); persists
    /// across runs so weight mirrors are built once per engine.
    scratch: lm::DecodeScratch,
    /// Fused multi-row workspace (batched path); persists across runs.
    batch: BatchScratch,
    plan: BatchPlan,
    exec: ExecBuffers,
    /// Optional observability pipeline; `None` (the default) costs a single
    /// branch per hook. Boxed so the engine stays cheap to move.
    telemetry: Option<Box<EngineTelemetry>>,
}

impl ServeEngine {
    /// Creates an engine around a model.
    ///
    /// # Errors
    ///
    /// Returns configuration validation errors.
    pub fn new(model: TransformerModel, config: ServeConfig) -> Result<Self> {
        config.validate()?;
        let scratch = lm::DecodeScratch::for_model(&model);
        let batch = BatchScratch::for_model(&model);
        Ok(ServeEngine {
            model,
            config,
            pool: DecodeStatePool::new(),
            calibration: None,
            scratch,
            batch,
            plan: BatchPlan::default(),
            exec: ExecBuffers::default(),
            telemetry: None,
        })
    }

    /// Attaches an observability pipeline. The engine records into it on
    /// every run until [`ServeEngine::take_telemetry`]; recording is
    /// write-only, so reports stay bitwise identical with or without it.
    pub fn attach_telemetry(&mut self, telemetry: EngineTelemetry) {
        self.telemetry = Some(Box::new(telemetry));
    }

    /// The attached observability pipeline, if any.
    pub fn telemetry(&self) -> Option<&EngineTelemetry> {
        self.telemetry.as_deref()
    }

    /// Detaches and returns the observability pipeline (for export after a
    /// run).
    pub fn take_telemetry(&mut self) -> Option<EngineTelemetry> {
        self.telemetry.take().map(|b| *b)
    }

    /// The model configuration being served.
    pub fn model_config(&self) -> &ModelConfig {
        &self.model.config
    }

    /// The engine configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The decode-state pool (exposed for reuse diagnostics).
    pub fn state_pool(&self) -> &DecodeStatePool {
        &self.pool
    }

    /// Supplies a calibration trace for CATS requests (otherwise one is
    /// collected on demand from a small model-generated corpus).
    pub fn with_calibration(mut self, trace: ActivationTrace) -> Self {
        self.calibration = Some(trace);
        self
    }

    fn ensure_calibration(&mut self) -> Result<()> {
        if self.calibration.is_none() {
            let seqs = lm::eval::standard_eval_corpus(&self.model, 2, 16, self.config.seed)?;
            self.calibration = Some(lm::trace::collect_activation_trace(&self.model, &seqs)?);
        }
        Ok(())
    }

    /// The effective per-session context window: the configured budget
    /// clamped to the model's `max_seq_len`.
    pub fn context_window(&self) -> usize {
        self.config
            .kv_budget_tokens
            .unwrap_or(self.model.config.max_seq_len)
            .min(self.model.config.max_seq_len)
    }

    fn validate_requests(&self, requests: &[GenRequest]) -> Result<()> {
        let config = &self.model.config;
        let window = self.context_window();
        for r in requests {
            if r.prompt.is_empty() {
                return Err(ServeError::InvalidRequest {
                    id: r.id,
                    reason: "prompt must contain at least one token".to_string(),
                });
            }
            if let Some(&bad) = r
                .prompt
                .iter()
                .find(|&&t| (t as usize) >= config.vocab_size)
            {
                return Err(ServeError::InvalidRequest {
                    id: r.id,
                    reason: format!(
                        "prompt token {bad} outside vocabulary of {}",
                        config.vocab_size
                    ),
                });
            }
            // every served token (prefill or decode) pushes exactly one KV
            // entry, so a request fits iff its total tokens fit the window
            if r.total_tokens() > window {
                return Err(ServeError::InvalidRequest {
                    id: r.id,
                    reason: format!(
                        "prompt ({}) + generation ({}) exceeds the context window ({window})",
                        r.prompt.len(),
                        r.max_new_tokens,
                    ),
                });
            }
            r.strategy
                .validate()
                .map_err(|e| ServeError::InvalidRequest {
                    id: r.id,
                    reason: e.to_string(),
                })?;
            // weight-transforming specs (static pruning, LoRA fusing) would
            // rewrite the model every co-tenant is concurrently decoding with
            if r.strategy.weight_transform().is_some() {
                return Err(ServeError::InvalidRequest {
                    id: r.id,
                    reason: format!(
                        "`{}` requires an offline weight transform; serve the \
                         transformed model instead",
                        r.strategy.label()
                    ),
                });
            }
        }
        Ok(())
    }

    /// Plans the next fused batch: asks the scheduler for the next schedule
    /// position, commits that position's token (prompt cursor / RNG draw /
    /// bookkeeping, via [`Session::plan_token`]) and repeats against the
    /// *updated* session state — so every decision is exactly the one the
    /// sequential engine would make at that position. Planning stops at any
    /// boundary where batching could diverge from token-at-a-time serving:
    ///
    /// * the scheduler re-picks a session already in the batch (a decode
    ///   token would depend on an unserved token's logits),
    /// * the picked session's spec differs from the lane's (one fused MLP
    ///   pass serves one spec),
    /// * a planned token completes its session (the freed slot makes the
    ///   next admission decision due *before* any further token),
    /// * `allow_multi` is false — the open-loop driver's guard for windows
    ///   where un-ingested arrivals could change scheduling mid-batch.
    ///
    /// A session starting (or continuing) prefill instead plans a prompt
    /// *chunk*: consecutive positions of that one session, as long as the
    /// scheduler keeps choosing it.
    fn plan_batch(
        scheduler: &SchedulerPolicy,
        active: &mut [Session],
        rng: &mut StdRng,
        step_base: usize,
        allow_multi: bool,
        plan: &mut BatchPlan,
    ) -> Result<()> {
        plan.rows.clear();
        let mut step = step_base;
        let first = scheduler.next_service(active).expect("active is non-empty");
        if allow_multi
            && active[first].phase() == SessionPhase::Prefill
            && active[first].prompt_remaining() >= 2
        {
            plan.kind = Some(PlanKind::Chunk);
            loop {
                let planned = active[first].plan_token(rng, step)?;
                active[first].last_served_step = step;
                plan.rows.push(PlanRow {
                    idx: first,
                    stream: active[first].stream,
                    planned,
                });
                step += 1;
                if planned.prefill_ended || plan.rows.len() >= MAX_PREFILL_CHUNK {
                    break;
                }
                if scheduler.next_service(active) != Some(first) {
                    break;
                }
            }
            return Ok(());
        }
        plan.kind = Some(PlanKind::Lane);
        let lane_spec = active[first].request.strategy;
        let mut idx = first;
        loop {
            let planned = active[idx].plan_token(rng, step)?;
            active[idx].last_served_step = step;
            plan.rows.push(PlanRow {
                idx,
                stream: active[idx].stream,
                planned,
            });
            step += 1;
            if active[idx].remaining_tokens() == 0 || !allow_multi {
                break;
            }
            let Some(next) = scheduler.next_service(active) else {
                break;
            };
            if plan.rows.iter().any(|r| r.idx == next) || active[next].request.strategy != lane_spec
            {
                break;
            }
            idx = next;
        }
        Ok(())
    }

    /// Executes the current plan in one fused pass: a prompt chunk through
    /// [`TransformerModel::forward_prompt_into`], a lane through
    /// [`TransformerModel::forward_tokens_batch_into`] (fused MLP when the
    /// lane strategy allows it, per-session MLP otherwise). Session states
    /// and strategy boxes are moved out for the call and restored after.
    fn execute_batch(&mut self, active: &mut [Session]) -> Result<()> {
        let ServeEngine {
            model,
            batch,
            plan,
            exec,
            ..
        } = self;
        exec.tokens.clear();
        exec.tokens
            .extend(plan.rows.iter().map(|r| r.planned.token));
        match plan.kind.expect("executing a planned batch") {
            PlanKind::Chunk => {
                let session = &mut active[plan.rows[0].idx];
                let mut state = take_state(session);
                let result = model.forward_prompt_into(
                    &exec.tokens,
                    &mut state,
                    session.strategy.as_mut(),
                    batch,
                );
                session.state = state;
                result?;
            }
            PlanKind::Lane => {
                exec.states.clear();
                exec.strategies.clear();
                for row in &plan.rows {
                    let session = &mut active[row.idx];
                    exec.states.push(take_state(session));
                    exec.strategies
                        .push(std::mem::replace(&mut session.strategy, Box::new(DenseMlp)));
                }
                let result = if exec.strategies[0].batch_fusable() {
                    // one instance may drive the whole lane (stateless or
                    // lane-shared state — see `MlpForward::batch_fusable`)
                    let mut mode = BatchStrategies::Fused(exec.strategies[0].as_mut());
                    model.forward_tokens_batch_into(
                        &exec.tokens,
                        &mut exec.states,
                        &mut mode,
                        batch,
                    )
                } else {
                    let mut mode = BatchStrategies::PerRow(&mut exec.strategies);
                    model.forward_tokens_batch_into(
                        &exec.tokens,
                        &mut exec.states,
                        &mut mode,
                        batch,
                    )
                };
                for (row, (state, strategy)) in plan
                    .rows
                    .iter()
                    .zip(exec.states.drain(..).zip(exec.strategies.drain(..)))
                {
                    let session = &mut active[row.idx];
                    session.state = state;
                    session.strategy = strategy;
                }
                result?;
            }
        }
        Ok(())
    }

    /// Whether row `i` of the executed plan produced observable logits (lane
    /// rows always do; only the last row of a prompt chunk does).
    fn row_logits_ready(&self, i: usize) -> bool {
        match self.plan.kind {
            Some(PlanKind::Lane) => true,
            _ => i + 1 == self.plan.rows.len(),
        }
    }

    /// Serves a closed batch of requests to completion and reports
    /// per-request latencies and fleet aggregates.
    ///
    /// # Errors
    ///
    /// Propagates request validation, strategy construction, model forward
    /// and simulation errors.
    pub fn run(&mut self, requests: Vec<GenRequest>) -> Result<ServeReport> {
        self.validate_requests(&requests)?;
        if requests.iter().any(|r| r.strategy.needs_calibration()) {
            self.ensure_calibration()?;
        }

        // Shared layout + DRAM split, fixed for the whole run.
        let specs: Vec<StrategySpec> = requests.iter().map(|r| r.strategy).collect();
        let axes = resolve_axes(&specs)?;
        let layout = layout_for_serving(
            &self.model.config,
            axes,
            self.config.bits_per_weight,
            self.config.max_concurrent,
            self.context_window(),
        );
        let allocation = hwsim::allocate(&layout, &self.config.device)?;

        let n_streams = requests.len();
        let mut factory = StrategyFactory::new();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let sequential = self.config.execution == ExecutionMode::Sequential;
        let mut waiting: Vec<GenRequest> = requests;
        let mut active: Vec<Session> = Vec::new();
        let mut finished: Vec<Session> = Vec::new();
        let mut order: Vec<usize> = Vec::new();
        let mut next_stream = 0usize;
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.on_run_start(0.0);
        }

        while !waiting.is_empty() || !active.is_empty() {
            // Admission: fill free KV slots following the scheduler policy.
            while active.len() < self.config.max_concurrent && !waiting.is_empty() {
                let idx = self
                    .config
                    .scheduler
                    .next_admission(&waiting)
                    .expect("queue is non-empty");
                let request = waiting.remove(idx);
                let strategy = factory.instantiate(
                    &request.strategy,
                    &self.model,
                    &allocation.capacities,
                    self.calibration.as_ref(),
                )?;
                let state = self.pool.acquire(&self.model);
                if let Some(t) = self.telemetry.as_deref_mut() {
                    t.on_slot_granted(next_stream, &request.strategy.label());
                }
                active.push(Session::new(
                    next_stream,
                    request,
                    order.len(),
                    state,
                    strategy,
                ));
                next_stream += 1;
            }

            if sequential {
                // Oracle path: serve one token of one active session.
                let idx = self
                    .config
                    .scheduler
                    .next_service(&active)
                    .expect("active set is non-empty");
                let step = order.len();
                let planned = active[idx].step(&self.model, &mut rng, step, &mut self.scratch)?;
                active[idx].last_served_step = step;
                order.push(active[idx].stream);
                if let Some(t) = self.telemetry.as_deref_mut() {
                    t.on_closed_token(active[idx].stream, planned.was_prefill);
                }
                // Let every *other* shared cache-aware model see this
                // traffic: the physical DRAM cache is shared, so their view
                // must include co-tenant accesses.
                factory.observe_cross_traffic_scratch(
                    active[idx].request.strategy.shared_cache_key(),
                    &self.scratch.accesses,
                    self.model.config.d_model,
                    self.model.config.d_ff,
                );

                if active[idx].remaining_tokens() == 0 {
                    let mut session = active.swap_remove(idx);
                    // Return the KV slot's decode state to the pool for the
                    // next admission; the session keeps its bookkeeping.
                    let state = take_state(&mut session);
                    self.pool.release(state);
                    finished.push(session);
                }
            } else {
                // Batched path: plan a lane/chunk of consecutive schedule
                // positions and execute it in one fused weight pass, then
                // settle each position in schedule order (identical traces,
                // interleave and shared-cache observations).
                Self::plan_batch(
                    &self.config.scheduler,
                    &mut active,
                    &mut rng,
                    order.len(),
                    true,
                    &mut self.plan,
                )?;
                self.execute_batch(&mut active)?;
                let rows_n = self.plan.rows.len();
                let vocab = self.model.config.vocab_size;
                if let Some(t) = self.telemetry.as_deref_mut() {
                    t.on_plan(self.plan.kind == Some(PlanKind::Chunk), rows_n, 0.0);
                }
                for i in 0..rows_n {
                    let row = self.plan.rows[i];
                    let access = to_token_access_batch_row(&self.batch.accesses, i);
                    let logits = self
                        .row_logits_ready(i)
                        .then(|| &self.batch.logits[i * vocab..(i + 1) * vocab]);
                    active[row.idx].finish_row(access, logits);
                    order.push(row.stream);
                    if let Some(t) = self.telemetry.as_deref_mut() {
                        t.on_closed_token(row.stream, row.planned.was_prefill);
                    }
                    factory.observe_cross_traffic_batch_row(
                        active[row.idx].request.strategy.shared_cache_key(),
                        &self.batch.accesses,
                        i,
                        self.model.config.d_model,
                        self.model.config.d_ff,
                    );
                }
                // at most the last planned position's session completed
                // (the planner breaks a batch at any earlier completion)
                let last_idx = self.plan.rows[rows_n - 1].idx;
                if active[last_idx].remaining_tokens() == 0 {
                    let mut session = active.swap_remove(last_idx);
                    let state = take_state(&mut session);
                    self.pool.release(state);
                    finished.push(session);
                }
            }
        }

        if let Some(t) = self.telemetry.as_deref_mut() {
            // closed batches are priced post hoc, so the virtual clock here
            // is 0; the report carries the makespan
            t.on_run_end(
                0.0,
                order.len() as u64,
                active.len(),
                0,
                waiting.len(),
                &self.pool,
                self.batch.rows_computed,
                self.batch.fused_passes,
            );
        }
        self.build_report(&layout, finished, order, n_streams)
    }

    /// Generates an open-loop workload's traffic and serves it on a virtual
    /// clock (see [`ServeEngine::run_open_loop_requests`]).
    ///
    /// # Errors
    ///
    /// Propagates workload validation/generation errors and everything
    /// [`ServeEngine::run_open_loop_requests`] returns.
    pub fn run_open_loop(&mut self, workload: &Workload) -> Result<ServeReport> {
        let arrivals = workload.generate(self.model.config.vocab_size)?;
        self.run_open_loop_requests(arrivals)
    }

    /// Serves timestamped arrivals open loop, to drain, on a virtual clock.
    ///
    /// Where [`ServeEngine::run`] consumes a closed batch (everything queued
    /// at t = 0) and prices the traffic post hoc, this driver interleaves
    /// *time* with execution:
    ///
    /// 1. The clock starts at 0 and advances by each served token's service
    ///    latency ([`hwsim::TokenPricer`] prices tokens online with the same
    ///    cost model the batch replay uses — identical by construction).
    /// 2. Arrivals whose timestamp the clock has passed go through admission
    ///    control ([`crate::admission::AdmissionController`]): token-bucket
    ///    rate limiting, per-tier quotas, then the bounded queue — excess
    ///    traffic is **shed**, not queued forever.
    /// 3. Free KV slots are filled from the waiting queue (and from parked
    ///    sessions) following the scheduler policy. Under
    ///    [`SchedulerPolicy::PriorityPreemptive`] a waiting request that
    ///    outranks the lowest-tier active session **preempts** it at a token
    ///    boundary: the victim's decode state is parked in
    ///    [`lm::DecodeStatePool`] (KV and position intact) and resumed later
    ///    without output divergence.
    /// 4. When nothing is runnable the clock jumps to the next arrival.
    ///
    /// The run is a pure function of `(arrivals, config, model)`: no wall
    /// clock or ambient randomness enters, so reports are bitwise
    /// reproducible across runs and thread counts.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for
    /// [`EvictionPolicy::Belady`] (the oracle needs the full future trace,
    /// which an open-loop run does not have), [`ServeError::InvalidRequest`]
    /// for malformed requests or non-finite/negative arrival times, and
    /// propagates strategy construction, forward-pass and pricing errors.
    pub fn run_open_loop_requests(&mut self, mut arrivals: Vec<GenRequest>) -> Result<ServeReport> {
        if self.config.eviction == EvictionPolicy::Belady {
            return Err(ServeError::InvalidConfig {
                field: "eviction",
                reason: "Belady's oracle needs the full future access trace; \
                         open-loop traffic is priced online"
                    .to_string(),
            });
        }
        self.validate_requests(&arrivals)?;
        if let Some(bad) = arrivals
            .iter()
            .find(|r| !r.arrival_s.is_finite() || r.arrival_s < 0.0)
        {
            return Err(ServeError::InvalidRequest {
                id: bad.id,
                reason: format!(
                    "arrival time {} is not a finite non-negative virtual-clock time",
                    bad.arrival_s
                ),
            });
        }
        if arrivals.iter().any(|r| r.strategy.needs_calibration()) {
            self.ensure_calibration()?;
        }
        arrivals.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s).then(a.id.cmp(&b.id)));

        // Shared layout + DRAM split, fixed for the whole run (axes must be
        // resolvable across every arrival, shed or not, since the layout
        // cannot change mid-run).
        let specs: Vec<StrategySpec> = arrivals.iter().map(|r| r.strategy).collect();
        let axes = resolve_axes(&specs)?;
        let layout = layout_for_serving(
            &self.model.config,
            axes,
            self.config.bits_per_weight,
            self.config.max_concurrent,
            self.context_window(),
        );
        let static_bytes = layout.static_bytes as f64;
        let mlp_bytes = layout.mlp_bytes() as f64;
        let allocation = hwsim::allocate(&layout, &self.config.device)?;
        let mut pricer =
            TokenPricer::new(&layout, &self.config.device, self.config.eviction, None)?;

        let mut factory = StrategyFactory::new();
        let mut acc = OpenAccum {
            cache_fraction: pricer.cache_fraction(),
            ..OpenAccum::default()
        };
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let sequential = self.config.execution == ExecutionMode::Sequential;
        let mut admission = AdmissionController::new(self.config.admission.clone());
        let mut pending = arrivals.into_iter().peekable();
        let mut parked: Vec<Session> = Vec::new();
        let mut active: Vec<Session> = Vec::new();
        let mut finished: Vec<Session> = Vec::new();
        let mut metas: Vec<OpenMeta> = Vec::new();
        // The DRAM layout budgets KV for `max_concurrent` slots; a parked
        // session's KV state cannot stay resident on top of that, so
        // preemption swaps it out to Flash (and back in on resume), and the
        // transfer is charged on the virtual clock at Flash bandwidth.
        let kv_bytes_per_pos =
            self.model.config.kv_cache_bytes() / self.model.config.max_seq_len as f64;
        let mut now = 0.0f64;
        let mut step = 0usize;
        let mut next_stream = 0usize;
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.on_run_start(now);
        }

        loop {
            // 1. Ingest every arrival the clock has passed; admission
            // decisions use the request's own arrival time, so the token
            // bucket refills on true inter-arrival gaps.
            while pending.peek().is_some_and(|r| r.arrival_s <= now) {
                let request = pending.next().expect("peeked");
                let at = request.arrival_s;
                let verdict = admission.offer(request, at);
                if let Some(t) = self.telemetry.as_deref_mut() {
                    t.on_arrival(verdict, admission.queue().len(), at);
                }
            }

            // 2. Fill free KV slots; under PriorityPreemptive, additionally
            // displace lower-tier active sessions for higher-tier waiters.
            while let Some(candidate) = self
                .config
                .scheduler
                .next_candidate(admission.queue(), &parked)
            {
                if active.len() >= self.config.max_concurrent {
                    let tier = match candidate {
                        AdmissionCandidate::Queued(i) => admission.queue()[i].tier,
                        AdmissionCandidate::Parked(i) => parked[i].request.tier,
                    };
                    let Some(victim) = self.config.scheduler.preemption_victim(&active, tier)
                    else {
                        break;
                    };
                    let mut session = active.swap_remove(victim);
                    let state = take_state(&mut session);
                    let positions = state.pos;
                    let swap_s = self
                        .config
                        .device
                        .flash_read_time(kv_bytes_per_pos * positions as f64);
                    now += swap_s;
                    acc.kv_swap_s += swap_s;
                    acc.kv_swap_bytes += kv_bytes_per_pos * positions as f64;
                    self.pool.park(session.stream as u64, state);
                    metas[session.stream].preemptions += 1;
                    acc.preemptions += 1;
                    if let Some(t) = self.telemetry.as_deref_mut() {
                        t.on_preempt(session.stream, positions, swap_s, now);
                        t.on_kv_swap_bytes(kv_bytes_per_pos * positions as f64);
                    }
                    parked.push(session);
                }
                match candidate {
                    AdmissionCandidate::Parked(i) => {
                        let mut session = parked.swap_remove(i);
                        session.state = self
                            .pool
                            .resume(session.stream as u64)
                            .expect("parked session has a parked state");
                        let swap_s = self
                            .config
                            .device
                            .flash_read_time(kv_bytes_per_pos * session.state.pos as f64);
                        now += swap_s;
                        acc.kv_swap_s += swap_s;
                        acc.kv_swap_bytes += kv_bytes_per_pos * session.state.pos as f64;
                        acc.resumes += 1;
                        if let Some(t) = self.telemetry.as_deref_mut() {
                            t.on_resume(session.stream, session.state.pos, swap_s, now);
                            t.on_kv_swap_bytes(kv_bytes_per_pos * session.state.pos as f64);
                        }
                        active.push(session);
                    }
                    AdmissionCandidate::Queued(i) => {
                        let request = admission.take(i);
                        let strategy = factory.instantiate(
                            &request.strategy,
                            &self.model,
                            &allocation.capacities,
                            self.calibration.as_ref(),
                        )?;
                        let state = self.pool.acquire(&self.model);
                        if let Some(t) = self.telemetry.as_deref_mut() {
                            t.on_slot_granted(next_stream, &request.strategy.label());
                        }
                        metas.push(OpenMeta::new(request.arrival_s, now));
                        active.push(Session::new(next_stream, request, step, state, strategy));
                        next_stream += 1;
                    }
                }
            }

            // 3. Nothing runnable: jump the clock to the next arrival, or
            // drain. (With free slots the admission loop above empties both
            // the queue and the parked set, so an idle engine truly has
            // nothing waiting.)
            if active.is_empty() {
                debug_assert!(admission.queue().is_empty() && parked.is_empty());
                match pending.peek() {
                    None => break,
                    Some(r) => {
                        now = now.max(r.arrival_s);
                        continue;
                    }
                }
            }

            // 4. Serve the scheduler's next token(s) and advance the
            // virtual clock by each token's online-priced service time.
            if sequential {
                let idx = self
                    .config
                    .scheduler
                    .next_service(&active)
                    .expect("active set is non-empty");
                let planned = active[idx].step(&self.model, &mut rng, step, &mut self.scratch)?;
                active[idx].last_served_step = step;
                step += 1;
                let cost = pricer.price_token(
                    active[idx]
                        .trace
                        .tokens
                        .last()
                        .expect("step recorded its token access"),
                )?;
                settle_open_loop_token(
                    &cost,
                    &planned,
                    active[idx].request.max_new_tokens,
                    active[idx].stream,
                    &mut now,
                    &mut acc,
                    &mut metas,
                    static_bytes,
                    mlp_bytes,
                );
                if let Some(t) = self.telemetry.as_deref_mut() {
                    t.on_token(
                        active[idx].stream,
                        active[idx].request.tier,
                        &cost,
                        planned.was_prefill,
                        now,
                    );
                }
                factory.observe_cross_traffic_scratch(
                    active[idx].request.strategy.shared_cache_key(),
                    &self.scratch.accesses,
                    self.model.config.d_model,
                    self.model.config.d_ff,
                );

                if active[idx].remaining_tokens() == 0 {
                    let mut session = active.swap_remove(idx);
                    metas[session.stream].completion_s = now;
                    if let Some(t) = self.telemetry.as_deref_mut() {
                        let (generated, ttft_s, tbt_s, delay_s, slo) =
                            completion_stats(&session, &metas[session.stream]);
                        t.on_complete(session.stream, generated, ttft_s, tbt_s, delay_s, slo, now);
                    }
                    let state = take_state(&mut session);
                    self.pool.release(state);
                    finished.push(session);
                }
            } else {
                // Batch extension is only allowed while no *un-ingested*
                // arrival could change scheduling mid-batch: either every
                // arrival is already ingested, or the slots are full under a
                // non-preemptive policy (then admission between tokens is
                // provably a no-op and delayed ingestion is equivalent —
                // see DESIGN.md §11).
                let allow_multi = pending.peek().is_none()
                    || (self.config.scheduler != SchedulerPolicy::PriorityPreemptive
                        && active.len() == self.config.max_concurrent);
                Self::plan_batch(
                    &self.config.scheduler,
                    &mut active,
                    &mut rng,
                    step,
                    allow_multi,
                    &mut self.plan,
                )?;
                self.execute_batch(&mut active)?;
                let rows_n = self.plan.rows.len();
                let vocab = self.model.config.vocab_size;
                if let Some(t) = self.telemetry.as_deref_mut() {
                    t.on_plan(self.plan.kind == Some(PlanKind::Chunk), rows_n, now);
                }
                for i in 0..rows_n {
                    let row = self.plan.rows[i];
                    let access = to_token_access_batch_row(&self.batch.accesses, i);
                    let cost = pricer.price_token(&access)?;
                    settle_open_loop_token(
                        &cost,
                        &row.planned,
                        active[row.idx].request.max_new_tokens,
                        row.stream,
                        &mut now,
                        &mut acc,
                        &mut metas,
                        static_bytes,
                        mlp_bytes,
                    );
                    if let Some(t) = self.telemetry.as_deref_mut() {
                        t.on_token(
                            row.stream,
                            active[row.idx].request.tier,
                            &cost,
                            row.planned.was_prefill,
                            now,
                        );
                    }
                    let logits = self
                        .row_logits_ready(i)
                        .then(|| &self.batch.logits[i * vocab..(i + 1) * vocab]);
                    active[row.idx].finish_row(access, logits);
                    factory.observe_cross_traffic_batch_row(
                        active[row.idx].request.strategy.shared_cache_key(),
                        &self.batch.accesses,
                        i,
                        self.model.config.d_model,
                        self.model.config.d_ff,
                    );
                    step += 1;
                }
                let last_idx = self.plan.rows[rows_n - 1].idx;
                if active[last_idx].remaining_tokens() == 0 {
                    let mut session = active.swap_remove(last_idx);
                    metas[session.stream].completion_s = now;
                    if let Some(t) = self.telemetry.as_deref_mut() {
                        let (generated, ttft_s, tbt_s, delay_s, slo) =
                            completion_stats(&session, &metas[session.stream]);
                        t.on_complete(session.stream, generated, ttft_s, tbt_s, delay_s, slo, now);
                    }
                    let state = take_state(&mut session);
                    self.pool.release(state);
                    finished.push(session);
                }
            }
        }

        debug_assert_eq!(
            admission.stats().admitted,
            finished.len(),
            "every admitted request drains"
        );
        if let Some(t) = self.telemetry.as_deref_mut() {
            t.on_run_end(
                now,
                step as u64,
                active.len(),
                parked.len(),
                admission.queue().len(),
                &self.pool,
                self.batch.rows_computed,
                self.batch.fused_passes,
            );
        }
        Ok(self.build_open_loop_report(finished, metas, admission, acc, now))
    }

    fn build_open_loop_report(
        &self,
        mut finished: Vec<Session>,
        metas: Vec<OpenMeta>,
        admission: AdmissionController,
        acc: OpenAccum,
        makespan_s: f64,
    ) -> ServeReport {
        finished.sort_by_key(|s| s.stream);

        let mut request_stats = Vec::with_capacity(finished.len());
        let mut latencies = Vec::with_capacity(finished.len());
        let mut ttfts = Vec::with_capacity(finished.len());
        let mut queue_delays = Vec::with_capacity(finished.len());
        let mut services = Vec::with_capacity(finished.len());
        let mut ttft_sum = 0.0f64;
        let mut total_generated = 0usize;
        let mut total_prefill = 0usize;
        for s in &mut finished {
            let meta = &metas[s.stream];
            let generated_ids = std::mem::take(&mut s.generated);
            let generated = generated_ids.len();
            total_generated += generated;
            total_prefill += s.request.prompt.len();
            let ttft_s = if generated > 0 {
                meta.first_token_s - meta.arrival_s
            } else {
                meta.completion_s - meta.arrival_s
            };
            let tbt_mean_s = if generated > 0 {
                (meta.completion_s - meta.first_token_s) / generated as f64
            } else {
                0.0
            };
            let latency = meta.completion_s - meta.arrival_s;
            let accesses = meta.hits + meta.misses;
            ttft_sum += ttft_s;
            latencies.push(latency);
            ttfts.push(ttft_s);
            queue_delays.push(meta.slot_s - meta.arrival_s);
            services.push(meta.service_s);
            request_stats.push(RequestStats {
                id: s.request.id,
                stream: s.stream,
                strategy: s.request.strategy.label(),
                tier: s.request.tier,
                prompt_tokens: s.request.prompt.len(),
                generated_tokens: generated,
                generated: generated_ids,
                admitted_step: s.admitted_step,
                arrival_s: meta.arrival_s,
                queue_delay_s: meta.slot_s - meta.arrival_s,
                first_token_s: if generated > 0 {
                    meta.first_token_s
                } else {
                    0.0
                },
                ttft_s,
                tbt_mean_s,
                preemptions: meta.preemptions,
                slo_met: s.request.slo.met(ttft_s, tbt_mean_s),
                completion_s: meta.completion_s,
                service_s: meta.service_s,
                throughput_tps: if latency > 0.0 {
                    generated as f64 / latency
                } else {
                    0.0
                },
                hit_rate: if accesses == 0 {
                    1.0
                } else {
                    meta.hits as f64 / accesses as f64
                },
                flash_bytes: meta.flash_bytes,
                dram_bytes: meta.dram_bytes,
            });
        }

        // Per-tier breakdown; a shed request counts as a missed SLO, so
        // shedding cannot launder attainment.
        let stats = admission.stats();
        let tiers: Vec<TierStats> = TIERS
            .iter()
            .enumerate()
            .map(|(i, &tier)| {
                let in_tier: Vec<&RequestStats> =
                    request_stats.iter().filter(|r| r.tier == tier).collect();
                let met = in_tier.iter().filter(|r| r.slo_met).count();
                let tier_ttfts: Vec<f64> = in_tier.iter().map(|r| r.ttft_s).collect();
                let tier_delays: Vec<f64> = in_tier.iter().map(|r| r.queue_delay_s).collect();
                TierStats {
                    tier,
                    arrived: stats.arrived_per_tier[i],
                    admitted: stats.arrived_per_tier[i] - stats.shed_per_tier[i],
                    shed: stats.shed_per_tier[i],
                    completed: in_tier.len(),
                    preemptions: in_tier.iter().map(|r| r.preemptions).sum(),
                    ttft: Percentiles::of(&tier_ttfts),
                    queue_delay: Percentiles::of(&tier_delays),
                    slo_attainment: if stats.arrived_per_tier[i] == 0 {
                        1.0
                    } else {
                        met as f64 / stats.arrived_per_tier[i] as f64
                    },
                }
            })
            .collect();

        // Per-strategy breakdown, in order of first appearance.
        let mut strategies: Vec<StrategyClassStats> = Vec::new();
        for r in &request_stats {
            if !strategies.iter().any(|c| c.strategy == r.strategy) {
                let in_class: Vec<&RequestStats> = request_stats
                    .iter()
                    .filter(|o| o.strategy == r.strategy)
                    .collect();
                let class_ttfts: Vec<f64> = in_class.iter().map(|o| o.ttft_s).collect();
                let (class_hits, class_accesses) = in_class.iter().fold((0u64, 0u64), |a, o| {
                    let m = &metas[o.stream];
                    (a.0 + m.hits, a.1 + m.hits + m.misses)
                });
                strategies.push(StrategyClassStats {
                    strategy: r.strategy.clone(),
                    completed: in_class.len(),
                    generated_tokens: in_class.iter().map(|o| o.generated_tokens).sum(),
                    ttft: Percentiles::of(&class_ttfts),
                    hit_rate: if class_accesses == 0 {
                        1.0
                    } else {
                        class_hits as f64 / class_accesses as f64
                    },
                    slo_attainment: if in_class.is_empty() {
                        1.0
                    } else {
                        in_class.iter().filter(|o| o.slo_met).count() as f64 / in_class.len() as f64
                    },
                });
            }
        }

        let met_total = request_stats.iter().filter(|r| r.slo_met).count();
        let open_loop = OpenLoopStats {
            arrived: stats.arrived,
            admitted: stats.admitted,
            shed: stats.shed(),
            shed_rate_limited: stats.shed_rate_limited,
            shed_tier_quota: stats.shed_tier_quota,
            shed_queue_full: stats.shed_queue_full,
            completed: finished.len(),
            preemptions: acc.preemptions,
            resumes: acc.resumes,
            kv_swap_s: acc.kv_swap_s,
            kv_swap_bytes: acc.kv_swap_bytes,
            ttft: Percentiles::of(&ttfts),
            tbt: Percentiles::of(&acc.tbt_gaps),
            queue_delay: Percentiles::of(&queue_delays),
            slo_attainment: if stats.arrived == 0 {
                1.0
            } else {
                met_total as f64 / stats.arrived as f64
            },
            tiers,
            strategies,
        };

        let served_steps = total_prefill + total_generated;
        let accesses = acc.hits + acc.misses;
        let n = finished.len().max(1);
        ServeReport {
            model: self.model.config.name.clone(),
            scheduler: self.config.scheduler,
            eviction: self.config.eviction,
            max_concurrent: self.config.max_concurrent,
            requests: request_stats,
            total_prefill_tokens: total_prefill,
            total_generated_tokens: total_generated,
            makespan_s,
            aggregate_tps: if makespan_s > 0.0 {
                total_generated as f64 / makespan_s
            } else {
                0.0
            },
            latency_p50_s: percentile(&latencies, 0.50),
            latency_p95_s: percentile(&latencies, 0.95),
            latency_p99_s: percentile(&latencies, 0.99),
            mean_first_token_s: ttft_sum / n as f64,
            cache_hit_rate: if accesses == 0 {
                1.0
            } else {
                acc.hits as f64 / accesses as f64
            },
            cache_fraction: acc.cache_fraction,
            fairness: hwsim::jain_index(&services),
            mean_density: if served_steps == 0 {
                1.0
            } else {
                acc.density_sum / served_steps as f64
            },
            flash_bytes: acc.flash_bytes,
            dram_bytes: acc.dram_bytes,
            open_loop: Some(open_loop),
        }
    }

    fn build_report(
        &self,
        layout: &hwsim::ModelLayout,
        mut finished: Vec<Session>,
        order: Vec<usize>,
        n_streams: usize,
    ) -> Result<ServeReport> {
        finished.sort_by_key(|s| s.stream);
        let streams: Vec<AccessTrace> = {
            // move (not clone) each session's recorded trace into stream order
            let mut traces = vec![AccessTrace::new(); n_streams];
            for s in &mut finished {
                traces[s.stream] = std::mem::take(&mut s.trace);
            }
            traces
        };
        let sim = simulate_concurrent(
            layout,
            &self.config.device,
            self.config.eviction,
            &streams,
            &order,
        )?;

        // Wall-clock completion of each schedule position.
        let mut clock = 0.0f64;
        let completion_at: Vec<f64> = sim
            .schedule
            .iter()
            .map(|(_, latency)| {
                clock += latency;
                clock
            })
            .collect();

        let mut request_stats = Vec::with_capacity(finished.len());
        let mut completions = Vec::with_capacity(finished.len());
        let mut first_token_sum = 0.0f64;
        let mut total_generated = 0usize;
        let mut total_prefill = 0usize;
        for s in &mut finished {
            let stream_stats = &sim.streams[s.stream];
            let first_token_s = s
                .first_token_position()
                .map(|p| completion_at[p])
                .unwrap_or(0.0);
            let generated_ids = std::mem::take(&mut s.generated);
            let generated = generated_ids.len();
            total_generated += generated;
            total_prefill += s.request.prompt.len();
            first_token_sum += first_token_s;
            completions.push(stream_stats.completion_s);
            // closed batches have every request present at t = 0, so TTFT
            // is the first token's completion and queueing is free
            let ttft_s = first_token_s;
            let tbt_mean_s = if generated > 0 {
                (stream_stats.completion_s - first_token_s) / generated as f64
            } else {
                0.0
            };
            request_stats.push(RequestStats {
                id: s.request.id,
                stream: s.stream,
                strategy: s.request.strategy.label(),
                tier: s.request.tier,
                prompt_tokens: s.request.prompt.len(),
                generated_tokens: generated,
                generated: generated_ids,
                admitted_step: s.admitted_step,
                arrival_s: 0.0,
                queue_delay_s: 0.0,
                first_token_s,
                ttft_s,
                tbt_mean_s,
                preemptions: 0,
                slo_met: s.request.slo.met(ttft_s, tbt_mean_s),
                completion_s: stream_stats.completion_s,
                service_s: stream_stats.service_s,
                throughput_tps: if stream_stats.completion_s > 0.0 {
                    generated as f64 / stream_stats.completion_s
                } else {
                    0.0
                },
                hit_rate: stream_stats.hit_rate,
                flash_bytes: stream_stats.flash_bytes,
                dram_bytes: stream_stats.dram_bytes,
            });
        }

        let makespan = sim.makespan_s();
        let n = finished.len().max(1);
        Ok(ServeReport {
            model: self.model.config.name.clone(),
            scheduler: self.config.scheduler,
            eviction: self.config.eviction,
            max_concurrent: self.config.max_concurrent,
            requests: request_stats,
            total_prefill_tokens: total_prefill,
            total_generated_tokens: total_generated,
            makespan_s: makespan,
            aggregate_tps: if makespan > 0.0 {
                total_generated as f64 / makespan
            } else {
                0.0
            },
            latency_p50_s: percentile(&completions, 0.50),
            latency_p95_s: percentile(&completions, 0.95),
            latency_p99_s: percentile(&completions, 0.99),
            mean_first_token_s: first_token_sum / n as f64,
            cache_hit_rate: sim.aggregate.hit_rate,
            cache_fraction: sim.aggregate.cache_fraction,
            fairness: sim.jain_fairness(),
            mean_density: sim.aggregate.mean_density,
            flash_bytes: sim.aggregate.flash_bytes,
            dram_bytes: sim.aggregate.dram_bytes,
            open_loop: None,
        })
    }
}

/// Per-session timing and traffic bookkeeping of an open-loop run, indexed
/// by stream.
struct OpenMeta {
    /// Arrival on the virtual clock.
    arrival_s: f64,
    /// First KV-slot grant.
    slot_s: f64,
    /// Availability of the first generated token (0 until known).
    first_token_s: f64,
    /// Completion of the session's most recent step.
    last_completion_s: f64,
    /// Completion of the session's last step.
    completion_s: f64,
    service_s: f64,
    hits: u64,
    misses: u64,
    flash_bytes: f64,
    dram_bytes: f64,
    preemptions: usize,
}

impl OpenMeta {
    fn new(arrival_s: f64, slot_s: f64) -> Self {
        OpenMeta {
            arrival_s,
            slot_s,
            first_token_s: 0.0,
            last_completion_s: slot_s,
            completion_s: slot_s,
            service_s: 0.0,
            hits: 0,
            misses: 0,
            flash_bytes: 0.0,
            dram_bytes: 0.0,
            preemptions: 0,
        }
    }
}

/// Fleet-wide accumulators of an open-loop run.
#[derive(Default)]
struct OpenAccum {
    hits: u64,
    misses: u64,
    flash_bytes: f64,
    dram_bytes: f64,
    density_sum: f64,
    tbt_gaps: Vec<f64>,
    preemptions: usize,
    resumes: usize,
    kv_swap_s: f64,
    kv_swap_bytes: f64,
    cache_fraction: f64,
}

/// Settles one served token of an open-loop run: advances the virtual clock
/// by its priced service time and updates the fleet and per-session
/// accounting. One function serves both execution modes, so their
/// arithmetic cannot drift.
#[allow(clippy::too_many_arguments)]
fn settle_open_loop_token(
    cost: &hwsim::TokenCost,
    planned: &PlannedToken,
    max_new_tokens: usize,
    stream: usize,
    now: &mut f64,
    acc: &mut OpenAccum,
    metas: &mut [OpenMeta],
    static_bytes: f64,
    mlp_bytes: f64,
) {
    *now += cost.latency_s;
    acc.hits += cost.hits as u64;
    acc.misses += cost.misses as u64;
    acc.flash_bytes += cost.flash_bytes;
    acc.dram_bytes += cost.dram_bytes;
    if mlp_bytes > 0.0 {
        // bytes-weighted MLP density of this token (uniform per-layer
        // layouts make this identical to the batch replay's
        // per-(token, block) mean)
        acc.density_sum += (cost.dram_bytes - static_bytes + cost.flash_bytes) / mlp_bytes;
    }
    let meta = &mut metas[stream];
    meta.service_s += cost.latency_s;
    meta.hits += cost.hits as u64;
    meta.misses += cost.misses as u64;
    meta.flash_bytes += cost.flash_bytes;
    meta.dram_bytes += cost.dram_bytes;
    if !planned.was_prefill {
        acc.tbt_gaps.push(*now - meta.last_completion_s);
    }
    if planned.prefill_ended && max_new_tokens > 0 {
        // completing the last prefill step makes the first generated token
        // available (same convention as the closed-batch report)
        meta.first_token_s = *now;
    }
    meta.last_completion_s = *now;
}

/// Completion-time latency stats of a drained open-loop session —
/// `(generated, ttft_s, tbt_mean_s, queue_delay_s, slo_met)` — matching the
/// report's definitions exactly, so telemetry histograms observe the same
/// numbers the report later recomputes.
fn completion_stats(session: &Session, meta: &OpenMeta) -> (usize, f64, f64, f64, bool) {
    let generated = session.generated.len();
    let ttft_s = if generated > 0 {
        meta.first_token_s - meta.arrival_s
    } else {
        meta.completion_s - meta.arrival_s
    };
    let tbt_mean_s = if generated > 0 {
        (meta.completion_s - meta.first_token_s) / generated as f64
    } else {
        0.0
    };
    let queue_delay_s = meta.slot_s - meta.arrival_s;
    let slo_met = session.request.slo.met(ttft_s, tbt_mean_s);
    (generated, ttft_s, tbt_mean_s, queue_delay_s, slo_met)
}

/// Moves a session's decode state out, leaving an empty placeholder (the
/// session keeps only its bookkeeping until resumed or retired).
fn take_state(session: &mut Session) -> lm::DecodeState {
    std::mem::replace(
        &mut session.state,
        lm::DecodeState {
            kv: Vec::new(),
            pos: 0,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm::{build_synthetic, ModelConfig};

    fn tiny_engine(slots: usize, cache_fraction: f64) -> ServeEngine {
        let config = ModelConfig::tiny();
        let model = build_synthetic(&config, 7).unwrap();
        let layout = layout_for_serving(
            &config,
            [lm::SliceAxis::Input; 3],
            4.0,
            slots,
            config.max_seq_len,
        );
        // DRAM = everything static + `cache_fraction` of the MLP weights
        let dram = layout.static_bytes + (layout.mlp_bytes() as f64 * cache_fraction) as u64;
        let device = DeviceConfig::apple_a18(4.0).with_dram_bytes(dram);
        ServeEngine::new(model, ServeConfig::new(device).with_max_concurrent(slots)).unwrap()
    }

    fn dense_requests(n: usize, prompt_len: usize, new_tokens: usize) -> Vec<GenRequest> {
        (0..n)
            .map(|i| {
                GenRequest::new(
                    i as u64,
                    vec![(i % 7) as u32 + 1; prompt_len],
                    new_tokens,
                    StrategySpec::Dense,
                )
            })
            .collect()
    }

    #[test]
    fn config_validation() {
        let device = DeviceConfig::apple_a18(4.0);
        assert!(ServeConfig::new(device.clone()).validate().is_ok());
        assert!(ServeConfig::new(device.clone())
            .with_max_concurrent(0)
            .validate()
            .is_err());
        let mut bad = ServeConfig::new(device);
        bad.bits_per_weight = 0.0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn closed_batch_runs_to_completion() {
        let mut engine = tiny_engine(2, 0.6);
        let report = engine.run(dense_requests(5, 2, 4)).unwrap();
        assert_eq!(report.requests.len(), 5);
        assert_eq!(report.total_generated_tokens, 20);
        assert_eq!(report.total_prefill_tokens, 10);
        assert!(report.makespan_s > 0.0);
        assert!(report.aggregate_tps > 0.0);
        assert!(report.latency_p50_s <= report.latency_p95_s);
        assert!(report.latency_p95_s <= report.latency_p99_s);
        assert!(report.latency_p99_s <= report.makespan_s + 1e-12);
        assert!(report.fairness > 0.0 && report.fairness <= 1.0);
        // every request got all its tokens and a sensible timeline
        for r in &report.requests {
            assert_eq!(r.generated_tokens, 4);
            assert!(r.first_token_s > 0.0);
            assert!(r.first_token_s <= r.completion_s);
            assert!(r.service_s <= r.completion_s + 1e-12);
        }
        assert!(!report.summary().is_empty());
    }

    #[test]
    fn kv_slots_are_recycled_through_the_pool() {
        let mut engine = tiny_engine(2, 0.6);
        engine.run(dense_requests(6, 2, 3)).unwrap();
        // 6 sessions through 2 slots: at most 2 fresh states, at least 4 reuses
        assert!(engine.state_pool().build_count() <= 2);
        assert!(engine.state_pool().reuse_count() >= 4);
    }

    #[test]
    fn srf_finishes_short_requests_first() {
        let make = |scheduler| {
            let mut engine = tiny_engine(2, 0.6);
            engine.config.scheduler = scheduler;
            let mut requests = dense_requests(1, 2, 30);
            requests.push(GenRequest::new(1, vec![3, 4], 2, StrategySpec::Dense));
            engine.run(requests).unwrap()
        };
        let by_id = |report: &ServeReport, id: u64| {
            report
                .requests
                .iter()
                .find(|r| r.id == id)
                .cloned()
                .expect("request present")
        };
        let srf = make(SchedulerPolicy::ShortestRemainingFirst);
        let short = by_id(&srf, 1);
        let long = by_id(&srf, 0);
        assert!(short.completion_s < long.completion_s);
        // under SRF the short request barely queues behind the long one
        let fifo = make(SchedulerPolicy::Fifo);
        assert!(short.completion_s <= by_id(&fifo, 1).completion_s + 1e-12);
    }

    #[test]
    fn invalid_requests_are_rejected_up_front() {
        let mut engine = tiny_engine(2, 0.6);
        let empty = vec![GenRequest::new(9, vec![], 4, StrategySpec::Dense)];
        assert!(matches!(
            engine.run(empty),
            Err(ServeError::InvalidRequest { id: 9, .. })
        ));
        let oov = vec![GenRequest::new(3, vec![999], 4, StrategySpec::Dense)];
        assert!(engine.run(oov).is_err());
        let too_long = vec![GenRequest::new(4, vec![1], 400, StrategySpec::Dense)];
        assert!(engine.run(too_long).is_err());

        // a request that exactly fills the context window is accepted
        let window = engine.context_window();
        let exact = vec![GenRequest::new(
            5,
            vec![1, 2],
            window - 2,
            StrategySpec::Dense,
        )];
        let report = engine.run(exact).unwrap();
        assert_eq!(report.total_generated_tokens, window - 2);
        let over = vec![GenRequest::new(
            6,
            vec![1, 2],
            window - 1,
            StrategySpec::Dense,
        )];
        assert!(engine.run(over).is_err());
    }

    #[test]
    fn empty_batch_produces_empty_report() {
        let mut engine = tiny_engine(2, 0.6);
        let report = engine.run(Vec::new()).unwrap();
        assert!(report.requests.is_empty());
        assert_eq!(report.total_generated_tokens, 0);
        assert_eq!(report.aggregate_tps, 0.0);
    }

    #[test]
    fn mixed_strategies_share_one_run() {
        let mut engine = tiny_engine(3, 0.55);
        let requests = vec![
            GenRequest::new(0, vec![1, 2], 4, StrategySpec::Dense),
            GenRequest::new(1, vec![2, 3], 4, StrategySpec::Dip { density: 0.5 }),
            GenRequest::new(
                2,
                vec![3, 4],
                4,
                StrategySpec::DipCacheAware {
                    density: 0.5,
                    gamma: 0.2,
                },
            ),
        ];
        let report = engine.run(requests).unwrap();
        assert_eq!(report.requests.len(), 3);
        // the dense request moved more bytes than the pruned ones
        assert!(
            report.requests[0].dram_bytes + report.requests[0].flash_bytes
                > report.requests[1].dram_bytes + report.requests[1].flash_bytes
        );
        assert!(report.mean_density < 1.0);
    }

    #[test]
    fn open_loop_drains_a_steady_workload() {
        use crate::request::Tier;
        use crate::workload::{ArrivalProcess, RequestTemplate, Workload};

        let mut engine = tiny_engine(2, 0.6);
        let workload = Workload::new(
            5,
            0.05,
            ArrivalProcess::Steady { rate_per_s: 300.0 },
            vec![
                RequestTemplate::new((2, 3), (3, 5), StrategySpec::Dense).with_weight(2.0),
                RequestTemplate::new((1, 2), (2, 3), StrategySpec::Dip { density: 0.5 })
                    .with_tier(Tier::Premium),
            ],
        );
        let report = engine.run_open_loop(&workload).unwrap();
        let ol = report.open_loop.as_ref().expect("open-loop stats present");
        assert!(ol.arrived > 0, "workload produced arrivals");
        assert_eq!(ol.arrived, ol.admitted + ol.shed, "admission conserves");
        assert_eq!(ol.admitted, ol.completed, "a drained run completes all");
        assert_eq!(report.requests.len(), ol.completed);
        assert!(report.makespan_s > 0.0);
        assert!(ol.ttft.p50_s <= ol.ttft.p95_s && ol.ttft.p95_s <= ol.ttft.p99_s);
        for r in &report.requests {
            assert!(r.arrival_s >= 0.0);
            assert!(r.queue_delay_s >= -1e-12);
            assert!(r.ttft_s > 0.0);
            assert!(r.completion_s - r.arrival_s >= r.ttft_s - 1e-12);
            assert!(r.tbt_mean_s >= 0.0);
        }
        // per-tier rows cover every tier and add up
        assert_eq!(ol.tiers.len(), 3);
        let arrived: usize = ol.tiers.iter().map(|t| t.arrived).sum();
        assert_eq!(arrived, ol.arrived);
        assert!(!report.summary().is_empty());
    }

    #[test]
    fn open_loop_sheds_under_admission_pressure() {
        use crate::admission::AdmissionConfig;

        let mut engine = tiny_engine(1, 0.6);
        engine.config.admission = AdmissionConfig::default()
            .with_queue_capacity(1)
            .with_rate_limit(50.0, 1.0);
        // a burst of simultaneous arrivals: 1 admitted to the slot path,
        // most rate-limited or queue-shed
        let arrivals: Vec<GenRequest> = (0..6)
            .map(|i| GenRequest::new(i, vec![1, 2], 2, StrategySpec::Dense).at(0.001 * i as f64))
            .collect();
        let report = engine.run_open_loop_requests(arrivals).unwrap();
        let ol = report.open_loop.as_ref().unwrap();
        assert_eq!(ol.arrived, 6);
        assert!(ol.shed > 0, "pressure must shed");
        assert_eq!(
            ol.shed,
            ol.shed_rate_limited + ol.shed_tier_quota + ol.shed_queue_full
        );
        assert!(ol.shed_rate_limited > 0);
        assert_eq!(ol.admitted, ol.completed);
    }

    #[test]
    fn open_loop_rejects_belady_and_bad_arrivals() {
        let mut engine = tiny_engine(2, 0.6);
        engine.config.eviction = hwsim::EvictionPolicy::Belady;
        let requests = vec![GenRequest::new(0, vec![1], 2, StrategySpec::Dense)];
        assert!(matches!(
            engine.run_open_loop_requests(requests.clone()),
            Err(ServeError::InvalidConfig {
                field: "eviction",
                ..
            })
        ));

        let mut engine = tiny_engine(2, 0.6);
        let bad = vec![GenRequest::new(3, vec![1], 2, StrategySpec::Dense).at(f64::NAN)];
        assert!(matches!(
            engine.run_open_loop_requests(bad),
            Err(ServeError::InvalidRequest { id: 3, .. })
        ));
        let neg = vec![GenRequest::new(4, vec![1], 2, StrategySpec::Dense).at(-1.0)];
        assert!(engine.run_open_loop_requests(neg).is_err());
        // and an empty arrival list is a well-defined empty report
        let report = engine.run_open_loop_requests(Vec::new()).unwrap();
        assert_eq!(report.requests.len(), 0);
        assert_eq!(report.open_loop.unwrap().arrived, 0);
    }

    #[test]
    fn open_loop_clock_jumps_idle_gaps() {
        let mut engine = tiny_engine(2, 0.6);
        // one request far in the future: the run must end after it, with the
        // makespan at least its arrival time (the clock jumped, not crawled)
        let requests = vec![GenRequest::new(0, vec![1, 2], 3, StrategySpec::Dense).at(5.0)];
        let report = engine.run_open_loop_requests(requests).unwrap();
        assert_eq!(report.requests.len(), 1);
        assert!(report.makespan_s >= 5.0);
        let r = &report.requests[0];
        assert!((r.arrival_s - 5.0).abs() < 1e-12);
        assert!(r.queue_delay_s < 1.0, "no queueing when the engine is idle");
    }

    #[test]
    fn priority_preemption_parks_and_resumes_low_tier_work() {
        use crate::request::{SloTarget, Tier};

        // calibrate the premium arrival to land mid-generation: the virtual
        // clock is deterministic, so probe the solo makespan first
        let solo = {
            let mut probe = tiny_engine(1, 0.6);
            probe.config.scheduler = SchedulerPolicy::PriorityPreemptive;
            probe
                .run_open_loop_requests(vec![GenRequest::new(
                    0,
                    vec![1, 2],
                    24,
                    StrategySpec::Dense,
                )
                .with_tier(Tier::Batch)])
                .unwrap()
                .makespan_s
        };
        let mut engine = tiny_engine(1, 0.6);
        engine.config.scheduler = SchedulerPolicy::PriorityPreemptive;
        // a long batch job arrives first and fills the only slot; a premium
        // request arrives mid-generation and must preempt it
        let requests = vec![
            GenRequest::new(0, vec![1, 2], 24, StrategySpec::Dense).with_tier(Tier::Batch),
            GenRequest::new(1, vec![3], 3, StrategySpec::Dense)
                .with_tier(Tier::Premium)
                .with_slo(SloTarget::new(f64::INFINITY, f64::INFINITY))
                .at(0.4 * solo),
        ];
        let report = engine.run_open_loop_requests(requests).unwrap();
        let ol = report.open_loop.as_ref().unwrap();
        assert_eq!(ol.completed, 2, "both requests finish");
        assert!(ol.preemptions >= 1, "the batch job was parked");
        assert_eq!(ol.resumes, ol.preemptions, "every park resumed at drain");
        let batch = report.requests.iter().find(|r| r.id == 0).unwrap();
        let premium = report.requests.iter().find(|r| r.id == 1).unwrap();
        assert!(batch.preemptions >= 1);
        assert_eq!(premium.preemptions, 0);
        assert!(
            premium.completion_s < batch.completion_s,
            "premium finishes first despite arriving second"
        );
        assert_eq!(batch.generated_tokens, 24, "preemption loses no tokens");
        // the pool saw the park/resume cycle and holds no leaked state
        assert_eq!(engine.state_pool().parked_count(), 0);
        assert!(engine.state_pool().park_count() >= 1);
    }

    #[test]
    fn cats_requests_calibrate_lazily_and_conflict_with_dip() {
        let mut engine = tiny_engine(2, 0.6);
        let cats = vec![GenRequest::new(
            0,
            vec![1, 2],
            3,
            StrategySpec::Cats { density: 0.5 },
        )];
        let report = engine.run(cats).unwrap();
        assert_eq!(report.requests.len(), 1);
        assert!(report.mean_density < 0.9);

        let conflict = vec![
            GenRequest::new(0, vec![1], 2, StrategySpec::Cats { density: 0.5 }),
            GenRequest::new(1, vec![1], 2, StrategySpec::Dip { density: 0.5 }),
        ];
        assert!(matches!(
            engine.run(conflict),
            Err(ServeError::IncompatibleStrategies { .. })
        ));
    }
}
