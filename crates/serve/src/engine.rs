//! The serving engine: admission, continuous batching, shared-cache replay.
//!
//! [`ServeEngine::run`] drives a closed batch of [`GenRequest`]s (all queued
//! at t = 0) to completion:
//!
//! 1. **Admission.** Up to `max_concurrent` sessions hold a KV-cache slot;
//!    whenever a slot frees, the scheduler admits the next waiting request.
//!    Decode states are recycled through [`lm::DecodeStatePool`].
//! 2. **Token loop.** One token is served per step (prefill or decode — the
//!    memory bus serialises either way); the scheduler picks whose. Every
//!    served token's weight accesses are recorded into the session's
//!    [`hwsim::AccessTrace`], and the step's session into the global
//!    interleave order.
//! 3. **Pricing.** The per-session traces are replayed in that exact order
//!    through one *shared* DRAM column cache
//!    ([`hwsim::simulate_concurrent`]), which prices every token and yields
//!    wall-clock completion times under multi-tenant cache contention.
//!
//! The decode pass and the pricing pass are deliberately separate: model
//! execution decides *which* columns each token needs (for DIP-CA, guided by
//! the shared cache model), while the hardware replay decides what that
//! traffic *costs* on a given device.

use crate::error::{Result, ServeError};
use crate::layout::layout_for_serving;
use crate::report::{percentile, RequestStats, ServeReport};
use crate::request::GenRequest;
use crate::scheduler::SchedulerPolicy;
use crate::session::Session;
use crate::strategy::{resolve_axes, StrategyFactory, StrategySpec};
use hwsim::{simulate_concurrent, AccessTrace, DeviceConfig, EvictionPolicy};
use lm::{ActivationTrace, DecodeStatePool, ModelConfig, TransformerModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of a serving deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// KV-cache slots: the maximum number of concurrently active sessions.
    /// Each slot pins one full-context KV cache in DRAM.
    pub max_concurrent: usize,
    /// Continuous-batching scheduler policy.
    pub scheduler: SchedulerPolicy,
    /// Eviction policy of the shared DRAM column cache.
    pub eviction: EvictionPolicy,
    /// The simulated device the deployment runs on.
    pub device: DeviceConfig,
    /// Weight precision in bits (4.0 = INT4, the paper's serving setup).
    pub bits_per_weight: f64,
    /// Per-session context budget in tokens (`None` = the model's full
    /// `max_seq_len`). Each KV slot pins this much context in DRAM, so
    /// bounding it frees DRAM for the shared weight cache.
    pub kv_budget_tokens: Option<usize>,
    /// Seed for sampling temperature > 0 requests.
    pub seed: u64,
}

impl ServeConfig {
    /// A default serving configuration on the given device: 8 slots, FIFO
    /// continuous batching, LFU shared cache, INT4 weights.
    pub fn new(device: DeviceConfig) -> Self {
        ServeConfig {
            max_concurrent: 8,
            scheduler: SchedulerPolicy::Fifo,
            eviction: EvictionPolicy::Lfu,
            device,
            bits_per_weight: 4.0,
            kv_budget_tokens: None,
            seed: 0x5e42,
        }
    }

    /// Returns a copy with the given per-session context budget.
    pub fn with_kv_budget(mut self, tokens: usize) -> Self {
        self.kv_budget_tokens = Some(tokens);
        self
    }

    /// Returns a copy with the given number of KV slots.
    pub fn with_max_concurrent(mut self, slots: usize) -> Self {
        self.max_concurrent = slots;
        self
    }

    /// Returns a copy with the given scheduler policy.
    pub fn with_scheduler(mut self, scheduler: SchedulerPolicy) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Returns a copy with the given eviction policy.
    pub fn with_eviction(mut self, eviction: EvictionPolicy) -> Self {
        self.eviction = eviction;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for zero slots, a non-positive
    /// bit width, or an invalid device.
    pub fn validate(&self) -> Result<()> {
        if self.max_concurrent == 0 {
            return Err(ServeError::InvalidConfig {
                field: "max_concurrent",
                reason: "need at least one KV slot".to_string(),
            });
        }
        if !(self.bits_per_weight.is_finite() && self.bits_per_weight > 0.0) {
            return Err(ServeError::InvalidConfig {
                field: "bits_per_weight",
                reason: format!("must be positive, got {}", self.bits_per_weight),
            });
        }
        if let Some(budget) = self.kv_budget_tokens {
            if budget < 2 {
                return Err(ServeError::InvalidConfig {
                    field: "kv_budget_tokens",
                    reason: format!("context budget must be at least 2 tokens, got {budget}"),
                });
            }
        }
        self.device.validate()?;
        Ok(())
    }
}

/// A multi-session token-generation serving engine.
pub struct ServeEngine {
    model: TransformerModel,
    config: ServeConfig,
    pool: DecodeStatePool,
    calibration: Option<ActivationTrace>,
}

impl ServeEngine {
    /// Creates an engine around a model.
    ///
    /// # Errors
    ///
    /// Returns configuration validation errors.
    pub fn new(model: TransformerModel, config: ServeConfig) -> Result<Self> {
        config.validate()?;
        Ok(ServeEngine {
            model,
            config,
            pool: DecodeStatePool::new(),
            calibration: None,
        })
    }

    /// The model configuration being served.
    pub fn model_config(&self) -> &ModelConfig {
        &self.model.config
    }

    /// The engine configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The decode-state pool (exposed for reuse diagnostics).
    pub fn state_pool(&self) -> &DecodeStatePool {
        &self.pool
    }

    /// Supplies a calibration trace for CATS requests (otherwise one is
    /// collected on demand from a small model-generated corpus).
    pub fn with_calibration(mut self, trace: ActivationTrace) -> Self {
        self.calibration = Some(trace);
        self
    }

    fn ensure_calibration(&mut self) -> Result<()> {
        if self.calibration.is_none() {
            let seqs = lm::eval::standard_eval_corpus(&self.model, 2, 16, self.config.seed)?;
            self.calibration = Some(lm::trace::collect_activation_trace(&self.model, &seqs)?);
        }
        Ok(())
    }

    /// The effective per-session context window: the configured budget
    /// clamped to the model's `max_seq_len`.
    pub fn context_window(&self) -> usize {
        self.config
            .kv_budget_tokens
            .unwrap_or(self.model.config.max_seq_len)
            .min(self.model.config.max_seq_len)
    }

    fn validate_requests(&self, requests: &[GenRequest]) -> Result<()> {
        let config = &self.model.config;
        let window = self.context_window();
        for r in requests {
            if r.prompt.is_empty() {
                return Err(ServeError::InvalidRequest {
                    id: r.id,
                    reason: "prompt must contain at least one token".to_string(),
                });
            }
            if let Some(&bad) = r
                .prompt
                .iter()
                .find(|&&t| (t as usize) >= config.vocab_size)
            {
                return Err(ServeError::InvalidRequest {
                    id: r.id,
                    reason: format!(
                        "prompt token {bad} outside vocabulary of {}",
                        config.vocab_size
                    ),
                });
            }
            // every served token (prefill or decode) pushes exactly one KV
            // entry, so a request fits iff its total tokens fit the window
            if r.total_tokens() > window {
                return Err(ServeError::InvalidRequest {
                    id: r.id,
                    reason: format!(
                        "prompt ({}) + generation ({}) exceeds the context window ({window})",
                        r.prompt.len(),
                        r.max_new_tokens,
                    ),
                });
            }
            r.strategy
                .validate()
                .map_err(|e| ServeError::InvalidRequest {
                    id: r.id,
                    reason: e.to_string(),
                })?;
            // weight-transforming specs (static pruning, LoRA fusing) would
            // rewrite the model every co-tenant is concurrently decoding with
            if r.strategy.weight_transform().is_some() {
                return Err(ServeError::InvalidRequest {
                    id: r.id,
                    reason: format!(
                        "`{}` requires an offline weight transform; serve the \
                         transformed model instead",
                        r.strategy.label()
                    ),
                });
            }
        }
        Ok(())
    }

    /// Serves a closed batch of requests to completion and reports
    /// per-request latencies and fleet aggregates.
    ///
    /// # Errors
    ///
    /// Propagates request validation, strategy construction, model forward
    /// and simulation errors.
    pub fn run(&mut self, requests: Vec<GenRequest>) -> Result<ServeReport> {
        self.validate_requests(&requests)?;
        if requests.iter().any(|r| r.strategy.needs_calibration()) {
            self.ensure_calibration()?;
        }

        // Shared layout + DRAM split, fixed for the whole run.
        let specs: Vec<StrategySpec> = requests.iter().map(|r| r.strategy).collect();
        let axes = resolve_axes(&specs)?;
        let layout = layout_for_serving(
            &self.model.config,
            axes,
            self.config.bits_per_weight,
            self.config.max_concurrent,
            self.context_window(),
        );
        let allocation = hwsim::allocate(&layout, &self.config.device)?;

        let n_streams = requests.len();
        let mut factory = StrategyFactory::new();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        // one decode workspace for the whole engine: sessions are served one
        // token at a time, and the scratch carries no cross-token state
        let mut scratch = lm::DecodeScratch::for_model(&self.model);
        let mut waiting: Vec<GenRequest> = requests;
        let mut active: Vec<Session> = Vec::new();
        let mut finished: Vec<Session> = Vec::new();
        let mut order: Vec<usize> = Vec::new();
        let mut next_stream = 0usize;

        while !waiting.is_empty() || !active.is_empty() {
            // Admission: fill free KV slots following the scheduler policy.
            while active.len() < self.config.max_concurrent && !waiting.is_empty() {
                let idx = self
                    .config
                    .scheduler
                    .next_admission(&waiting)
                    .expect("queue is non-empty");
                let request = waiting.remove(idx);
                let strategy = factory.instantiate(
                    &request.strategy,
                    &self.model,
                    &allocation.capacities,
                    self.calibration.as_ref(),
                )?;
                let state = self.pool.acquire(&self.model);
                active.push(Session::new(
                    next_stream,
                    request,
                    order.len(),
                    state,
                    strategy,
                ));
                next_stream += 1;
            }

            // Serve one token of one active session.
            let idx = self
                .config
                .scheduler
                .next_service(&active)
                .expect("active set is non-empty");
            let step = order.len();
            active[idx].step(&self.model, &mut rng, step, &mut scratch)?;
            active[idx].last_served_step = step;
            order.push(active[idx].stream);
            // Let every *other* shared cache-aware model see this traffic:
            // the physical DRAM cache is shared, so their view must include
            // co-tenant accesses.
            factory.observe_cross_traffic_scratch(
                active[idx].request.strategy.shared_cache_key(),
                &scratch.accesses,
                self.model.config.d_model,
                self.model.config.d_ff,
            );

            if active[idx].remaining_tokens() == 0 {
                let mut session = active.swap_remove(idx);
                // Return the KV slot's decode state to the pool for the next
                // admission; the session keeps only its bookkeeping.
                let state = std::mem::replace(
                    &mut session.state,
                    lm::DecodeState {
                        kv: Vec::new(),
                        pos: 0,
                    },
                );
                self.pool.release(state);
                finished.push(session);
            }
        }

        self.build_report(&layout, finished, order, n_streams)
    }

    fn build_report(
        &self,
        layout: &hwsim::ModelLayout,
        mut finished: Vec<Session>,
        order: Vec<usize>,
        n_streams: usize,
    ) -> Result<ServeReport> {
        finished.sort_by_key(|s| s.stream);
        let streams: Vec<AccessTrace> = {
            // move (not clone) each session's recorded trace into stream order
            let mut traces = vec![AccessTrace::new(); n_streams];
            for s in &mut finished {
                traces[s.stream] = std::mem::take(&mut s.trace);
            }
            traces
        };
        let sim = simulate_concurrent(
            layout,
            &self.config.device,
            self.config.eviction,
            &streams,
            &order,
        )?;

        // Wall-clock completion of each schedule position.
        let mut clock = 0.0f64;
        let completion_at: Vec<f64> = sim
            .schedule
            .iter()
            .map(|(_, latency)| {
                clock += latency;
                clock
            })
            .collect();

        let mut request_stats = Vec::with_capacity(finished.len());
        let mut completions = Vec::with_capacity(finished.len());
        let mut first_token_sum = 0.0f64;
        let mut total_generated = 0usize;
        let mut total_prefill = 0usize;
        for s in &finished {
            let stream_stats = &sim.streams[s.stream];
            let first_token_s = s
                .first_token_position()
                .map(|p| completion_at[p])
                .unwrap_or(0.0);
            let generated = s.generated.len();
            total_generated += generated;
            total_prefill += s.request.prompt.len();
            first_token_sum += first_token_s;
            completions.push(stream_stats.completion_s);
            request_stats.push(RequestStats {
                id: s.request.id,
                stream: s.stream,
                strategy: s.request.strategy.label(),
                prompt_tokens: s.request.prompt.len(),
                generated_tokens: generated,
                admitted_step: s.admitted_step,
                first_token_s,
                completion_s: stream_stats.completion_s,
                service_s: stream_stats.service_s,
                throughput_tps: if stream_stats.completion_s > 0.0 {
                    generated as f64 / stream_stats.completion_s
                } else {
                    0.0
                },
                hit_rate: stream_stats.hit_rate,
                flash_bytes: stream_stats.flash_bytes,
                dram_bytes: stream_stats.dram_bytes,
            });
        }

        let makespan = sim.makespan_s();
        let n = finished.len().max(1);
        Ok(ServeReport {
            model: self.model.config.name.clone(),
            scheduler: self.config.scheduler,
            eviction: self.config.eviction,
            max_concurrent: self.config.max_concurrent,
            requests: request_stats,
            total_prefill_tokens: total_prefill,
            total_generated_tokens: total_generated,
            makespan_s: makespan,
            aggregate_tps: if makespan > 0.0 {
                total_generated as f64 / makespan
            } else {
                0.0
            },
            latency_p50_s: percentile(&completions, 0.50),
            latency_p95_s: percentile(&completions, 0.95),
            latency_p99_s: percentile(&completions, 0.99),
            mean_first_token_s: first_token_sum / n as f64,
            cache_hit_rate: sim.aggregate.hit_rate,
            cache_fraction: sim.aggregate.cache_fraction,
            fairness: sim.jain_fairness(),
            mean_density: sim.aggregate.mean_density,
            flash_bytes: sim.aggregate.flash_bytes,
            dram_bytes: sim.aggregate.dram_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm::{build_synthetic, ModelConfig};

    fn tiny_engine(slots: usize, cache_fraction: f64) -> ServeEngine {
        let config = ModelConfig::tiny();
        let model = build_synthetic(&config, 7).unwrap();
        let layout = layout_for_serving(
            &config,
            [lm::SliceAxis::Input; 3],
            4.0,
            slots,
            config.max_seq_len,
        );
        // DRAM = everything static + `cache_fraction` of the MLP weights
        let dram = layout.static_bytes + (layout.mlp_bytes() as f64 * cache_fraction) as u64;
        let device = DeviceConfig::apple_a18(4.0).with_dram_bytes(dram);
        ServeEngine::new(model, ServeConfig::new(device).with_max_concurrent(slots)).unwrap()
    }

    fn dense_requests(n: usize, prompt_len: usize, new_tokens: usize) -> Vec<GenRequest> {
        (0..n)
            .map(|i| {
                GenRequest::new(
                    i as u64,
                    vec![(i % 7) as u32 + 1; prompt_len],
                    new_tokens,
                    StrategySpec::Dense,
                )
            })
            .collect()
    }

    #[test]
    fn config_validation() {
        let device = DeviceConfig::apple_a18(4.0);
        assert!(ServeConfig::new(device.clone()).validate().is_ok());
        assert!(ServeConfig::new(device.clone())
            .with_max_concurrent(0)
            .validate()
            .is_err());
        let mut bad = ServeConfig::new(device);
        bad.bits_per_weight = 0.0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn closed_batch_runs_to_completion() {
        let mut engine = tiny_engine(2, 0.6);
        let report = engine.run(dense_requests(5, 2, 4)).unwrap();
        assert_eq!(report.requests.len(), 5);
        assert_eq!(report.total_generated_tokens, 20);
        assert_eq!(report.total_prefill_tokens, 10);
        assert!(report.makespan_s > 0.0);
        assert!(report.aggregate_tps > 0.0);
        assert!(report.latency_p50_s <= report.latency_p95_s);
        assert!(report.latency_p95_s <= report.latency_p99_s);
        assert!(report.latency_p99_s <= report.makespan_s + 1e-12);
        assert!(report.fairness > 0.0 && report.fairness <= 1.0);
        // every request got all its tokens and a sensible timeline
        for r in &report.requests {
            assert_eq!(r.generated_tokens, 4);
            assert!(r.first_token_s > 0.0);
            assert!(r.first_token_s <= r.completion_s);
            assert!(r.service_s <= r.completion_s + 1e-12);
        }
        assert!(!report.summary().is_empty());
    }

    #[test]
    fn kv_slots_are_recycled_through_the_pool() {
        let mut engine = tiny_engine(2, 0.6);
        engine.run(dense_requests(6, 2, 3)).unwrap();
        // 6 sessions through 2 slots: at most 2 fresh states, at least 4 reuses
        assert!(engine.state_pool().build_count() <= 2);
        assert!(engine.state_pool().reuse_count() >= 4);
    }

    #[test]
    fn srf_finishes_short_requests_first() {
        let make = |scheduler| {
            let mut engine = tiny_engine(2, 0.6);
            engine.config.scheduler = scheduler;
            let mut requests = dense_requests(1, 2, 30);
            requests.push(GenRequest::new(1, vec![3, 4], 2, StrategySpec::Dense));
            engine.run(requests).unwrap()
        };
        let by_id = |report: &ServeReport, id: u64| {
            report
                .requests
                .iter()
                .find(|r| r.id == id)
                .cloned()
                .expect("request present")
        };
        let srf = make(SchedulerPolicy::ShortestRemainingFirst);
        let short = by_id(&srf, 1);
        let long = by_id(&srf, 0);
        assert!(short.completion_s < long.completion_s);
        // under SRF the short request barely queues behind the long one
        let fifo = make(SchedulerPolicy::Fifo);
        assert!(short.completion_s <= by_id(&fifo, 1).completion_s + 1e-12);
    }

    #[test]
    fn invalid_requests_are_rejected_up_front() {
        let mut engine = tiny_engine(2, 0.6);
        let empty = vec![GenRequest::new(9, vec![], 4, StrategySpec::Dense)];
        assert!(matches!(
            engine.run(empty),
            Err(ServeError::InvalidRequest { id: 9, .. })
        ));
        let oov = vec![GenRequest::new(3, vec![999], 4, StrategySpec::Dense)];
        assert!(engine.run(oov).is_err());
        let too_long = vec![GenRequest::new(4, vec![1], 400, StrategySpec::Dense)];
        assert!(engine.run(too_long).is_err());

        // a request that exactly fills the context window is accepted
        let window = engine.context_window();
        let exact = vec![GenRequest::new(
            5,
            vec![1, 2],
            window - 2,
            StrategySpec::Dense,
        )];
        let report = engine.run(exact).unwrap();
        assert_eq!(report.total_generated_tokens, window - 2);
        let over = vec![GenRequest::new(
            6,
            vec![1, 2],
            window - 1,
            StrategySpec::Dense,
        )];
        assert!(engine.run(over).is_err());
    }

    #[test]
    fn empty_batch_produces_empty_report() {
        let mut engine = tiny_engine(2, 0.6);
        let report = engine.run(Vec::new()).unwrap();
        assert!(report.requests.is_empty());
        assert_eq!(report.total_generated_tokens, 0);
        assert_eq!(report.aggregate_tps, 0.0);
    }

    #[test]
    fn mixed_strategies_share_one_run() {
        let mut engine = tiny_engine(3, 0.55);
        let requests = vec![
            GenRequest::new(0, vec![1, 2], 4, StrategySpec::Dense),
            GenRequest::new(1, vec![2, 3], 4, StrategySpec::Dip { density: 0.5 }),
            GenRequest::new(
                2,
                vec![3, 4],
                4,
                StrategySpec::DipCacheAware {
                    density: 0.5,
                    gamma: 0.2,
                },
            ),
        ];
        let report = engine.run(requests).unwrap();
        assert_eq!(report.requests.len(), 3);
        // the dense request moved more bytes than the pruned ones
        assert!(
            report.requests[0].dram_bytes + report.requests[0].flash_bytes
                > report.requests[1].dram_bytes + report.requests[1].flash_bytes
        );
        assert!(report.mean_density < 1.0);
    }

    #[test]
    fn cats_requests_calibrate_lazily_and_conflict_with_dip() {
        let mut engine = tiny_engine(2, 0.6);
        let cats = vec![GenRequest::new(
            0,
            vec![1, 2],
            3,
            StrategySpec::Cats { density: 0.5 },
        )];
        let report = engine.run(cats).unwrap();
        assert_eq!(report.requests.len(), 1);
        assert!(report.mean_density < 0.9);

        let conflict = vec![
            GenRequest::new(0, vec![1], 2, StrategySpec::Cats { density: 0.5 }),
            GenRequest::new(1, vec![1], 2, StrategySpec::Dip { density: 0.5 }),
        ];
        assert!(matches!(
            engine.run(conflict),
            Err(ServeError::IncompatibleStrategies { .. })
        ));
    }
}
