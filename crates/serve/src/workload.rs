//! Open-loop workload generation: seedable arrival processes over request
//! templates.
//!
//! Closed batches (every request present at t = 0) exercise none of the
//! queueing physics a fleet actually lives with; production traffic arrives
//! *open loop* — requests keep coming whether or not the engine is keeping
//! up. This module turns a declarative [`Workload`] into a timestamped
//! request list for [`crate::engine::ServeEngine::run_open_loop`]:
//!
//! * [`ArrivalProcess`] — when requests arrive: a steady Poisson-like
//!   process, a bursty on/off process, a diurnal ramp (thinned Poisson under
//!   a sinusoidal rate), or an exact trace replay from a JSON arrival list.
//! * [`RequestTemplate`] — what arrives: weighted request shapes (prompt and
//!   generation length ranges, strategy spec, [`Tier`], [`SloTarget`]).
//! * [`Workload::generate`] — draws the arrivals and shapes with the
//!   vendored deterministic PRNG, so a `(workload, seed)` pair always yields
//!   the same traffic — the foundation of the determinism regression suite.
//!
//! Workloads round-trip through JSON ([`Workload::from_json`] /
//! [`Workload::to_json`]; see `examples/open_loop_workload.json`), so traffic
//! mixes are data, not code.

use crate::error::{Result, ServeError};
use crate::request::{GenRequest, SloTarget, Tier};
use crate::strategy::StrategySpec;
use dip_core::spec::json::{parse_json, JsonValue};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

fn config_err(field: &'static str, reason: impl Into<String>) -> ServeError {
    ServeError::InvalidConfig {
        field,
        reason: reason.into(),
    }
}

/// Draws one exponential inter-arrival gap at `rate_per_s`.
fn exp_gap(rng: &mut StdRng, rate_per_s: f64) -> f64 {
    // u ∈ [0, 1) so 1 - u ∈ (0, 1] and ln is finite
    let u: f64 = rng.gen();
    -(1.0 - u).ln() / rate_per_s
}

/// When requests arrive on the virtual clock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at a constant rate (Poisson-like: exponential
    /// inter-arrival gaps).
    Steady {
        /// Mean arrivals per second.
        rate_per_s: f64,
    },
    /// Bursty on/off traffic: Poisson-like arrivals at `rate_per_s` during
    /// `on_s`-second windows separated by silent `off_s`-second gaps.
    OnOff {
        /// Mean arrivals per second while the source is on.
        rate_per_s: f64,
        /// Length of each on-window, seconds.
        on_s: f64,
        /// Length of each silent gap, seconds.
        off_s: f64,
    },
    /// A diurnal ramp: a non-homogeneous Poisson process whose rate swings
    /// sinusoidally between `base_rate_per_s` (at t = 0) and
    /// `peak_rate_per_s` (half a period later), sampled by thinning.
    Diurnal {
        /// Rate at the trough of the cycle (t = 0 mod period).
        base_rate_per_s: f64,
        /// Rate at the crest of the cycle.
        peak_rate_per_s: f64,
        /// Length of one full cycle, seconds.
        period_s: f64,
    },
    /// Exact replay of a recorded arrival list (seconds, ascending).
    Replay {
        /// Arrival timestamps; [`Workload::validate`] requires them sorted,
        /// finite and non-negative.
        arrivals_s: Vec<f64>,
    },
}

impl ArrivalProcess {
    /// Instantaneous rate of the diurnal ramp at time `t`.
    fn diurnal_rate(base: f64, peak: f64, period: f64, t: f64) -> f64 {
        base + (peak - base) * 0.5 * (1.0 - (2.0 * std::f64::consts::PI * t / period).cos())
    }

    /// Draws the arrival timestamps in `[0, duration_s)`, ascending.
    pub fn arrivals(&self, duration_s: f64, rng: &mut StdRng) -> Vec<f64> {
        let mut out = Vec::new();
        match *self {
            ArrivalProcess::Steady { rate_per_s } => {
                let mut t = 0.0;
                loop {
                    t += exp_gap(rng, rate_per_s);
                    if t >= duration_s {
                        break;
                    }
                    out.push(t);
                }
            }
            ArrivalProcess::OnOff {
                rate_per_s,
                on_s,
                off_s,
            } => {
                // Draw a homogeneous process in *active* time, then stretch
                // it onto the wall clock by inserting the off-gaps: active
                // time `a` lands at wall time `⌊a/on⌋·(on+off) + a mod on`.
                let cycle = on_s + off_s;
                let mut active = 0.0;
                loop {
                    active += exp_gap(rng, rate_per_s);
                    let wall = (active / on_s).floor() * cycle + active % on_s;
                    if wall >= duration_s {
                        break;
                    }
                    out.push(wall);
                }
            }
            ArrivalProcess::Diurnal {
                base_rate_per_s,
                peak_rate_per_s,
                period_s,
            } => {
                // Lewis–Shedler thinning under the peak-rate envelope.
                let mut t = 0.0;
                loop {
                    t += exp_gap(rng, peak_rate_per_s);
                    if t >= duration_s {
                        break;
                    }
                    let rate = Self::diurnal_rate(base_rate_per_s, peak_rate_per_s, period_s, t);
                    let u: f64 = rng.gen();
                    if u * peak_rate_per_s < rate {
                        out.push(t);
                    }
                }
            }
            ArrivalProcess::Replay { ref arrivals_s } => {
                out.extend(arrivals_s.iter().copied().filter(|t| *t < duration_s));
            }
        }
        out
    }

    fn validate(&self) -> Result<()> {
        let positive = |field, v: f64| {
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(config_err(field, format!("must be positive, got {v}")))
            }
        };
        match *self {
            ArrivalProcess::Steady { rate_per_s } => positive("workload.rate_per_s", rate_per_s),
            ArrivalProcess::OnOff {
                rate_per_s,
                on_s,
                off_s,
            } => {
                positive("workload.rate_per_s", rate_per_s)?;
                positive("workload.on_s", on_s)?;
                positive("workload.off_s", off_s)
            }
            ArrivalProcess::Diurnal {
                base_rate_per_s,
                peak_rate_per_s,
                period_s,
            } => {
                positive("workload.base_rate_per_s", base_rate_per_s)?;
                positive("workload.peak_rate_per_s", peak_rate_per_s)?;
                positive("workload.period_s", period_s)?;
                if peak_rate_per_s < base_rate_per_s {
                    return Err(config_err(
                        "workload.peak_rate_per_s",
                        format!("peak rate {peak_rate_per_s} below base rate {base_rate_per_s}"),
                    ));
                }
                Ok(())
            }
            ArrivalProcess::Replay { ref arrivals_s } => {
                for pair in arrivals_s.windows(2) {
                    if pair[1] < pair[0] {
                        return Err(config_err(
                            "workload.arrivals_s",
                            "replay arrivals must be ascending".to_string(),
                        ));
                    }
                }
                if let Some(bad) = arrivals_s.iter().find(|t| !t.is_finite() || **t < 0.0) {
                    return Err(config_err(
                        "workload.arrivals_s",
                        format!("arrival {bad} is not a finite non-negative time"),
                    ));
                }
                Ok(())
            }
        }
    }
}

/// One weighted request shape a workload draws from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestTemplate {
    /// Relative draw weight among the workload's templates.
    pub weight: f64,
    /// Inclusive range of prompt lengths, tokens (the per-request suffix;
    /// a [`RequestTemplate::shared_prefix`] is prepended on top).
    pub prompt_tokens: (usize, usize),
    /// Inclusive range of generation budgets, tokens.
    pub new_tokens: (usize, usize),
    /// Shared-prefix length: every request drawn from this template opens
    /// with the *same* `shared_prefix` tokens (drawn once per template —
    /// a product's system prompt), prepended to its per-request prompt and
    /// declared via [`GenRequest::shared_prefix_len`] so a paged engine
    /// with prefix sharing can prefill them once. 0 (the default) disables
    /// the prefix and leaves generated traffic identical to workloads that
    /// predate this field.
    pub shared_prefix: usize,
    /// Strategy spec of requests drawn from this template.
    pub strategy: StrategySpec,
    /// Priority tier.
    pub tier: Tier,
    /// Latency objective.
    pub slo: SloTarget,
    /// Sampling temperature (0 = greedy).
    pub temperature: f32,
    /// Wall-clock budget per request, milliseconds from arrival: the engine
    /// retires the request as [`crate::report::FinishReason::DeadlineExpired`]
    /// when it has not completed within this budget (whether queued, active
    /// or parked). `INFINITY` (the default) declares no deadline.
    pub deadline_ms: f64,
    /// Client patience in generated tokens: the request retires as
    /// [`crate::report::FinishReason::Cancelled`] after this many tokens
    /// even if its drawn `new_tokens` budget is larger. `usize::MAX` (the
    /// default) disables the cap.
    pub cancel_after_tokens: usize,
}

impl RequestTemplate {
    /// A greedy, standard-tier, no-SLO template with weight 1.
    pub fn new(
        prompt_tokens: (usize, usize),
        new_tokens: (usize, usize),
        strategy: StrategySpec,
    ) -> Self {
        RequestTemplate {
            weight: 1.0,
            prompt_tokens,
            new_tokens,
            strategy,
            tier: Tier::Standard,
            slo: SloTarget::none(),
            temperature: 0.0,
            shared_prefix: 0,
            deadline_ms: f64::INFINITY,
            cancel_after_tokens: usize::MAX,
        }
    }

    /// Returns a copy whose requests carry the given wall-clock deadline
    /// (milliseconds from arrival; see [`RequestTemplate::deadline_ms`]).
    pub fn with_deadline_ms(mut self, deadline_ms: f64) -> Self {
        self.deadline_ms = deadline_ms;
        self
    }

    /// Returns a copy whose requests cancel after the given number of
    /// generated tokens (see [`RequestTemplate::cancel_after_tokens`]).
    pub fn with_cancel_after_tokens(mut self, cancel_after_tokens: usize) -> Self {
        self.cancel_after_tokens = cancel_after_tokens;
        self
    }

    /// Returns a copy whose requests all open with the same
    /// `shared_prefix`-token prefix (see [`RequestTemplate::shared_prefix`]).
    pub fn with_shared_prefix(mut self, shared_prefix: usize) -> Self {
        self.shared_prefix = shared_prefix;
        self
    }

    /// Returns a copy with the given draw weight.
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Returns a copy on the given tier.
    pub fn with_tier(mut self, tier: Tier) -> Self {
        self.tier = tier;
        self
    }

    /// Returns a copy with the given latency objective.
    pub fn with_slo(mut self, slo: SloTarget) -> Self {
        self.slo = slo;
        self
    }

    fn validate(&self) -> Result<()> {
        if !(self.weight.is_finite() && self.weight > 0.0) {
            return Err(config_err(
                "workload.template.weight",
                format!("must be positive, got {}", self.weight),
            ));
        }
        if self.prompt_tokens.0 < 1 || self.prompt_tokens.0 > self.prompt_tokens.1 {
            return Err(config_err(
                "workload.template.prompt_tokens",
                format!(
                    "need 1 <= lo <= hi, got [{}, {}]",
                    self.prompt_tokens.0, self.prompt_tokens.1
                ),
            ));
        }
        if self.new_tokens.0 < 1 || self.new_tokens.0 > self.new_tokens.1 {
            return Err(config_err(
                "workload.template.new_tokens",
                format!(
                    "need 1 <= lo <= hi, got [{}, {}]",
                    self.new_tokens.0, self.new_tokens.1
                ),
            ));
        }
        if self.deadline_ms.is_nan() || self.deadline_ms <= 0.0 {
            return Err(config_err(
                "workload.template.deadline_ms",
                format!(
                    "must be a positive duration (or omitted for none), got {}",
                    self.deadline_ms
                ),
            ));
        }
        if self.cancel_after_tokens == 0 {
            return Err(config_err(
                "workload.template.cancel_after_tokens",
                "must be >= 1 (a zero-token request would never start)".to_string(),
            ));
        }
        self.strategy.validate().map_err(ServeError::Dip)
    }
}

/// A declarative open-loop workload: an arrival process over weighted
/// request templates, generated deterministically from a seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// PRNG seed; the generated traffic is a pure function of
    /// `(workload, seed)`.
    pub seed: u64,
    /// Arrivals are drawn in `[0, duration_s)`.
    pub duration_s: f64,
    /// When requests arrive.
    pub process: ArrivalProcess,
    /// What arrives (weighted mix).
    pub templates: Vec<RequestTemplate>,
}

impl Workload {
    /// Creates a workload over the given templates.
    pub fn new(
        seed: u64,
        duration_s: f64,
        process: ArrivalProcess,
        templates: Vec<RequestTemplate>,
    ) -> Self {
        Workload {
            seed,
            duration_s,
            process,
            templates,
        }
    }

    /// Validates the workload.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for a non-positive duration, an
    /// invalid arrival process, no templates, or an invalid template.
    pub fn validate(&self) -> Result<()> {
        if !(self.duration_s.is_finite() && self.duration_s > 0.0) {
            return Err(config_err(
                "workload.duration_s",
                format!("must be positive, got {}", self.duration_s),
            ));
        }
        self.process.validate()?;
        if self.templates.is_empty() {
            return Err(config_err(
                "workload.templates",
                "need at least one request template".to_string(),
            ));
        }
        for t in &self.templates {
            t.validate()?;
        }
        Ok(())
    }

    /// Generates the timestamped request list: arrivals from the process,
    /// shapes from the weighted templates, prompt token ids uniform in
    /// `[1, vocab_size)`. Ids are assigned sequentially in arrival order, so
    /// id order *is* arrival order.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for an invalid workload or a
    /// vocabulary smaller than 2 tokens.
    pub fn generate(&self, vocab_size: usize) -> Result<Vec<GenRequest>> {
        self.validate()?;
        if vocab_size < 2 {
            return Err(config_err(
                "workload.vocab_size",
                format!("need at least 2 tokens, got {vocab_size}"),
            ));
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let arrivals = self.process.arrivals(self.duration_s, &mut rng);
        // Shared prefixes are drawn once per template, before the request
        // loop. Templates without one draw nothing, so a workload predating
        // `shared_prefix` generates bit-identical traffic.
        let prefixes: Vec<Vec<u32>> = self
            .templates
            .iter()
            .map(|t| {
                (0..t.shared_prefix)
                    .map(|_| rng.gen_range(1u32..vocab_size as u32))
                    .collect()
            })
            .collect();
        let total_weight: f64 = self.templates.iter().map(|t| t.weight).sum();
        let mut requests = Vec::with_capacity(arrivals.len());
        for (id, arrival_s) in arrivals.into_iter().enumerate() {
            // weighted template draw by cumulative weight
            let mut pick = rng.gen::<f64>() * total_weight;
            let mut t_idx = self.templates.len() - 1;
            for (i, t) in self.templates.iter().enumerate() {
                if pick < t.weight {
                    t_idx = i;
                    break;
                }
                pick -= t.weight;
            }
            let template = &self.templates[t_idx];
            let prompt_len = rng.gen_range(template.prompt_tokens.0..=template.prompt_tokens.1);
            let new_tokens = rng.gen_range(template.new_tokens.0..=template.new_tokens.1);
            let mut prompt: Vec<u32> = prefixes[t_idx].clone();
            prompt.extend((0..prompt_len).map(|_| rng.gen_range(1u32..vocab_size as u32)));
            // deadline and patience are copied, not drawn: templates without
            // them perturb no RNG stream, so pre-existing workloads generate
            // bit-identical traffic
            requests.push(
                GenRequest::new(id as u64, prompt, new_tokens, template.strategy)
                    .with_temperature(template.temperature)
                    .at(arrival_s)
                    .with_tier(template.tier)
                    .with_slo(template.slo)
                    .with_shared_prefix(template.shared_prefix)
                    .with_deadline_s(template.deadline_ms / 1e3)
                    .with_cancel_after_tokens(template.cancel_after_tokens),
            );
        }
        Ok(requests)
    }

    /// Serializes the workload as a JSON document (the format
    /// [`Workload::from_json`] parses; see
    /// `examples/open_loop_workload.json`).
    pub fn to_json(&self) -> String {
        let process = match &self.process {
            ArrivalProcess::Steady { rate_per_s } => {
                format!("{{\"kind\":\"steady\",\"rate_per_s\":{rate_per_s}}}")
            }
            ArrivalProcess::OnOff {
                rate_per_s,
                on_s,
                off_s,
            } => format!(
                "{{\"kind\":\"on-off\",\"rate_per_s\":{rate_per_s},\"on_s\":{on_s},\"off_s\":{off_s}}}"
            ),
            ArrivalProcess::Diurnal {
                base_rate_per_s,
                peak_rate_per_s,
                period_s,
            } => format!(
                "{{\"kind\":\"diurnal\",\"base_rate_per_s\":{base_rate_per_s},\"peak_rate_per_s\":{peak_rate_per_s},\"period_s\":{period_s}}}"
            ),
            ArrivalProcess::Replay { arrivals_s } => {
                let list: Vec<String> = arrivals_s.iter().map(|t| format!("{t}")).collect();
                format!("{{\"kind\":\"replay\",\"arrivals_s\":[{}]}}", list.join(","))
            }
        };
        let templates: Vec<String> = self
            .templates
            .iter()
            .map(|t| {
                let mut fields = vec![
                    format!("\"weight\":{}", t.weight),
                    format!(
                        "\"prompt_tokens\":[{},{}]",
                        t.prompt_tokens.0, t.prompt_tokens.1
                    ),
                    format!("\"new_tokens\":[{},{}]", t.new_tokens.0, t.new_tokens.1),
                    format!("\"strategy\":{}", t.strategy.to_json()),
                    format!("\"tier\":\"{}\"", t.tier),
                ];
                if t.slo.ttft_s.is_finite() {
                    fields.push(format!("\"ttft_slo_ms\":{}", 1e3 * t.slo.ttft_s));
                }
                if t.slo.tbt_s.is_finite() {
                    fields.push(format!("\"tbt_slo_ms\":{}", 1e3 * t.slo.tbt_s));
                }
                if t.temperature != 0.0 {
                    fields.push(format!("\"temperature\":{}", t.temperature));
                }
                if t.shared_prefix > 0 {
                    fields.push(format!("\"shared_prefix\":{}", t.shared_prefix));
                }
                if t.deadline_ms.is_finite() {
                    fields.push(format!("\"deadline_ms\":{}", t.deadline_ms));
                }
                if t.cancel_after_tokens != usize::MAX {
                    fields.push(format!("\"cancel_after_tokens\":{}", t.cancel_after_tokens));
                }
                format!("    {{{}}}", fields.join(","))
            })
            .collect();
        format!
            (
            "{{\n  \"seed\": {},\n  \"duration_s\": {},\n  \"process\": {},\n  \"templates\": [\n{}\n  ]\n}}\n",
            self.seed,
            self.duration_s,
            process,
            templates.join(",\n")
        )
    }

    /// Parses a workload from its JSON document form and validates it.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for malformed JSON, unknown
    /// process kinds / tier names, or values failing [`Workload::validate`].
    pub fn from_json(input: &str) -> Result<Self> {
        let doc = parse_json(input).map_err(ServeError::Dip)?;
        let seed = get_f64(&doc, "seed")?.unwrap_or(0.0) as u64;
        let duration_s = get_f64(&doc, "duration_s")?
            .ok_or_else(|| config_err("workload.duration_s", "missing numeric field"))?;
        let process_value = doc
            .get("process")
            .ok_or_else(|| config_err("workload.process", "missing object field"))?;
        let process = parse_process(process_value)?;
        let templates = match doc.get("templates") {
            Some(JsonValue::Array(items)) => items
                .iter()
                .map(parse_template)
                .collect::<Result<Vec<_>>>()?,
            _ => {
                return Err(config_err(
                    "workload.templates",
                    "missing array field".to_string(),
                ))
            }
        };
        let workload = Workload::new(seed, duration_s, process, templates);
        workload.validate()?;
        Ok(workload)
    }
}

fn get_f64(value: &JsonValue, key: &'static str) -> Result<Option<f64>> {
    match value.get(key) {
        None => Ok(None),
        Some(JsonValue::Number(n)) => Ok(Some(*n)),
        Some(_) => Err(config_err(
            "workload",
            format!("field `{key}` must be a number"),
        )),
    }
}

fn get_str<'a>(value: &'a JsonValue, key: &str) -> Option<&'a str> {
    match value.get(key) {
        Some(JsonValue::String(s)) => Some(s),
        _ => None,
    }
}

fn get_usize_pair(value: &JsonValue, key: &'static str) -> Result<Option<(usize, usize)>> {
    match value.get(key) {
        None => Ok(None),
        Some(JsonValue::Array(items)) => {
            let nums: Vec<usize> = items
                .iter()
                .filter_map(|v| match v {
                    JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as usize),
                    _ => None,
                })
                .collect();
            if nums.len() == 2 && nums.len() == items.len() {
                Ok(Some((nums[0], nums[1])))
            } else {
                Err(config_err(
                    "workload",
                    format!("field `{key}` must be a [lo, hi] integer pair"),
                ))
            }
        }
        Some(_) => Err(config_err(
            "workload",
            format!("field `{key}` must be a [lo, hi] integer pair"),
        )),
    }
}

fn parse_process(value: &JsonValue) -> Result<ArrivalProcess> {
    let kind = get_str(value, "kind")
        .ok_or_else(|| config_err("workload.process", "needs a string `kind`"))?;
    let require = |key: &'static str| -> Result<f64> {
        get_f64(value, key)?.ok_or_else(|| {
            config_err(
                "workload.process",
                format!("kind `{kind}` needs a numeric `{key}`"),
            )
        })
    };
    match kind {
        "steady" => Ok(ArrivalProcess::Steady {
            rate_per_s: require("rate_per_s")?,
        }),
        "on-off" => Ok(ArrivalProcess::OnOff {
            rate_per_s: require("rate_per_s")?,
            on_s: require("on_s")?,
            off_s: require("off_s")?,
        }),
        "diurnal" => Ok(ArrivalProcess::Diurnal {
            base_rate_per_s: require("base_rate_per_s")?,
            peak_rate_per_s: require("peak_rate_per_s")?,
            period_s: require("period_s")?,
        }),
        "replay" => match value.get("arrivals_s") {
            Some(JsonValue::Array(items)) => {
                let arrivals_s: Vec<f64> = items
                    .iter()
                    .map(|v| match v {
                        JsonValue::Number(n) => Ok(*n),
                        _ => Err(config_err(
                            "workload.arrivals_s",
                            "must be an array of numbers".to_string(),
                        )),
                    })
                    .collect::<Result<_>>()?;
                Ok(ArrivalProcess::Replay { arrivals_s })
            }
            _ => Err(config_err(
                "workload.process",
                "kind `replay` needs an `arrivals_s` array",
            )),
        },
        other => Err(config_err(
            "workload.process",
            format!("unknown kind `{other}` (known: steady, on-off, diurnal, replay)"),
        )),
    }
}

fn parse_template(value: &JsonValue) -> Result<RequestTemplate> {
    let prompt_tokens = get_usize_pair(value, "prompt_tokens")?
        .ok_or_else(|| config_err("workload.template", "needs `prompt_tokens: [lo, hi]`"))?;
    let new_tokens = get_usize_pair(value, "new_tokens")?
        .ok_or_else(|| config_err("workload.template", "needs `new_tokens: [lo, hi]`"))?;
    let strategy = match value.get("strategy") {
        None => StrategySpec::Dense,
        Some(v) => StrategySpec::from_value(v).map_err(ServeError::Dip)?,
    };
    let tier = match get_str(value, "tier") {
        None => Tier::Standard,
        Some(name) => Tier::parse(name).ok_or_else(|| {
            config_err(
                "workload.template.tier",
                format!("unknown tier `{name}` (known: batch, standard, premium)"),
            )
        })?,
    };
    let slo = SloTarget {
        ttft_s: get_f64(value, "ttft_slo_ms")?.map_or(f64::INFINITY, |ms| ms / 1e3),
        tbt_s: get_f64(value, "tbt_slo_ms")?.map_or(f64::INFINITY, |ms| ms / 1e3),
    };
    let shared_prefix = match get_f64(value, "shared_prefix")? {
        None => 0,
        Some(n) if n >= 0.0 && n.fract() == 0.0 => n as usize,
        Some(n) => {
            return Err(config_err(
                "workload.template.shared_prefix",
                format!("must be a non-negative integer, got {n}"),
            ))
        }
    };
    let cancel_after_tokens = match get_f64(value, "cancel_after_tokens")? {
        None => usize::MAX,
        Some(n) if n >= 1.0 && n.fract() == 0.0 => n as usize,
        Some(n) => {
            return Err(config_err(
                "workload.template.cancel_after_tokens",
                format!("must be a positive integer, got {n}"),
            ))
        }
    };
    Ok(RequestTemplate {
        weight: get_f64(value, "weight")?.unwrap_or(1.0),
        prompt_tokens,
        new_tokens,
        strategy,
        tier,
        slo,
        temperature: get_f64(value, "temperature")?.unwrap_or(0.0) as f32,
        shared_prefix,
        deadline_ms: get_f64(value, "deadline_ms")?.unwrap_or(f64::INFINITY),
        cancel_after_tokens,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_workload(process: ArrivalProcess) -> Workload {
        Workload::new(
            7,
            4.0,
            process,
            vec![
                RequestTemplate::new((2, 4), (3, 6), StrategySpec::Dense).with_weight(3.0),
                RequestTemplate::new((1, 2), (2, 4), StrategySpec::Dip { density: 0.5 })
                    .with_tier(Tier::Premium)
                    .with_slo(SloTarget::new(0.5, 0.1)),
            ],
        )
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let w = base_workload(ArrivalProcess::Steady { rate_per_s: 20.0 });
        let a = w.generate(64).unwrap();
        let b = w.generate(64).unwrap();
        assert_eq!(a, b, "same seed, same traffic");
        assert!(!a.is_empty());

        let mut shifted = w.clone();
        shifted.seed = 8;
        let c = shifted.generate(64).unwrap();
        assert_ne!(a, c, "different seed, different traffic");
    }

    #[test]
    fn generated_requests_are_well_formed_and_ordered() {
        let w = base_workload(ArrivalProcess::OnOff {
            rate_per_s: 40.0,
            on_s: 0.5,
            off_s: 0.5,
        });
        let requests = w.generate(64).unwrap();
        assert!(!requests.is_empty());
        let mut last = 0.0;
        for (i, r) in requests.iter().enumerate() {
            assert_eq!(r.id, i as u64, "ids are arrival order");
            assert!(r.arrival_s >= last && r.arrival_s < w.duration_s);
            last = r.arrival_s;
            assert!((2..=4).contains(&r.prompt.len()) || (1..=2).contains(&r.prompt.len()));
            assert!(r.max_new_tokens >= 2 && r.max_new_tokens <= 6);
            assert!(r.prompt.iter().all(|t| (1..64).contains(&(*t as usize))));
            // on/off arrivals only land inside on-windows
            assert!(
                r.arrival_s % 1.0 < 0.5,
                "arrival {} in an off window",
                r.arrival_s
            );
        }
        // both templates actually fire
        assert!(requests.iter().any(|r| r.tier == Tier::Premium));
        assert!(requests.iter().any(|r| r.tier == Tier::Standard));
    }

    #[test]
    fn diurnal_ramp_concentrates_arrivals_at_the_crest() {
        let w = Workload::new(
            3,
            10.0,
            ArrivalProcess::Diurnal {
                base_rate_per_s: 1.0,
                peak_rate_per_s: 60.0,
                period_s: 10.0,
            },
            vec![RequestTemplate::new((1, 1), (1, 1), StrategySpec::Dense)],
        );
        let requests = w.generate(64).unwrap();
        // crest of the cycle is t ∈ [2.5, 7.5); with a 60:1 swing the bulk
        // of the arrivals must land there
        let crest = requests
            .iter()
            .filter(|r| (2.5..7.5).contains(&r.arrival_s))
            .count();
        assert!(
            crest * 2 > requests.len(),
            "{crest} of {} arrivals at the crest",
            requests.len()
        );
    }

    #[test]
    fn shared_prefix_templates_emit_identical_leading_tokens() {
        let prefix_len = 5;
        let w = Workload::new(
            9,
            4.0,
            ArrivalProcess::Steady { rate_per_s: 30.0 },
            vec![
                RequestTemplate::new((2, 4), (2, 3), StrategySpec::Dense)
                    .with_shared_prefix(prefix_len),
                RequestTemplate::new((1, 2), (2, 3), StrategySpec::Dip { density: 0.5 }),
            ],
        );
        let requests = w.generate(64).unwrap();
        let templated: Vec<&GenRequest> = requests
            .iter()
            .filter(|r| r.strategy == StrategySpec::Dense)
            .collect();
        assert!(templated.len() >= 2, "template fired more than once");
        let prefix = &templated[0].prompt[..prefix_len];
        for r in &templated {
            assert_eq!(r.shared_prefix_len, prefix_len);
            assert_eq!(&r.prompt[..prefix_len], prefix, "prefix is per-template");
            assert!(
                (prefix_len + 2..=prefix_len + 4).contains(&r.prompt.len()),
                "suffix range rides on top of the prefix"
            );
        }
        // the other template is untouched
        for r in requests
            .iter()
            .filter(|r| r.strategy != StrategySpec::Dense)
        {
            assert_eq!(r.shared_prefix_len, 0);
        }
    }

    #[test]
    fn zero_prefix_workloads_keep_their_traffic_bitwise() {
        // the prefix feature must not perturb the RNG stream of workloads
        // that do not use it: a template with `shared_prefix: 0` draws
        // nothing extra
        let w = base_workload(ArrivalProcess::Steady { rate_per_s: 20.0 });
        let mut with_field = w.clone();
        with_field.templates[0].shared_prefix = 0;
        assert_eq!(w.generate(64).unwrap(), with_field.generate(64).unwrap());
    }

    #[test]
    fn deadline_and_patience_fields_reach_requests_without_rng_cost() {
        // templates without the fields must generate bit-identical traffic
        let plain = base_workload(ArrivalProcess::Steady { rate_per_s: 20.0 });
        let mut with_defaults = plain.clone();
        with_defaults.templates[0].deadline_ms = f64::INFINITY;
        with_defaults.templates[0].cancel_after_tokens = usize::MAX;
        assert_eq!(
            plain.generate(64).unwrap(),
            with_defaults.generate(64).unwrap()
        );

        // set fields are copied onto every request the template draws,
        // and only the arrival timeline (not the RNG stream) is shared
        let mut budgeted = plain.clone();
        budgeted.templates[0] = budgeted.templates[0]
            .clone()
            .with_deadline_ms(500.0)
            .with_cancel_after_tokens(2);
        let requests = budgeted.generate(64).unwrap();
        let (tmpl, other): (Vec<&GenRequest>, Vec<&GenRequest>) = requests
            .iter()
            .partition(|r| r.strategy == StrategySpec::Dense);
        assert!(!tmpl.is_empty() && !other.is_empty());
        for r in &tmpl {
            assert!((r.deadline_s - 0.5).abs() < 1e-12);
            assert_eq!(r.cancel_after_tokens, 2);
        }
        for r in &other {
            assert!(r.deadline_s.is_infinite());
            assert_eq!(r.cancel_after_tokens, usize::MAX);
        }
        // deadline/patience draw nothing: prompts and budgets are unchanged
        let plain_requests = plain.generate(64).unwrap();
        assert_eq!(requests.len(), plain_requests.len());
        for (a, b) in requests.iter().zip(&plain_requests) {
            assert_eq!(a.prompt, b.prompt);
            assert_eq!(a.max_new_tokens, b.max_new_tokens);
            assert_eq!(a.arrival_s, b.arrival_s);
        }

        // bounds are validated
        let mut bad = plain.clone();
        bad.templates[0].deadline_ms = 0.0;
        assert!(bad.validate().is_err());
        let mut bad = plain.clone();
        bad.templates[0].cancel_after_tokens = 0;
        assert!(bad.validate().is_err());
        // and malformed JSON values are typed errors
        assert!(Workload::from_json(
            r#"{"duration_s": 1.0, "process": {"kind": "steady", "rate_per_s": 5},
                "templates": [{"prompt_tokens": [1, 2], "new_tokens": [1, 2],
                               "cancel_after_tokens": 1.5}]}"#
        )
        .is_err());
    }

    #[test]
    fn replay_process_reproduces_its_list() {
        let times = vec![0.1, 0.4, 0.40001, 2.0, 9.0];
        let w = Workload::new(
            0,
            4.0,
            ArrivalProcess::Replay {
                arrivals_s: times.clone(),
            },
            vec![RequestTemplate::new((1, 1), (2, 2), StrategySpec::Dense)],
        );
        let requests = w.generate(64).unwrap();
        // the 9.0 arrival is past the duration
        let got: Vec<f64> = requests.iter().map(|r| r.arrival_s).collect();
        assert_eq!(got, &times[..4]);
    }

    #[test]
    fn json_round_trips() {
        for process in [
            ArrivalProcess::Steady { rate_per_s: 25.0 },
            ArrivalProcess::OnOff {
                rate_per_s: 40.0,
                on_s: 0.25,
                off_s: 0.75,
            },
            ArrivalProcess::Diurnal {
                base_rate_per_s: 2.0,
                peak_rate_per_s: 30.0,
                period_s: 5.0,
            },
            ArrivalProcess::Replay {
                arrivals_s: vec![0.0, 0.5, 1.25],
            },
        ] {
            let mut w = base_workload(process);
            w.templates[0].shared_prefix = 6;
            w.templates[0].deadline_ms = 750.0;
            w.templates[1].cancel_after_tokens = 3;
            let json = w.to_json();
            let back = Workload::from_json(&json)
                .unwrap_or_else(|e| panic!("failed to parse {json}: {e}"));
            assert_eq!(w, back, "round trip through {json}");
        }
    }

    #[test]
    fn from_json_parses_the_documented_format() {
        let w = Workload::from_json(
            r#"{
                "seed": 11,
                "duration_s": 2.0,
                "process": {"kind": "on-off", "rate_per_s": 30, "on_s": 0.25, "off_s": 0.25},
                "templates": [
                    {"weight": 3, "prompt_tokens": [2, 4], "new_tokens": [4, 8],
                     "strategy": {"method": "dip", "density": 0.5}},
                    {"prompt_tokens": [1, 2], "new_tokens": [2, 4], "tier": "premium",
                     "ttft_slo_ms": 60, "tbt_slo_ms": 25}
                ]
            }"#,
        )
        .unwrap();
        assert_eq!(w.seed, 11);
        assert_eq!(w.templates.len(), 2);
        assert_eq!(w.templates[0].strategy, StrategySpec::Dip { density: 0.5 });
        assert_eq!(
            w.templates[1].strategy,
            StrategySpec::Dense,
            "default dense"
        );
        assert_eq!(w.templates[1].tier, Tier::Premium);
        assert!((w.templates[1].slo.ttft_s - 0.06).abs() < 1e-12);
        assert!(w.templates[0].slo.ttft_s.is_infinite());
    }

    #[test]
    fn validation_rejects_nonsense() {
        let good = base_workload(ArrivalProcess::Steady { rate_per_s: 5.0 });
        assert!(good.validate().is_ok());

        let mut w = good.clone();
        w.duration_s = 0.0;
        assert!(w.validate().is_err());

        let mut w = good.clone();
        w.templates.clear();
        assert!(w.validate().is_err());

        let mut w = good.clone();
        w.templates[0].prompt_tokens = (0, 2);
        assert!(w.validate().is_err());

        let mut w = good.clone();
        w.templates[0].new_tokens = (5, 2);
        assert!(w.validate().is_err());

        let mut w = good.clone();
        w.templates[0].weight = -1.0;
        assert!(w.validate().is_err());

        let w = base_workload(ArrivalProcess::Steady { rate_per_s: 0.0 });
        assert!(w.validate().is_err());
        let w = base_workload(ArrivalProcess::Diurnal {
            base_rate_per_s: 10.0,
            peak_rate_per_s: 5.0,
            period_s: 2.0,
        });
        assert!(w.validate().is_err());
        let w = base_workload(ArrivalProcess::Replay {
            arrivals_s: vec![2.0, 1.0],
        });
        assert!(w.validate().is_err());
        assert!(good.generate(1).is_err(), "vocabulary too small");

        // malformed JSON paths
        assert!(Workload::from_json("{").is_err());
        assert!(Workload::from_json("{}").is_err());
        assert!(Workload::from_json(
            r#"{"duration_s": 1.0, "process": {"kind": "warp"}, "templates": []}"#
        )
        .is_err());
        assert!(Workload::from_json(
            r#"{"duration_s": 1.0, "process": {"kind": "steady", "rate_per_s": 5},
                "templates": [{"prompt_tokens": [1, 2], "new_tokens": [1, 2], "tier": "gold"}]}"#
        )
        .is_err());
    }
}
