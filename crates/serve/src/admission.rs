//! SLO-aware admission control for open-loop traffic.
//!
//! A production engine cannot queue unbounded work: when arrivals outpace
//! service, *something* must give, and it should give early (at admission)
//! rather than late (as a blown SLO deep in the queue). This module owns
//! that decision for [`crate::engine::ServeEngine::run_open_loop`]:
//!
//! 1. **Token-bucket rate limiting** ([`TokenBucket`]) — a deployment-wide
//!    ingress throttle refilled on the run's virtual clock. Arrivals beyond
//!    the sustained rate (plus a configurable burst allowance) are shed with
//!    [`ShedReason::RateLimited`] before they consume any queue space.
//! 2. **Per-tier quotas** — each [`Tier`] may be capped to a number of
//!    waiting requests, so a flood of batch work cannot crowd premium
//!    traffic out of the bounded queue ([`ShedReason::TierQuota`]).
//! 3. **Bounded queue with backpressure** — the waiting queue holds at most
//!    [`AdmissionConfig::queue_capacity`] requests; arrivals past that are
//!    shed with [`ShedReason::QueueFull`].
//!
//! Under a paged KV pool the engine adds a **memory dimension** ahead of all
//! three: a request whose page footprint exceeds the whole pool can never be
//! served and is shed with [`ShedReason::Memory`] at arrival
//! ([`AdmissionController::offer_with_memory`]).
//!
//! Checks run in that order, and every decision is a pure function of
//! `(config, prior decisions, arrival time)` — no wall clock, no
//! randomness — so open-loop runs are exactly reproducible.

use crate::request::{GenRequest, Tier};
use serde::{Deserialize, Serialize};

/// A sustained-rate + burst ingress limit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateLimit {
    /// Sustained admissions per second of virtual time.
    pub rate_per_s: f64,
    /// Bucket depth: how many admissions may burst above the sustained rate.
    pub burst: f64,
}

/// Classic token bucket on a caller-supplied (virtual) clock.
///
/// The bucket starts full, refills continuously at `rate_per_s` up to
/// `burst`, and each admitted request costs one token — so any window
/// `[t0, t1]` admits at most `burst + rate_per_s · (t1 - t0)` requests
/// (property-tested in `tests/open_loop_properties.rs`).
#[derive(Debug, Clone, PartialEq)]
pub struct TokenBucket {
    limit: RateLimit,
    tokens: f64,
    last_s: f64,
}

impl TokenBucket {
    /// A full bucket observing its first refill at t = 0.
    pub fn new(limit: RateLimit) -> Self {
        TokenBucket {
            limit,
            tokens: limit.burst,
            last_s: 0.0,
        }
    }

    fn refill(&mut self, now_s: f64) {
        // the virtual clock never goes backwards; guard anyway so a
        // misordered caller cannot mint negative refills
        let elapsed = (now_s - self.last_s).max(0.0);
        self.tokens = (self.tokens + elapsed * self.limit.rate_per_s).min(self.limit.burst);
        self.last_s = self.last_s.max(now_s);
    }

    /// Takes one token at virtual time `now_s`; `false` means rate-limited.
    pub fn try_take(&mut self, now_s: f64) -> bool {
        self.refill(now_s);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (after a refill to `now_s`).
    pub fn available(&mut self, now_s: f64) -> f64 {
        self.refill(now_s);
        self.tokens
    }
}

/// Why an arrival was turned away.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ShedReason {
    /// The deployment-wide token bucket was empty.
    RateLimited,
    /// The arrival's tier already holds its full quota of queued requests.
    TierQuota,
    /// The bounded admission queue is full.
    QueueFull,
    /// The request's KV footprint exceeds the paged pool outright — it could
    /// never hold a slot no matter how long it waited, so it is shed at
    /// arrival instead of queueing forever.
    Memory,
}

impl ShedReason {
    /// Every reason, in [`ShedReason::index`] order.
    pub const ALL: [ShedReason; 4] = [
        ShedReason::RateLimited,
        ShedReason::TierQuota,
        ShedReason::QueueFull,
        ShedReason::Memory,
    ];

    /// Dense index of this reason (matches [`ShedReason::ALL`]); used to
    /// address per-reason telemetry counters.
    pub fn index(self) -> usize {
        self as usize
    }
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ShedReason::RateLimited => "rate-limited",
            ShedReason::TierQuota => "tier-quota",
            ShedReason::QueueFull => "queue-full",
            ShedReason::Memory => "memory",
        };
        f.write_str(s)
    }
}

/// Admission policy of an open-loop deployment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdmissionConfig {
    /// Maximum number of waiting (admitted but not yet scheduled) requests.
    pub queue_capacity: usize,
    /// Optional deployment-wide ingress rate limit.
    pub rate_limit: Option<RateLimit>,
    /// Optional per-tier caps on waiting requests, indexed by
    /// [`Tier::index`] (`None` = uncapped).
    pub tier_quotas: [Option<usize>; 3],
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            queue_capacity: 1024,
            rate_limit: None,
            tier_quotas: [None; 3],
        }
    }
}

impl AdmissionConfig {
    /// Returns a copy with the given queue bound.
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Returns a copy with the given ingress rate limit.
    pub fn with_rate_limit(mut self, rate_per_s: f64, burst: f64) -> Self {
        self.rate_limit = Some(RateLimit { rate_per_s, burst });
        self
    }

    /// Returns a copy capping `tier` to `max_queued` waiting requests.
    pub fn with_tier_quota(mut self, tier: Tier, max_queued: usize) -> Self {
        self.tier_quotas[tier.index()] = Some(max_queued);
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`crate::error::ServeError::InvalidConfig`] for a zero-slot
    /// queue or a non-positive/NaN rate limit.
    pub fn validate(&self) -> crate::error::Result<()> {
        if self.queue_capacity == 0 {
            return Err(crate::error::ServeError::InvalidConfig {
                field: "admission.queue_capacity",
                reason: "the admission queue needs at least one slot".to_string(),
            });
        }
        if let Some(limit) = self.rate_limit {
            if !(limit.rate_per_s.is_finite() && limit.rate_per_s > 0.0) {
                return Err(crate::error::ServeError::InvalidConfig {
                    field: "admission.rate_limit.rate_per_s",
                    reason: format!("must be positive, got {}", limit.rate_per_s),
                });
            }
            if !(limit.burst.is_finite() && limit.burst >= 1.0) {
                return Err(crate::error::ServeError::InvalidConfig {
                    field: "admission.rate_limit.burst",
                    reason: format!("must be at least 1, got {}", limit.burst),
                });
            }
        }
        Ok(())
    }
}

/// Counters of every admission decision made during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AdmissionStats {
    /// Requests offered to the controller.
    pub arrived: usize,
    /// Requests accepted into the waiting queue.
    pub admitted: usize,
    /// Requests shed by the token bucket.
    pub shed_rate_limited: usize,
    /// Requests shed by a tier quota.
    pub shed_tier_quota: usize,
    /// Requests shed by the queue bound.
    pub shed_queue_full: usize,
    /// Requests shed because their KV footprint exceeds the paged pool.
    pub shed_memory: usize,
    /// Arrivals per tier, indexed by [`Tier::index`].
    pub arrived_per_tier: [usize; 3],
    /// Shed requests per tier, indexed by [`Tier::index`].
    pub shed_per_tier: [usize; 3],
}

impl AdmissionStats {
    /// Total shed requests.
    pub fn shed(&self) -> usize {
        self.shed_rate_limited + self.shed_tier_quota + self.shed_queue_full + self.shed_memory
    }
}

/// The engine-side admission controller: bucket + quotas + bounded queue.
#[derive(Debug)]
pub struct AdmissionController {
    config: AdmissionConfig,
    bucket: Option<TokenBucket>,
    queue: Vec<GenRequest>,
    queued_per_tier: [usize; 3],
    stats: AdmissionStats,
}

impl AdmissionController {
    /// Creates a controller (validate the config first; see
    /// [`AdmissionConfig::validate`]).
    pub fn new(config: AdmissionConfig) -> Self {
        let bucket = config.rate_limit.map(TokenBucket::new);
        AdmissionController {
            config,
            bucket,
            queue: Vec::new(),
            queued_per_tier: [0; 3],
            stats: AdmissionStats::default(),
        }
    }

    /// Offers one arrival at virtual time `now_s`. `None` means the request
    /// was queued; `Some(reason)` means it was shed (and dropped).
    pub fn offer(&mut self, request: GenRequest, now_s: f64) -> Option<ShedReason> {
        self.offer_with_memory(request, now_s, true)
    }

    /// [`AdmissionController::offer`] with the engine's memory verdict:
    /// `fits_memory = false` marks a request whose KV footprint exceeds the
    /// paged pool outright. Such an arrival is shed with
    /// [`ShedReason::Memory`] *before* the token bucket — it can never be
    /// served, so it should not burn an ingress token or a queue slot.
    pub fn offer_with_memory(
        &mut self,
        request: GenRequest,
        now_s: f64,
        fits_memory: bool,
    ) -> Option<ShedReason> {
        let tier = request.tier.index();
        self.stats.arrived += 1;
        self.stats.arrived_per_tier[tier] += 1;
        let reason = 'decide: {
            if !fits_memory {
                self.stats.shed_memory += 1;
                break 'decide Some(ShedReason::Memory);
            }
            if let Some(bucket) = &mut self.bucket {
                if !bucket.try_take(now_s) {
                    self.stats.shed_rate_limited += 1;
                    break 'decide Some(ShedReason::RateLimited);
                }
            }
            if let Some(quota) = self.config.tier_quotas[tier] {
                if self.queued_per_tier[tier] >= quota {
                    self.stats.shed_tier_quota += 1;
                    break 'decide Some(ShedReason::TierQuota);
                }
            }
            if self.queue.len() >= self.config.queue_capacity {
                self.stats.shed_queue_full += 1;
                break 'decide Some(ShedReason::QueueFull);
            }
            None
        };
        match reason {
            Some(_) => self.stats.shed_per_tier[tier] += 1,
            None => {
                self.queued_per_tier[tier] += 1;
                self.queue.push(request);
                self.stats.admitted += 1;
            }
        }
        reason
    }

    /// Re-offers a request whose previous service attempt aborted (retry
    /// with backoff). The full decision chain runs — a saturated system may
    /// reject a retry like any arrival — but the request is *not* a new
    /// arrival: `arrived` stays untouched, and a rejection bumps no shed
    /// counter (the engine retires the request as
    /// [`FinishReason::Failed`](crate::FinishReason) instead, keeping the
    /// arrival partition exact). An accepted re-offer counts in `admitted`
    /// again, making `admitted` attempt-level.
    pub fn reoffer(&mut self, request: GenRequest, now_s: f64) -> Option<ShedReason> {
        let tier = request.tier.index();
        if let Some(bucket) = &mut self.bucket {
            if !bucket.try_take(now_s) {
                return Some(ShedReason::RateLimited);
            }
        }
        if let Some(quota) = self.config.tier_quotas[tier] {
            if self.queued_per_tier[tier] >= quota {
                return Some(ShedReason::TierQuota);
            }
        }
        if self.queue.len() >= self.config.queue_capacity {
            return Some(ShedReason::QueueFull);
        }
        self.queued_per_tier[tier] += 1;
        self.queue.push(request);
        self.stats.admitted += 1;
        None
    }

    /// Withdraws the waiting request with id `id` (a cancellation or
    /// deadline expiry striking while still queued). Counts neither as a
    /// shed nor as a completion — the engine accounts the withdrawal under
    /// its own finish-reason counters.
    pub fn withdraw(&mut self, id: u64) -> Option<GenRequest> {
        let idx = self.queue.iter().position(|r| r.id == id)?;
        Some(self.take(idx))
    }

    /// The waiting queue, in arrival order (schedulers index into it).
    pub fn queue(&self) -> &[GenRequest] {
        &self.queue
    }

    /// Removes and returns the waiting request at `idx` (chosen by the
    /// scheduler), preserving the arrival order of the rest.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn take(&mut self, idx: usize) -> GenRequest {
        let request = self.queue.remove(idx);
        self.queued_per_tier[request.tier.index()] -= 1;
        request
    }

    /// Decision counters so far.
    pub fn stats(&self) -> AdmissionStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::StrategySpec;

    fn request(id: u64, tier: Tier) -> GenRequest {
        GenRequest::new(id, vec![1], 2, StrategySpec::Dense).with_tier(tier)
    }

    #[test]
    fn bucket_enforces_rate_and_burst() {
        let mut bucket = TokenBucket::new(RateLimit {
            rate_per_s: 2.0,
            burst: 3.0,
        });
        // the initial burst drains
        assert!(bucket.try_take(0.0));
        assert!(bucket.try_take(0.0));
        assert!(bucket.try_take(0.0));
        assert!(!bucket.try_take(0.0));
        // half a second refills one token at 2/s
        assert!(bucket.try_take(0.5));
        assert!(!bucket.try_take(0.5));
        // refill caps at the burst depth
        assert!((bucket.available(100.0) - 3.0).abs() < 1e-12);
        // a confused clock never mints tokens
        let before = bucket.available(100.0);
        assert!(bucket.available(50.0) <= before);
    }

    #[test]
    fn controller_sheds_in_documented_order() {
        let config = AdmissionConfig::default()
            .with_queue_capacity(2)
            .with_rate_limit(1.0, 3.0)
            .with_tier_quota(Tier::Batch, 1);
        config.validate().unwrap();
        let mut ctrl = AdmissionController::new(config);

        assert_eq!(ctrl.offer(request(0, Tier::Batch), 0.0), None);
        // second batch arrival trips the tier quota before the queue bound
        assert_eq!(
            ctrl.offer(request(1, Tier::Batch), 0.0),
            Some(ShedReason::TierQuota)
        );
        assert_eq!(ctrl.offer(request(2, Tier::Premium), 0.0), None);
        // queue is now full (capacity 2) — but the bucket (burst 3) trips
        // first only when empty; here the 4th arrival still has no tokens
        // left AND the queue is full: bucket is checked first
        assert_eq!(
            ctrl.offer(request(3, Tier::Premium), 0.0),
            Some(ShedReason::RateLimited)
        );
        // after a refill the queue bound is what sheds
        assert_eq!(
            ctrl.offer(request(4, Tier::Premium), 2.0),
            Some(ShedReason::QueueFull)
        );

        let stats = ctrl.stats();
        assert_eq!(stats.arrived, 5);
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.shed_tier_quota, 1);
        assert_eq!(stats.shed_rate_limited, 1);
        assert_eq!(stats.shed_queue_full, 1);
        assert_eq!(stats.shed(), 3);

        // taking a queued batch request frees its tier quota slot
        assert_eq!(ctrl.queue().len(), 2);
        let taken = ctrl.take(0);
        assert_eq!(taken.id, 0);
        assert_eq!(ctrl.offer(request(5, Tier::Batch), 10.0), None);
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        assert!(AdmissionConfig::default().validate().is_ok());
        assert!(AdmissionConfig::default()
            .with_queue_capacity(0)
            .validate()
            .is_err());
        assert!(AdmissionConfig::default()
            .with_rate_limit(0.0, 4.0)
            .validate()
            .is_err());
        assert!(AdmissionConfig::default()
            .with_rate_limit(f64::NAN, 4.0)
            .validate()
            .is_err());
        assert!(AdmissionConfig::default()
            .with_rate_limit(5.0, 0.5)
            .validate()
            .is_err());
    }

    #[test]
    fn shed_reasons_display() {
        assert_eq!(ShedReason::RateLimited.to_string(), "rate-limited");
        assert_eq!(ShedReason::TierQuota.to_string(), "tier-quota");
        assert_eq!(ShedReason::QueueFull.to_string(), "queue-full");
        assert_eq!(ShedReason::Memory.to_string(), "memory");
        for (i, r) in ShedReason::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn reoffer_is_not_an_arrival_and_rejection_is_stat_free() {
        let config = AdmissionConfig::default()
            .with_queue_capacity(1)
            .with_tier_quota(Tier::Batch, 1);
        let mut ctrl = AdmissionController::new(config);
        assert_eq!(ctrl.reoffer(request(0, Tier::Batch), 0.0), None);
        let stats = ctrl.stats();
        assert_eq!(stats.arrived, 0, "a retry is not a new arrival");
        assert_eq!(stats.admitted, 1, "but re-admission counts");
        // queue is full: the re-offer is rejected without touching shed
        // counters (the engine books it as a Failed retirement instead)
        assert_eq!(
            ctrl.reoffer(request(1, Tier::Premium), 0.0),
            Some(ShedReason::QueueFull)
        );
        assert_eq!(
            ctrl.reoffer(request(2, Tier::Batch), 0.0),
            Some(ShedReason::TierQuota)
        );
        assert_eq!(ctrl.stats().shed(), 0);
        assert_eq!(ctrl.stats().admitted, 1);
    }

    #[test]
    fn withdraw_pulls_a_queued_request_by_id() {
        let mut ctrl = AdmissionController::new(AdmissionConfig::default());
        assert_eq!(ctrl.offer(request(7, Tier::Batch), 0.0), None);
        assert_eq!(ctrl.offer(request(9, Tier::Batch), 0.0), None);
        assert!(ctrl.withdraw(8).is_none(), "unknown id is a no-op");
        let w = ctrl.withdraw(9).unwrap();
        assert_eq!(w.id, 9);
        assert_eq!(ctrl.queue().len(), 1);
        assert_eq!(ctrl.queue()[0].id, 7);
        // the withdrawn batch request freed its quota slot
        let config = AdmissionConfig::default().with_tier_quota(Tier::Batch, 2);
        let mut ctrl = AdmissionController::new(config);
        ctrl.offer(request(0, Tier::Batch), 0.0);
        ctrl.offer(request(1, Tier::Batch), 0.0);
        ctrl.withdraw(0).unwrap();
        assert_eq!(ctrl.offer(request(2, Tier::Batch), 0.0), None);
    }

    #[test]
    fn memory_shed_fires_before_the_bucket() {
        let config = AdmissionConfig::default().with_rate_limit(1.0, 1.0);
        let mut ctrl = AdmissionController::new(config);
        // the impossible request is shed without consuming a token...
        assert_eq!(
            ctrl.offer_with_memory(request(0, Tier::Standard), 0.0, false),
            Some(ShedReason::Memory)
        );
        // ...so the next (feasible) arrival still gets the burst token
        assert_eq!(
            ctrl.offer_with_memory(request(1, Tier::Standard), 0.0, true),
            None
        );
        let stats = ctrl.stats();
        assert_eq!(stats.shed_memory, 1);
        assert_eq!(stats.shed(), 1);
        assert_eq!(stats.admitted, 1);
    }
}
