//! Multi-session sparse-inference serving engine.
//!
//! The paper evaluates Dynamic Input Pruning one token stream at a time;
//! this crate opens the *many users* axis: a token-generation serving engine
//! that admits a stream of requests, schedules them with continuous batching,
//! keeps one KV cache per session (recycled through
//! [`lm::DecodeStatePool`]), runs a pluggable sparsity strategy per request
//! through the [`lm::MlpForward`] hook, and prices the resulting weight
//! traffic on a *shared* DRAM column cache under multi-tenant contention
//! ([`hwsim::simulate_concurrent`]).
//!
//! * [`GenRequest`] — one user's prompt + generation budget + strategy spec,
//! * [`StrategySpec`] (from [`dip_core::spec`]) — *any* strategy of the
//!   paper's family: dense, GLU/gate/up pruning, CATS, DejaVu-style
//!   predictive pruning, DIP, DIP-CA (shared cache model). Specs are
//!   serializable, so a workload mix is a JSON list — no recompilation,
//! * [`SchedulerPolicy`] — FIFO, shortest-remaining-first, or
//!   priority-preemptive continuous batching,
//! * [`ServeEngine`] / [`ServeConfig`] — the engine itself: closed batches
//!   via [`ServeEngine::run`], **open-loop traffic** on a virtual clock via
//!   [`ServeEngine::run_open_loop`]. The open-loop clock is driven by a
//!   (time, seq)-keyed [`EventQueue`]; under [`EngineCore::EventDriven`]
//!   (the default) long prefills are served in
//!   `prefill_chunk_tokens`-sized chunks interleaved with decode rounds,
//!   and preemption KV spills/reloads are priced events on the same clock,
//! * [`Workload`] — seedable arrival processes (steady / bursty on-off /
//!   diurnal / trace replay) over weighted request templates with priority
//!   [`Tier`]s and latency [`SloTarget`]s; JSON round-trippable,
//! * [`AdmissionConfig`] — token-bucket rate limiting, per-tier quotas and a
//!   bounded queue; excess traffic is shed, not buffered forever,
//! * [`ServeReport`] — per-request latency (p50/p95/p99), aggregate
//!   tokens/sec, fairness, shared-cache hit rate, and for open-loop runs
//!   TTFT/TBT/queue-delay percentiles plus SLO attainment per tier and per
//!   strategy ([`OpenLoopStats`]),
//! * [`EngineTelemetry`] — optional zero-allocation observability: attach a
//!   pipeline via [`ServeEngine::attach_telemetry`] and the engine records
//!   metrics, span events and a virtual-time timeline without perturbing
//!   the (bitwise deterministic) report; export with
//!   [`render_prometheus`] / [`render_trace_jsonl`] /
//!   [`render_chrome_trace`].
//!
//! Specs that need an offline weight transform (SparseGPT static pruning,
//! LoRA fusing) are rejected per-request — the engine serves one shared
//! model; transform the model first and serve that.
//!
//! # Example
//!
//! ```
//! use serve::{GenRequest, ServeConfig, ServeEngine, StrategySpec};
//! use lm::{build_synthetic, ModelConfig};
//!
//! let model = build_synthetic(&ModelConfig::tiny(), 1)?;
//! let device = hwsim::DeviceConfig::apple_a18(4.0).with_dram_bytes(400_000);
//! let mut engine = ServeEngine::new(model, ServeConfig::new(device))?;
//! let spec = StrategySpec::from_json(r#"{"method": "dip", "density": 0.5}"#)
//!     .map_err(serve::ServeError::Dip)?;
//! let requests = (0..4)
//!     .map(|i| GenRequest::new(i, vec![1 + i as u32], 4, spec))
//!     .collect();
//! let report = engine.run(requests)?;
//! assert_eq!(report.requests.len(), 4);
//! assert!(report.aggregate_tps > 0.0);
//! # Ok::<(), serve::ServeError>(())
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod engine;
pub mod error;
pub mod event;
pub mod fault;
pub mod layout;
pub mod prefix;
pub mod report;
pub mod request;
pub mod scheduler;
pub mod session;
pub mod strategy;
pub mod telemetry;
pub mod workload;

pub use admission::{
    AdmissionConfig, AdmissionController, AdmissionStats, RateLimit, ShedReason, TokenBucket,
};
pub use engine::{EngineCore, ExecutionMode};
pub use engine::{PagedKvConfig, ServeConfig, ServeEngine};
// NOTE: `event::EventKind` is deliberately *not* re-exported at the crate
// root — the name would collide with the telemetry crate's `EventKind`
// re-exported below. Reach the queue types via `serve::event::…`.
pub use error::{Result, ServeError};
pub use event::EventQueue;
pub use fault::{DegradePolicy, FaultInjector, FaultPlan, RetryPolicy, SlowLaneWindow};
pub use prefix::PrefixRegistry;
pub use report::{
    percentile, FinishReason, OpenLoopStats, PagedKvStats, Percentiles, RequestStats, ServeReport,
    StrategyClassStats, TierStats,
};
pub use request::{GenRequest, SloTarget, Tier, TIERS};
pub use scheduler::SchedulerPolicy;
pub use session::{Session, SessionPhase};
pub use strategy::{
    resolve_axes, NmPattern, PredictorSpec, SharedMlpForward, StrategyFactory, StrategySpec,
};
pub use telemetry::EngineTelemetry;
pub use workload::{ArrivalProcess, RequestTemplate, Workload};

// Re-export the telemetry crate's public surface that appears in this
// crate's signatures (e.g. `EngineTelemetry::new(TelemetryConfig, ..)`,
// `EngineTelemetry::ring() -> &TraceRing`), so downstream users can reach
// every type without depending on the `telemetry` crate directly.
pub use ::telemetry::{
    check_exposition, check_jsonl, render_chrome_trace, render_prometheus,
    render_prometheus_merged, render_timeline_jsonl, render_trace_jsonl, EventKind,
    MetricsRegistry, SpanEvent, Telemetry, TelemetryConfig, Timeline, TraceRing, WindowStats,
};
