//! Multi-session sparse-inference serving engine.
//!
//! The paper evaluates Dynamic Input Pruning one token stream at a time;
//! this crate opens the *many users* axis: a token-generation serving engine
//! that admits a stream of requests, schedules them with continuous batching,
//! keeps one KV cache per session (recycled through
//! [`lm::DecodeStatePool`]), runs a pluggable sparsity strategy per request
//! through the [`lm::MlpForward`] hook, and prices the resulting weight
//! traffic on a *shared* DRAM column cache under multi-tenant contention
//! ([`hwsim::simulate_concurrent`]).
//!
//! * [`GenRequest`] — one user's prompt + generation budget + strategy,
//! * [`SparsityPolicy`] — `Dense`, `Dip`, `DipCacheAware` (shared cache
//!   model), or `Cats`,
//! * [`SchedulerPolicy`] — FIFO or shortest-remaining-first continuous
//!   batching,
//! * [`ServeEngine`] / [`ServeConfig`] — the engine itself,
//! * [`ServeReport`] — per-request latency (p50/p95/p99), aggregate
//!   tokens/sec, fairness and shared-cache hit rate.
//!
//! # Example
//!
//! ```
//! use serve::{GenRequest, ServeConfig, ServeEngine, SparsityPolicy};
//! use lm::{build_synthetic, ModelConfig};
//!
//! let model = build_synthetic(&ModelConfig::tiny(), 1)?;
//! let device = hwsim::DeviceConfig::apple_a18(4.0).with_dram_bytes(400_000);
//! let mut engine = ServeEngine::new(model, ServeConfig::new(device))?;
//! let requests = (0..4)
//!     .map(|i| GenRequest::new(i, vec![1 + i as u32], 4, SparsityPolicy::Dip { density: 0.5 }))
//!     .collect();
//! let report = engine.run(requests)?;
//! assert_eq!(report.requests.len(), 4);
//! assert!(report.aggregate_tps > 0.0);
//! # Ok::<(), serve::ServeError>(())
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod error;
pub mod layout;
pub mod report;
pub mod request;
pub mod scheduler;
pub mod session;
pub mod strategy;

pub use engine::{ServeConfig, ServeEngine};
pub use error::{Result, ServeError};
pub use report::{percentile, RequestStats, ServeReport};
pub use request::GenRequest;
pub use scheduler::SchedulerPolicy;
pub use session::{Session, SessionPhase};
pub use strategy::{resolve_axes, SharedStrategy, SparsityPolicy, StrategyFactory};
