//! Properties of the open-loop serving machinery.
//!
//! 1. **Request conservation** — at drain, every arrival is accounted for
//!    exactly once: `arrived = completed + shed`, with nothing in flight
//!    (the report's `admitted` equals `completed`).
//! 2. **No starvation** under `PriorityPreemptive` — every admitted request
//!    eventually finishes, preempted or not, and every park is resumed.
//! 3. **Token bucket** — admissions past the bucket can never exceed
//!    `burst + rate · elapsed` over any prefix of the arrival sequence.

use proptest::prelude::*;
use serve::{
    AdmissionConfig, ArrivalProcess, GenRequest, RateLimit, RequestTemplate, SchedulerPolicy,
    ServeConfig, ServeEngine, SloTarget, StrategySpec, Tier, TokenBucket, Workload,
};

fn tiny_engine(
    slots: usize,
    scheduler: SchedulerPolicy,
    admission: AdmissionConfig,
) -> ServeEngine {
    let config = lm::ModelConfig::tiny();
    let model = lm::build_synthetic(&config, 7).unwrap();
    let layout = serve::layout::layout_for_serving(
        &config,
        [lm::SliceAxis::Input; 3],
        4.0,
        slots,
        config.max_seq_len,
    );
    let dram = layout.static_bytes + (layout.mlp_bytes() as f64 * 0.6) as u64;
    let device = hwsim::DeviceConfig::apple_a18(4.0).with_dram_bytes(dram);
    ServeEngine::new(
        model,
        ServeConfig::new(device)
            .with_max_concurrent(slots)
            .with_scheduler(scheduler)
            .with_admission(admission),
    )
    .unwrap()
}

fn mixed_tier_workload(seed: u64, rate_per_s: f64) -> Workload {
    Workload::new(
        seed,
        0.03,
        ArrivalProcess::OnOff {
            rate_per_s,
            on_s: 0.005,
            off_s: 0.005,
        },
        vec![
            RequestTemplate::new((2, 4), (4, 10), StrategySpec::Dense)
                .with_tier(Tier::Batch)
                .with_weight(2.0),
            RequestTemplate::new((1, 3), (2, 6), StrategySpec::Dip { density: 0.5 }),
            RequestTemplate::new((1, 2), (2, 4), StrategySpec::Dip { density: 0.5 })
                .with_tier(Tier::Premium)
                .with_slo(SloTarget::new(0.05, 0.02)),
        ],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn conservation_at_drain(
        seed in 0u64..1_000,
        rate in 200f64..2_000.0,
        slots in 1usize..4,
        queue_capacity in 1usize..8,
    ) {
        let admission = AdmissionConfig::default()
            .with_queue_capacity(queue_capacity)
            .with_rate_limit(400.0, 4.0);
        let mut engine = tiny_engine(slots, SchedulerPolicy::Fifo, admission);
        let report = engine
            .run_open_loop(&mixed_tier_workload(seed, rate))
            .unwrap();
        let ol = report.open_loop.as_ref().unwrap();
        // every arrival is exactly one of {completed, shed}
        prop_assert_eq!(ol.arrived, ol.completed + ol.shed);
        prop_assert_eq!(ol.admitted, ol.completed, "nothing in flight at drain");
        prop_assert_eq!(ol.shed, ol.shed_rate_limited + ol.shed_tier_quota + ol.shed_queue_full);
        prop_assert_eq!(report.requests.len(), ol.completed);
        // the same identities hold per tier
        let mut arrived = 0;
        for t in &ol.tiers {
            prop_assert_eq!(t.arrived, t.admitted + t.shed);
            prop_assert_eq!(t.admitted, t.completed);
            arrived += t.arrived;
        }
        prop_assert_eq!(arrived, ol.arrived);
        // every completed request generated its full budget
        for r in &report.requests {
            prop_assert!(r.generated_tokens > 0);
        }
    }

    #[test]
    fn no_starvation_under_priority_preemption(
        seed in 0u64..1_000,
        rate in 400f64..2_000.0,
        slots in 1usize..3,
    ) {
        let admission = AdmissionConfig::default().with_queue_capacity(64);
        let mut engine = tiny_engine(slots, SchedulerPolicy::PriorityPreemptive, admission);
        let report = engine
            .run_open_loop(&mixed_tier_workload(seed, rate))
            .unwrap();
        let ol = report.open_loop.as_ref().unwrap();
        // every admitted request — including preempted batch work — finishes
        prop_assert_eq!(ol.admitted, ol.completed);
        prop_assert_eq!(ol.resumes, ol.preemptions, "every park is resumed");
        prop_assert_eq!(engine.state_pool().parked_count(), 0, "no state left parked");
        for r in &report.requests {
            prop_assert!(r.completion_s > r.arrival_s);
            prop_assert!(r.generated_tokens > 0, "request {} starved", r.id);
        }
    }

    #[test]
    fn token_bucket_never_exceeds_configured_rate(
        seed in 0u64..10_000,
        rate in 1f64..200.0,
        burst in 1f64..20.0,
        n in 1usize..120,
    ) {
        // synthetic arrival times: bursty clusters with random gaps
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = 0.0f64;
        let mut bucket = TokenBucket::new(RateLimit { rate_per_s: rate, burst });
        let mut admitted = 0usize;
        for _ in 0..n {
            t += if rng.gen_bool(0.7) { 0.0 } else { rng.gen_range(0.0..0.5) };
            if bucket.try_take(t) {
                admitted += 1;
            }
            // the invariant holds at every prefix: the bucket can never have
            // released more than its initial burst plus the refill
            let ceiling = burst + rate * t;
            prop_assert!(
                (admitted as f64) <= ceiling + 1e-9,
                "admitted {} > {} at t={}",
                admitted,
                ceiling,
                t
            );
        }
    }
}

/// The engine-level view of the bucket property: an open-loop run's admitted
/// count respects the configured rate over the arrival horizon.
#[test]
fn engine_admissions_respect_the_bucket() {
    let rate = 150.0;
    let burst = 2.0;
    let admission = AdmissionConfig::default()
        .with_queue_capacity(1024)
        .with_rate_limit(rate, burst);
    let mut engine = tiny_engine(2, SchedulerPolicy::Fifo, admission);
    // a dense burst of arrivals in a short horizon
    let arrivals: Vec<GenRequest> = (0..40)
        .map(|i| GenRequest::new(i, vec![1, 2], 2, StrategySpec::Dense).at(0.002 * i as f64))
        .collect();
    let last_arrival = arrivals.last().unwrap().arrival_s;
    let report = engine.run_open_loop_requests(arrivals).unwrap();
    let ol = report.open_loop.as_ref().unwrap();
    assert!(ol.shed_rate_limited > 0, "the burst must trip the bucket");
    let ceiling = burst + rate * last_arrival;
    assert!(
        (ol.admitted as f64) <= ceiling + 1e-9,
        "admitted {} exceeds bucket ceiling {}",
        ol.admitted,
        ceiling
    );
}

/// Tier quotas bound the waiting queue per tier without touching others.
#[test]
fn tier_quotas_shed_only_the_capped_tier() {
    let admission = AdmissionConfig::default()
        .with_queue_capacity(1024)
        .with_tier_quota(Tier::Batch, 1);
    let mut engine = tiny_engine(1, SchedulerPolicy::Fifo, admission);
    let mut arrivals: Vec<GenRequest> = (0..6)
        .map(|i| {
            GenRequest::new(i, vec![1, 2], 6, StrategySpec::Dense)
                .with_tier(Tier::Batch)
                .at(1e-5 * i as f64)
        })
        .collect();
    arrivals.extend((6..9).map(|i| {
        GenRequest::new(i, vec![1], 2, StrategySpec::Dense)
            .with_tier(Tier::Premium)
            .at(1e-5 * i as f64)
    }));
    let report = engine.run_open_loop_requests(arrivals).unwrap();
    let ol = report.open_loop.as_ref().unwrap();
    assert!(ol.shed_tier_quota > 0, "batch flood must trip its quota");
    let batch = &ol.tiers[Tier::Batch.index()];
    let premium = &ol.tiers[Tier::Premium.index()];
    assert_eq!(batch.shed, ol.shed, "only batch is shed");
    assert_eq!(premium.shed, 0);
    assert_eq!(premium.completed, 3);
}
