//! ISSUE 2 acceptance: the engine accepts *arbitrary* strategy specs — a
//! heterogeneous 8-session mix including non-DIP-family strategies
//! (DejaVu-style predictive pruning, gate pruning) runs on the shared cache
//! and produces a well-formed report; declarative JSON mixes run end-to-end.

use lm::{build_synthetic, ModelConfig, SliceAxis};
use serve::{
    GenRequest, PredictorSpec, ServeConfig, ServeEngine, ServeError, ServeReport, StrategySpec,
};

const N_SESSIONS: usize = 8;
const NEW_TOKENS: usize = 8;

fn engine(axes: [SliceAxis; 3]) -> ServeEngine {
    let config = ModelConfig::tiny();
    let model = build_synthetic(&config, 13).unwrap();
    let layout = serve::layout::layout_for_serving(&config, axes, 4.0, N_SESSIONS, 32);
    let dram = layout.static_bytes + ((layout.mlp_bytes() as f64) * 0.55) as u64;
    let device = hwsim::DeviceConfig::apple_a18(4.0).with_dram_bytes(dram);
    ServeEngine::new(
        model,
        ServeConfig::new(device)
            .with_max_concurrent(N_SESSIONS)
            .with_kv_budget(32),
    )
    .unwrap()
}

fn fleet(specs: &[StrategySpec]) -> Vec<GenRequest> {
    (0..N_SESSIONS)
        .map(|i| {
            GenRequest::new(
                i as u64,
                vec![(i % 5) as u32 + 1, (i % 11) as u32 + 7],
                NEW_TOKENS,
                specs[i % specs.len()],
            )
        })
        .collect()
}

fn assert_well_formed(report: &ServeReport, requests: &[GenRequest]) {
    assert_eq!(report.requests.len(), N_SESSIONS);
    assert_eq!(report.total_generated_tokens, N_SESSIONS * NEW_TOKENS);
    assert!(report.makespan_s > 0.0);
    assert!(report.aggregate_tps > 0.0);
    assert!(report.latency_p50_s > 0.0);
    assert!(report.latency_p50_s <= report.latency_p95_s);
    assert!(report.latency_p95_s <= report.latency_p99_s);
    assert!(report.latency_p99_s <= report.makespan_s + 1e-12);
    assert!(report.fairness > 0.0 && report.fairness <= 1.0 + 1e-12);
    assert!(report.cache_hit_rate >= 0.0 && report.cache_hit_rate <= 1.0);
    assert!(report.mean_density > 0.0 && report.mean_density <= 1.0 + 1e-12);
    // every request is reported under the label of the spec it asked for
    for (r, stat) in requests.iter().zip(report.requests.iter()) {
        assert_eq!(stat.id, r.id);
        assert_eq!(stat.strategy, r.strategy.label());
        assert_eq!(stat.generated_tokens, NEW_TOKENS);
        assert!(stat.first_token_s > 0.0);
        assert!(stat.first_token_s <= stat.completion_s);
    }
    assert!(!report.summary().is_empty());
}

#[test]
fn output_axis_mix_with_predictive_and_gate_pruning_runs_on_the_shared_cache() {
    // Five different strategy families — dense + CATS + gate + up + DejaVu
    // predictive — share one engine run and one DRAM column cache. Each
    // spec's axis requirements agree per matrix (up: Output, gate: Output,
    // down: Input), which is exactly what resolve_axes checks from the spec.
    let specs = [
        StrategySpec::Dense,
        StrategySpec::Cats { density: 0.5 },
        StrategySpec::GatePruning { density: 0.5 },
        StrategySpec::UpPruning { density: 0.5 },
        StrategySpec::Predictive {
            density: 0.5,
            predictor: PredictorSpec {
                hidden: Some(16),
                epochs: Some(1),
            },
        },
    ];
    let axes = serve::resolve_axes(&specs).unwrap();
    assert_eq!(axes[0], SliceAxis::Output);
    assert_eq!(axes[2], SliceAxis::Input);

    let requests = fleet(&specs);
    let mut engine = engine(axes);
    let report = engine.run(requests.clone()).unwrap();
    assert_well_formed(&report, &requests);

    // heterogeneity is visible in the report: several distinct labels ran
    let labels: std::collections::HashSet<&str> = report
        .requests
        .iter()
        .map(|r| r.strategy.as_str())
        .collect();
    assert_eq!(labels.len(), specs.len());
    // ...and the pruned sessions moved fewer bytes than the dense ones
    let bytes = |label: &str| {
        report
            .requests
            .iter()
            .filter(|r| r.strategy == label)
            .map(|r| r.dram_bytes + r.flash_bytes)
            .sum::<f64>()
    };
    assert!(bytes("dense") > bytes("gate@0.50"));
    assert!(bytes("dense") > bytes("dejavu@0.50"));
}

#[test]
fn input_axis_mix_with_glu_pruning_and_shared_dip_ca_runs() {
    // The input-axis family: dense, GLU pruning (non-DIP-family), DIP and
    // DIP-CA (with its shared cache cell) in one run.
    let specs = [
        StrategySpec::Dense,
        StrategySpec::GluPruning { density: 0.75 },
        StrategySpec::Dip { density: 0.5 },
        StrategySpec::DipCacheAware {
            density: 0.5,
            gamma: 0.2,
        },
    ];
    let axes = serve::resolve_axes(&specs).unwrap();
    assert_eq!(axes, [SliceAxis::Input; 3]);

    let requests = fleet(&specs);
    let mut engine = engine(axes);
    let report = engine.run(requests.clone()).unwrap();
    assert_well_formed(&report, &requests);
    assert!(report.mean_density < 1.0);
}

#[test]
fn json_mix_runs_end_to_end_without_recompilation() {
    // The declarative path: the mix arrives as a JSON list of specs.
    let json = r#"[
        {"method": "dense"},
        {"method": "cats", "density": 0.5},
        {"method": "gate", "density": 0.5},
        {"method": "dejavu", "density": 0.5, "hidden": 16, "epochs": 1}
    ]"#;
    let specs = StrategySpec::list_from_json(json).unwrap();
    assert_eq!(specs.len(), 4);
    let requests = fleet(&specs);
    let mut engine = engine(serve::resolve_axes(&specs).unwrap());
    let report = engine.run(requests.clone()).unwrap();
    assert_well_formed(&report, &requests);
}

#[test]
fn axis_incompatible_mixes_are_rejected_before_serving() {
    // DejaVu slices W_u by output neuron, DIP by input column: they cannot
    // share one column cache and the run must fail fast.
    let specs = [
        StrategySpec::Dip { density: 0.5 },
        StrategySpec::Predictive {
            density: 0.5,
            predictor: PredictorSpec::default(),
        },
    ];
    let mut engine = engine([SliceAxis::Input; 3]);
    let err = engine.run(fleet(&specs)).unwrap_err();
    assert!(matches!(err, ServeError::IncompatibleStrategies { .. }));
}

#[test]
fn weight_transforming_specs_are_rejected_per_request() {
    let mut engine = engine([SliceAxis::Input; 3]);
    let specs = [StrategySpec::SparseGpt {
        density: 0.5,
        pattern: serve::NmPattern::NofM { n: 2, m: 4 },
    }];
    let err = engine.run(fleet(&specs)).unwrap_err();
    assert!(matches!(err, ServeError::InvalidRequest { id: 0, .. }));
}
