//! Properties of the engine's event queue (`serve::event::EventQueue`).
//!
//! The open-loop driver's determinism rests on the queue's ordering
//! contract: events pop in `(time, push-sequence)` order, so equal-time
//! events fire in exactly the order they were scheduled, on every run.
//! These properties pin that contract down:
//!
//! 1. **Total order** — a full drain via `pop_next` yields times
//!    non-decreasing, with push order as the tie-break (a stable sort of
//!    the pushes by time).
//! 2. **`pop_due` ≡ drain** — popping due events at a sequence of
//!    advancing deadlines yields the same event sequence as a full drain,
//!    and `peek_time`/`pop_due` agree about what is due.
//! 3. **Arrival accounting** — `has_pending_arrival` tracks exactly the
//!    un-popped `Arrival` events; fault and completion events never count.

use proptest::prelude::*;
use serve::event::{Event, EventKind, EventQueue};

/// Maps a drawn `(code, index)` pair onto an event kind. Every kind embeds
/// the push index, so each pushed event is unique and the expected pop
/// order is fully determined.
fn kind_of(code: usize, i: usize) -> EventKind {
    match code {
        0 => EventKind::Arrival(i),
        1 => EventKind::CancelAt { request: i as u64 },
        2 => EventKind::DeadlineAt { request: i as u64 },
        3 => EventKind::UnitDone { tokens: i },
        _ => EventKind::RetryAt { slot: i },
    }
}

/// Times drawn from a coarse grid so equal-time collisions are common —
/// the tie-break is the property under test.
fn time_of(slot: usize) -> f64 {
    slot as f64 * 0.25
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pop_order_is_time_then_push_sequence(
        entries in prop::collection::vec((0usize..8, 0usize..5), 0..40)
    ) {
        let mut q = EventQueue::with_capacity(entries.len());
        for (i, (t, code)) in entries.iter().enumerate() {
            q.push_at(time_of(*t), kind_of(*code, i));
        }
        prop_assert_eq!(q.len(), entries.len());
        // expected order: a stable sort of the pushes by time (stable =
        // push order among equal times)
        let mut expected: Vec<(f64, usize)> = entries
            .iter()
            .enumerate()
            .map(|(i, (t, _))| (time_of(*t), i))
            .collect();
        expected.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut popped: Vec<Event> = Vec::new();
        while let Some(ev) = q.pop_next() {
            popped.push(ev);
        }
        prop_assert_eq!(popped.len(), expected.len());
        for (ev, (t, i)) in popped.iter().zip(&expected) {
            prop_assert_eq!(ev.time, *t);
            prop_assert_eq!(ev.kind, kind_of(entries[*i].1, *i));
        }
        prop_assert!(q.is_empty());
        prop_assert!(!q.has_pending_arrival());
    }

    #[test]
    fn pop_due_at_advancing_deadlines_equals_a_full_drain(
        entries in prop::collection::vec((0usize..8, 0usize..5), 0..40),
        step in 1usize..4,
    ) {
        let mut by_due = EventQueue::with_capacity(4);
        let mut by_next = EventQueue::with_capacity(4);
        for (i, (t, code)) in entries.iter().enumerate() {
            by_due.push_at(time_of(*t), kind_of(*code, i));
            by_next.push_at(time_of(*t), kind_of(*code, i));
        }
        let mut drained: Vec<Event> = Vec::new();
        let mut now = 0.0;
        while !by_due.is_empty() {
            while let Some(ev) = by_due.pop_due(now) {
                prop_assert!(ev.time <= now, "popped a not-yet-due event");
                drained.push(ev);
            }
            // pop_due and peek_time agree: everything still queued is in
            // the future
            if let Some(t) = by_due.peek_time() {
                prop_assert!(t > now, "peek says due but pop_due declined");
            }
            now += step as f64 * 0.25;
        }
        let mut full: Vec<Event> = Vec::new();
        while let Some(ev) = by_next.pop_next() {
            full.push(ev);
        }
        prop_assert_eq!(drained, full);
    }

    #[test]
    fn arrival_accounting_counts_only_arrival_events(
        entries in prop::collection::vec((0usize..8, 0usize..5), 0..40)
    ) {
        let mut q = EventQueue::with_capacity(entries.len());
        let mut arrivals_left = 0usize;
        for (i, (t, code)) in entries.iter().enumerate() {
            q.push_at(time_of(*t), kind_of(*code, i));
            if *code == 0 {
                arrivals_left += 1;
            }
            prop_assert_eq!(q.has_pending_arrival(), arrivals_left > 0);
        }
        while let Some(ev) = q.pop_next() {
            if matches!(ev.kind, EventKind::Arrival(_)) {
                arrivals_left -= 1;
            }
            prop_assert_eq!(q.has_pending_arrival(), arrivals_left > 0);
        }
        prop_assert_eq!(arrivals_left, 0);
    }
}
