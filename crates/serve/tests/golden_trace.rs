//! Golden decode traces: the exact greedy token stream of every servable
//! registry spec at a fixed model seed, pinned.
//!
//! Greedy decode is a pure function of (model, prompt, strategy); these
//! constants were produced by this very harness and freeze that function. A
//! kernel or scheduler refactor that *silently* changes decoded outputs —
//! a reordered reduction, a wrong mask, a corrupted KV entry — fails here
//! loudly instead of shipping as a quiet quality regression. (Bitwise
//! kernel-parity for the tensor layer lives in `kernel_parity.rs`; this
//! suite pins the end-to-end engine path, admission to sampled token.)

use serve::{GenRequest, PredictorSpec, ServeConfig, ServeEngine, StrategySpec};

const MODEL_SEED: u64 = 5;
const PROMPT: [u32; 3] = [1, 2, 3];
const NEW_TOKENS: usize = 8;

fn engine() -> ServeEngine {
    let config = lm::ModelConfig::tiny();
    let model = lm::build_synthetic(&config, MODEL_SEED).unwrap();
    let layout = serve::layout::layout_for_serving(
        &config,
        [lm::SliceAxis::Input; 3],
        4.0,
        2,
        config.max_seq_len,
    );
    let dram = layout.static_bytes + (layout.mlp_bytes() as f64 * 0.6) as u64;
    let device = hwsim::DeviceConfig::apple_a18(4.0).with_dram_bytes(dram);
    ServeEngine::new(model, ServeConfig::new(device).with_max_concurrent(2)).unwrap()
}

fn decode(spec: StrategySpec) -> Vec<u32> {
    let mut engine = engine();
    let report = engine
        .run(vec![GenRequest::new(0, PROMPT.to_vec(), NEW_TOKENS, spec)])
        .unwrap();
    report.requests[0].generated.clone()
}

/// Every servable spec of the registry and its pinned greedy output at
/// `MODEL_SEED`. Regenerate by running this test with `REGEN=1` in the
/// environment (it prints the table and fails).
fn golden() -> Vec<(StrategySpec, Vec<u32>)> {
    vec![
        (StrategySpec::Dense, vec![15, 52, 9, 38, 50, 7, 52, 62]),
        (
            StrategySpec::GluPruning { density: 0.75 },
            vec![15, 52, 9, 38, 50, 7, 41, 39],
        ),
        (
            StrategySpec::GluOracle { density: 0.5 },
            vec![15, 50, 50, 50, 52, 50, 52, 31],
        ),
        (
            StrategySpec::GatePruning { density: 0.5 },
            vec![26, 52, 39, 26, 58, 26, 41, 47],
        ),
        (
            StrategySpec::UpPruning { density: 0.5 },
            vec![26, 52, 15, 52, 17, 23, 39, 52],
        ),
        (
            StrategySpec::Cats { density: 0.5 },
            vec![15, 50, 50, 50, 52, 50, 24, 41],
        ),
        (
            StrategySpec::Predictive {
                density: 0.5,
                predictor: PredictorSpec {
                    hidden: Some(16),
                    epochs: Some(1),
                },
            },
            vec![52, 2, 17, 15, 15, 50, 9, 50],
        ),
        (
            StrategySpec::Dip { density: 0.5 },
            vec![15, 52, 31, 2, 50, 15, 52, 31],
        ),
        (
            StrategySpec::DipCacheAware {
                density: 0.5,
                gamma: 0.2,
            },
            vec![15, 52, 41, 38, 34, 15, 63, 27],
        ),
    ]
}

#[test]
fn per_strategy_decode_outputs_match_the_pinned_goldens() {
    let mut regen = String::new();
    let mut failures = Vec::new();
    for (spec, expected) in golden() {
        let actual = decode(spec);
        regen.push_str(&format!("{}: {:?}\n", spec.label(), actual));
        if actual != expected {
            failures.push(format!(
                "{}: got {:?}, pinned {:?}",
                spec.label(),
                actual,
                expected
            ));
        }
    }
    if std::env::var("REGEN").is_ok() {
        panic!("golden table:\n{regen}");
    }
    assert!(
        failures.is_empty(),
        "decode outputs drifted from the pinned goldens:\n{}",
        failures.join("\n")
    );
}
