//! Open-loop runs must be *bitwise* reproducible: the same workload seed and
//! engine config must yield an identical `ServeReport` — across repeated
//! runs, across engine instances, and whether or not the decode kernels fan
//! out across the worker pool's threads (mirroring
//! `experiments/tests/parallel_determinism.rs` for the open-loop driver).

use serve::telemetry::EngineTelemetry;
use serve::{
    AdmissionConfig, ArrivalProcess, RequestTemplate, SchedulerPolicy, ServeConfig, ServeEngine,
    ServeReport, SloTarget, StrategySpec, TelemetryConfig, Tier, Workload,
};

fn workload() -> Workload {
    Workload::new(
        0xfeed,
        0.04,
        ArrivalProcess::OnOff {
            rate_per_s: 900.0,
            on_s: 0.004,
            off_s: 0.006,
        },
        vec![
            RequestTemplate::new((2, 4), (4, 8), StrategySpec::Dense)
                .with_tier(Tier::Batch)
                .with_weight(2.0),
            RequestTemplate::new((1, 3), (3, 6), StrategySpec::Dip { density: 0.5 }),
            RequestTemplate::new(
                (1, 2),
                (2, 4),
                StrategySpec::DipCacheAware {
                    density: 0.5,
                    gamma: 0.2,
                },
            )
            .with_tier(Tier::Premium)
            .with_slo(SloTarget::new(0.05, 0.02)),
        ],
    )
}

/// How a run observes itself: no pipeline attached, a pipeline recording
/// into its ring, or a pipeline whose contents are additionally rendered
/// through every exporter after the run.
#[derive(Clone, Copy)]
enum Sink {
    None,
    Ring,
    Exporting,
}

fn run_with_sink(scheduler: SchedulerPolicy, sink: Sink) -> ServeReport {
    let config = lm::ModelConfig::tiny();
    let model = lm::build_synthetic(&config, 13).unwrap();
    let layout = serve::layout::layout_for_serving(
        &config,
        [lm::SliceAxis::Input; 3],
        4.0,
        4,
        config.max_seq_len,
    );
    let dram = layout.static_bytes + (layout.mlp_bytes() as f64 * 0.55) as u64;
    let device = hwsim::DeviceConfig::apple_a18(4.0).with_dram_bytes(dram);
    let mut engine = ServeEngine::new(
        model,
        ServeConfig::new(device)
            .with_max_concurrent(4)
            .with_scheduler(scheduler)
            .with_admission(
                AdmissionConfig::default()
                    .with_queue_capacity(16)
                    .with_rate_limit(700.0, 6.0),
            ),
    )
    .unwrap();
    if !matches!(sink, Sink::None) {
        engine.attach_telemetry(EngineTelemetry::new(
            TelemetryConfig::default().with_ring_capacity(1 << 12),
            &[("cell", "determinism")],
        ));
    }
    let report = engine.run_open_loop(&workload()).unwrap();
    if matches!(sink, Sink::Exporting) {
        // exporting is a read-only walk over the pipeline; exercise every
        // renderer and self-validate the text formats
        let tel = engine.take_telemetry().expect("telemetry was attached");
        let text = serve::render_prometheus(tel.registry());
        serve::check_exposition(&text).expect("exposition is well-formed");
        let trace = serve::render_trace_jsonl(&[("determinism", tel.ring())]);
        serve::check_jsonl(&trace).expect("trace JSONL is well-formed");
        let chrome = serve::render_chrome_trace(&[("determinism", tel.ring())]);
        serve::check_jsonl(&chrome).expect("chrome trace is one JSON value");
    }
    report
}

fn run_once(scheduler: SchedulerPolicy) -> ServeReport {
    run_with_sink(scheduler, Sink::None)
}

#[test]
fn same_seed_and_config_reproduce_the_report_bitwise() {
    for scheduler in [
        SchedulerPolicy::Fifo,
        SchedulerPolicy::ShortestRemainingFirst,
        SchedulerPolicy::PriorityPreemptive,
    ] {
        let a = run_once(scheduler);
        let b = run_once(scheduler);
        // ServeReport is plain data with derived PartialEq — full equality
        // means every latency, percentile, byte count, SLO flag and
        // preemption count is bit-identical
        assert_eq!(a, b, "open-loop run diverged under {scheduler}");
        assert!(
            a.open_loop.as_ref().unwrap().arrived > 0,
            "the workload actually produced traffic"
        );
    }
}

#[test]
fn reports_are_identical_across_thread_counts() {
    // The decode kernels route matvecs through the process-wide worker pool;
    // fanning independent open-loop runs across OS threads exercises the
    // pool under contention from several engines at once. Every thread's
    // report must equal the sequential baseline bitwise.
    let baseline = run_once(SchedulerPolicy::PriorityPreemptive);
    let reports: Vec<ServeReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| scope.spawn(|| run_once(SchedulerPolicy::PriorityPreemptive)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("open-loop thread panicked"))
            .collect()
    });
    for (i, report) in reports.iter().enumerate() {
        assert_eq!(&baseline, report, "thread {i} diverged from the baseline");
    }
}

#[test]
fn telemetry_determinism() {
    // Telemetry is write-only from the engine's side, so a run with no
    // pipeline, a run recording into a ring, and a run that additionally
    // renders every exporter must produce bitwise-identical ServeReports —
    // and the instrumented runs must stay identical across OS threads.
    for scheduler in [SchedulerPolicy::Fifo, SchedulerPolicy::PriorityPreemptive] {
        let bare = run_with_sink(scheduler, Sink::None);
        let ringed = run_with_sink(scheduler, Sink::Ring);
        let exported = run_with_sink(scheduler, Sink::Exporting);
        assert_eq!(bare, ringed, "attaching a ring sink perturbed {scheduler}");
        assert_eq!(bare, exported, "exporting sinks perturbed {scheduler}");
    }

    let baseline = run_with_sink(SchedulerPolicy::PriorityPreemptive, Sink::Exporting);
    let reports: Vec<ServeReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(|| run_with_sink(SchedulerPolicy::PriorityPreemptive, Sink::Exporting))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("instrumented open-loop thread panicked"))
            .collect()
    });
    for (i, report) in reports.iter().enumerate() {
        assert_eq!(&baseline, report, "instrumented thread {i} diverged");
    }
}

#[test]
fn different_seeds_actually_change_the_traffic() {
    // a determinism test that cannot fail is not a test: the report must be
    // *sensitive* to the seed for the bitwise equality above to mean much
    let a = run_once(SchedulerPolicy::Fifo);
    let mut w = workload();
    w.seed = 0xbeef;
    let config = lm::ModelConfig::tiny();
    let model = lm::build_synthetic(&config, 13).unwrap();
    let layout = serve::layout::layout_for_serving(
        &config,
        [lm::SliceAxis::Input; 3],
        4.0,
        4,
        config.max_seq_len,
    );
    let dram = layout.static_bytes + (layout.mlp_bytes() as f64 * 0.55) as u64;
    let device = hwsim::DeviceConfig::apple_a18(4.0).with_dram_bytes(dram);
    let mut engine =
        ServeEngine::new(model, ServeConfig::new(device).with_max_concurrent(4)).unwrap();
    let b = engine.run_open_loop(&w).unwrap();
    assert_ne!(a, b, "a different workload seed must change the report");
}
