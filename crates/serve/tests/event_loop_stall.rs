//! Event-driven core invariants: chunked prefill bounds the decode tail,
//! preemption KV swaps carry a priced virtual cost, park/resume conserves
//! swap bytes, and zero-output sessions never count as SLO-met.

use serve::{
    ArrivalProcess, EngineCore, GenRequest, RequestTemplate, SchedulerPolicy, ServeConfig,
    ServeEngine, SloTarget, StrategySpec, Tier, Workload,
};

/// A tiny model whose KV window holds a 56-token prompt (the test preset
/// caps at 64), on the usual DRAM-constrained serving device.
fn stall_config() -> lm::ModelConfig {
    let mut config = lm::ModelConfig::tiny();
    config.max_seq_len = 96;
    config
}

fn stall_device(config: &lm::ModelConfig, slots: usize, kv_budget: usize) -> hwsim::DeviceConfig {
    let layout =
        serve::layout::layout_for_serving(config, [lm::SliceAxis::Input; 3], 4.0, slots, kv_budget);
    let dram = layout.static_bytes + (layout.mlp_bytes() as f64 * 0.55) as u64;
    hwsim::DeviceConfig::apple_a18(4.0).with_dram_bytes(dram)
}

/// Six interactive decoders are mid-generation when one premium tenant
/// arrives with a 56-token prompt. The step-loop core serves the prompt as
/// one monolithic chunk — head-of-line blocking every decoder for the whole
/// prefill — while the event-driven core slices it into 8-token chunks with
/// a decode round between chunks. Same tokens, same aggregate tok/s; only
/// the ordering (and so the decode TBT tail) may differ.
#[test]
fn chunked_prefill_cuts_decode_tbt_p99_at_equal_aggregate_throughput() {
    let config = stall_config();
    let decoders = 6usize;
    let decode_tokens = 48usize;
    let long_prompt = 56usize;
    let chunk = 8usize;
    let slots = decoders + 1;
    let kv_budget = 64usize;
    let device = stall_device(&config, slots, kv_budget);

    let decoder_fleet = || -> Vec<GenRequest> {
        (0..decoders)
            .map(|i| {
                GenRequest::new(
                    i as u64,
                    vec![1 + i as u32, 2 + i as u32],
                    decode_tokens,
                    StrategySpec::Dense,
                )
                .with_tier(Tier::Standard)
            })
            .collect()
    };

    // probe the decoders alone so the premium arrival lands mid-decode on
    // the deterministic virtual clock
    let solo_makespan = {
        let model = lm::build_synthetic(&config, 13).unwrap();
        let mut probe = ServeEngine::new(
            model,
            ServeConfig::new(device.clone())
                .with_max_concurrent(slots)
                .with_kv_budget(kv_budget),
        )
        .unwrap();
        probe
            .run_open_loop_requests(decoder_fleet())
            .unwrap()
            .makespan_s
    };

    let run_one = |core: EngineCore| -> serve::ServeReport {
        let model = lm::build_synthetic(&config, 13).unwrap();
        let mut engine = ServeEngine::new(
            model,
            ServeConfig::new(device.clone())
                .with_max_concurrent(slots)
                .with_scheduler(SchedulerPolicy::PriorityPreemptive)
                .with_kv_budget(kv_budget)
                .with_engine_core(core)
                .with_prefill_chunk(chunk),
        )
        .unwrap();
        let mut arrivals = decoder_fleet();
        let prompt: Vec<u32> = (0..long_prompt as u32)
            .map(|i| 1 + (i * 5 + 3) % (config.vocab_size as u32 - 1))
            .collect();
        arrivals.push(
            GenRequest::new(decoders as u64, prompt, 8, StrategySpec::Dense)
                .with_tier(Tier::Premium)
                .at(0.25 * solo_makespan),
        );
        engine.run_open_loop_requests(arrivals).unwrap()
    };

    let event = run_one(EngineCore::EventDriven);
    let step = run_one(EngineCore::StepLoop);
    let event_ol = event.open_loop.as_ref().unwrap();
    let step_ol = step.open_loop.as_ref().unwrap();

    let stall_ratio = step_ol.tbt.p99_s / event_ol.tbt.p99_s.max(f64::MIN_POSITIVE);
    assert!(
        stall_ratio >= 2.0,
        "chunked prefill must cut decode TBT p99 at least 2x: step {:.3}us / event {:.3}us = {:.2}x",
        1e6 * step_ol.tbt.p99_s,
        1e6 * event_ol.tbt.p99_s,
        stall_ratio
    );

    // chunking reorders the same work: aggregate throughput must agree
    let tps_ratio = event.aggregate_tps / step.aggregate_tps;
    assert!(
        (tps_ratio - 1.0).abs() <= 0.05,
        "equal work must give equal tok/s: event {:.2} vs step {:.2}",
        event.aggregate_tps,
        step.aggregate_tps
    );
    assert_eq!(
        event.total_generated_tokens, step.total_generated_tokens,
        "both cores serve the same token set"
    );

    // the per-session token streams are identical — only timing moved
    for r in &event.requests {
        let s = step.requests.iter().find(|s| s.id == r.id).unwrap();
        assert_eq!(r.generated, s.generated, "request {}", r.id);
    }
}

/// Preemption is not free: at equal served work, a fleet that parks and
/// resumes sessions finishes strictly later on the virtual clock than one
/// that does not, by the priced KV swap time — and the swap bytes agree
/// between the report and the telemetry counter.
#[test]
fn preempting_fleets_run_strictly_slower_than_non_preempting_at_equal_work() {
    let config = stall_config();
    let kv_budget = 64usize;
    let device = stall_device(&config, 2, kv_budget);

    let engine_with = |scheduler: SchedulerPolicy, instrument: bool| -> ServeEngine {
        let model = lm::build_synthetic(&config, 13).unwrap();
        let mut engine = ServeEngine::new(
            model,
            ServeConfig::new(device.clone())
                .with_max_concurrent(1)
                .with_scheduler(scheduler)
                .with_kv_budget(kv_budget),
        )
        .unwrap();
        if instrument {
            engine.attach_telemetry(serve::telemetry::EngineTelemetry::new(
                serve::TelemetryConfig::default(),
                &[],
            ));
        }
        engine
    };
    let batch_job =
        || GenRequest::new(0, vec![1, 5, 9], 20, StrategySpec::Dense).with_tier(Tier::Batch);
    let solo_makespan = engine_with(SchedulerPolicy::PriorityPreemptive, false)
        .run_open_loop_requests(vec![batch_job()])
        .unwrap()
        .makespan_s;
    let arrivals = || -> Vec<GenRequest> {
        let mut arrivals = vec![batch_job()];
        // second-half fractions: the first prefill tokens run on a cold
        // column cache, so earlier interrupts pile up in one park window
        for (i, frac) in [0.5, 0.7, 0.9].iter().enumerate() {
            arrivals.push(
                GenRequest::new(1 + i as u64, vec![2 + i as u32], 2, StrategySpec::Dense)
                    .with_tier(Tier::Premium)
                    .at(frac * solo_makespan),
            );
        }
        arrivals
    };

    let mut preempting = engine_with(SchedulerPolicy::PriorityPreemptive, true);
    let preempted = preempting.run_open_loop_requests(arrivals()).unwrap();
    let mut fifo = engine_with(SchedulerPolicy::Fifo, false);
    let queued = fifo.run_open_loop_requests(arrivals()).unwrap();

    let pre_ol = preempted.open_loop.as_ref().unwrap();
    let fifo_ol = queued.open_loop.as_ref().unwrap();
    assert!(pre_ol.preemptions >= 2, "got {}", pre_ol.preemptions);
    assert_eq!(pre_ol.resumes, pre_ol.preemptions);
    assert_eq!(fifo_ol.preemptions, 0);

    // every preemption carried a non-zero priced cost
    assert!(pre_ol.kv_swap_s > 0.0);
    assert!(pre_ol.kv_swap_s / pre_ol.preemptions as f64 > 0.0);
    assert_eq!(fifo_ol.kv_swap_s, 0.0);

    // equal work (identical token sets, order-independent Dense pricing):
    // the swap time is the whole difference, so preempting is strictly
    // slower and by at least half the priced swap time
    assert_eq!(
        preempted.total_generated_tokens,
        queued.total_generated_tokens
    );
    assert!(
        preempted.makespan_s > queued.makespan_s,
        "preempting {:.6e} vs non-preempting {:.6e}",
        preempted.makespan_s,
        queued.makespan_s
    );
    assert!(
        preempted.makespan_s - queued.makespan_s >= 0.5 * pre_ol.kv_swap_s,
        "makespan gap {:.3e} must reflect the priced swaps {:.3e}",
        preempted.makespan_s - queued.makespan_s,
        pre_ol.kv_swap_s
    );

    // the priced bytes land in the flash totals and match telemetry's count
    assert!(pre_ol.kv_swap_bytes > 0.0);
    assert!(preempted.flash_bytes >= pre_ol.kv_swap_bytes);
    let mut tel = preempting.take_telemetry().unwrap();
    let counted = {
        let registry = &mut tel.pipeline_mut().registry;
        let id = registry.counter("serve_kv_swap_bytes_total", "");
        registry.counter_value(id)
    };
    assert_eq!(
        counted, pre_ol.kv_swap_bytes,
        "telemetry-counted swap bytes must equal the priced bytes"
    );
}

/// Park/resume churn conserves swap bytes: over a drained run every spill
/// is resumed exactly once with its position frozen, so spill and reload
/// bytes agree and nothing is double-counted.
#[test]
fn park_resume_churn_conserves_kv_swap_bytes() {
    let config = lm::ModelConfig::tiny();
    let slots = 2;
    let device = stall_device(&config, slots, config.max_seq_len);
    let mut engine = ServeEngine::new(
        lm::build_synthetic(&config, 7).unwrap(),
        ServeConfig::new(device.clone())
            .with_max_concurrent(slots)
            .with_scheduler(SchedulerPolicy::PriorityPreemptive),
    )
    .unwrap();

    // calibrate the burst rate to the deterministic service rate so the
    // on-windows genuinely overload the two slots
    let per_token_s = {
        let mut probe = ServeEngine::new(
            lm::build_synthetic(&config, 7).unwrap(),
            ServeConfig::new(device).with_max_concurrent(1),
        )
        .unwrap();
        let report = probe
            .run(vec![GenRequest::new(
                0,
                vec![1, 2],
                30,
                StrategySpec::Dense,
            )])
            .unwrap();
        report.makespan_s / 32.0
    };
    let on_s = 120.0 * per_token_s;
    let workload = Workload::new(
        21,
        6.0 * on_s,
        ArrivalProcess::OnOff {
            rate_per_s: 1.0 / (3.0 * per_token_s),
            on_s,
            off_s: on_s,
        },
        vec![
            RequestTemplate::new((2, 4), (6, 12), StrategySpec::Dense)
                .with_tier(Tier::Batch)
                .with_weight(2.0),
            RequestTemplate::new((1, 2), (2, 4), StrategySpec::Dense).with_tier(Tier::Premium),
        ],
    );

    let report = engine.run_open_loop(&workload).unwrap();
    let ol = report.open_loop.as_ref().unwrap();
    assert!(
        ol.preemptions >= 2,
        "churn workload must preempt repeatedly"
    );
    assert_eq!(ol.resumes, ol.preemptions, "every park resumed at drain");
    assert!(ol.kv_spill_bytes > 0.0);

    // conservation: positions are frozen while parked, so the reload moves
    // exactly the bytes the spill did (summation order may differ)
    let rel = (ol.kv_spill_bytes - ol.kv_reload_bytes).abs() / ol.kv_spill_bytes;
    assert!(
        rel < 1e-9,
        "spill {} vs reload {} bytes",
        ol.kv_spill_bytes,
        ol.kv_reload_bytes
    );
    assert_eq!(
        ol.kv_swap_bytes,
        ol.kv_spill_bytes + ol.kv_reload_bytes,
        "swap total double-counts or drops a direction"
    );
    assert!(report.flash_bytes >= ol.kv_swap_bytes);
}

/// A session that completes without generating a single token has nothing
/// to meet a latency target *with*: it must never count as SLO-met, however
/// generous its target.
#[test]
fn zero_output_sessions_never_count_as_slo_met() {
    let config = lm::ModelConfig::tiny();
    let device = stall_device(&config, 2, config.max_seq_len);
    let mut engine = ServeEngine::new(
        lm::build_synthetic(&config, 13).unwrap(),
        ServeConfig::new(device).with_max_concurrent(2),
    )
    .unwrap();
    let generous = SloTarget::new(1e6, 1e6);
    let report = engine
        .run_open_loop_requests(vec![
            // prefill-only request: completes with generated == 0
            GenRequest::new(0, vec![1, 2, 3], 0, StrategySpec::Dense).with_slo(generous),
            GenRequest::new(1, vec![4, 5], 4, StrategySpec::Dense).with_slo(generous),
        ])
        .unwrap();

    let ol = report.open_loop.as_ref().unwrap();
    assert_eq!(ol.completed, 2, "both sessions drained");
    let empty = report.requests.iter().find(|r| r.id == 0).unwrap();
    let normal = report.requests.iter().find(|r| r.id == 1).unwrap();
    assert_eq!(empty.generated_tokens, 0);
    assert!(
        !empty.slo_met,
        "a zero-output session met a latency SLO it never produced a token for"
    );
    assert!(normal.generated_tokens > 0);
    assert!(normal.slo_met, "the generous target holds for real output");
    assert_eq!(ol.slo_attainment, 0.5);
}
