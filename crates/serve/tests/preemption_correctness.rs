//! Preemption must be *invisible* in the token stream: a session that is
//! parked and resumed mid-generation produces exactly the tokens of an
//! uninterrupted run, and the decode-state pool neither leaks nor corrupts
//! states under heavy park/resume churn.

use serve::{
    ArrivalProcess, GenRequest, RequestTemplate, SchedulerPolicy, ServeConfig, ServeEngine,
    StrategySpec, Tier, Workload,
};

fn engine_with(slots: usize, scheduler: SchedulerPolicy, model_seed: u64) -> ServeEngine {
    let config = lm::ModelConfig::tiny();
    let model = lm::build_synthetic(&config, model_seed).unwrap();
    let layout = serve::layout::layout_for_serving(
        &config,
        [lm::SliceAxis::Input; 3],
        4.0,
        slots,
        config.max_seq_len,
    );
    let dram = layout.static_bytes + (layout.mlp_bytes() as f64 * 0.6) as u64;
    let device = hwsim::DeviceConfig::apple_a18(4.0).with_dram_bytes(dram);
    ServeEngine::new(
        model,
        ServeConfig::new(device)
            .with_max_concurrent(slots)
            .with_scheduler(scheduler),
    )
    .unwrap()
}

/// Decodes `n` tokens greedily outside the engine — the ground truth a
/// session (preempted or not) must match. Greedy decode with an
/// activation-driven strategy is a pure function of (model, prompt).
fn reference_tokens(model_seed: u64, prompt: &[u32], n: usize, spec: StrategySpec) -> Vec<u32> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let config = lm::ModelConfig::tiny();
    let model = lm::build_synthetic(&config, model_seed).unwrap();
    let mut factory = serve::StrategyFactory::new();
    let mut strategy = factory.instantiate(&spec, &model, &[], None).unwrap();
    let mut state = model.new_decode_state();
    let mut scratch = lm::DecodeScratch::for_model(&model);
    let mut rng = StdRng::seed_from_u64(0);
    let mut out = Vec::new();
    let mut last_logits: Vec<f32> = Vec::new();
    for &t in prompt {
        model
            .forward_token_into(t, &mut state, strategy.as_mut(), &mut scratch)
            .unwrap();
        last_logits.clear();
        last_logits.extend_from_slice(&scratch.logits);
    }
    for _ in 0..n {
        let t = lm::model::sample_from_logits(&last_logits, 0.0, &mut rng).unwrap();
        out.push(t);
        model
            .forward_token_into(t, &mut state, strategy.as_mut(), &mut scratch)
            .unwrap();
        last_logits.clear();
        last_logits.extend_from_slice(&scratch.logits);
    }
    out
}

#[test]
fn a_preempted_session_reproduces_the_uninterrupted_token_stream() {
    for spec in [StrategySpec::Dense, StrategySpec::Dip { density: 0.5 }] {
        let prompt = vec![1u32, 5, 9];
        let n_tokens = 20;
        let reference = reference_tokens(11, &prompt, n_tokens, spec);
        assert_eq!(reference.len(), n_tokens);

        // Calibrate: how long does the batch job take alone? (The virtual
        // clock is a deterministic simulation output, so probing it keeps
        // the test robust without wall-clock flakiness.)
        let solo_makespan = {
            let mut probe = engine_with(1, SchedulerPolicy::PriorityPreemptive, 11);
            probe
                .run_open_loop_requests(vec![
                    GenRequest::new(0, prompt.clone(), n_tokens, spec).with_tier(Tier::Batch)
                ])
                .unwrap()
                .makespan_s
        };

        // One slot: the batch job must be preempted for each premium
        // arrival and resumed in between — several park/resume cycles.
        let mut engine = engine_with(1, SchedulerPolicy::PriorityPreemptive, 11);
        let mut arrivals =
            vec![GenRequest::new(0, prompt.clone(), n_tokens, spec).with_tier(Tier::Batch)];
        for (i, frac) in [0.25, 0.45, 0.65].iter().enumerate() {
            arrivals.push(
                GenRequest::new(1 + i as u64, vec![2 + i as u32], 2, spec)
                    .with_tier(Tier::Premium)
                    .at(frac * solo_makespan),
            );
        }
        let report = engine.run_open_loop_requests(arrivals).unwrap();
        let ol = report.open_loop.as_ref().unwrap();
        assert!(
            ol.preemptions >= 2,
            "{}: expected repeated preemption, got {}",
            spec.label(),
            ol.preemptions
        );
        let batch = report.requests.iter().find(|r| r.id == 0).unwrap();
        assert!(batch.preemptions >= 2, "{}", spec.label());
        assert_eq!(
            batch.generated,
            reference,
            "{}: preemption changed the token stream",
            spec.label()
        );

        // the same request served with no interference agrees too
        let mut quiet = engine_with(1, SchedulerPolicy::PriorityPreemptive, 11);
        let quiet_report = quiet
            .run_open_loop_requests(vec![
                GenRequest::new(0, prompt.clone(), n_tokens, spec).with_tier(Tier::Batch)
            ])
            .unwrap();
        assert_eq!(quiet_report.open_loop.as_ref().unwrap().preemptions, 0);
        assert_eq!(quiet_report.requests[0].generated, reference);

        // ...and the closed-batch path produces the identical stream
        let mut closed = engine_with(1, SchedulerPolicy::Fifo, 11);
        let closed_report = closed
            .run(vec![GenRequest::new(0, prompt.clone(), n_tokens, spec)])
            .unwrap();
        assert_eq!(closed_report.requests[0].generated, reference);
    }
}

/// Paged-KV park/resume churn: preempting a paged session spills its pages
/// back to the pool and resuming reloads them, so (a) the paged backend
/// stays *report-invisible* — the same churn workload produces the
/// bitwise-identical report a flat engine does — and (b) the pool balances
/// after the run drains: no page leaks out of the
/// acquire/park/resume/release cycle, and with prefix sharing on only the
/// registry's mapped prefix pages remain held.
#[test]
fn paged_pool_balances_under_preemption_churn() {
    let slots = 2;
    let paged_engine_with = |sharing: bool| -> ServeEngine {
        let config = lm::ModelConfig::tiny();
        let model = lm::build_synthetic(&config, 7).unwrap();
        let layout = serve::layout::layout_for_serving(
            &config,
            [lm::SliceAxis::Input; 3],
            4.0,
            slots,
            config.max_seq_len,
        );
        let dram = layout.static_bytes + (layout.mlp_bytes() as f64 * 0.6) as u64;
        let device = hwsim::DeviceConfig::apple_a18(4.0).with_dram_bytes(dram);
        let mut serve_config = ServeConfig::new(device)
            .with_max_concurrent(slots)
            .with_scheduler(SchedulerPolicy::PriorityPreemptive)
            .with_paged_kv(4, 4096);
        if sharing {
            serve_config = serve_config.with_prefix_sharing();
        }
        ServeEngine::new(model, serve_config).unwrap()
    };

    // Calibrate the arrival rate to the deterministic service rate so the
    // bursts genuinely overload the two slots (same shape as the flat
    // churn test above).
    let per_token_s = {
        let mut probe = engine_with(1, SchedulerPolicy::Fifo, 7);
        let report = probe
            .run(vec![GenRequest::new(
                0,
                vec![1, 2],
                30,
                StrategySpec::Dense,
            )])
            .unwrap();
        report.makespan_s / 32.0
    };
    let on_s = 120.0 * per_token_s;
    let workload = Workload::new(
        21,
        6.0 * on_s,
        ArrivalProcess::OnOff {
            rate_per_s: 1.0 / (3.0 * per_token_s),
            on_s,
            off_s: on_s,
        },
        vec![
            RequestTemplate::new((2, 4), (6, 12), StrategySpec::Dense)
                .with_tier(Tier::Batch)
                .with_weight(2.0)
                .with_shared_prefix(4),
            RequestTemplate::new((1, 2), (2, 4), StrategySpec::Dense).with_tier(Tier::Premium),
        ],
    );

    let mut flat = engine_with(slots, SchedulerPolicy::PriorityPreemptive, 7);
    let flat_report = flat.run_open_loop(&workload).unwrap();
    assert!(
        flat_report.open_loop.as_ref().unwrap().preemptions > 0,
        "churn workload must preempt"
    );

    // No sharing: the paged backend is invisible in the report, and after
    // the run drains every page is back in the free list.
    let mut paged = paged_engine_with(false);
    let paged_report = paged.run_open_loop(&workload).unwrap();
    assert!(paged_report.open_loop.as_ref().unwrap().preemptions > 0);
    let mut scrubbed = paged_report.clone();
    scrubbed.paged_kv = None;
    assert_eq!(
        scrubbed, flat_report,
        "paged churn must reproduce the flat report bitwise"
    );
    let pool = paged.kv_page_pool().expect("paged engine has a pool");
    assert_eq!(
        pool.borrow().pages_in_use(),
        0,
        "park/resume churn leaked pages"
    );
    assert_eq!(paged.state_pool().parked_count(), 0);
    assert_eq!(
        paged.state_pool().resume_count(),
        paged.state_pool().park_count()
    );

    // Sharing on: every per-request token stream still matches the flat
    // run bitwise, and after the drain only the registry's prefix pages
    // remain mapped.
    let mut shared = paged_engine_with(true);
    let shared_report = shared.run_open_loop(&workload).unwrap();
    assert!(shared_report.open_loop.as_ref().unwrap().preemptions > 0);
    for r in &shared_report.requests {
        let reference = flat_report
            .requests
            .iter()
            .find(|f| f.id == r.id)
            .expect("same completion set");
        assert_eq!(
            r.generated, reference.generated,
            "request {}: prefix sharing changed the token stream",
            r.id
        );
    }
    let stats = shared_report.paged_kv.as_ref().unwrap();
    assert!(stats.prefix_hits > 0, "the shared template must hit");
    assert!(stats.pages_at_end > 0, "registry retains the prefix pages");
    let pool = shared.kv_page_pool().expect("paged engine has a pool");
    assert_eq!(
        pool.borrow().pages_in_use(),
        stats.pages_at_end,
        "only the registry may hold pages after the drain"
    );
    assert_eq!(shared.state_pool().parked_count(), 0);
}

#[test]
fn pool_states_never_leak_under_preemption_churn() {
    let slots = 2;

    // Calibrate the arrival rate to the engine's deterministic service rate
    // so the bursts genuinely overload the two slots.
    let per_token_s = {
        let mut probe = engine_with(1, SchedulerPolicy::Fifo, 7);
        let report = probe
            .run(vec![GenRequest::new(
                0,
                vec![1, 2],
                30,
                StrategySpec::Dense,
            )])
            .unwrap();
        report.makespan_s / 32.0
    };
    let on_s = 120.0 * per_token_s;

    let mut engine = engine_with(slots, SchedulerPolicy::PriorityPreemptive, 7);
    let workload = Workload::new(
        21,
        6.0 * on_s, // three on/off cycles
        ArrivalProcess::OnOff {
            // a ~9-token request every ~3 token-times, onto 2 slots: the
            // on-windows pile up a queue that outlives them
            rate_per_s: 1.0 / (3.0 * per_token_s),
            on_s,
            off_s: on_s,
        },
        vec![
            RequestTemplate::new((2, 4), (6, 12), StrategySpec::Dense)
                .with_tier(Tier::Batch)
                .with_weight(2.0),
            RequestTemplate::new((1, 2), (2, 4), StrategySpec::Dense).with_tier(Tier::Premium),
        ],
    );

    let mut builds_after_first = 0;
    for round in 0..3 {
        let report = engine.run_open_loop(&workload).unwrap();
        let ol = report.open_loop.as_ref().unwrap();
        assert_eq!(ol.admitted, ol.completed, "round {round} drained");
        assert!(ol.preemptions > 0, "round {round} preempted");
        // no state stays parked once the run drains
        assert_eq!(engine.state_pool().parked_count(), 0);
        // everything the pool ever built is either idle or accounted for —
        // nothing leaks out of the acquire/park/resume/release cycle
        assert!(
            engine.state_pool().idle() as u64 <= engine.state_pool().build_count(),
            "idle {} > built {}",
            engine.state_pool().idle(),
            engine.state_pool().build_count()
        );
        if round == 0 {
            builds_after_first = engine.state_pool().build_count();
        } else {
            assert_eq!(
                engine.state_pool().build_count(),
                builds_after_first,
                "steady-state rounds must reuse pooled states, not build"
            );
        }
    }
    assert_eq!(
        engine.state_pool().resume_count(),
        engine.state_pool().park_count(),
        "every park across every round was resumed"
    );
}
