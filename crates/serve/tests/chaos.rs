//! Chaos suite: deterministic fault injection end to end.
//!
//! A fault plan is part of the experiment, not noise on top of it — so a
//! chaos run must satisfy the same contracts as a clean one:
//!
//! * **Conservation** — every arrival ends exactly one way:
//!   `arrived = shed + completed + cancelled + deadline_expired + failed`,
//!   globally and per tier, no matter which faults fire.
//! * **No leaks** — at drain the decode-state pool holds no parked entries
//!   and the paged-KV pool holds no pages (nothing here registers shared
//!   prefixes, so zero pages may remain pinned).
//! * **Bitwise determinism** — the same `(workload, config, plan)` yields
//!   an identical `ServeReport` across repeated runs and across OS threads,
//!   and an *empty* plan is indistinguishable from no plan at all.
//! * **Replay correctness** — page loss and slow lanes cost time, never
//!   tokens: greedy outputs match the fault-free run bitwise.
//!
//! Satellite: the decode-state pool survives park → cancel → reclaim churn
//! across 1000 sessions without growing past its high-water mark.

use serve::{
    AdmissionConfig, ArrivalProcess, DegradePolicy, FaultPlan, FinishReason, RequestTemplate,
    RetryPolicy, SchedulerPolicy, ServeConfig, ServeEngine, ServeReport, SloTarget, SlowLaneWindow,
    StrategySpec, Tier, Workload,
};

/// The determinism workload plus the robustness template fields: premium
/// requests carry a declared deadline, batch requests a client patience cap.
fn chaos_workload() -> Workload {
    Workload::new(
        0xfeed,
        0.04,
        ArrivalProcess::OnOff {
            rate_per_s: 900.0,
            on_s: 0.004,
            off_s: 0.006,
        },
        vec![
            RequestTemplate::new((4, 8), (8, 16), StrategySpec::Dense)
                .with_tier(Tier::Batch)
                .with_weight(2.0)
                .with_cancel_after_tokens(5),
            RequestTemplate::new((2, 6), (8, 12), StrategySpec::Dip { density: 0.5 }),
            RequestTemplate::new((2, 4), (6, 10), StrategySpec::Dense)
                .with_tier(Tier::Premium)
                .with_slo(SloTarget::new(0.05, 0.02))
                .with_deadline_ms(0.2),
        ],
    )
}

/// A plan that exercises every fault type within the workload's timescale.
/// The virtual clock here runs in *microseconds* per token (a tiny model on
/// a fast simulated device), so fault windows are a few hundred
/// microseconds — wide enough to straddle a session's whole life, tight
/// enough to strike while it is live.
fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan {
        seed,
        cancel_rate: 0.25,
        cancel_window_s: 0.0002,
        deadline_rate: 0.2,
        deadline_window_s: 0.00015,
        abort_rate: 0.25,
        abort_window_s: 0.0002,
        page_loss_every_s: 0.0002,
        page_loss_horizon_s: 0.05,
        slow_lane: Some(SlowLaneWindow {
            start_s: 0.002,
            duration_s: 0.01,
            factor: 3.0,
        }),
    }
}

fn engine_with(
    admission: AdmissionConfig,
    plan: Option<FaultPlan>,
    retry: Option<RetryPolicy>,
    degrade: Option<DegradePolicy>,
) -> ServeEngine {
    let config = lm::ModelConfig::tiny();
    let model = lm::build_synthetic(&config, 13).unwrap();
    let layout = serve::layout::layout_for_serving(
        &config,
        [lm::SliceAxis::Input; 3],
        4.0,
        4,
        config.max_seq_len,
    );
    let dram = layout.static_bytes + (layout.mlp_bytes() as f64 * 0.55) as u64;
    let device = hwsim::DeviceConfig::apple_a18(4.0).with_dram_bytes(dram);
    let mut cfg = ServeConfig::new(device)
        .with_max_concurrent(4)
        .with_scheduler(SchedulerPolicy::PriorityPreemptive)
        .with_paged_kv(8, 4096)
        .with_admission(admission);
    if let Some(p) = plan {
        cfg = cfg.with_fault_plan(p);
    }
    if let Some(r) = retry {
        cfg = cfg.with_retry(r);
    }
    if let Some(d) = degrade {
        cfg = cfg.with_degrade(d);
    }
    ServeEngine::new(model, cfg).unwrap()
}

fn full_chaos_run(seed: u64) -> (ServeEngine, ServeReport) {
    let mut engine = engine_with(
        AdmissionConfig::default()
            .with_queue_capacity(16)
            .with_rate_limit(700.0, 6.0),
        Some(chaos_plan(seed)),
        Some(RetryPolicy {
            max_attempts: 3,
            backoff_base_s: 0.002,
        }),
        Some(DegradePolicy {
            queue_depth_threshold: 2,
            max_steps: 2,
        }),
    );
    let report = engine.run_open_loop(&chaos_workload()).unwrap();
    (engine, report)
}

fn assert_conserved(report: &ServeReport) {
    let ol = report.open_loop.as_ref().expect("open-loop stats");
    assert_eq!(
        ol.arrived,
        ol.shed + ol.completed + ol.cancelled + ol.deadline_expired + ol.failed,
        "every arrival must end exactly one way"
    );
    for tier in &ol.tiers {
        assert_eq!(
            tier.arrived,
            tier.shed + tier.completed + tier.cancelled + tier.expired + tier.failed,
            "tier {} leaks requests",
            tier.tier
        );
    }
    // the per-request rows agree with the counters (queued withdrawals
    // produce no row, so rows bound the counters from below)
    let by_finish = |f: FinishReason| report.requests.iter().filter(|r| r.finish == f).count();
    assert_eq!(by_finish(FinishReason::Completed), ol.completed);
    assert!(by_finish(FinishReason::Cancelled) <= ol.cancelled);
    assert!(by_finish(FinishReason::DeadlineExpired) <= ol.deadline_expired);
    assert!(by_finish(FinishReason::Failed) <= ol.failed);
}

fn assert_leak_free(engine: &ServeEngine, report: &ServeReport) {
    assert_eq!(
        engine.state_pool().parked_count(),
        0,
        "a drained engine must not retain parked decode states"
    );
    let paged = report.paged_kv.as_ref().expect("paged stats");
    assert_eq!(
        paged.pages_at_end, 0,
        "no prefix sharing here, so every page must return to the pool"
    );
    assert!(paged.pages_high_water <= paged.pool_pages);
}

#[test]
fn chaos_conserves_every_request_and_leaks_nothing() {
    let mut fault_kinds_seen = 0usize;
    for seed in [1u64, 7, 42] {
        let (engine, report) = full_chaos_run(seed);
        assert_conserved(&report);
        assert_leak_free(&engine, &report);
        let ol = report.open_loop.as_ref().unwrap();
        assert!(ol.arrived > 0, "the workload produced traffic");
        fault_kinds_seen += usize::from(ol.cancelled > 0)
            + usize::from(ol.deadline_expired > 0)
            + usize::from(ol.failed > 0 || ol.retries > 0)
            + usize::from(ol.kv_pages_lost > 0);
        // degraded sessions are tallied consistently across the report
        let degraded_rows = report.requests.iter().filter(|r| r.degraded).count();
        assert_eq!(ol.degraded_sessions, degraded_rows);
        assert_eq!(
            ol.degraded_sessions,
            ol.tiers.iter().map(|t| t.degraded).sum::<usize>()
        );
    }
    assert!(
        fault_kinds_seen >= 4,
        "across three seeds the plan must actually strike (saw {fault_kinds_seen} kind-hits)"
    );
}

#[test]
fn chaos_reports_are_bitwise_identical_across_runs_and_threads() {
    let baseline = full_chaos_run(7).1;
    let again = full_chaos_run(7).1;
    assert_eq!(baseline, again, "a chaos run diverged between repeats");
    let reports: Vec<ServeReport> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|_| scope.spawn(|| full_chaos_run(7).1))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("chaos thread panicked"))
            .collect()
    });
    for (i, report) in reports.iter().enumerate() {
        assert_eq!(&baseline, report, "chaos thread {i} diverged");
    }
    // and the schedule is seed-sensitive, so the equality above has teeth
    assert_ne!(baseline, full_chaos_run(8).1);
}

#[test]
fn an_empty_fault_plan_is_bitwise_invisible() {
    let admission = || {
        AdmissionConfig::default()
            .with_queue_capacity(16)
            .with_rate_limit(700.0, 6.0)
    };
    let without = engine_with(admission(), None, None, None)
        .run_open_loop(&chaos_workload())
        .unwrap();
    let with_empty = engine_with(admission(), Some(FaultPlan::none()), None, None)
        .run_open_loop(&chaos_workload())
        .unwrap();
    assert_eq!(
        without, with_empty,
        "an empty plan must not perturb the run at all"
    );
    // the workload's own deadlines/patience still apply, but nothing the
    // plan owns may fire
    let ol = with_empty.open_loop.as_ref().unwrap();
    assert_eq!(ol.failed + ol.retries, 0);
    assert_eq!(ol.kv_pages_lost, 0);
}

#[test]
fn workload_deadlines_and_patience_shape_finishes() {
    // no injected faults: the *workload itself* declares a tight premium
    // deadline and a one-token batch patience cap
    let workload = Workload::new(
        0xfeed,
        0.04,
        ArrivalProcess::Steady { rate_per_s: 900.0 },
        vec![
            RequestTemplate::new((2, 4), (2, 4), StrategySpec::Dense)
                .with_tier(Tier::Batch)
                .with_cancel_after_tokens(1),
            RequestTemplate::new((2, 4), (2, 4), StrategySpec::Dense)
                .with_tier(Tier::Premium)
                // 30 µs: less than the service time of most requests, so
                // premium work reliably expires mid-decode
                .with_deadline_ms(0.03),
        ],
    );
    let mut engine = engine_with(
        AdmissionConfig::default().with_queue_capacity(32),
        None,
        None,
        None,
    );
    let report = engine.run_open_loop(&workload).unwrap();
    assert_conserved(&report);
    assert_leak_free(&engine, &report);
    let ol = report.open_loop.as_ref().unwrap();
    assert!(ol.cancelled > 0, "patience caps must retire as Cancelled");
    assert!(
        ol.deadline_expired > 0,
        "30 µs premium deadlines must expire"
    );
    for r in &report.requests {
        match r.tier {
            Tier::Batch => {
                // every served batch request runs out of patience after its
                // first generated token
                assert_eq!(r.finish, FinishReason::Cancelled);
                assert_eq!(r.generated_tokens, 1);
            }
            _ => assert!(matches!(
                r.finish,
                FinishReason::Completed | FinishReason::DeadlineExpired
            )),
        }
    }
}

#[test]
fn aborts_retry_with_backoff_until_the_budget_is_spent() {
    let abort_plan = FaultPlan {
        seed: 11,
        abort_rate: 0.6,
        abort_window_s: 0.0002,
        ..FaultPlan::none()
    };
    // Permissive admission: every re-offer is accepted, so a single abort
    // per request (the injector draws at most one) always retries to
    // completion — nothing may end as Failed.
    let mut engine = engine_with(
        AdmissionConfig::default().with_queue_capacity(64),
        Some(abort_plan.clone()),
        Some(RetryPolicy {
            max_attempts: 3,
            backoff_base_s: 0.002,
        }),
        None,
    );
    let report = engine.run_open_loop(&chaos_workload()).unwrap();
    assert_conserved(&report);
    let ol = report.open_loop.as_ref().unwrap();
    assert!(
        ol.retries > 0,
        "aborts against a retry budget must re-offer"
    );
    assert_eq!(ol.failed, 0, "one abort never exhausts a 3-attempt budget");
    assert!(
        report.requests.iter().any(|r| r.attempts > 1),
        "a retried request reports its attempt count"
    );
    assert!(report.requests.iter().all(|r| r.attempts <= 3));

    // with a 1-attempt budget the same aborts are terminal
    let mut engine = engine_with(
        AdmissionConfig::default().with_queue_capacity(64),
        Some(abort_plan),
        Some(RetryPolicy {
            max_attempts: 1,
            backoff_base_s: 0.002,
        }),
        None,
    );
    let report = engine.run_open_loop(&chaos_workload()).unwrap();
    assert_conserved(&report);
    let ol = report.open_loop.as_ref().unwrap();
    assert_eq!(ol.retries, 0, "a spent budget must not re-offer");
    assert!(ol.failed > 0, "unretryable aborts retire as Failed");
}

/// A workload with no declared deadlines or patience caps: every finish is
/// time-independent, so timing faults (page loss, slow lanes) must leave
/// the token streams untouched.
fn plain_workload() -> Workload {
    Workload::new(
        0xfeed,
        0.04,
        ArrivalProcess::Steady { rate_per_s: 600.0 },
        vec![
            RequestTemplate::new((4, 8), (8, 16), StrategySpec::Dense).with_weight(2.0),
            RequestTemplate::new((2, 6), (6, 12), StrategySpec::Dip { density: 0.5 }),
        ],
    )
}

#[test]
fn page_loss_costs_refill_time_but_never_tokens() {
    // Replay after a lost page recomputes bitwise-identical KV, so greedy
    // outputs must match the fault-free run token for token.
    let workload = plain_workload();
    let admission = || AdmissionConfig::default().with_queue_capacity(32);
    let clean = engine_with(admission(), None, None, None)
        .run_open_loop(&workload)
        .unwrap();
    let loss_plan = FaultPlan {
        seed: 3,
        page_loss_every_s: 0.0002,
        page_loss_horizon_s: 0.2,
        ..FaultPlan::none()
    };
    let mut engine = engine_with(admission(), Some(loss_plan), None, None);
    let lossy = engine.run_open_loop(&workload).unwrap();
    assert_conserved(&lossy);
    assert_leak_free(&engine, &lossy);
    let ol = lossy.open_loop.as_ref().unwrap();
    assert!(ol.kv_pages_lost > 0, "the loss plan must actually strike");
    assert!(ol.kv_refill_tokens > 0, "lost pages must be re-prefilled");
    assert!(
        lossy.total_prefill_tokens > clean.total_prefill_tokens,
        "refill passes are accounted as prefill work"
    );
    // same requests, same outputs — only the clock moved
    assert_eq!(clean.requests.len(), lossy.requests.len());
    for (a, b) in clean.requests.iter().zip(&lossy.requests) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.generated, b.generated, "request {} tokens diverged", a.id);
        assert_eq!(a.finish, b.finish);
    }
}

#[test]
fn a_slow_lane_stretches_the_clock_but_not_the_outputs() {
    let slow_plan = FaultPlan {
        seed: 0,
        slow_lane: Some(SlowLaneWindow {
            start_s: 0.0,
            duration_s: 0.1,
            factor: 4.0,
        }),
        ..FaultPlan::none()
    };
    let admission = || {
        AdmissionConfig::default()
            .with_queue_capacity(16)
            .with_rate_limit(700.0, 6.0)
    };
    // deadline-free traffic: a stretched clock must not change any finish
    let clean = engine_with(admission(), None, None, None)
        .run_open_loop(&plain_workload())
        .unwrap();
    let slowed = engine_with(admission(), Some(slow_plan), None, None)
        .run_open_loop(&plain_workload())
        .unwrap();
    assert!(
        slowed.makespan_s > clean.makespan_s,
        "a 4x straggler window covering the run must stretch the makespan \
         ({} vs {})",
        slowed.makespan_s,
        clean.makespan_s
    );
    for (a, b) in clean.requests.iter().zip(&slowed.requests) {
        assert_eq!(a.id, b.id);
        assert_eq!(
            a.generated, b.generated,
            "a slow lane must never change tokens"
        );
    }
}

#[test]
fn decode_state_pool_survives_park_cancel_reclaim_churn() {
    // Satellite (c): park → cancel → reclaim churn across 1000 sessions.
    // The pool must recycle instead of building, never strand a parked
    // entry, and end holding exactly its high-water mark.
    let config = lm::ModelConfig::tiny();
    let model = lm::build_synthetic(&config, 3).unwrap();
    let mut pool = lm::DecodeStatePool::new();
    let mut high_water = 0usize;
    for round in 0..250u64 {
        // four concurrent sessions: two complete, two are preempted
        // (parked) and then cancelled while parked
        let a = pool.acquire(&model);
        let b = pool.acquire(&model);
        let first = pool.acquire(&model);
        let second = pool.acquire(&model);
        pool.park(round * 2, first);
        pool.park(round * 2 + 1, second);
        pool.release(a);
        pool.release(b);
        for key in [round * 2, round * 2 + 1] {
            // a cancellation resumes the parked state only to retire it
            let state = pool.resume(key).expect("parked state is retained");
            pool.release(state);
        }
        assert_eq!(pool.parked_count(), 0, "cancelled sessions must not linger");
        high_water = high_water.max(pool.idle());
    }
    assert_eq!(
        pool.reuse_count() + pool.build_count(),
        1000,
        "250 rounds of 4 sessions churned"
    );
    assert_eq!(
        pool.idle(),
        high_water,
        "the pool holds its high-water mark"
    );
    assert_eq!(
        pool.build_count(),
        4,
        "steady-state churn recycles; only the first round builds"
    );
    // parked states that are never individually cancelled are reclaimed in
    // bulk at drain
    for i in 0..8u64 {
        let state = pool.acquire(&model);
        pool.park(1_000_000 + i, state);
    }
    assert_eq!(pool.parked_count(), 8);
    assert_eq!(pool.reclaim_parked(), 8);
    assert_eq!(pool.parked_count(), 0);
    assert_eq!(pool.idle(), 8);
}
