//! The serving subsystem's headline scenario (ISSUE 1 acceptance criteria):
//! under a constrained DRAM budget shared by ≥ 8 concurrent sessions,
//! cache-aware DIP must beat dense streaming on *both* aggregate tokens/sec
//! and shared-cache hit rate, with per-request latency percentiles reported.

use lm::{build_synthetic, ModelConfig, SliceAxis};
use serve::{GenRequest, SchedulerPolicy, ServeConfig, ServeEngine, ServeReport, StrategySpec};

const N_SESSIONS: usize = 8;
const NEW_TOKENS: usize = 12;

/// Builds an engine whose shared DRAM column cache holds roughly
/// `cache_fraction` of the INT4 MLP weights (static weights + per-slot KV
/// caches are pinned on top).
fn engine(cache_fraction: f64, slots: usize) -> ServeEngine {
    let config = ModelConfig::tiny();
    let model = build_synthetic(&config, 13).unwrap();
    let layout = serve::layout::layout_for_serving(
        &config,
        [SliceAxis::Input; 3],
        4.0,
        slots,
        config.max_seq_len,
    );
    let dram = layout.static_bytes + ((layout.mlp_bytes() as f64) * cache_fraction) as u64;
    let device = hwsim::DeviceConfig::apple_a18(4.0).with_dram_bytes(dram);
    ServeEngine::new(model, ServeConfig::new(device).with_max_concurrent(slots)).unwrap()
}

fn fleet(strategy: StrategySpec) -> Vec<GenRequest> {
    (0..N_SESSIONS)
        .map(|i| {
            GenRequest::new(
                i as u64,
                vec![(i % 5) as u32 + 1, (i % 11) as u32 + 7],
                NEW_TOKENS,
                strategy,
            )
        })
        .collect()
}

fn run(strategy: StrategySpec) -> ServeReport {
    let mut engine = engine(0.55, N_SESSIONS);
    engine.run(fleet(strategy)).unwrap()
}

#[test]
fn dip_ca_beats_dense_streaming_under_multi_tenant_contention() {
    let dense = run(StrategySpec::Dense);
    let dip_ca = run(StrategySpec::DipCacheAware {
        density: 0.5,
        gamma: 0.2,
    });

    assert_eq!(dense.requests.len(), N_SESSIONS);
    assert_eq!(dip_ca.requests.len(), N_SESSIONS);
    assert_eq!(dip_ca.total_generated_tokens, N_SESSIONS * NEW_TOKENS);

    // Headline: more aggregate throughput AND a hotter shared cache.
    assert!(
        dip_ca.aggregate_tps > dense.aggregate_tps,
        "DIP-CA {} tok/s must beat dense {} tok/s",
        dip_ca.aggregate_tps,
        dense.aggregate_tps
    );
    assert!(
        dip_ca.cache_hit_rate > dense.cache_hit_rate,
        "DIP-CA hit rate {} must beat dense {}",
        dip_ca.cache_hit_rate,
        dense.cache_hit_rate
    );

    // Latency percentiles are reported and ordered.
    for report in [&dense, &dip_ca] {
        assert!(report.latency_p50_s > 0.0);
        assert!(report.latency_p50_s <= report.latency_p95_s);
        assert!(report.latency_p95_s <= report.latency_p99_s);
        assert!(report.latency_p99_s <= report.makespan_s + 1e-12);
    }
    // And the sparse fleet's median user finishes sooner.
    assert!(dip_ca.latency_p50_s < dense.latency_p50_s);
}

#[test]
fn dip_ca_also_beats_plain_dip_on_shared_cache_hit_rate() {
    // Cache-aware masking's whole point: at identical density, biasing the
    // mask toward resident columns heats the shared cache.
    let dip = run(StrategySpec::Dip { density: 0.5 });
    let dip_ca = run(StrategySpec::DipCacheAware {
        density: 0.5,
        gamma: 0.2,
    });
    assert!(dip_ca.cache_hit_rate > 0.0);
    assert!(
        dip_ca.cache_hit_rate >= dip.cache_hit_rate,
        "DIP-CA hit rate {} must not lose to plain DIP {}",
        dip_ca.cache_hit_rate,
        dip.cache_hit_rate
    );
}

#[test]
fn continuous_batching_beats_sequential_service_on_first_token_latency() {
    // The same fleet served with 8 KV slots vs a single slot (sequential
    // FCFS). On a serial memory bus batching cannot shrink the makespan, but
    // it interleaves every user's prefill early: mean time-to-first-token
    // drops sharply versus making user 8 wait behind 7 whole jobs.
    let batched = run(StrategySpec::Dip { density: 0.5 });

    let mut sequential_engine = engine(0.55, 1);
    let sequential = sequential_engine
        .run(fleet(StrategySpec::Dip { density: 0.5 }))
        .unwrap();

    assert!(
        batched.mean_first_token_s < sequential.mean_first_token_s,
        "batched TTFT {} must beat sequential {}",
        batched.mean_first_token_s,
        sequential.mean_first_token_s
    );
    // Not a free win — both runs still serve every token.
    assert_eq!(
        sequential.total_generated_tokens,
        batched.total_generated_tokens
    );
    // Sequential service staggers completions: the median user finishes well
    // before the last one, unlike round-robin batching.
    assert!(sequential.latency_p50_s < sequential.latency_p99_s);
}

#[test]
fn scheduler_policies_differ_on_mixed_workloads() {
    // A mixed fleet: one long batch job + several short interactive users.
    let mut requests = vec![GenRequest::new(
        99,
        vec![1, 2, 3],
        40,
        StrategySpec::Dip { density: 0.5 },
    )];
    for i in 0..6 {
        requests.push(GenRequest::new(
            i,
            vec![(i % 5) as u32 + 1],
            4,
            StrategySpec::Dip { density: 0.5 },
        ));
    }

    let mut fifo_engine = engine(0.55, 4);
    let fifo = fifo_engine.run(requests.clone()).unwrap();

    let srf_config = fifo_engine
        .config()
        .clone()
        .with_scheduler(SchedulerPolicy::ShortestRemainingFirst);
    let mut srf_engine = ServeEngine::new(
        build_synthetic(&ModelConfig::tiny(), 13).unwrap(),
        srf_config,
    )
    .unwrap();
    let srf = srf_engine.run(requests).unwrap();

    let p50 = |r: &ServeReport| r.latency_p50_s;
    // SRF's median (interactive) user beats FIFO's, at equal total work.
    assert!(p50(&srf) <= p50(&fifo) + 1e-12);
    assert_eq!(srf.total_generated_tokens, fifo.total_generated_tokens);
    // the long job is the one that pays: it finishes last under SRF
    let long = srf.requests.iter().find(|r| r.id == 99).unwrap();
    let max_completion = srf
        .requests
        .iter()
        .map(|r| r.completion_s)
        .fold(0.0f64, f64::max);
    assert!((long.completion_s - max_completion).abs() < 1e-12);
}
