//! The acceptance benchmark of the open-loop pipeline: under identical
//! bursty traffic on 8 KV slots, `PriorityPreemptive` must buy the premium
//! tier strictly higher SLO attainment than FIFO **without** giving up
//! aggregate throughput — preemption reshuffles *who* waits, not *how much*
//! work the memory bus does.

use serve::{
    AdmissionConfig, ArrivalProcess, GenRequest, RequestTemplate, SchedulerPolicy, ServeConfig,
    ServeEngine, ServeReport, SloTarget, StrategySpec, Tier, Workload,
};

const SLOTS: usize = 8;

fn engine(scheduler: SchedulerPolicy) -> ServeEngine {
    let config = lm::ModelConfig::tiny();
    let model = lm::build_synthetic(&config, 13).unwrap();
    let layout = serve::layout::layout_for_serving(
        &config,
        [lm::SliceAxis::Input; 3],
        4.0,
        SLOTS,
        config.max_seq_len,
    );
    let dram = layout.static_bytes + (layout.mlp_bytes() as f64 * 0.55) as u64;
    let device = hwsim::DeviceConfig::apple_a18(4.0).with_dram_bytes(dram);
    ServeEngine::new(
        model,
        ServeConfig::new(device)
            .with_max_concurrent(SLOTS)
            .with_scheduler(scheduler)
            // everything is admitted: the comparison is about scheduling,
            // so shedding must not differ between the two runs
            .with_admission(AdmissionConfig::default().with_queue_capacity(4096)),
    )
    .unwrap()
}

/// Deterministic service-rate probe: seconds per served token on this
/// simulated device.
fn per_token_s() -> f64 {
    let mut probe = engine(SchedulerPolicy::Fifo);
    let report = probe
        .run(vec![GenRequest::new(
            0,
            vec![1, 2],
            30,
            StrategySpec::Dense,
        )])
        .unwrap();
    report.makespan_s / 32.0
}

/// Bursty mixed-tier traffic: long batch jobs that fill all 8 slots during
/// each burst, plus short premium requests with a tight TTFT/TBT objective.
fn workload(per_token: f64) -> Workload {
    let on_s = 160.0 * per_token;
    Workload::new(
        0x510,
        6.0 * on_s, // three on/off cycles
        ArrivalProcess::OnOff {
            // one ~14-token request per ~2 token-times: bursts overload the
            // 8 slots several times over, building a real queue
            rate_per_s: 1.0 / (2.0 * per_token),
            on_s,
            off_s: on_s,
        },
        vec![
            RequestTemplate::new((2, 4), (10, 16), StrategySpec::Dip { density: 0.5 })
                .with_tier(Tier::Batch)
                .with_weight(4.0),
            RequestTemplate::new((1, 2), (2, 4), StrategySpec::Dip { density: 0.5 })
                .with_tier(Tier::Premium)
                .with_slo(SloTarget::new(40.0 * per_token, 20.0 * per_token)),
        ],
    )
}

fn run(scheduler: SchedulerPolicy, w: &Workload) -> ServeReport {
    engine(scheduler).run_open_loop(w).unwrap()
}

#[test]
fn priority_preemption_buys_premium_slo_at_equal_throughput() {
    let per_token = per_token_s();
    let w = workload(per_token);

    let fifo = run(SchedulerPolicy::Fifo, &w);
    let priority = run(SchedulerPolicy::PriorityPreemptive, &w);

    let fifo_ol = fifo.open_loop.as_ref().unwrap();
    let prio_ol = priority.open_loop.as_ref().unwrap();

    // identical traffic, identical admissions, identical total work
    assert_eq!(fifo_ol.arrived, prio_ol.arrived);
    assert_eq!(fifo_ol.shed, 0, "nothing may be shed in this comparison");
    assert_eq!(prio_ol.shed, 0);
    assert_eq!(
        fifo.total_generated_tokens, priority.total_generated_tokens,
        "both schedulers serve every token of the same workload"
    );
    assert!(
        fifo_ol.arrived > 3 * SLOTS,
        "the bursts must oversubscribe the slots (got {} arrivals)",
        fifo_ol.arrived
    );
    assert!(prio_ol.preemptions > 0, "priority scheduling must preempt");

    // the headline: strictly higher premium-tier SLO attainment...
    let premium_fifo = &fifo_ol.tiers[Tier::Premium.index()];
    let premium_prio = &prio_ol.tiers[Tier::Premium.index()];
    assert!(premium_fifo.arrived > 0, "premium traffic present");
    assert!(
        premium_prio.slo_attainment > premium_fifo.slo_attainment,
        "premium attainment: priority {:.3} must beat fifo {:.3}",
        premium_prio.slo_attainment,
        premium_fifo.slo_attainment
    );
    // ...through genuinely lower premium latency, not accounting tricks
    assert!(
        premium_prio.ttft.p95_s < premium_fifo.ttft.p95_s,
        "premium TTFT p95: priority {:.6} vs fifo {:.6}",
        premium_prio.ttft.p95_s,
        premium_fifo.ttft.p95_s
    );

    // ...at equal aggregate throughput (same tokens, near-identical
    // makespan; only cache-order effects may differ)
    let ratio = priority.aggregate_tps / fifo.aggregate_tps;
    assert!(
        (0.9..=1.1).contains(&ratio),
        "aggregate tok/s must stay equal: priority {:.2} vs fifo {:.2} (ratio {ratio:.3})",
        priority.aggregate_tps,
        fifo.aggregate_tps
    );
}
