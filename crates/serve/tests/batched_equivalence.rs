//! The batched engine's contract: fused lanes and chunked prefill change
//! *how fast the host computes* a schedule, never the schedule itself.
//!
//! Every test drives the same traffic through [`ExecutionMode::Batched`]
//! (the default) and the token-at-a-time [`ExecutionMode::Sequential`]
//! oracle and requires the full [`serve::ServeReport`]s — every latency,
//! byte count, hit rate, generated token id and SLO verdict — to be
//! **equal**, which for `f64` fields means bitwise-identical arithmetic
//! histories. Lane widths are swept (1 slot / 2 slots / a full fleet), both
//! fusable (dense, DIP, DIP-CA) and non-fusable (CATS-family) lanes are
//! covered, preemptive open-loop traffic is included, and batched runs are
//! repeated across OS threads.

use serve::{
    ExecutionMode, GenRequest, SchedulerPolicy, ServeConfig, ServeEngine, ServeReport, SloTarget,
    StrategySpec, Tier,
};

const MODEL_SEED: u64 = 11;

fn engine(slots: usize, scheduler: SchedulerPolicy, mode: ExecutionMode) -> ServeEngine {
    let config = lm::ModelConfig::tiny();
    let model = lm::build_synthetic(&config, MODEL_SEED).unwrap();
    let layout = serve::layout::layout_for_serving(
        &config,
        [lm::SliceAxis::Input; 3],
        4.0,
        slots,
        config.max_seq_len,
    );
    let dram = layout.static_bytes + (layout.mlp_bytes() as f64 * 0.55) as u64;
    let device = hwsim::DeviceConfig::apple_a18(4.0).with_dram_bytes(dram);
    ServeEngine::new(
        model,
        ServeConfig::new(device)
            .with_max_concurrent(slots)
            .with_scheduler(scheduler)
            .with_execution(mode),
    )
    .unwrap()
}

/// A mixed-spec closed batch: fused lanes (dense / DIP / shared DIP-CA)
/// interleaved in one fleet, with a sampled-temperature request so the RNG
/// draw order is exercised too.
fn mixed_requests() -> Vec<GenRequest> {
    let dip_ca = StrategySpec::DipCacheAware {
        density: 0.5,
        gamma: 0.2,
    };
    vec![
        GenRequest::new(0, vec![1, 2, 3, 4, 5], 6, StrategySpec::Dense),
        GenRequest::new(1, vec![2, 3], 8, StrategySpec::Dip { density: 0.5 }),
        GenRequest::new(2, vec![3, 4, 5], 6, dip_ca),
        GenRequest::new(3, vec![4, 5], 7, StrategySpec::Dense).with_temperature(0.8),
        GenRequest::new(4, vec![5, 6, 7, 8], 5, dip_ca),
        GenRequest::new(5, vec![6], 9, StrategySpec::Dip { density: 0.5 }),
    ]
}

fn assert_reports_equal(batched: &ServeReport, sequential: &ServeReport, what: &str) {
    // `ServeReport: PartialEq` compares every f64 by value; equal floats
    // from equal histories — the whole point of the lane construction
    assert_eq!(batched, sequential, "{what}: batched != sequential oracle");
}

#[test]
fn closed_batch_reports_match_across_lane_widths() {
    for slots in [1usize, 2, 4, 6] {
        let report_b = engine(slots, SchedulerPolicy::Fifo, ExecutionMode::Batched)
            .run(mixed_requests())
            .unwrap();
        let report_s = engine(slots, SchedulerPolicy::Fifo, ExecutionMode::Sequential)
            .run(mixed_requests())
            .unwrap();
        assert_reports_equal(&report_b, &report_s, &format!("fifo, {slots} slots"));
        assert!(report_b.total_generated_tokens > 0);
    }
}

#[test]
fn non_fusable_lanes_fall_back_per_session_and_still_match() {
    // CATS slices the up/gate matrices along the output axis and carries
    // calibrated thresholds — lanes of it take the per-session MLP path
    // inside the fused attention/head batch.
    let requests: Vec<GenRequest> = (0..5)
        .map(|i| {
            GenRequest::new(
                i,
                vec![(i % 6) as u32 + 1, 2, 3],
                5,
                StrategySpec::Cats { density: 0.5 },
            )
        })
        .collect();
    let report_b = engine(4, SchedulerPolicy::Fifo, ExecutionMode::Batched)
        .run(requests.clone())
        .unwrap();
    let report_s = engine(4, SchedulerPolicy::Fifo, ExecutionMode::Sequential)
        .run(requests)
        .unwrap();
    assert_reports_equal(&report_b, &report_s, "cats lanes");
}

#[test]
fn srf_schedules_match_even_though_lanes_degenerate() {
    // shortest-remaining-first serves one session to completion: lanes are
    // width-1 plus prefill chunks, and the reports must still match
    let report_b = engine(
        3,
        SchedulerPolicy::ShortestRemainingFirst,
        ExecutionMode::Batched,
    )
    .run(mixed_requests())
    .unwrap();
    let report_s = engine(
        3,
        SchedulerPolicy::ShortestRemainingFirst,
        ExecutionMode::Sequential,
    )
    .run(mixed_requests())
    .unwrap();
    assert_reports_equal(&report_b, &report_s, "srf");
}

/// Bursty mixed-tier arrivals that force queueing and preemption. The burst
/// timing is calibrated to the *simulated* service rate: the virtual clock
/// is deterministic, so a solo probe run pins down when "mid-generation"
/// is.
fn open_loop_arrivals() -> Vec<GenRequest> {
    let solo = {
        let mut probe = engine(
            1,
            SchedulerPolicy::PriorityPreemptive,
            ExecutionMode::Sequential,
        );
        probe
            .run_open_loop_requests(vec![GenRequest::new(
                0,
                vec![1, 2, 3, 4],
                20,
                StrategySpec::Dense,
            )
            .with_tier(Tier::Batch)])
            .unwrap()
            .makespan_s
    };
    let dip = StrategySpec::Dip { density: 0.5 };
    let dip_ca = StrategySpec::DipCacheAware {
        density: 0.5,
        gamma: 0.2,
    };
    let mut arrivals = vec![
        GenRequest::new(0, vec![1, 2, 3, 4], 20, StrategySpec::Dense).with_tier(Tier::Batch),
        GenRequest::new(1, vec![2, 3, 4], 18, dip)
            .with_tier(Tier::Batch)
            .at(0.02 * solo),
    ];
    // a premium burst lands mid-generation and must preempt
    for i in 0..4u64 {
        arrivals.push(
            GenRequest::new(2 + i, vec![3 + i as u32, 1], 4, dip_ca)
                .with_tier(Tier::Premium)
                .with_slo(SloTarget::new(2.0 * solo, 0.5 * solo))
                .at((0.3 + 0.05 * i as f64) * solo),
        );
    }
    // standard-tier stragglers, one sampled
    arrivals.push(
        GenRequest::new(6, vec![5, 6], 6, StrategySpec::Dense)
            .with_temperature(0.6)
            .at(0.5 * solo),
    );
    arrivals.push(GenRequest::new(7, vec![6], 5, dip).at(0.6 * solo));
    arrivals
}

#[test]
fn preemptive_open_loop_reports_match_the_sequential_oracle() {
    for slots in [1usize, 2, 4] {
        let run = |mode| {
            engine(slots, SchedulerPolicy::PriorityPreemptive, mode)
                .run_open_loop_requests(open_loop_arrivals())
                .unwrap()
        };
        let report_b = run(ExecutionMode::Batched);
        let report_s = run(ExecutionMode::Sequential);
        assert_reports_equal(&report_b, &report_s, &format!("preemptive, {slots} slots"));
        if slots < 4 {
            let ol = report_b.open_loop.as_ref().unwrap();
            assert!(ol.preemptions > 0, "{slots} slots: traffic must preempt");
        }
    }
}

#[test]
fn non_preemptive_open_loop_reports_match_under_pressure() {
    // FIFO with saturated slots: batching is allowed *while arrivals are
    // still pending* (delayed ingestion is provably equivalent for
    // non-preemptive policies), which this run exercises heavily
    let run = |mode| {
        engine(2, SchedulerPolicy::Fifo, mode)
            .run_open_loop_requests(open_loop_arrivals())
            .unwrap()
    };
    assert_reports_equal(
        &run(ExecutionMode::Batched),
        &run(ExecutionMode::Sequential),
        "fifo open loop",
    );
}

#[test]
fn telemetry_attached_runs_still_match_the_oracle_bitwise() {
    // Attaching an observability pipeline to either execution mode must not
    // move a single bit of the report: telemetry is write-only and the
    // batched/sequential equivalence is about the schedule, which telemetry
    // never touches.
    let run = |mode, instrumented: bool| {
        let mut e = engine(2, SchedulerPolicy::PriorityPreemptive, mode);
        if instrumented {
            e.attach_telemetry(serve::telemetry::EngineTelemetry::new(
                serve::TelemetryConfig::default(),
                &[("cell", "equivalence")],
            ));
        }
        let report = e.run_open_loop_requests(open_loop_arrivals()).unwrap();
        if instrumented {
            let tel = e.take_telemetry().unwrap();
            assert_eq!(
                tel.timeline().total_tokens(),
                (report.total_prefill_tokens + report.total_generated_tokens) as u64,
                "timeline window sums must equal the report's token totals"
            );
        }
        report
    };
    let bare_b = run(ExecutionMode::Batched, false);
    let inst_b = run(ExecutionMode::Batched, true);
    let inst_s = run(ExecutionMode::Sequential, true);
    assert_reports_equal(&bare_b, &inst_b, "telemetry-attached batched");
    assert_reports_equal(&inst_b, &inst_s, "instrumented batched vs sequential");
}

#[test]
fn batched_runs_are_bitwise_identical_across_os_threads() {
    let baseline = engine(
        2,
        SchedulerPolicy::PriorityPreemptive,
        ExecutionMode::Batched,
    )
    .run_open_loop_requests(open_loop_arrivals())
    .unwrap();
    let handles: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(move || {
                engine(
                    2,
                    SchedulerPolicy::PriorityPreemptive,
                    ExecutionMode::Batched,
                )
                .run_open_loop_requests(open_loop_arrivals())
                .unwrap()
            })
        })
        .collect();
    for handle in handles {
        let report = handle.join().expect("thread run completes");
        assert_eq!(report, baseline, "cross-thread batched run diverged");
    }
}
