//! Least-frequently-used column cache (the paper's default policy).

use super::{AccessOutcome, ColumnCache, EvictionPolicy};
use std::collections::HashMap;

/// An LFU cache over weight columns.
///
/// Usage frequency is tracked for the whole session (also for columns that
/// are currently evicted, as in "LLM in a Flash"); ties are broken by
/// evicting the least recently used of the least frequently used columns.
#[derive(Debug, Clone)]
pub struct LfuColumnCache {
    n_columns: usize,
    capacity: usize,
    /// column -> last access time (for resident columns only)
    resident: HashMap<usize, u64>,
    /// session-wide access frequency per column
    frequency: Vec<u64>,
    clock: u64,
}

impl LfuColumnCache {
    /// Creates an empty LFU cache.
    pub fn new(n_columns: usize, capacity: usize) -> Self {
        LfuColumnCache {
            n_columns,
            capacity: capacity.min(n_columns),
            resident: HashMap::new(),
            frequency: vec![0; n_columns],
            clock: 0,
        }
    }

    /// Session-wide access count of a column.
    pub fn frequency(&self, column: usize) -> u64 {
        self.frequency.get(column).copied().unwrap_or(0)
    }

    fn evict_one(&mut self, protect: &[usize]) -> bool {
        let victim = self
            .resident
            .iter()
            .filter(|(col, _)| !protect.contains(col))
            .min_by_key(|(col, time)| (self.frequency[**col], **time))
            .map(|(col, _)| *col);
        match victim {
            Some(col) => {
                self.resident.remove(&col);
                true
            }
            None => false,
        }
    }
}

impl ColumnCache for LfuColumnCache {
    fn n_columns(&self) -> usize {
        self.n_columns
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.resident.len()
    }

    fn contains(&self, column: usize) -> bool {
        self.resident.contains_key(&column)
    }

    fn access(&mut self, columns: &[usize]) -> AccessOutcome {
        let mut outcome = AccessOutcome::default();
        for &col in columns {
            self.clock += 1;
            if col < self.n_columns {
                self.frequency[col] += 1;
            }
            if let Some(t) = self.resident.get_mut(&col) {
                *t = self.clock;
                outcome.hits += 1;
                continue;
            }
            outcome.misses += 1;
            if self.capacity == 0 || col >= self.n_columns {
                continue;
            }
            if self.resident.len() >= self.capacity && !self.evict_one(columns) {
                continue;
            }
            self.resident.insert(col, self.clock);
        }
        outcome
    }

    fn clear(&mut self) {
        self.resident.clear();
        self.frequency.iter_mut().for_each(|f| *f = 0);
        self.clock = 0;
    }

    fn policy(&self) -> EvictionPolicy {
        EvictionPolicy::Lfu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_after_insertion() {
        let mut c = LfuColumnCache::new(8, 4);
        assert_eq!(c.access(&[0, 1]).misses, 2);
        assert_eq!(c.access(&[0, 1]).hits, 2);
        assert_eq!(c.frequency(0), 2);
        assert_eq!(c.frequency(5), 0);
    }

    #[test]
    fn evicts_least_frequent() {
        let mut c = LfuColumnCache::new(8, 2);
        c.access(&[0]);
        c.access(&[0]);
        c.access(&[1]);
        // 0 has frequency 2, 1 has frequency 1 -> inserting 2 evicts 1
        c.access(&[2]);
        assert!(c.contains(0));
        assert!(!c.contains(1));
        assert!(c.contains(2));
    }

    #[test]
    fn frequency_survives_eviction() {
        let mut c = LfuColumnCache::new(8, 1);
        c.access(&[0]);
        c.access(&[0]);
        c.access(&[1]); // evicts 0, but 0's frequency (2) persists
        assert_eq!(c.frequency(0), 2);
        // re-inserting 1 vs 0: 0 should win future eviction contests
        c.access(&[0]);
        assert!(c.contains(0));
        assert!(!c.contains(1));
    }

    #[test]
    fn protects_current_token_columns() {
        let mut c = LfuColumnCache::new(8, 2);
        let out = c.access(&[3, 4, 5]);
        assert_eq!(out.misses, 3);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn out_of_range_columns_count_as_misses_but_are_not_cached() {
        let mut c = LfuColumnCache::new(4, 4);
        let out = c.access(&[10]);
        assert_eq!(out.misses, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn clear_resets_frequencies() {
        let mut c = LfuColumnCache::new(4, 4);
        c.access(&[0, 0, 1]);
        c.clear();
        assert_eq!(c.frequency(0), 0);
        assert!(c.is_empty());
        assert_eq!(c.policy(), EvictionPolicy::Lfu);
    }
}
