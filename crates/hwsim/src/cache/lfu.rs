//! Least-frequently-used column cache (the paper's default policy).

use super::{AccessOutcome, ColumnCache, EvictionPolicy};

/// An LFU cache over weight columns.
///
/// Usage frequency is tracked for the whole session (also for columns that
/// are currently evicted, as in "LLM in a Flash"); ties are broken by
/// evicting the least recently used of the least frequently used columns.
///
/// # Implementation
///
/// Residency is a dense `column → last-access-time` array (time 0 = not
/// resident) and the columns of the *current* access are marked in an
/// epoch-stamped protection array, so one eviction costs one linear scan of
/// the column range instead of the historical
/// `O(resident × protect-list)` scan — and when every resident column is
/// protected (the dense-access steady state) eviction fails in O(1) via the
/// maintained unprotected-resident counter. Victim choice is unchanged:
/// minimum `(frequency, last-access-time)` over resident, unprotected
/// columns, and access times are unique, so the selected victim — and
/// therefore every hit/miss/insertion — is **identical** to the historical
/// map-based implementation (see the `matches_reference_implementation`
/// test).
#[derive(Debug, Clone)]
pub struct LfuColumnCache {
    n_columns: usize,
    capacity: usize,
    /// column -> last access time (0 = not resident; the clock starts at 1).
    resident_time: Vec<u64>,
    resident_count: usize,
    /// session-wide access frequency per column
    frequency: Vec<u64>,
    /// column -> epoch in which it was last part of the presented access
    /// list (columns of the current access are never evicted for each
    /// other).
    protected_epoch: Vec<u64>,
    epoch: u64,
    clock: u64,
    /// Eviction order of the current access, built lazily on its first
    /// eviction: unprotected residents sorted by `(frequency, time)`.
    /// Valid for one access call — no key of an unprotected resident can
    /// change mid-call (hits and frequency bumps only touch protected
    /// columns; insertions are protected), so successive minima are exactly
    /// this queue in order.
    evict_queue: Vec<(u64, u64, usize)>,
    evict_cursor: usize,
}

impl LfuColumnCache {
    /// Creates an empty LFU cache.
    pub fn new(n_columns: usize, capacity: usize) -> Self {
        LfuColumnCache {
            n_columns,
            capacity: capacity.min(n_columns),
            resident_time: vec![0; n_columns],
            resident_count: 0,
            frequency: vec![0; n_columns],
            protected_epoch: vec![0; n_columns],
            epoch: 0,
            clock: 0,
            evict_queue: Vec::new(),
            evict_cursor: 0,
        }
    }

    /// Session-wide access count of a column.
    pub fn frequency(&self, column: usize) -> u64 {
        self.frequency.get(column).copied().unwrap_or(0)
    }

    /// Evicts the resident, unprotected column with the smallest
    /// `(frequency, last-access-time)` key. Access times are unique, so the
    /// victim is unique; `queue_built` marks whether the current access
    /// already sorted its eviction order.
    fn evict_one(&mut self, queue_built: &mut bool) -> bool {
        if !*queue_built {
            self.evict_queue.clear();
            for (col, &time) in self.resident_time.iter().enumerate() {
                if time == 0 || self.protected_epoch[col] == self.epoch {
                    continue;
                }
                self.evict_queue.push((self.frequency[col], time, col));
            }
            self.evict_queue.sort_unstable();
            self.evict_cursor = 0;
            *queue_built = true;
        }
        match self.evict_queue.get(self.evict_cursor) {
            Some(&(_, _, col)) => {
                self.evict_cursor += 1;
                self.resident_time[col] = 0;
                self.resident_count -= 1;
                true
            }
            None => false,
        }
    }
}

impl ColumnCache for LfuColumnCache {
    fn n_columns(&self) -> usize {
        self.n_columns
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.resident_count
    }

    fn contains(&self, column: usize) -> bool {
        self.resident_time
            .get(column)
            .map(|&t| t > 0)
            .unwrap_or(false)
    }

    fn cached_mask_into(&self, out: &mut Vec<bool>) {
        out.clear();
        out.extend(self.resident_time.iter().map(|&t| t > 0));
    }

    fn access(&mut self, columns: &[usize]) -> AccessOutcome {
        let mut outcome = AccessOutcome::default();
        // Protect this access's columns up front: they may not evict each
        // other (Section 6.4). Tracking how many residents remain
        // unprotected lets the eviction loop fail fast once none are.
        self.epoch += 1;
        let mut queue_built = false;
        let mut unprotected_resident = self.resident_count;
        for &col in columns {
            if col < self.n_columns && self.protected_epoch[col] != self.epoch {
                self.protected_epoch[col] = self.epoch;
                if self.resident_time[col] > 0 {
                    unprotected_resident -= 1;
                }
            }
        }
        for &col in columns {
            self.clock += 1;
            if col < self.n_columns {
                self.frequency[col] += 1;
            }
            if col < self.n_columns && self.resident_time[col] > 0 {
                self.resident_time[col] = self.clock;
                outcome.hits += 1;
                continue;
            }
            outcome.misses += 1;
            if self.capacity == 0 || col >= self.n_columns {
                continue;
            }
            if self.resident_count >= self.capacity {
                if unprotected_resident == 0 || !self.evict_one(&mut queue_built) {
                    continue;
                }
                unprotected_resident -= 1;
                outcome.evictions += 1;
            }
            // the inserted column is part of this access, hence protected:
            // `unprotected_resident` is unchanged by the insertion
            self.resident_time[col] = self.clock;
            self.resident_count += 1;
        }
        outcome
    }

    fn clear(&mut self) {
        self.resident_time.iter_mut().for_each(|t| *t = 0);
        self.resident_count = 0;
        self.frequency.iter_mut().for_each(|f| *f = 0);
        self.protected_epoch.iter_mut().for_each(|e| *e = 0);
        self.epoch = 0;
        self.clock = 0;
    }

    fn policy(&self) -> EvictionPolicy {
        EvictionPolicy::Lfu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn hits_after_insertion() {
        let mut c = LfuColumnCache::new(8, 4);
        assert_eq!(c.access(&[0, 1]).misses, 2);
        assert_eq!(c.access(&[0, 1]).hits, 2);
        assert_eq!(c.frequency(0), 2);
        assert_eq!(c.frequency(5), 0);
    }

    #[test]
    fn evicts_least_frequent() {
        let mut c = LfuColumnCache::new(8, 2);
        c.access(&[0]);
        c.access(&[0]);
        c.access(&[1]);
        // 0 has frequency 2, 1 has frequency 1 -> inserting 2 evicts 1
        c.access(&[2]);
        assert!(c.contains(0));
        assert!(!c.contains(1));
        assert!(c.contains(2));
    }

    #[test]
    fn frequency_survives_eviction() {
        let mut c = LfuColumnCache::new(8, 1);
        c.access(&[0]);
        c.access(&[0]);
        c.access(&[1]); // evicts 0, but 0's frequency (2) persists
        assert_eq!(c.frequency(0), 2);
        // re-inserting 1 vs 0: 0 should win future eviction contests
        c.access(&[0]);
        assert!(c.contains(0));
        assert!(!c.contains(1));
    }

    #[test]
    fn protects_current_token_columns() {
        let mut c = LfuColumnCache::new(8, 2);
        let out = c.access(&[3, 4, 5]);
        assert_eq!(out.misses, 3);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn out_of_range_columns_count_as_misses_but_are_not_cached() {
        let mut c = LfuColumnCache::new(4, 4);
        let out = c.access(&[10]);
        assert_eq!(out.misses, 1);
        assert!(c.is_empty());
    }

    #[test]
    fn clear_resets_frequencies() {
        let mut c = LfuColumnCache::new(4, 4);
        c.access(&[0, 0, 1]);
        c.clear();
        assert_eq!(c.frequency(0), 0);
        assert!(c.is_empty());
        assert_eq!(c.policy(), EvictionPolicy::Lfu);
    }

    /// The historical map-based implementation, kept verbatim as the
    /// behavioural oracle for the dense-array fast path.
    struct ReferenceLfu {
        n_columns: usize,
        capacity: usize,
        resident: HashMap<usize, u64>,
        frequency: Vec<u64>,
        clock: u64,
    }

    impl ReferenceLfu {
        fn new(n_columns: usize, capacity: usize) -> Self {
            ReferenceLfu {
                n_columns,
                capacity: capacity.min(n_columns),
                resident: HashMap::new(),
                frequency: vec![0; n_columns],
                clock: 0,
            }
        }

        fn evict_one(&mut self, protect: &[usize]) -> bool {
            let victim = self
                .resident
                .iter()
                .filter(|(col, _)| !protect.contains(col))
                .min_by_key(|(col, time)| (self.frequency[**col], **time))
                .map(|(col, _)| *col);
            match victim {
                Some(col) => {
                    self.resident.remove(&col);
                    true
                }
                None => false,
            }
        }

        fn access(&mut self, columns: &[usize]) -> AccessOutcome {
            let mut outcome = AccessOutcome::default();
            for &col in columns {
                self.clock += 1;
                if col < self.n_columns {
                    self.frequency[col] += 1;
                }
                if let Some(t) = self.resident.get_mut(&col) {
                    *t = self.clock;
                    outcome.hits += 1;
                    continue;
                }
                outcome.misses += 1;
                if self.capacity == 0 || col >= self.n_columns {
                    continue;
                }
                if self.resident.len() >= self.capacity {
                    if !self.evict_one(columns) {
                        continue;
                    }
                    outcome.evictions += 1;
                }
                self.resident.insert(col, self.clock);
            }
            outcome
        }
    }

    #[test]
    fn matches_reference_implementation() {
        // Deterministic pseudo-random access streams, mixing sparse subsets,
        // dense sweeps, repeats and out-of-range columns.
        let mut seed = 0x2545f4914f6cdd1du64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for (n_columns, capacity) in [(32usize, 12usize), (64, 40), (16, 0), (48, 48)] {
            let mut fast = LfuColumnCache::new(n_columns, capacity);
            let mut reference = ReferenceLfu::new(n_columns, capacity);
            for round in 0..200 {
                let columns: Vec<usize> = if round % 7 == 0 {
                    (0..n_columns).collect() // dense sweep: all protected
                } else {
                    let len = (next() as usize % (n_columns + 4)) + 1;
                    (0..len)
                        .map(|_| next() as usize % (n_columns + 2))
                        .collect()
                };
                assert_eq!(
                    fast.access(&columns),
                    reference.access(&columns),
                    "outcome diverged at round {round} (n={n_columns}, cap={capacity})"
                );
                for col in 0..n_columns {
                    assert_eq!(
                        fast.contains(col),
                        reference.resident.contains_key(&col),
                        "residency diverged at round {round}, column {col}"
                    );
                    assert_eq!(fast.frequency(col), reference.frequency[col]);
                }
                assert_eq!(fast.len(), reference.resident.len());
            }
        }
    }
}
