//! Belady's clairvoyant MIN replacement policy (oracle upper bound).

use super::{AccessOutcome, ColumnCache, EvictionPolicy};
use std::collections::HashMap;

/// Belady's optimal offline eviction policy.
///
/// The cache is constructed with the full future access sequence (one entry
/// per upcoming token listing the demanded columns). On eviction it removes
/// the resident column whose next use lies farthest in the future (or that is
/// never used again), which Belady (1966) proved maximises the hit rate for a
/// fixed access sequence. The paper uses it in Fig. 11 as the upper bound
/// that DIP-CA is allowed to beat *because DIP-CA may change the mask itself*.
#[derive(Debug, Clone)]
pub struct BeladyColumnCache {
    n_columns: usize,
    capacity: usize,
    resident: HashMap<usize, ()>,
    /// occurrences[col] = sorted token indices at which `col` is accessed
    occurrences: Vec<Vec<usize>>,
    /// index of the token currently being served
    step: usize,
}

impl BeladyColumnCache {
    /// Creates the oracle cache from the future access trace.
    pub fn new(n_columns: usize, capacity: usize, future: &[Vec<usize>]) -> Self {
        let mut occurrences = vec![Vec::new(); n_columns];
        for (t, cols) in future.iter().enumerate() {
            for &c in cols {
                if c < n_columns {
                    occurrences[c].push(t);
                }
            }
        }
        BeladyColumnCache {
            n_columns,
            capacity: capacity.min(n_columns),
            resident: HashMap::new(),
            occurrences,
            step: 0,
        }
    }

    /// Next token index (strictly after the current step) at which `col` is
    /// used, or `usize::MAX` if never again.
    fn next_use(&self, col: usize) -> usize {
        match self.occurrences.get(col) {
            Some(occ) => {
                let pos = occ.partition_point(|&t| t <= self.step);
                occ.get(pos).copied().unwrap_or(usize::MAX)
            }
            None => usize::MAX,
        }
    }

    fn evict_one(&mut self, protect: &[usize]) -> bool {
        let victim = self
            .resident
            .keys()
            .filter(|col| !protect.contains(col))
            .max_by_key(|col| self.next_use(**col))
            .copied();
        match victim {
            Some(col) => {
                self.resident.remove(&col);
                true
            }
            None => false,
        }
    }
}

impl ColumnCache for BeladyColumnCache {
    fn n_columns(&self) -> usize {
        self.n_columns
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.resident.len()
    }

    fn contains(&self, column: usize) -> bool {
        self.resident.contains_key(&column)
    }

    fn access(&mut self, columns: &[usize]) -> AccessOutcome {
        let mut outcome = AccessOutcome::default();
        for &col in columns {
            if self.resident.contains_key(&col) {
                outcome.hits += 1;
                continue;
            }
            outcome.misses += 1;
            if self.capacity == 0 || col >= self.n_columns {
                continue;
            }
            if self.resident.len() >= self.capacity {
                if !self.evict_one(columns) {
                    continue;
                }
                outcome.evictions += 1;
            }
            self.resident.insert(col, ());
        }
        self.step += 1;
        outcome
    }

    fn clear(&mut self) {
        self.resident.clear();
    }

    fn policy(&self) -> EvictionPolicy {
        EvictionPolicy::Belady
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{LfuColumnCache, LruColumnCache};

    /// Replays a trace through a cache and returns the total number of misses.
    fn total_misses(cache: &mut dyn ColumnCache, trace: &[Vec<usize>]) -> usize {
        trace.iter().map(|cols| cache.access(cols).misses).sum()
    }

    #[test]
    fn classic_belady_example() {
        // Keep the column whose next use is farthest away.
        let trace = vec![vec![0], vec![1], vec![0], vec![2], vec![0], vec![1]];
        let mut cache = BeladyColumnCache::new(3, 2, &trace);
        let misses = total_misses(&mut cache, &trace);
        // 0 miss, 1 miss, 0 hit, 2 miss (evict 1? next use of 1 is t=5, of 0 is t=4 -> evict 1),
        // 0 hit, 1 miss  => 4 misses
        assert_eq!(misses, 4);
    }

    #[test]
    fn oracle_never_does_worse_than_lru_or_lfu() {
        // pseudo-random but deterministic trace
        let mut state = 123456789u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        let n_columns = 32;
        let trace: Vec<Vec<usize>> = (0..200)
            .map(|_| (0..8).map(|_| next() % n_columns).collect())
            .collect();
        for capacity in [4, 8, 16] {
            let belady = total_misses(
                &mut BeladyColumnCache::new(n_columns, capacity, &trace),
                &trace,
            );
            let lru = total_misses(&mut LruColumnCache::new(n_columns, capacity), &trace);
            let lfu = total_misses(&mut LfuColumnCache::new(n_columns, capacity), &trace);
            assert!(
                belady <= lru,
                "capacity {capacity}: belady {belady} vs lru {lru}"
            );
            assert!(
                belady <= lfu,
                "capacity {capacity}: belady {belady} vs lfu {lfu}"
            );
        }
    }

    #[test]
    fn never_used_again_is_preferred_victim() {
        let trace = vec![vec![0, 1], vec![2], vec![0]];
        let mut cache = BeladyColumnCache::new(3, 2, &trace);
        cache.access(&[0, 1]); // fill
        cache.access(&[2]); // should evict 1 (never used again), keep 0
        assert!(cache.contains(0));
        assert!(!cache.contains(1));
        let out = cache.access(&[0]);
        assert_eq!(out.hits, 1);
    }

    #[test]
    fn clear_and_metadata() {
        let trace = vec![vec![0]];
        let mut cache = BeladyColumnCache::new(4, 2, &trace);
        cache.access(&[0]);
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.policy(), EvictionPolicy::Belady);
        assert_eq!(cache.capacity(), 2);
    }
}
