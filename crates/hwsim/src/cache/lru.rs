//! Least-recently-used column cache.

use super::{AccessOutcome, ColumnCache, EvictionPolicy};
use std::collections::HashMap;

/// An LRU cache over weight columns.
///
/// Recency is tracked with a monotonically increasing access clock; eviction
/// removes the resident column with the smallest last-access time that is not
/// demanded by the current token.
#[derive(Debug, Clone)]
pub struct LruColumnCache {
    n_columns: usize,
    capacity: usize,
    /// column -> last access time
    resident: HashMap<usize, u64>,
    clock: u64,
}

impl LruColumnCache {
    /// Creates an empty LRU cache.
    pub fn new(n_columns: usize, capacity: usize) -> Self {
        LruColumnCache {
            n_columns,
            capacity: capacity.min(n_columns),
            resident: HashMap::new(),
            clock: 0,
        }
    }

    fn evict_one(&mut self, protect: &[usize]) -> bool {
        let victim = self
            .resident
            .iter()
            .filter(|(col, _)| !protect.contains(col))
            .min_by_key(|(_, time)| **time)
            .map(|(col, _)| *col);
        match victim {
            Some(col) => {
                self.resident.remove(&col);
                true
            }
            None => false,
        }
    }
}

impl ColumnCache for LruColumnCache {
    fn n_columns(&self) -> usize {
        self.n_columns
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.resident.len()
    }

    fn contains(&self, column: usize) -> bool {
        self.resident.contains_key(&column)
    }

    fn access(&mut self, columns: &[usize]) -> AccessOutcome {
        let mut outcome = AccessOutcome::default();
        for &col in columns {
            self.clock += 1;
            if let Some(t) = self.resident.get_mut(&col) {
                *t = self.clock;
                outcome.hits += 1;
                continue;
            }
            outcome.misses += 1;
            if self.capacity == 0 {
                continue;
            }
            if self.resident.len() >= self.capacity {
                if !self.evict_one(columns) {
                    // every resident column is needed by this very token:
                    // load directly to the compute unit without caching
                    continue;
                }
                outcome.evictions += 1;
            }
            self.resident.insert(col, self.clock);
        }
        outcome
    }

    fn clear(&mut self) {
        self.resident.clear();
    }

    fn policy(&self) -> EvictionPolicy {
        EvictionPolicy::Lru
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_after_insertion() {
        let mut c = LruColumnCache::new(8, 4);
        assert_eq!(c.access(&[0, 1, 2]).misses, 3);
        let out = c.access(&[0, 1, 2]);
        assert_eq!(out.hits, 3);
        assert_eq!(out.misses, 0);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruColumnCache::new(8, 2);
        c.access(&[0]);
        c.access(&[1]);
        c.access(&[0]); // 0 is now more recent than 1
        c.access(&[2]); // evicts 1
        assert!(c.contains(0));
        assert!(!c.contains(1));
        assert!(c.contains(2));
    }

    #[test]
    fn does_not_evict_columns_of_current_token() {
        let mut c = LruColumnCache::new(8, 2);
        // token demands 3 columns with capacity 2: the third is loaded
        // directly and must not evict the first two
        let out = c.access(&[0, 1, 2]);
        assert_eq!(out.misses, 3);
        assert_eq!(c.len(), 2);
        assert!(c.contains(0) && c.contains(1));
        assert!(!c.contains(2));
    }

    #[test]
    fn capacity_clamped_to_column_count_and_zero_capacity_works() {
        let c = LruColumnCache::new(4, 100);
        assert_eq!(c.capacity(), 4);
        let mut c = LruColumnCache::new(4, 0);
        let out = c.access(&[0, 1]);
        assert_eq!(out.misses, 2);
        assert!(c.is_empty());
    }

    #[test]
    fn clear_and_mask() {
        let mut c = LruColumnCache::new(4, 4);
        c.access(&[1, 3]);
        assert_eq!(c.cached_mask(), vec![false, true, false, true]);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.policy(), EvictionPolicy::Lru);
    }
}
