//! The "no DRAM cache" baseline: every weight access is a Flash read.

use super::{AccessOutcome, ColumnCache, EvictionPolicy};

/// A cache that never retains anything. Models the baseline where MLP weights
/// are streamed from Flash for every token (Fig. 11, "DIP No cache").
#[derive(Debug, Clone, Default)]
pub struct NoCache {
    n_columns: usize,
}

impl NoCache {
    /// Creates a no-op cache for a matrix with `n_columns` columns.
    pub fn new(n_columns: usize) -> Self {
        NoCache { n_columns }
    }
}

impl ColumnCache for NoCache {
    fn n_columns(&self) -> usize {
        self.n_columns
    }

    fn capacity(&self) -> usize {
        0
    }

    fn len(&self) -> usize {
        0
    }

    fn contains(&self, _column: usize) -> bool {
        false
    }

    fn access(&mut self, columns: &[usize]) -> AccessOutcome {
        AccessOutcome {
            hits: 0,
            misses: columns.len(),
            evictions: 0,
        }
    }

    fn clear(&mut self) {}

    fn policy(&self) -> EvictionPolicy {
        EvictionPolicy::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn everything_is_a_miss() {
        let mut c = NoCache::new(16);
        let out = c.access(&[0, 1, 2, 3]);
        assert_eq!(out.hits, 0);
        assert_eq!(out.misses, 4);
        let out = c.access(&[0, 1, 2, 3]);
        assert_eq!(out.hits, 0, "repeated access still misses");
        assert!(c.is_empty());
        assert!(!c.contains(0));
        assert_eq!(c.cached_mask(), vec![false; 16]);
        c.clear();
        assert_eq!(c.capacity(), 0);
    }
}
