//! DRAM column caches and eviction policies.
//!
//! The unit of caching is a *weight column* of one linear layer, matching the
//! neuron-granular caching of the paper (Fig. 1 / Fig. 7). One cache instance
//! manages one linear layer's columns; the model-level simulator owns one
//! cache per (layer, matrix) pair.
//!
//! Implemented policies (Section 5.1 / Fig. 11):
//! * [`NoCache`] — every access is a Flash read,
//! * [`LruColumnCache`] — evict the least recently used column,
//! * [`LfuColumnCache`] — evict the least frequently used column,
//! * [`BeladyColumnCache`] — Belady's clairvoyant MIN oracle, which requires
//!   the full future access trace.

mod belady;
mod lfu;
mod lru;
mod none;

pub use belady::BeladyColumnCache;
pub use lfu::LfuColumnCache;
pub use lru::LruColumnCache;
pub use none::NoCache;

use crate::error::{Result, SimError};
use serde::{Deserialize, Serialize};

/// Result of presenting one token's column demands to a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessOutcome {
    /// Columns that were already resident in DRAM.
    pub hits: usize,
    /// Columns that had to be fetched from Flash.
    pub misses: usize,
    /// Resident columns evicted to make room for this access's misses.
    pub evictions: usize,
}

impl AccessOutcome {
    /// Total number of columns accessed.
    pub fn total(&self) -> usize {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; 1.0 when nothing was accessed.
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            1.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }

    /// Accumulates another outcome into this one.
    pub fn accumulate(&mut self, other: AccessOutcome) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
    }
}

/// Cache eviction policy selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EvictionPolicy {
    /// No DRAM cache: every access reads from Flash.
    None,
    /// Least-recently-used eviction.
    Lru,
    /// Least-frequently-used eviction (the paper's default).
    Lfu,
    /// Belady's clairvoyant oracle (upper bound; needs the future trace).
    Belady,
}

impl std::fmt::Display for EvictionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EvictionPolicy::None => "no-cache",
            EvictionPolicy::Lru => "lru",
            EvictionPolicy::Lfu => "lfu",
            EvictionPolicy::Belady => "belady",
        };
        f.write_str(s)
    }
}

impl EvictionPolicy {
    /// Builds a cache of this policy for a linear layer with `n_columns`
    /// columns and room for `capacity` resident columns.
    ///
    /// `future` must be provided for [`EvictionPolicy::Belady`]: one entry
    /// per upcoming token listing the columns that token will access.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if Belady is requested without a
    /// future trace.
    pub fn build(
        self,
        n_columns: usize,
        capacity: usize,
        future: Option<&[Vec<usize>]>,
    ) -> Result<Box<dyn ColumnCache>> {
        match self {
            EvictionPolicy::None => Ok(Box::new(NoCache::new(n_columns))),
            EvictionPolicy::Lru => Ok(Box::new(LruColumnCache::new(n_columns, capacity))),
            EvictionPolicy::Lfu => Ok(Box::new(LfuColumnCache::new(n_columns, capacity))),
            EvictionPolicy::Belady => {
                let future = future.ok_or(SimError::InvalidConfig {
                    field: "future",
                    reason: "Belady's oracle requires the future access trace".to_string(),
                })?;
                Ok(Box::new(BeladyColumnCache::new(
                    n_columns, capacity, future,
                )))
            }
        }
    }
}

/// A DRAM cache over the columns of one linear layer.
pub trait ColumnCache {
    /// Number of columns in the backing weight matrix.
    fn n_columns(&self) -> usize;

    /// Maximum number of columns that can be resident at once.
    fn capacity(&self) -> usize;

    /// Number of columns currently resident.
    fn len(&self) -> usize;

    /// Whether no columns are resident.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the given column is resident.
    fn contains(&self, column: usize) -> bool;

    /// Boolean residency mask over all columns.
    fn cached_mask(&self) -> Vec<bool> {
        let mut out = Vec::new();
        self.cached_mask_into(&mut out);
        out
    }

    /// Allocation-free [`ColumnCache::cached_mask`]: refills `out` in place
    /// (cleared first; capacity is reused across calls).
    fn cached_mask_into(&self, out: &mut Vec<bool>) {
        out.clear();
        out.extend((0..self.n_columns()).map(|c| self.contains(c)));
    }

    /// Presents one token's demanded columns. Resident columns count as hits;
    /// missing columns count as misses and are inserted when space allows
    /// (a column demanded by the *current* token is never evicted to make
    /// room for another column of the same token — those columns are loaded
    /// straight to the compute unit instead, as described in Section 6.4).
    fn access(&mut self, columns: &[usize]) -> AccessOutcome;

    /// Evicts everything.
    fn clear(&mut self);

    /// The eviction policy implemented by this cache.
    fn policy(&self) -> EvictionPolicy;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_accounting() {
        let mut a = AccessOutcome {
            hits: 3,
            misses: 1,
            evictions: 0,
        };
        assert_eq!(a.total(), 4);
        assert!((a.hit_rate() - 0.75).abs() < 1e-9);
        a.accumulate(AccessOutcome {
            hits: 1,
            misses: 3,
            evictions: 2,
        });
        assert_eq!(a.hits, 4);
        assert_eq!(a.misses, 4);
        assert_eq!(a.evictions, 2);
        assert!((AccessOutcome::default().hit_rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn factory_builds_every_policy() {
        let future = vec![vec![0usize, 1], vec![2]];
        for policy in [
            EvictionPolicy::None,
            EvictionPolicy::Lru,
            EvictionPolicy::Lfu,
            EvictionPolicy::Belady,
        ] {
            let cache = policy.build(8, 4, Some(&future)).unwrap();
            assert_eq!(cache.policy(), policy);
            assert_eq!(cache.n_columns(), 8);
        }
    }

    #[test]
    fn belady_requires_future() {
        assert!(EvictionPolicy::Belady.build(8, 4, None).is_err());
        assert!(EvictionPolicy::Lfu.build(8, 4, None).is_ok());
    }

    #[test]
    fn display_names() {
        assert_eq!(EvictionPolicy::Lfu.to_string(), "lfu");
        assert_eq!(EvictionPolicy::None.to_string(), "no-cache");
    }
}
