//! Multi-stream trace replay: several sessions sharing one DRAM column cache.
//!
//! Single-stream simulation ([`crate::simulate`]) answers "how fast is one
//! user's token loop"; a serving system needs "what happens when many users'
//! decode steps are interleaved through the *same* DRAM cache". This module
//! replays an interleaving of per-session [`AccessTrace`]s through one shared
//! set of column caches (one per block/matrix, exactly as in the
//! single-stream simulator) and reports both the aggregate cost and the
//! per-stream cost, including each stream's wall-clock completion time under
//! the serial memory-bus model.
//!
//! The interleave order is supplied by the caller (the `serve` crate's
//! continuous-batching scheduler produces it); [`round_robin_order`] builds
//! the default fair interleave. With a single stream the replay degenerates
//! to the single-stream simulator, and the aggregate [`SimReport`] is
//! *identical* to [`crate::simulate`] on that trace — both run through the
//! same [`crate::sim::replay_token_costs`] core.

use crate::cache::EvictionPolicy;
use crate::device::DeviceConfig;
use crate::error::{Result, SimError};
use crate::layout::ModelLayout;
use crate::sim::{replay_token_costs, report_from_costs, SimReport};
use crate::trace::AccessTrace;
use serde::{Deserialize, Serialize};

/// Per-stream statistics of a concurrent replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamStats {
    /// Index of the stream in the input slice.
    pub stream: usize,
    /// Number of tokens this stream contributed.
    pub tokens: usize,
    /// Sum of this stream's own token service times, in seconds.
    pub service_s: f64,
    /// Wall-clock time at which the stream's first token finished (seconds
    /// from the start of the replay; 0 for an empty stream).
    pub first_token_s: f64,
    /// Wall-clock time at which the stream's last token finished.
    pub completion_s: f64,
    /// Tokens per second of wall-clock time until this stream completed.
    pub throughput_tps: f64,
    /// Shared-cache hits attributed to this stream's tokens.
    pub hits: u64,
    /// Shared-cache misses attributed to this stream's tokens.
    pub misses: u64,
    /// Shared-cache evictions triggered by this stream's tokens.
    pub evictions: u64,
    /// Hit rate of this stream's accesses in `[0, 1]`.
    pub hit_rate: f64,
    /// Bytes this stream read from Flash.
    pub flash_bytes: f64,
    /// Bytes this stream read from DRAM.
    pub dram_bytes: f64,
}

/// Result of replaying several interleaved streams through one shared cache.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConcurrentReport {
    /// Aggregate statistics over the whole interleaved replay. With a single
    /// stream this equals [`crate::simulate`] on that stream's trace.
    pub aggregate: SimReport,
    /// Per-stream statistics, in input order.
    pub streams: Vec<StreamStats>,
    /// The interleave that was replayed: `(stream, service_latency_s)` per
    /// scheduled token, in execution order.
    pub schedule: Vec<(usize, f64)>,
}

impl ConcurrentReport {
    /// Wall-clock time of the whole replay (seconds).
    pub fn makespan_s(&self) -> f64 {
        self.aggregate.total_latency_s
    }

    /// Jain's fairness index over the streams' service shares, in
    /// `(0, 1]`; 1 means every stream received identical service time.
    pub fn jain_fairness(&self) -> f64 {
        let shares: Vec<f64> = self
            .streams
            .iter()
            .filter(|s| s.tokens > 0)
            .map(|s| s.service_s)
            .collect();
        jain_index(&shares)
    }
}

/// Jain's fairness index `(Σx)² / (n·Σx²)` over non-negative shares.
pub fn jain_index(shares: &[f64]) -> f64 {
    if shares.is_empty() {
        return 1.0;
    }
    let sum: f64 = shares.iter().sum();
    let sq_sum: f64 = shares.iter().map(|x| x * x).sum();
    if sq_sum <= 0.0 {
        return 1.0;
    }
    (sum * sum) / (shares.len() as f64 * sq_sum)
}

/// Builds the default fair interleave: round-robin over all non-exhausted
/// streams until every stream's tokens are scheduled.
pub fn round_robin_order(streams: &[AccessTrace]) -> Vec<usize> {
    let mut remaining: Vec<usize> = streams.iter().map(AccessTrace::n_tokens).collect();
    let total: usize = remaining.iter().sum();
    let mut order = Vec::with_capacity(total);
    while order.len() < total {
        for (i, rem) in remaining.iter_mut().enumerate() {
            if *rem > 0 {
                *rem -= 1;
                order.push(i);
            }
        }
    }
    order
}

/// Flattens per-stream traces into one interleaved trace following `order`.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] when `order` references an unknown
/// stream or does not schedule every token of every stream exactly once.
pub fn interleave(streams: &[AccessTrace], order: &[usize]) -> Result<AccessTrace> {
    let mut cursors = vec![0usize; streams.len()];
    let mut merged = AccessTrace::new();
    for &s in order {
        let stream = streams.get(s).ok_or_else(|| SimError::InvalidConfig {
            field: "order",
            reason: format!(
                "order references stream {s} but only {} exist",
                streams.len()
            ),
        })?;
        let cursor = &mut cursors[s];
        let token = stream
            .tokens
            .get(*cursor)
            .ok_or_else(|| SimError::InvalidConfig {
                field: "order",
                reason: format!(
                    "order schedules {} tokens of stream {s} but it only has {}",
                    *cursor + 1,
                    stream.n_tokens()
                ),
            })?;
        *cursor += 1;
        merged.push(token.clone());
    }
    for (s, (&cursor, stream)) in cursors.iter().zip(streams.iter()).enumerate() {
        if cursor != stream.n_tokens() {
            return Err(SimError::InvalidConfig {
                field: "order",
                reason: format!(
                    "order schedules {cursor} of stream {s}'s {} tokens",
                    stream.n_tokens()
                ),
            });
        }
    }
    Ok(merged)
}

/// Replays the interleaving of `streams` given by `order` through one shared
/// set of column caches and prices every token with the serial memory-bus
/// model of [`crate::simulate`].
///
/// Tokens execute strictly in `order`; each token's wall-clock completion is
/// the running sum of service latencies (the memory bus is the bottleneck
/// resource, so decode steps of concurrent sessions serialise on it — the
/// same assumption Appendix A makes for a single stream).
///
/// # Errors
///
/// Propagates [`interleave`] validation errors plus any allocation or trace
/// error from the underlying replay.
pub fn simulate_concurrent(
    layout: &ModelLayout,
    device: &DeviceConfig,
    policy: EvictionPolicy,
    streams: &[AccessTrace],
    order: &[usize],
) -> Result<ConcurrentReport> {
    let merged = interleave(streams, order)?;
    let (costs, cache_fraction) = replay_token_costs(layout, device, policy, &merged)?;
    let aggregate = report_from_costs(layout, policy, &merged, &costs, cache_fraction);

    let mut stats: Vec<StreamStats> = (0..streams.len())
        .map(|i| StreamStats {
            stream: i,
            tokens: 0,
            service_s: 0.0,
            first_token_s: 0.0,
            completion_s: 0.0,
            throughput_tps: 0.0,
            hits: 0,
            misses: 0,
            evictions: 0,
            hit_rate: 1.0,
            flash_bytes: 0.0,
            dram_bytes: 0.0,
        })
        .collect();

    let mut clock = 0.0f64;
    let mut schedule = Vec::with_capacity(order.len());
    for (&s, cost) in order.iter().zip(costs.iter()) {
        clock += cost.latency_s;
        let st = &mut stats[s];
        if st.tokens == 0 {
            st.first_token_s = clock;
        }
        st.tokens += 1;
        st.service_s += cost.latency_s;
        st.completion_s = clock;
        st.hits += cost.hits as u64;
        st.misses += cost.misses as u64;
        st.evictions += cost.evictions as u64;
        st.flash_bytes += cost.flash_bytes;
        st.dram_bytes += cost.dram_bytes;
        schedule.push((s, cost.latency_s));
    }
    for st in &mut stats {
        let accesses = st.hits + st.misses;
        st.hit_rate = if accesses == 0 {
            1.0
        } else {
            st.hits as f64 / accesses as f64
        };
        st.throughput_tps = if st.completion_s > 0.0 {
            st.tokens as f64 / st.completion_s
        } else {
            0.0
        };
    }

    Ok(ConcurrentReport {
        aggregate,
        streams: stats,
        schedule,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use crate::trace::{AccessSet, BlockAccess, TokenAccess};

    fn layout() -> ModelLayout {
        ModelLayout::from_dims("concurrent-test", 4, 64, 192, 8.0, 100_000)
    }

    fn device(dram_bytes: u64) -> DeviceConfig {
        DeviceConfig::apple_a18(4.0).with_dram_bytes(dram_bytes)
    }

    fn sparse_stream(n_tokens: usize, phase: usize, density: f64) -> AccessTrace {
        let up_k = (64.0 * density) as usize;
        let down_k = (192.0 * density) as usize;
        let mut trace = AccessTrace::new();
        for t in 0..n_tokens {
            let blocks = (0..4)
                .map(|b| BlockAccess {
                    up: AccessSet::Subset(
                        (0..up_k).map(|i| (i + phase + t / 4 + b) % 64).collect(),
                    ),
                    gate: AccessSet::Subset(
                        (0..up_k).map(|i| (i + phase + t / 4 + b) % 64).collect(),
                    ),
                    down: AccessSet::Subset(
                        (0..down_k)
                            .map(|i| (i + 2 * phase + t / 4 + b) % 192)
                            .collect(),
                    ),
                })
                .collect();
            trace.push(TokenAccess { blocks });
        }
        trace
    }

    #[test]
    fn single_stream_matches_simulate_exactly() {
        let l = layout();
        let d = device(220_000);
        let stream = sparse_stream(24, 0, 0.5);
        for policy in [
            EvictionPolicy::None,
            EvictionPolicy::Lru,
            EvictionPolicy::Lfu,
            EvictionPolicy::Belady,
        ] {
            let single = simulate(&l, &d, policy, &stream).unwrap();
            let order = round_robin_order(std::slice::from_ref(&stream));
            let multi =
                simulate_concurrent(&l, &d, policy, std::slice::from_ref(&stream), &order).unwrap();
            assert_eq!(multi.aggregate, single, "policy {policy}");
            assert_eq!(multi.streams.len(), 1);
            assert_eq!(multi.streams[0].tokens, 24);
            assert!((multi.streams[0].completion_s - single.total_latency_s).abs() < 1e-12);
        }
    }

    #[test]
    fn round_robin_interleaves_unequal_streams() {
        let streams = vec![sparse_stream(3, 0, 0.5), sparse_stream(1, 7, 0.5)];
        let order = round_robin_order(&streams);
        assert_eq!(order, vec![0, 1, 0, 0]);
        let merged = interleave(&streams, &order).unwrap();
        assert_eq!(merged.n_tokens(), 4);
        assert_eq!(merged.tokens[1], streams[1].tokens[0]);
    }

    #[test]
    fn bad_orders_are_rejected() {
        let streams = vec![sparse_stream(2, 0, 0.5)];
        // unknown stream index
        assert!(interleave(&streams, &[0, 1]).is_err());
        // stream over-scheduled
        assert!(interleave(&streams, &[0, 0, 0]).is_err());
        // stream under-scheduled
        assert!(interleave(&streams, &[0]).is_err());
    }

    #[test]
    fn contention_lowers_per_stream_hit_rate() {
        // Two streams with disjoint working sets thrash a small shared cache;
        // each stream alone in the same cache does strictly better.
        let l = layout();
        let d = device(180_000);
        let a = sparse_stream(40, 0, 0.4);
        let b = sparse_stream(40, 29, 0.4);
        let streams = vec![a.clone(), b];
        let order = round_robin_order(&streams);
        let shared = simulate_concurrent(&l, &d, EvictionPolicy::Lru, &streams, &order).unwrap();
        let alone = simulate(&l, &d, EvictionPolicy::Lru, &a).unwrap();
        assert!(
            shared.streams[0].hit_rate < alone.hit_rate,
            "shared {} vs alone {}",
            shared.streams[0].hit_rate,
            alone.hit_rate
        );
    }

    #[test]
    fn completion_times_are_monotone_in_schedule_position() {
        let l = layout();
        let d = device(200_000);
        let streams = vec![sparse_stream(6, 0, 0.5), sparse_stream(12, 3, 0.5)];
        let order = round_robin_order(&streams);
        let report = simulate_concurrent(&l, &d, EvictionPolicy::Lfu, &streams, &order).unwrap();
        // the shorter stream finishes first under round-robin
        assert!(report.streams[0].completion_s < report.streams[1].completion_s);
        assert!(report.streams[0].first_token_s <= report.streams[0].completion_s);
        // makespan equals the last completion
        let last = report
            .streams
            .iter()
            .map(|s| s.completion_s)
            .fold(0.0f64, f64::max);
        assert!((report.makespan_s() - last).abs() < 1e-12);
        // schedule records every token
        assert_eq!(report.schedule.len(), 18);
    }

    #[test]
    fn fairness_index_behaves() {
        assert!((jain_index(&[]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[2.0, 2.0, 2.0]) - 1.0).abs() < 1e-12);
        let skewed = jain_index(&[10.0, 1.0, 1.0]);
        assert!(skewed < 0.6, "skewed shares must score low, got {skewed}");

        let l = layout();
        let d = device(200_000);
        let streams = vec![sparse_stream(10, 0, 0.5), sparse_stream(10, 5, 0.5)];
        let order = round_robin_order(&streams);
        let report = simulate_concurrent(&l, &d, EvictionPolicy::Lfu, &streams, &order).unwrap();
        // same density and round-robin service, but different working sets ->
        // high (not perfect) fairness: cold-start misses are not split evenly
        let fairness = report.jain_fairness();
        assert!(fairness > 0.75 && fairness <= 1.0, "fairness {fairness}");
    }

    #[test]
    fn empty_streams_produce_empty_report() {
        let l = layout();
        let d = device(200_000);
        let report = simulate_concurrent(&l, &d, EvictionPolicy::Lfu, &[], &[]).unwrap();
        assert_eq!(report.aggregate.tokens, 0);
        assert!(report.streams.is_empty());
        assert!((report.jain_fairness() - 1.0).abs() < 1e-12);
    }
}
