//! Mobile-SoC hardware simulator for memory-bound LLM token generation.
//!
//! This crate re-implements the paper's HW simulator (Appendix A): it models
//! the data transfers between Flash, DRAM and the compute unit during token
//! generation and derives per-token latency and throughput from them. It
//! knows nothing about neural networks — only about bytes, columns and
//! caches — which keeps it reusable for any dynamic sparsity method.
//!
//! * [`DeviceConfig`] — DRAM capacity and DRAM/Flash bandwidths (Apple A18
//!   and Snapdragon-class presets, plus ablation knobs),
//! * [`ModelLayout`] — static vs dynamically-cached bytes of a model,
//! * [`alloc::allocate`] — static pinning + uniform per-layer cache split,
//! * [`cache`] — LRU / LFU / Belady-oracle / no-cache column caches,
//! * [`AccessTrace`] — which columns each token needed,
//! * [`simulate`] — replay a trace and report latency, throughput, hit rate,
//! * [`simulate_concurrent`] — replay *several* sessions' traces interleaved
//!   through one shared cache (multi-tenant contention; see [`concurrent`]).
//!
//! # Example
//!
//! ```
//! use hwsim::{DeviceConfig, ModelLayout, EvictionPolicy, simulate_dense};
//!
//! let layout = ModelLayout::from_dims("demo", 4, 64, 192, 4.0, 50_000);
//! let device = DeviceConfig::apple_a18(4.0).with_dram_bytes(200_000);
//! let report = simulate_dense(&layout, &device, EvictionPolicy::Lfu, 10)?;
//! assert!(report.throughput_tps > 0.0);
//! # Ok::<(), hwsim::SimError>(())
//! ```

#![warn(missing_docs)]

pub mod alloc;
pub mod cache;
pub mod concurrent;
pub mod device;
pub mod error;
pub mod layout;
pub mod sim;
pub mod trace;

pub use alloc::{allocate, BlockCacheCapacity, DramAllocation};
pub use cache::{AccessOutcome, ColumnCache, EvictionPolicy};
pub use concurrent::{
    interleave, jain_index, round_robin_order, simulate_concurrent, ConcurrentReport, StreamStats,
};
pub use device::{DeviceConfig, GB_PER_S, GIB};
pub use error::{Result, SimError};
pub use layout::{LinearLayout, MlpBlockLayout, ModelLayout};
pub use sim::{simulate, simulate_dense, SimReport, TokenCost, TokenPricer};
pub use trace::{AccessSet, AccessTrace, BlockAccess, TokenAccess};
