//! Access traces: which weight columns each token needed.
//!
//! Traces are produced by running a sparsity method over an evaluation
//! corpus (the `dip-core` strategies report per-token
//! `lm::MlpAccessRecord`s, which the experiment harness converts into this
//! crate's representation) and are then replayed through the simulator to
//! obtain latency and throughput.

use serde::{Deserialize, Serialize};

/// The set of columns of one linear layer accessed by one token.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum AccessSet {
    /// All columns were needed (dense computation of this layer).
    #[default]
    All,
    /// Only the listed columns were needed.
    Subset(Vec<usize>),
}

impl AccessSet {
    /// Materialises the accessed column indices (allocates; prefer
    /// [`AccessSet::extend_indices`] / [`AccessSet::for_each_index`] on hot
    /// paths).
    pub fn indices(&self, n_columns: usize) -> Vec<usize> {
        let mut out = Vec::new();
        self.extend_indices(n_columns, &mut out);
        out
    }

    /// Appends the accessed column indices to a reused buffer (not cleared).
    pub fn extend_indices(&self, n_columns: usize, out: &mut Vec<usize>) {
        match self {
            AccessSet::All => out.extend(0..n_columns),
            AccessSet::Subset(v) => out.extend_from_slice(v),
        }
    }

    /// Visits every accessed column index in order without materialising.
    pub fn for_each_index(&self, n_columns: usize, mut f: impl FnMut(usize)) {
        match self {
            AccessSet::All => (0..n_columns).for_each(&mut f),
            AccessSet::Subset(v) => v.iter().copied().for_each(&mut f),
        }
    }

    /// Number of accessed columns.
    pub fn count(&self, n_columns: usize) -> usize {
        match self {
            AccessSet::All => n_columns,
            AccessSet::Subset(v) => v.len(),
        }
    }

    /// Fraction of columns accessed.
    pub fn density(&self, n_columns: usize) -> f64 {
        if n_columns == 0 {
            1.0
        } else {
            self.count(n_columns) as f64 / n_columns as f64
        }
    }
}

/// Per-token accesses to one MLP block.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockAccess {
    /// Columns of the up projection.
    pub up: AccessSet,
    /// Columns of the gate projection.
    pub gate: AccessSet,
    /// Columns of the down projection.
    pub down: AccessSet,
}

/// Accesses of a single generated token across every MLP block.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenAccess {
    /// One entry per transformer block.
    pub blocks: Vec<BlockAccess>,
}

/// A full access trace over a sequence of generated tokens.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessTrace {
    /// One entry per token.
    pub tokens: Vec<TokenAccess>,
}

impl AccessTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        AccessTrace::default()
    }

    /// Creates a fully dense trace for `n_tokens` tokens and `n_blocks` blocks
    /// (the baseline that streams the whole model).
    pub fn dense(n_tokens: usize, n_blocks: usize) -> Self {
        AccessTrace {
            tokens: (0..n_tokens)
                .map(|_| TokenAccess {
                    blocks: vec![BlockAccess::default(); n_blocks],
                })
                .collect(),
        }
    }

    /// Number of tokens in the trace.
    pub fn n_tokens(&self) -> usize {
        self.tokens.len()
    }

    /// Number of blocks per token (0 for an empty trace).
    pub fn n_blocks(&self) -> usize {
        self.tokens.first().map(|t| t.blocks.len()).unwrap_or(0)
    }

    /// Appends one token's accesses.
    pub fn push(&mut self, token: TokenAccess) {
        self.tokens.push(token);
    }

    /// Mean MLP weight density over tokens and blocks for the given layout.
    pub fn mean_density(&self, layout: &crate::layout::ModelLayout) -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for token in &self.tokens {
            for (block, bl) in token.blocks.iter().zip(layout.blocks.iter()) {
                let up_b = block.up.density(bl.up.n_columns) * bl.up.total_bytes() as f64;
                let gate_b = block.gate.density(bl.gate.n_columns) * bl.gate.total_bytes() as f64;
                let down_b = block.down.density(bl.down.n_columns) * bl.down.total_bytes() as f64;
                let total = bl.total_bytes() as f64;
                if total > 0.0 {
                    sum += (up_b + gate_b + down_b) / total;
                    count += 1;
                }
            }
        }
        if count == 0 {
            1.0
        } else {
            sum / count as f64
        }
    }

    /// Extracts, for one (block, matrix) pair, the per-token column accesses —
    /// the "future" sequence that Belady's oracle needs.
    pub fn per_matrix_sequence(
        &self,
        block: usize,
        select: impl Fn(&BlockAccess) -> &AccessSet,
        n_columns: usize,
    ) -> Vec<Vec<usize>> {
        self.tokens
            .iter()
            .map(|t| {
                t.blocks
                    .get(block)
                    .map(|b| select(b).indices(n_columns))
                    .unwrap_or_default()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::ModelLayout;

    #[test]
    fn access_set_counts() {
        assert_eq!(AccessSet::All.count(10), 10);
        assert_eq!(AccessSet::Subset(vec![1, 2]).count(10), 2);
        assert!((AccessSet::Subset(vec![1, 2]).density(10) - 0.2).abs() < 1e-12);
        assert_eq!(AccessSet::All.indices(3), vec![0, 1, 2]);
        assert!((AccessSet::All.density(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dense_trace_shape() {
        let t = AccessTrace::dense(5, 3);
        assert_eq!(t.n_tokens(), 5);
        assert_eq!(t.n_blocks(), 3);
        let layout = ModelLayout::from_dims("m", 3, 16, 48, 8.0, 0);
        assert!((t.mean_density(&layout) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_density_of_half_sparse_trace() {
        let layout = ModelLayout::from_dims("m", 1, 10, 20, 8.0, 0);
        let mut trace = AccessTrace::new();
        trace.push(TokenAccess {
            blocks: vec![BlockAccess {
                up: AccessSet::Subset((0..5).collect()),
                gate: AccessSet::Subset((0..5).collect()),
                down: AccessSet::Subset((0..10).collect()),
            }],
        });
        assert!((trace.mean_density(&layout) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_density_is_one() {
        let layout = ModelLayout::from_dims("m", 1, 10, 20, 8.0, 0);
        assert!((AccessTrace::new().mean_density(&layout) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn per_matrix_sequence_extraction() {
        let mut trace = AccessTrace::new();
        for i in 0..3usize {
            trace.push(TokenAccess {
                blocks: vec![BlockAccess {
                    up: AccessSet::Subset(vec![i]),
                    gate: AccessSet::All,
                    down: AccessSet::Subset(vec![i, i + 1]),
                }],
            });
        }
        let seq = trace.per_matrix_sequence(0, |b| &b.down, 20);
        assert_eq!(seq, vec![vec![0, 1], vec![1, 2], vec![2, 3]]);
        let seq = trace.per_matrix_sequence(0, |b| &b.gate, 4);
        assert_eq!(seq[0], vec![0, 1, 2, 3]);
        // out-of-range block index yields empty accesses
        let seq = trace.per_matrix_sequence(5, |b| &b.up, 4);
        assert!(seq.iter().all(|s| s.is_empty()));
    }
}
