//! Memory layout of a model as seen by the hardware simulator.
//!
//! The simulator does not know about weights or activations — only about how
//! many bytes live where. A [`ModelLayout`] describes the statically resident
//! portion (attention, embeddings, norms, KV cache, any predictor overhead)
//! plus, for every MLP block, the column structure of its three linear layers
//! (the units of dynamic caching).

use serde::{Deserialize, Serialize};

/// Column structure of a single linear layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinearLayout {
    /// Number of weight columns (the caching granularity).
    pub n_columns: usize,
    /// Size of one column in bytes at the chosen weight precision.
    pub bytes_per_column: u64,
}

impl LinearLayout {
    /// Total size of the layer in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.n_columns as u64 * self.bytes_per_column
    }
}

/// Layout of one MLP block (up, gate and down projections).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MlpBlockLayout {
    /// Up projection: columns indexed by the `d_model` dimension.
    pub up: LinearLayout,
    /// Gate projection: columns indexed by the `d_model` dimension.
    pub gate: LinearLayout,
    /// Down projection: columns indexed by the `d_ff` dimension.
    pub down: LinearLayout,
}

impl MlpBlockLayout {
    /// Total bytes of the block.
    pub fn total_bytes(&self) -> u64 {
        self.up.total_bytes() + self.gate.total_bytes() + self.down.total_bytes()
    }
}

/// Memory layout of a whole model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelLayout {
    /// Name used in reports.
    pub name: String,
    /// Weight precision in bits (e.g. 4.0 for INT4, 16.0 for FP16).
    pub bits_per_weight: f64,
    /// Bytes that are statically pinned in DRAM: attention weights,
    /// embeddings, norms, KV cache and any auxiliary modules (predictors).
    pub static_bytes: u64,
    /// One layout entry per transformer block.
    pub blocks: Vec<MlpBlockLayout>,
}

impl ModelLayout {
    /// Builds a layout from raw transformer dimensions.
    ///
    /// `static_bytes` should include everything that is not an MLP weight;
    /// callers typically compute it from the model configuration plus the
    /// KV-cache size and any per-method overhead (e.g. DejaVu predictors).
    pub fn from_dims(
        name: impl Into<String>,
        n_layers: usize,
        d_model: usize,
        d_ff: usize,
        bits_per_weight: f64,
        static_bytes: u64,
    ) -> Self {
        let col_bytes = |rows: usize| ((rows as f64) * bits_per_weight / 8.0).ceil() as u64;
        let block = MlpBlockLayout {
            up: LinearLayout {
                n_columns: d_model,
                bytes_per_column: col_bytes(d_ff),
            },
            gate: LinearLayout {
                n_columns: d_model,
                bytes_per_column: col_bytes(d_ff),
            },
            down: LinearLayout {
                n_columns: d_ff,
                bytes_per_column: col_bytes(d_model),
            },
        };
        ModelLayout {
            name: name.into(),
            bits_per_weight,
            static_bytes,
            blocks: vec![block; n_layers],
        }
    }

    /// Number of MLP blocks.
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total MLP bytes (the dynamically cacheable portion).
    pub fn mlp_bytes(&self) -> u64 {
        self.blocks.iter().map(|b| b.total_bytes()).sum()
    }

    /// Total model bytes (static + MLP).
    pub fn total_bytes(&self) -> u64 {
        self.static_bytes + self.mlp_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_dims_matches_manual_accounting() {
        let layout = ModelLayout::from_dims("m", 2, 8, 24, 4.0, 1000);
        assert_eq!(layout.n_blocks(), 2);
        let block = &layout.blocks[0];
        // up: 8 columns of 24 weights at 4 bits = 12 bytes each
        assert_eq!(block.up.n_columns, 8);
        assert_eq!(block.up.bytes_per_column, 12);
        // down: 24 columns of 8 weights at 4 bits = 4 bytes each
        assert_eq!(block.down.n_columns, 24);
        assert_eq!(block.down.bytes_per_column, 4);
        // per block: 2*8*12 + 24*4 = 288 bytes = 3 * 8 * 24 * 0.5
        assert_eq!(block.total_bytes(), 288);
        assert_eq!(layout.mlp_bytes(), 576);
        assert_eq!(layout.total_bytes(), 1576);
    }

    #[test]
    fn higher_precision_means_more_bytes() {
        let int4 = ModelLayout::from_dims("a", 4, 64, 256, 4.0, 0);
        let fp16 = ModelLayout::from_dims("b", 4, 64, 256, 16.0, 0);
        assert_eq!(fp16.mlp_bytes(), 4 * int4.mlp_bytes());
    }

    #[test]
    fn fractional_bit_widths_round_up_per_column() {
        let layout = ModelLayout::from_dims("c", 1, 10, 10, 3.0, 0);
        // 10 weights at 3 bits = 30 bits = 3.75 bytes -> 4 bytes per column
        assert_eq!(layout.blocks[0].up.bytes_per_column, 4);
    }
}
