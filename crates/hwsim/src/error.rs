//! Error type for the hardware simulator.

use std::fmt;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, SimError>;

/// Errors produced by simulator configuration or execution.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A configuration value was invalid (zero bandwidth, empty layout, …).
    InvalidConfig {
        /// The offending field.
        field: &'static str,
        /// Explanation of the violated constraint.
        reason: String,
    },
    /// The statically allocated weights do not fit in the available DRAM.
    StaticAllocationTooLarge {
        /// Bytes required by static weights (attention, embeddings, KV cache, …).
        required: u64,
        /// Bytes of DRAM available.
        available: u64,
    },
    /// A trace referenced a layer or column outside the model layout.
    TraceOutOfRange {
        /// Description of the offending reference.
        what: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { field, reason } => {
                write!(f, "invalid simulator config `{field}`: {reason}")
            }
            SimError::StaticAllocationTooLarge { required, available } => write!(
                f,
                "static weights require {required} bytes but only {available} bytes of DRAM are available"
            ),
            SimError::TraceOutOfRange { what } => write!(f, "trace out of range: {what}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SimError::InvalidConfig {
            field: "dram",
            reason: "zero".into()
        }
        .to_string()
        .contains("dram"));
        assert!(SimError::StaticAllocationTooLarge {
            required: 10,
            available: 5
        }
        .to_string()
        .contains("10"));
        assert!(SimError::TraceOutOfRange {
            what: "layer 9".into()
        }
        .to_string()
        .contains("layer 9"));
    }
}
