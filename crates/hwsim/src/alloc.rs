//! DRAM allocation strategy.
//!
//! Following Appendix A of the paper: all layers that are not dynamically
//! pruned (attention, embeddings, norms, KV cache, predictors) are statically
//! pinned in DRAM; the remaining capacity is split across the MLP linear
//! layers proportionally to their size, giving every linear layer the same
//! *fraction* of cacheable columns.

use crate::device::DeviceConfig;
use crate::error::{Result, SimError};
use crate::layout::ModelLayout;
use serde::{Deserialize, Serialize};

/// Per-block cache capacities, in columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockCacheCapacity {
    /// Resident-column budget for the up projection.
    pub up: usize,
    /// Resident-column budget for the gate projection.
    pub gate: usize,
    /// Resident-column budget for the down projection.
    pub down: usize,
}

/// Result of dividing the DRAM budget between static weights and MLP caches.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DramAllocation {
    /// Bytes pinned for static (non-MLP) weights and KV cache.
    pub static_bytes: u64,
    /// Bytes available for MLP column caches.
    pub mlp_cache_bytes: u64,
    /// Fraction of the total MLP weights that fits in cache (clamped to 1).
    pub cache_fraction: f64,
    /// Per-block column capacities.
    pub capacities: Vec<BlockCacheCapacity>,
}

impl DramAllocation {
    /// Whether the entire model (static + MLP) fits in DRAM.
    pub fn model_fits_entirely(&self) -> bool {
        (self.cache_fraction - 1.0).abs() < f64::EPSILON || self.cache_fraction >= 1.0
    }
}

/// Splits the device's DRAM between static weights and per-layer MLP caches.
///
/// # Errors
///
/// Returns [`SimError::StaticAllocationTooLarge`] when the static portion
/// alone exceeds the DRAM capacity, and [`SimError::InvalidConfig`] for an
/// empty layout or invalid device.
pub fn allocate(layout: &ModelLayout, device: &DeviceConfig) -> Result<DramAllocation> {
    device.validate()?;
    if layout.blocks.is_empty() {
        return Err(SimError::InvalidConfig {
            field: "layout.blocks",
            reason: "model layout must contain at least one MLP block".to_string(),
        });
    }
    if layout.static_bytes > device.dram_capacity_bytes {
        return Err(SimError::StaticAllocationTooLarge {
            required: layout.static_bytes,
            available: device.dram_capacity_bytes,
        });
    }
    let remaining = device.dram_capacity_bytes - layout.static_bytes;
    let mlp_bytes = layout.mlp_bytes().max(1);
    let fraction = (remaining as f64 / mlp_bytes as f64).min(1.0);

    let capacities = layout
        .blocks
        .iter()
        .map(|b| BlockCacheCapacity {
            up: ((b.up.n_columns as f64) * fraction).floor() as usize,
            gate: ((b.gate.n_columns as f64) * fraction).floor() as usize,
            down: ((b.down.n_columns as f64) * fraction).floor() as usize,
        })
        .collect();

    Ok(DramAllocation {
        static_bytes: layout.static_bytes,
        mlp_cache_bytes: remaining.min(layout.mlp_bytes()),
        cache_fraction: fraction,
        capacities,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceConfig;

    fn layout() -> ModelLayout {
        ModelLayout::from_dims("m", 2, 100, 300, 8.0, 10_000)
    }

    #[test]
    fn allocation_splits_remaining_capacity() {
        let l = layout();
        // mlp bytes: per block 3 * 100 * 300 = 90_000 -> 180_000 total at 8 bits
        assert_eq!(l.mlp_bytes(), 180_000);
        let device = DeviceConfig::apple_a18(4.0).with_dram_bytes(100_000);
        let alloc = allocate(&l, &device).unwrap();
        assert_eq!(alloc.static_bytes, 10_000);
        assert_eq!(alloc.mlp_cache_bytes, 90_000);
        assert!((alloc.cache_fraction - 0.5).abs() < 1e-9);
        assert_eq!(alloc.capacities.len(), 2);
        assert_eq!(alloc.capacities[0].up, 50);
        assert_eq!(alloc.capacities[0].down, 150);
        assert!(!alloc.model_fits_entirely());
    }

    #[test]
    fn full_fit_clamps_fraction_to_one() {
        let l = layout();
        let device = DeviceConfig::apple_a18(4.0).with_dram_bytes(10_000_000);
        let alloc = allocate(&l, &device).unwrap();
        assert!((alloc.cache_fraction - 1.0).abs() < 1e-12);
        assert!(alloc.model_fits_entirely());
        assert_eq!(alloc.capacities[0].up, 100);
        assert_eq!(alloc.mlp_cache_bytes, l.mlp_bytes());
    }

    #[test]
    fn static_overflow_is_an_error() {
        let l = layout();
        let device = DeviceConfig::apple_a18(4.0).with_dram_bytes(5_000);
        assert!(matches!(
            allocate(&l, &device),
            Err(SimError::StaticAllocationTooLarge { .. })
        ));
    }

    #[test]
    fn empty_layout_is_rejected() {
        let mut l = layout();
        l.blocks.clear();
        let device = DeviceConfig::apple_a18(4.0);
        assert!(allocate(&l, &device).is_err());
    }

    #[test]
    fn zero_remaining_gives_zero_capacities() {
        let l = layout();
        let device = DeviceConfig::apple_a18(4.0).with_dram_bytes(10_000);
        let alloc = allocate(&l, &device).unwrap();
        assert_eq!(alloc.mlp_cache_bytes, 0);
        assert_eq!(alloc.capacities[0].up, 0);
    }
}
