//! Device (SoC) configurations: DRAM capacity and memory bandwidths.
//!
//! Defaults follow Appendix A of the paper: DRAM I/O speed of 60 GB/s and an
//! effective Flash read speed of 1 GB/s, in line with Apple A18-class parts;
//! ablations vary the DRAM capacity (Table 6) and the Flash speed (Table 7).

use serde::{Deserialize, Serialize};

/// One gibibyte in bytes.
pub const GIB: u64 = 1024 * 1024 * 1024;

/// One gigabyte per second in bytes per second.
pub const GB_PER_S: f64 = 1.0e9;

/// Hardware parameters of a simulated mobile device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Human readable name used in reports.
    pub name: String,
    /// DRAM capacity available to the LLM runtime, in bytes.
    pub dram_capacity_bytes: u64,
    /// DRAM read bandwidth in bytes per second.
    pub dram_bandwidth: f64,
    /// Effective Flash (UFS/NVMe) read bandwidth in bytes per second.
    pub flash_bandwidth: f64,
}

impl DeviceConfig {
    /// Apple-A18-class device with the given DRAM budget (GiB) for the LLM.
    pub fn apple_a18(dram_gib: f64) -> Self {
        DeviceConfig {
            name: format!("apple-a18-{dram_gib}GiB"),
            dram_capacity_bytes: (dram_gib * GIB as f64) as u64,
            dram_bandwidth: 60.0 * GB_PER_S,
            flash_bandwidth: 1.0 * GB_PER_S,
        }
    }

    /// Snapdragon 8s Gen 3-class device with the given DRAM budget (GiB).
    pub fn snapdragon_8s_gen3(dram_gib: f64) -> Self {
        DeviceConfig {
            name: format!("snapdragon-8s-gen3-{dram_gib}GiB"),
            dram_capacity_bytes: (dram_gib * GIB as f64) as u64,
            dram_bandwidth: 77.0 * GB_PER_S,
            flash_bandwidth: 1.0 * GB_PER_S,
        }
    }

    /// Budget phone: less DRAM for the LLM and slower flash.
    pub fn budget_phone() -> Self {
        DeviceConfig {
            name: "budget-phone".to_string(),
            dram_capacity_bytes: 2 * GIB,
            dram_bandwidth: 30.0 * GB_PER_S,
            flash_bandwidth: 0.5 * GB_PER_S,
        }
    }

    /// Returns a copy with a different DRAM capacity (bytes).
    pub fn with_dram_bytes(mut self, bytes: u64) -> Self {
        self.dram_capacity_bytes = bytes;
        self
    }

    /// Returns a copy with a different Flash bandwidth (bytes/s).
    pub fn with_flash_bandwidth(mut self, bandwidth: f64) -> Self {
        self.flash_bandwidth = bandwidth;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SimError::InvalidConfig`] when a bandwidth is not a
    /// positive finite number or the DRAM capacity is zero.
    pub fn validate(&self) -> crate::Result<()> {
        if self.dram_capacity_bytes == 0 {
            return Err(crate::SimError::InvalidConfig {
                field: "dram_capacity_bytes",
                reason: "must be > 0".to_string(),
            });
        }
        for (field, v) in [
            ("dram_bandwidth", self.dram_bandwidth),
            ("flash_bandwidth", self.flash_bandwidth),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(crate::SimError::InvalidConfig {
                    field,
                    reason: format!("must be a positive finite number, got {v}"),
                });
            }
        }
        Ok(())
    }

    /// Time in seconds to read `bytes` from DRAM.
    pub fn dram_read_time(&self, bytes: f64) -> f64 {
        bytes / self.dram_bandwidth
    }

    /// Time in seconds to read `bytes` from Flash.
    pub fn flash_read_time(&self, bytes: f64) -> f64 {
        bytes / self.flash_bandwidth
    }
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig::apple_a18(4.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        DeviceConfig::apple_a18(4.0).validate().unwrap();
        DeviceConfig::snapdragon_8s_gen3(6.0).validate().unwrap();
        DeviceConfig::budget_phone().validate().unwrap();
    }

    #[test]
    fn default_matches_paper_parameters() {
        let d = DeviceConfig::default();
        assert!((d.dram_bandwidth - 60.0 * GB_PER_S).abs() < 1e-3);
        assert!((d.flash_bandwidth - 1.0 * GB_PER_S).abs() < 1e-3);
        assert_eq!(d.dram_capacity_bytes, 4 * GIB);
    }

    #[test]
    fn builders_modify_fields() {
        let d = DeviceConfig::apple_a18(4.0)
            .with_dram_bytes(123)
            .with_flash_bandwidth(2.0 * GB_PER_S);
        assert_eq!(d.dram_capacity_bytes, 123);
        assert!((d.flash_bandwidth - 2.0 * GB_PER_S).abs() < 1e-3);
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(DeviceConfig::apple_a18(4.0)
            .with_dram_bytes(0)
            .validate()
            .is_err());
        assert!(DeviceConfig::apple_a18(4.0)
            .with_flash_bandwidth(0.0)
            .validate()
            .is_err());
        assert!(DeviceConfig::apple_a18(4.0)
            .with_flash_bandwidth(f64::NAN)
            .validate()
            .is_err());
    }

    #[test]
    fn flash_is_slower_than_dram() {
        let d = DeviceConfig::default();
        assert!(d.flash_read_time(1e9) > d.dram_read_time(1e9) * 10.0);
    }
}
