//! Token-generation latency/throughput simulation.
//!
//! The simulator replays an [`AccessTrace`] against a [`ModelLayout`] on a
//! [`DeviceConfig`]: statically pinned weights are read from DRAM every
//! token, dynamically cached MLP columns are read from DRAM on a hit and from
//! Flash on a miss, and the resulting per-token latency is
//!
//! `t = static_bytes / BW_dram + hit_bytes / BW_dram + miss_bytes / BW_flash`.
//!
//! NPU compute time is not modelled, following Appendix A of the paper
//! (token generation is memory-bound).

use crate::alloc::{allocate, DramAllocation};
use crate::cache::{AccessOutcome, ColumnCache, EvictionPolicy};
use crate::device::DeviceConfig;
use crate::error::{Result, SimError};
use crate::layout::ModelLayout;
use crate::trace::{AccessTrace, BlockAccess};
use serde::{Deserialize, Serialize};

/// Aggregate result of simulating one trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Model name (copied from the layout).
    pub model: String,
    /// Cache eviction policy used.
    pub policy: EvictionPolicy,
    /// Number of simulated tokens.
    pub tokens: usize,
    /// Total latency over the trace, in seconds.
    pub total_latency_s: f64,
    /// Tokens per second.
    pub throughput_tps: f64,
    /// Total bytes read from Flash.
    pub flash_bytes: f64,
    /// Total bytes read from DRAM (static weights + cached columns).
    pub dram_bytes: f64,
    /// Column-cache hits across all layers and tokens.
    pub hits: u64,
    /// Column-cache misses across all layers and tokens.
    pub misses: u64,
    /// Resident columns evicted across all layers and tokens.
    pub evictions: u64,
    /// Column-cache hit rate in `[0, 1]`.
    pub hit_rate: f64,
    /// Fraction of MLP weights that fit in the DRAM cache.
    pub cache_fraction: f64,
    /// Mean MLP weight density of the trace.
    pub mean_density: f64,
}

impl SimReport {
    /// Average per-token latency in milliseconds.
    pub fn latency_ms_per_token(&self) -> f64 {
        if self.tokens == 0 {
            0.0
        } else {
            1e3 * self.total_latency_s / self.tokens as f64
        }
    }
}

/// One cache per (block, matrix) pair.
struct BlockCaches {
    up: Box<dyn ColumnCache>,
    gate: Box<dyn ColumnCache>,
    down: Box<dyn ColumnCache>,
}

fn build_caches(
    layout: &ModelLayout,
    allocation: &DramAllocation,
    policy: EvictionPolicy,
    future: Option<&AccessTrace>,
) -> Result<Vec<BlockCaches>> {
    let mut caches = Vec::with_capacity(layout.blocks.len());
    for (bi, (block, cap)) in layout
        .blocks
        .iter()
        .zip(allocation.capacities.iter())
        .enumerate()
    {
        let build = |n_columns: usize,
                     capacity: usize,
                     select: fn(&BlockAccess) -> &crate::trace::AccessSet|
         -> Result<Box<dyn ColumnCache>> {
            let seq;
            let future_ref = match (policy, future) {
                (EvictionPolicy::Belady, Some(trace)) => {
                    seq = trace.per_matrix_sequence(bi, select, n_columns);
                    Some(seq.as_slice())
                }
                _ => None,
            };
            policy.build(n_columns, capacity, future_ref)
        };
        caches.push(BlockCaches {
            up: build(block.up.n_columns, cap.up, |b| &b.up)?,
            gate: build(block.gate.n_columns, cap.gate, |b| &b.gate)?,
            down: build(block.down.n_columns, cap.down, |b| &b.down)?,
        });
    }
    Ok(caches)
}

/// Cost of serving one token of a trace: bytes moved, cache outcome and the
/// resulting service latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TokenCost {
    /// Bytes read from DRAM for this token (static weights + cache hits).
    pub dram_bytes: f64,
    /// Bytes read from Flash for this token (cache misses).
    pub flash_bytes: f64,
    /// Service time of this token in seconds.
    pub latency_s: f64,
    /// Column-cache hits across all layers.
    pub hits: usize,
    /// Column-cache misses across all layers.
    pub misses: usize,
    /// Resident columns evicted across all layers.
    pub evictions: usize,
}

/// Online per-token pricer: the streaming core of the simulator.
///
/// Owns one set of column caches and prices one [`crate::trace::TokenAccess`]
/// at a time, so a caller that discovers its traffic *as it runs* (an
/// open-loop serving engine on a virtual clock) pays each token the moment it
/// is served instead of replaying a finished trace. [`replay_token_costs`] —
/// and therefore [`simulate`] and [`crate::simulate_concurrent`] — is a loop
/// over [`TokenPricer::price_token`], so online and post-hoc pricing are
/// identical by construction.
///
/// [`EvictionPolicy::Belady`] needs the full future trace at cache-build
/// time; construct the pricer with `future: Some(trace)` for replays and
/// `None` for online use (where Belady fails with a typed error).
pub struct TokenPricer {
    device: DeviceConfig,
    static_bytes: f64,
    block_layouts: Vec<crate::layout::MlpBlockLayout>,
    caches: Vec<BlockCaches>,
    cache_fraction: f64,
    // one reused column-index buffer for the pricer's lifetime —
    // `AccessSet::All` tokens materialise into it instead of allocating per
    // (token, matrix)
    cols: Vec<usize>,
}

impl TokenPricer {
    /// Allocates the DRAM split for `layout` on `device` and builds one
    /// column cache per (block, matrix) pair.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when [`EvictionPolicy::Belady`] is
    /// requested without a `future` trace, plus any allocation error.
    pub fn new(
        layout: &ModelLayout,
        device: &DeviceConfig,
        policy: EvictionPolicy,
        future: Option<&AccessTrace>,
    ) -> Result<Self> {
        let allocation = allocate(layout, device)?;
        let caches = build_caches(layout, &allocation, policy, future)?;
        Ok(TokenPricer {
            device: device.clone(),
            static_bytes: layout.static_bytes as f64,
            block_layouts: layout.blocks.clone(),
            caches,
            cache_fraction: allocation.cache_fraction,
            cols: Vec::new(),
        })
    }

    /// Fraction of the MLP weights the DRAM cache can hold (from the
    /// allocation made at construction).
    pub fn cache_fraction(&self) -> f64 {
        self.cache_fraction
    }

    /// Prices one token's weight accesses, mutating the cache state.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TraceOutOfRange`] if the token references more
    /// blocks than the layout has.
    pub fn price_token(&mut self, token: &crate::trace::TokenAccess) -> Result<TokenCost> {
        if token.blocks.len() > self.block_layouts.len() {
            return Err(SimError::TraceOutOfRange {
                what: format!(
                    "token references {} blocks but layout has {}",
                    token.blocks.len(),
                    self.block_layouts.len()
                ),
            });
        }
        let mut token_dram = self.static_bytes;
        let mut token_flash = 0.0f64;
        let mut outcome_token = AccessOutcome::default();

        for (bi, block_access) in token.blocks.iter().enumerate() {
            let block_layout = &self.block_layouts[bi];
            let block_caches = &mut self.caches[bi];

            for (access, linear, cache) in [
                (&block_access.up, &block_layout.up, &mut block_caches.up),
                (
                    &block_access.gate,
                    &block_layout.gate,
                    &mut block_caches.gate,
                ),
                (
                    &block_access.down,
                    &block_layout.down,
                    &mut block_caches.down,
                ),
            ] {
                self.cols.clear();
                access.extend_indices(linear.n_columns, &mut self.cols);
                let outcome = cache.access(&self.cols);
                outcome_token.accumulate(outcome);
                token_dram += outcome.hits as f64 * linear.bytes_per_column as f64;
                token_flash += outcome.misses as f64 * linear.bytes_per_column as f64;
            }
        }

        Ok(TokenCost {
            dram_bytes: token_dram,
            flash_bytes: token_flash,
            latency_s: self.device.dram_read_time(token_dram)
                + self.device.flash_read_time(token_flash),
            hits: outcome_token.hits,
            misses: outcome_token.misses,
            evictions: outcome_token.evictions,
        })
    }

    /// Prices moving `bytes` of KV state between DRAM and Flash (a
    /// preemption spill, or the reload on resume). The transfer streams at
    /// Flash bandwidth and bypasses the weight column caches entirely — KV
    /// pages are not weight columns — so the cache state is untouched and
    /// the cost is a pure function of the byte count: the returned
    /// [`TokenCost`] carries the bytes as `flash_bytes` and the transfer
    /// time as `latency_s`, which is exactly how the serving engine's
    /// accounting (and its telemetry) expects priced traffic to arrive.
    pub fn price_kv_swap(&self, bytes: f64) -> TokenCost {
        TokenCost {
            dram_bytes: 0.0,
            flash_bytes: bytes,
            latency_s: self.device.flash_read_time(bytes),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }
}

/// Replays `trace` through one set of caches, returning the per-token costs.
///
/// This is the shared core of [`simulate`] and
/// [`crate::simulate_concurrent`]: the concurrent simulator replays an
/// *interleaved* multi-session trace through it, so both entry points price
/// tokens identically by construction. It is itself a loop over
/// [`TokenPricer::price_token`], so online (open-loop) pricing matches too.
///
/// # Errors
///
/// Returns [`SimError::TraceOutOfRange`] if the trace references more blocks
/// than the layout has, plus any allocation/configuration error.
pub fn replay_token_costs(
    layout: &ModelLayout,
    device: &DeviceConfig,
    policy: EvictionPolicy,
    trace: &AccessTrace,
) -> Result<(Vec<TokenCost>, f64)> {
    let mut pricer = TokenPricer::new(layout, device, policy, Some(trace))?;
    let mut costs = Vec::with_capacity(trace.n_tokens());
    for token in &trace.tokens {
        costs.push(pricer.price_token(token)?);
    }
    Ok((costs, pricer.cache_fraction()))
}

/// Aggregates per-token costs into a [`SimReport`].
pub(crate) fn report_from_costs(
    layout: &ModelLayout,
    policy: EvictionPolicy,
    trace: &AccessTrace,
    costs: &[TokenCost],
    cache_fraction: f64,
) -> SimReport {
    let mut total = AccessOutcome::default();
    let mut total_latency = 0.0f64;
    let mut flash_bytes = 0.0f64;
    let mut dram_bytes = 0.0f64;
    for c in costs {
        total.accumulate(AccessOutcome {
            hits: c.hits,
            misses: c.misses,
            evictions: c.evictions,
        });
        total_latency += c.latency_s;
        flash_bytes += c.flash_bytes;
        dram_bytes += c.dram_bytes;
    }
    let tokens = costs.len();
    SimReport {
        model: layout.name.clone(),
        policy,
        tokens,
        total_latency_s: total_latency,
        throughput_tps: if total_latency > 0.0 {
            tokens as f64 / total_latency
        } else {
            0.0
        },
        flash_bytes,
        dram_bytes,
        hits: total.hits as u64,
        misses: total.misses as u64,
        evictions: total.evictions as u64,
        hit_rate: total.hit_rate(),
        cache_fraction,
        mean_density: trace.mean_density(layout),
    }
}

/// Replays `trace` and returns latency, throughput and cache statistics.
///
/// # Errors
///
/// Returns [`SimError::TraceOutOfRange`] if the trace references more blocks
/// than the layout has, plus any allocation/configuration error.
pub fn simulate(
    layout: &ModelLayout,
    device: &DeviceConfig,
    policy: EvictionPolicy,
    trace: &AccessTrace,
) -> Result<SimReport> {
    let (costs, cache_fraction) = replay_token_costs(layout, device, policy, trace)?;
    Ok(report_from_costs(
        layout,
        policy,
        trace,
        &costs,
        cache_fraction,
    ))
}

/// Simulates the dense baseline (every column of every MLP block needed every
/// token) for `n_tokens` tokens.
///
/// # Errors
///
/// See [`simulate`].
pub fn simulate_dense(
    layout: &ModelLayout,
    device: &DeviceConfig,
    policy: EvictionPolicy,
    n_tokens: usize,
) -> Result<SimReport> {
    let trace = AccessTrace::dense(n_tokens, layout.n_blocks());
    simulate(layout, device, policy, &trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{AccessSet, TokenAccess};

    fn layout() -> ModelLayout {
        // 4 blocks, d_model 64, d_ff 192, 8-bit weights, 100 kB static
        ModelLayout::from_dims("test-model", 4, 64, 192, 8.0, 100_000)
    }

    fn device(dram_bytes: u64) -> DeviceConfig {
        DeviceConfig::apple_a18(4.0).with_dram_bytes(dram_bytes)
    }

    fn sparse_trace(n_tokens: usize, n_blocks: usize, density: f64) -> AccessTrace {
        let mut trace = AccessTrace::new();
        let up_k = (64.0 * density) as usize;
        let down_k = (192.0 * density) as usize;
        for t in 0..n_tokens {
            let blocks = (0..n_blocks)
                .map(|b| BlockAccess {
                    up: AccessSet::Subset((0..up_k).map(|i| (i + t + b) % 64).collect()),
                    gate: AccessSet::Subset((0..up_k).map(|i| (i + t + b) % 64).collect()),
                    down: AccessSet::Subset((0..down_k).map(|i| (i + 2 * t + b) % 192).collect()),
                })
                .collect();
            trace.push(TokenAccess { blocks });
        }
        trace
    }

    #[test]
    fn dense_throughput_improves_with_more_dram() {
        let l = layout();
        let small = simulate_dense(&l, &device(150_000), EvictionPolicy::Lfu, 20).unwrap();
        let big = simulate_dense(&l, &device(400_000), EvictionPolicy::Lfu, 20).unwrap();
        assert!(big.throughput_tps > small.throughput_tps);
        assert!(big.hit_rate > small.hit_rate);
        assert!((small.mean_density - 1.0).abs() < 1e-12);
    }

    #[test]
    fn full_dram_means_no_flash_traffic_after_warmup() {
        let l = layout();
        let report = simulate_dense(&l, &device(10_000_000), EvictionPolicy::Lfu, 10).unwrap();
        // first token warms the cache; remaining 9 tokens are all hits
        assert!(report.hit_rate > 0.85);
        assert!(report.cache_fraction >= 1.0);
    }

    #[test]
    fn sparsity_reduces_latency_under_tight_dram() {
        let l = layout();
        let d = device(200_000);
        let dense = simulate_dense(&l, &d, EvictionPolicy::Lfu, 30).unwrap();
        let sparse = simulate(&l, &d, EvictionPolicy::Lfu, &sparse_trace(30, 4, 0.5)).unwrap();
        assert!(
            sparse.throughput_tps > dense.throughput_tps,
            "sparse {} <= dense {}",
            sparse.throughput_tps,
            dense.throughput_tps
        );
        assert!(sparse.mean_density < 0.55);
    }

    #[test]
    fn no_cache_is_slowest_belady_is_not_worse_than_lru() {
        let l = layout();
        let d = device(250_000);
        let trace = sparse_trace(40, 4, 0.4);
        let none = simulate(&l, &d, EvictionPolicy::None, &trace).unwrap();
        let lru = simulate(&l, &d, EvictionPolicy::Lru, &trace).unwrap();
        let lfu = simulate(&l, &d, EvictionPolicy::Lfu, &trace).unwrap();
        let belady = simulate(&l, &d, EvictionPolicy::Belady, &trace).unwrap();
        assert!(none.throughput_tps <= lru.throughput_tps);
        assert!(none.throughput_tps <= lfu.throughput_tps);
        assert!(belady.hits >= lru.hits);
        assert!(belady.hits >= lfu.hits);
        assert_eq!(none.hits, 0);
    }

    #[test]
    fn latency_accounting_is_consistent() {
        let l = layout();
        let d = device(200_000);
        let trace = sparse_trace(5, 4, 0.5);
        let r = simulate(&l, &d, EvictionPolicy::Lfu, &trace).unwrap();
        let expected = d.dram_read_time(r.dram_bytes) + d.flash_read_time(r.flash_bytes);
        assert!((r.total_latency_s - expected).abs() / expected < 1e-9);
        assert!(r.latency_ms_per_token() > 0.0);
        assert_eq!(r.tokens, 5);
        assert_eq!(r.model, "test-model");
    }

    #[test]
    fn trace_with_too_many_blocks_is_rejected() {
        let l = layout();
        let d = device(200_000);
        let trace = sparse_trace(2, 6, 0.5);
        assert!(matches!(
            simulate(&l, &d, EvictionPolicy::Lfu, &trace),
            Err(SimError::TraceOutOfRange { .. })
        ));
    }

    #[test]
    fn online_pricing_matches_batch_replay_exactly() {
        let l = layout();
        let d = device(220_000);
        let trace = sparse_trace(30, 4, 0.4);
        for policy in [
            EvictionPolicy::None,
            EvictionPolicy::Lru,
            EvictionPolicy::Lfu,
        ] {
            let (batch, batch_fraction) = replay_token_costs(&l, &d, policy, &trace).unwrap();
            let mut pricer = TokenPricer::new(&l, &d, policy, None).unwrap();
            assert_eq!(pricer.cache_fraction(), batch_fraction);
            let online: Vec<TokenCost> = trace
                .tokens
                .iter()
                .map(|t| pricer.price_token(t).unwrap())
                .collect();
            assert_eq!(online, batch, "policy {policy}");
        }
    }

    #[test]
    fn online_belady_needs_a_future_trace() {
        let l = layout();
        let d = device(220_000);
        let trace = sparse_trace(4, 4, 0.5);
        assert!(matches!(
            TokenPricer::new(&l, &d, EvictionPolicy::Belady, None),
            Err(SimError::InvalidConfig { .. })
        ));
        // with a future the oracle builds and prices like the batch replay
        let mut pricer = TokenPricer::new(&l, &d, EvictionPolicy::Belady, Some(&trace)).unwrap();
        let (batch, _) = replay_token_costs(&l, &d, EvictionPolicy::Belady, &trace).unwrap();
        for (token, expected) in trace.tokens.iter().zip(batch) {
            assert_eq!(pricer.price_token(token).unwrap(), expected);
        }
    }

    #[test]
    fn kv_swap_pricing_charges_flash_bandwidth_without_touching_caches() {
        let l = layout();
        let d = device(220_000);
        let trace = sparse_trace(8, 4, 0.4);
        let (reference, _) = replay_token_costs(&l, &d, EvictionPolicy::Lfu, &trace).unwrap();
        let mut pricer = TokenPricer::new(&l, &d, EvictionPolicy::Lfu, None).unwrap();
        for (i, token) in trace.tokens.iter().enumerate() {
            // interleave swap pricing between every token: the token costs
            // must still match the swap-free replay bit for bit
            let swap = pricer.price_kv_swap(48_000.0);
            assert_eq!(swap.flash_bytes, 48_000.0);
            assert_eq!(swap.dram_bytes, 0.0);
            assert_eq!(swap.latency_s, d.flash_read_time(48_000.0));
            assert!(swap.latency_s > 0.0, "a spill has a non-zero virtual cost");
            assert_eq!((swap.hits, swap.misses, swap.evictions), (0, 0, 0));
            assert_eq!(pricer.price_token(token).unwrap(), reference[i]);
        }
        // zero bytes (an empty KV state) price to exactly zero
        assert_eq!(pricer.price_kv_swap(0.0).latency_s, 0.0);
    }

    #[test]
    fn empty_trace_produces_zero_tokens() {
        let l = layout();
        let d = device(200_000);
        let r = simulate(&l, &d, EvictionPolicy::Lfu, &AccessTrace::new()).unwrap();
        assert_eq!(r.tokens, 0);
        assert_eq!(r.throughput_tps, 0.0);
        assert_eq!(r.latency_ms_per_token(), 0.0);
    }
}
