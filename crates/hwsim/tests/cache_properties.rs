//! Property tests over the cache policies and the simulators: on random
//! traces the eviction-policy hierarchy must hold — Belady's clairvoyant
//! oracle is at least as good as LRU and LFU, which are at least as good as
//! no cache — and the concurrent simulator restricted to one session must
//! agree with the single-stream simulator exactly.

use hwsim::cache::{BeladyColumnCache, LfuColumnCache, LruColumnCache, NoCache};
use hwsim::{
    round_robin_order, simulate, simulate_concurrent, AccessSet, AccessTrace, BlockAccess,
    ColumnCache, DeviceConfig, EvictionPolicy, ModelLayout, TokenAccess,
};
use proptest::prelude::*;

const N_COLUMNS: usize = 48;

fn hit_rate(cache: &mut dyn ColumnCache, accesses: &[Vec<usize>]) -> f64 {
    let mut hits = 0usize;
    let mut total = 0usize;
    for step in accesses {
        let outcome = cache.access(step);
        hits += outcome.hits;
        total += outcome.total();
    }
    if total == 0 {
        1.0
    } else {
        hits as f64 / total as f64
    }
}

/// Builds a well-formed random access trace out of proptest's raw material:
/// per token, one sorted deduplicated column subset per matrix.
fn to_trace(raw: &[Vec<usize>], n_blocks: usize) -> AccessTrace {
    let mut trace = AccessTrace::new();
    for step in raw {
        let mut columns: Vec<usize> = step.iter().map(|c| c % N_COLUMNS).collect();
        columns.sort_unstable();
        columns.dedup();
        let blocks = (0..n_blocks)
            .map(|b| {
                let shifted: Vec<usize> = columns.iter().map(|c| (c + b) % N_COLUMNS).collect();
                BlockAccess {
                    up: AccessSet::Subset(shifted.clone()),
                    gate: AccessSet::Subset(shifted.clone()),
                    down: AccessSet::Subset(shifted),
                }
            })
            .collect();
        trace.push(TokenAccess { blocks });
    }
    trace
}

fn layout() -> ModelLayout {
    // every matrix gets N_COLUMNS columns so raw subsets are valid everywhere
    ModelLayout::from_dims("prop-test", 2, N_COLUMNS, N_COLUMNS, 8.0, 10_000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn eviction_policy_hierarchy_on_raw_caches(
        capacity in 1usize..32,
        accesses in prop::collection::vec(prop::collection::vec(0usize..N_COLUMNS, 1..12), 2..24),
    ) {
        let deduped: Vec<Vec<usize>> = accesses
            .iter()
            .map(|step| {
                let mut s = step.clone();
                s.sort_unstable();
                s.dedup();
                s
            })
            .collect();
        let belady = hit_rate(
            &mut BeladyColumnCache::new(N_COLUMNS, capacity, &deduped),
            &deduped,
        );
        let lru = hit_rate(&mut LruColumnCache::new(N_COLUMNS, capacity), &deduped);
        let lfu = hit_rate(&mut LfuColumnCache::new(N_COLUMNS, capacity), &deduped);
        let none = hit_rate(&mut NoCache::new(N_COLUMNS), &deduped);

        prop_assert!(belady + 1e-12 >= lru.max(lfu), "belady {belady} < max(lru {lru}, lfu {lfu})");
        prop_assert!(lru.max(lfu) >= none, "max(lru, lfu) < no-cache {none}");
        prop_assert_eq!(none, 0.0);
    }

    #[test]
    fn eviction_policy_hierarchy_through_the_simulator(
        dram_extra in 2_000u64..40_000,
        accesses in prop::collection::vec(prop::collection::vec(0usize..N_COLUMNS, 1..10), 2..16),
    ) {
        let layout = layout();
        let device = DeviceConfig::apple_a18(4.0).with_dram_bytes(layout.static_bytes + dram_extra);
        let trace = to_trace(&accesses, layout.n_blocks());

        let run = |policy| simulate(&layout, &device, policy, &trace).unwrap();
        let belady = run(EvictionPolicy::Belady);
        let lru = run(EvictionPolicy::Lru);
        let lfu = run(EvictionPolicy::Lfu);
        let none = run(EvictionPolicy::None);

        prop_assert!(belady.hits >= lru.hits.max(lfu.hits));
        prop_assert!(lru.hits.max(lfu.hits) >= none.hits);
        prop_assert_eq!(none.hits, 0);
        // more hits can only help latency
        prop_assert!(belady.total_latency_s <= lru.total_latency_s.min(lfu.total_latency_s) + 1e-12);
        prop_assert!(lru.total_latency_s.min(lfu.total_latency_s) <= none.total_latency_s + 1e-12);
    }

    #[test]
    fn concurrent_with_one_session_matches_simulate(
        dram_extra in 2_000u64..40_000,
        policy_idx in 0usize..4,
        accesses in prop::collection::vec(prop::collection::vec(0usize..N_COLUMNS, 1..10), 1..16),
    ) {
        let layout = layout();
        let device = DeviceConfig::apple_a18(4.0).with_dram_bytes(layout.static_bytes + dram_extra);
        let trace = to_trace(&accesses, layout.n_blocks());
        let policy = [
            EvictionPolicy::None,
            EvictionPolicy::Lru,
            EvictionPolicy::Lfu,
            EvictionPolicy::Belady,
        ][policy_idx];

        let single = simulate(&layout, &device, policy, &trace).unwrap();
        let streams = [trace];
        let order = round_robin_order(&streams);
        let multi = simulate_concurrent(&layout, &device, policy, &streams, &order).unwrap();

        prop_assert_eq!(&multi.aggregate, &single);
        prop_assert_eq!(multi.streams.len(), 1);
        prop_assert_eq!(multi.streams[0].tokens, single.tokens);
        prop_assert_eq!(multi.streams[0].hits, single.hits);
        prop_assert_eq!(multi.streams[0].misses, single.misses);
        prop_assert!((multi.streams[0].completion_s - single.total_latency_s).abs() < 1e-15);
    }

    #[test]
    fn concurrent_aggregate_matches_flattened_single_stream(
        n_streams in 2usize..5,
        accesses in prop::collection::vec(prop::collection::vec(0usize..N_COLUMNS, 1..8), 2..10),
    ) {
        // the concurrent replay of K streams equals simulate() on the
        // interleaved trace — shared-cache pricing is order-dependent only
        let layout = layout();
        let device = DeviceConfig::apple_a18(4.0).with_dram_bytes(layout.static_bytes + 20_000);
        let streams: Vec<AccessTrace> = (0..n_streams)
            .map(|s| {
                let shifted: Vec<Vec<usize>> = accesses
                    .iter()
                    .map(|step| step.iter().map(|c| (c + s * 7) % N_COLUMNS).collect())
                    .collect();
                to_trace(&shifted, layout.n_blocks())
            })
            .collect();
        let order = round_robin_order(&streams);
        let merged = hwsim::interleave(&streams, &order).unwrap();

        let multi = simulate_concurrent(&layout, &device, EvictionPolicy::Lfu, &streams, &order).unwrap();
        let flat = simulate(&layout, &device, EvictionPolicy::Lfu, &merged).unwrap();
        prop_assert_eq!(&multi.aggregate, &flat);
    }
}
