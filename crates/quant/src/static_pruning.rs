//! Static (one-shot) pruning baselines: magnitude pruning, a diagonal-Hessian
//! "SparseGPT-style" criterion, and N:M semi-structured pruning (2:4, 4:8).
//!
//! Static pruning fixes the retained weight set once, for all tokens — the
//! limitation Section 2 contrasts against dynamic sparsity. Its memory
//! accounting must also include ≥1 bit per weight for the sparsity mask
//! (Section 6.3), which [`mask_overhead_bits_per_weight`] exposes.

use crate::error::{QuantError, Result};
use serde::{Deserialize, Serialize};
use tensor::Matrix;

/// The saliency criterion used to decide which weights to remove.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PruningCriterion {
    /// Remove the smallest |w|.
    Magnitude,
    /// Remove the smallest `w^2 * E[x^2]`, a diagonal-Hessian (OBS/SparseGPT
    /// style) saliency that accounts for the typical input magnitude of each
    /// column. Requires per-column second moments from a calibration set.
    DiagonalHessian,
}

/// Sparsity structure of the pruning mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PruningStructure {
    /// Any weight may be removed.
    Unstructured,
    /// In every group of `m` consecutive weights (along a row), exactly
    /// `m - n` are removed, keeping `n` (e.g. 2:4, 4:8).
    SemiStructured {
        /// Number of weights kept per group.
        n: usize,
        /// Group size.
        m: usize,
    },
}

impl PruningStructure {
    /// The 2:4 pattern.
    pub fn two_four() -> Self {
        PruningStructure::SemiStructured { n: 2, m: 4 }
    }

    /// The 4:8 pattern.
    pub fn four_eight() -> Self {
        PruningStructure::SemiStructured { n: 4, m: 8 }
    }

    /// Fraction of weights kept by this structure (for semi-structured) or
    /// `None` for unstructured (caller chooses the sparsity).
    pub fn implied_density(&self) -> Option<f32> {
        match self {
            PruningStructure::Unstructured => None,
            PruningStructure::SemiStructured { n, m } => Some(*n as f32 / *m as f32),
        }
    }

    /// Short name used in reports.
    pub fn name(&self) -> String {
        match self {
            PruningStructure::Unstructured => "unstructured".to_string(),
            PruningStructure::SemiStructured { n, m } => format!("{n}:{m}"),
        }
    }
}

/// One-shot static pruner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StaticPruner {
    /// Saliency criterion.
    pub criterion: PruningCriterion,
    /// Mask structure.
    pub structure: PruningStructure,
    /// Per-column input second moments `E[x_c^2]` for the diagonal-Hessian
    /// criterion (ignored for magnitude pruning).
    pub column_second_moments: Option<Vec<f32>>,
}

impl StaticPruner {
    /// Magnitude pruning with the given structure.
    pub fn magnitude(structure: PruningStructure) -> Self {
        StaticPruner {
            criterion: PruningCriterion::Magnitude,
            structure,
            column_second_moments: None,
        }
    }

    /// Diagonal-Hessian (SparseGPT-style) pruning with calibration moments.
    pub fn diagonal_hessian(structure: PruningStructure, column_second_moments: Vec<f32>) -> Self {
        StaticPruner {
            criterion: PruningCriterion::DiagonalHessian,
            structure,
            column_second_moments: Some(column_second_moments),
        }
    }

    fn saliency(&self, w: &Matrix, row: usize, col: usize) -> Result<f32> {
        let weight = w.get(row, col);
        Ok(match self.criterion {
            PruningCriterion::Magnitude => weight.abs(),
            PruningCriterion::DiagonalHessian => {
                let moments =
                    self.column_second_moments
                        .as_ref()
                        .ok_or(QuantError::InvalidParameter {
                            name: "column_second_moments",
                            reason: "required for the diagonal-Hessian criterion".to_string(),
                        })?;
                let m = moments.get(col).copied().unwrap_or(1.0);
                weight * weight * m
            }
        })
    }

    /// Prunes a matrix to the target density (fraction of weights kept) and
    /// returns the pruned copy.
    ///
    /// For semi-structured patterns the density argument is ignored and the
    /// pattern's implied density (e.g. 50 % for 2:4) is used.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidParameter`] for a density outside
    /// `(0, 1]` or a missing calibration vector.
    pub fn prune(&self, w: &Matrix, density: f32) -> Result<Matrix> {
        if !(density.is_finite() && density > 0.0 && density <= 1.0) {
            return Err(QuantError::InvalidParameter {
                name: "density",
                reason: format!("must be in (0, 1], got {density}"),
            });
        }
        let mut out = w.clone();
        match self.structure {
            PruningStructure::Unstructured => {
                let mut saliencies = Vec::with_capacity(w.len());
                for r in 0..w.rows() {
                    for c in 0..w.cols() {
                        saliencies.push(self.saliency(w, r, c)?);
                    }
                }
                let keep = ((w.len() as f64) * f64::from(density)).round() as usize;
                if keep >= w.len() {
                    return Ok(out);
                }
                let mut sorted = saliencies.clone();
                sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
                let threshold = sorted[keep.max(1) - 1];
                let mut kept = 0usize;
                for r in 0..w.rows() {
                    for c in 0..w.cols() {
                        let s = saliencies[r * w.cols() + c];
                        if s > threshold || (s == threshold && kept < keep) {
                            if s == threshold {
                                kept += 1;
                            }
                            continue;
                        }
                        out.set(r, c, 0.0);
                    }
                }
            }
            PruningStructure::SemiStructured { n, m } => {
                if n == 0 || m == 0 || n > m {
                    return Err(QuantError::InvalidParameter {
                        name: "structure",
                        reason: format!("invalid N:M pattern {n}:{m}"),
                    });
                }
                for r in 0..w.rows() {
                    for group_start in (0..w.cols()).step_by(m) {
                        let group_end = (group_start + m).min(w.cols());
                        let mut scored: Vec<(usize, f32)> = (group_start..group_end)
                            .map(|c| Ok((c, self.saliency(w, r, c)?)))
                            .collect::<Result<_>>()?;
                        scored.sort_by(|a, b| {
                            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal)
                        });
                        for &(c, _) in scored.iter().skip(n) {
                            out.set(r, c, 0.0);
                        }
                    }
                }
            }
        }
        Ok(out)
    }
}

/// Extra storage (bits per weight) needed to record which weights were
/// pruned. At least one bit per weight is required for an unstructured mask;
/// N:M patterns need `log2(C(m, n))` bits per group, which is below one bit
/// per weight.
pub fn mask_overhead_bits_per_weight(structure: PruningStructure) -> f64 {
    match structure {
        PruningStructure::Unstructured => 1.0,
        PruningStructure::SemiStructured { n, m } => {
            let combinations = binomial(m, n) as f64;
            combinations.log2() / m as f64
        }
    }
}

fn binomial(m: usize, n: usize) -> u64 {
    let n = n.min(m - n);
    let mut result = 1u64;
    for i in 0..n {
        result = result * (m - i) as u64 / (i + 1) as u64;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::init;

    fn sample() -> Matrix {
        init::heavy_tailed_matrix(&mut init::rng(11), 8, 32, 0.8)
    }

    #[test]
    fn unstructured_magnitude_hits_target_density() {
        let w = sample();
        let pruner = StaticPruner::magnitude(PruningStructure::Unstructured);
        let pruned = pruner.prune(&w, 0.5).unwrap();
        let density = 1.0 - pruned.sparsity();
        assert!((density - 0.5).abs() < 0.05, "density {density}");
        // kept weights are the largest ones
        let kept_min = pruned
            .as_slice()
            .iter()
            .filter(|v| **v != 0.0)
            .fold(f32::INFINITY, |m, v| m.min(v.abs()));
        let dropped_max = w
            .as_slice()
            .iter()
            .zip(pruned.as_slice().iter())
            .filter(|(_, p)| **p == 0.0)
            .fold(0.0f32, |m, (orig, _)| m.max(orig.abs()));
        assert!(kept_min >= dropped_max * 0.999);
    }

    #[test]
    fn full_density_is_identity() {
        let w = sample();
        let pruner = StaticPruner::magnitude(PruningStructure::Unstructured);
        assert_eq!(pruner.prune(&w, 1.0).unwrap(), w);
    }

    #[test]
    fn density_validation() {
        let w = sample();
        let pruner = StaticPruner::magnitude(PruningStructure::Unstructured);
        assert!(pruner.prune(&w, 0.0).is_err());
        assert!(pruner.prune(&w, 1.5).is_err());
    }

    #[test]
    fn semi_structured_patterns_keep_n_of_m_per_group() {
        let w = sample();
        for (structure, expected) in [
            (PruningStructure::two_four(), 2usize),
            (PruningStructure::four_eight(), 4usize),
        ] {
            let pruner = StaticPruner::magnitude(structure);
            let pruned = pruner.prune(&w, 0.5).unwrap();
            let m = match structure {
                PruningStructure::SemiStructured { m, .. } => m,
                _ => unreachable!(),
            };
            for r in 0..w.rows() {
                for group_start in (0..w.cols()).step_by(m) {
                    let group_end = (group_start + m).min(w.cols());
                    let kept = (group_start..group_end)
                        .filter(|&c| pruned.get(r, c) != 0.0)
                        .count();
                    assert!(kept <= expected, "{structure:?}: kept {kept} in a group");
                }
            }
            assert!((1.0 - pruned.sparsity() - 0.5).abs() < 0.05);
        }
    }

    #[test]
    fn diagonal_hessian_prefers_high_activation_columns() {
        // two columns with equal weights but very different input energy:
        // the high-energy column must be kept
        let w = Matrix::from_rows(&[vec![0.5, 0.5]]).unwrap();
        let pruner =
            StaticPruner::diagonal_hessian(PruningStructure::Unstructured, vec![100.0, 0.01]);
        let pruned = pruner.prune(&w, 0.5).unwrap();
        assert!(pruned.get(0, 0) != 0.0);
        assert_eq!(pruned.get(0, 1), 0.0);
    }

    #[test]
    fn diagonal_hessian_requires_moments() {
        let w = sample();
        let pruner = StaticPruner {
            criterion: PruningCriterion::DiagonalHessian,
            structure: PruningStructure::Unstructured,
            column_second_moments: None,
        };
        assert!(pruner.prune(&w, 0.5).is_err());
    }

    #[test]
    fn semi_structured_rejects_bad_patterns() {
        let w = sample();
        let pruner = StaticPruner::magnitude(PruningStructure::SemiStructured { n: 5, m: 4 });
        assert!(pruner.prune(&w, 0.5).is_err());
    }

    #[test]
    fn mask_overhead_accounting() {
        assert!((mask_overhead_bits_per_weight(PruningStructure::Unstructured) - 1.0).abs() < 1e-9);
        let two_four = mask_overhead_bits_per_weight(PruningStructure::two_four());
        // log2(C(4,2)) / 4 = log2(6)/4 ~ 0.646
        assert!((two_four - 0.6462).abs() < 1e-3);
        let four_eight = mask_overhead_bits_per_weight(PruningStructure::four_eight());
        assert!(four_eight < 1.0 && four_eight > two_four);
        assert!((binomial(8, 4) as f64 - 70.0).abs() < 1e-9);
    }

    #[test]
    fn structure_names_and_density() {
        assert_eq!(PruningStructure::two_four().name(), "2:4");
        assert_eq!(PruningStructure::Unstructured.name(), "unstructured");
        assert_eq!(PruningStructure::two_four().implied_density(), Some(0.5));
        assert_eq!(PruningStructure::Unstructured.implied_density(), None);
    }
}
