//! Error type for the quantization / static-pruning crate.

use std::fmt;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, QuantError>;

/// Errors produced by quantization or static pruning.
#[derive(Debug, Clone, PartialEq)]
pub enum QuantError {
    /// An underlying tensor operation failed.
    Tensor(tensor::TensorError),
    /// An underlying model operation failed.
    Lm(lm::LmError),
    /// A parameter was outside its valid range.
    InvalidParameter {
        /// The parameter at fault.
        name: &'static str,
        /// Explanation of the violated constraint.
        reason: String,
    },
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::Tensor(e) => write!(f, "tensor error: {e}"),
            QuantError::Lm(e) => write!(f, "model error: {e}"),
            QuantError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
        }
    }
}

impl std::error::Error for QuantError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QuantError::Tensor(e) => Some(e),
            QuantError::Lm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<tensor::TensorError> for QuantError {
    fn from(e: tensor::TensorError) -> Self {
        QuantError::Tensor(e)
    }
}

impl From<lm::LmError> for QuantError {
    fn from(e: lm::LmError) -> Self {
        QuantError::Lm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e: QuantError = tensor::TensorError::Empty { op: "softmax" }.into();
        assert!(e.to_string().contains("softmax"));
        assert!(std::error::Error::source(&e).is_some());
        let e = QuantError::InvalidParameter {
            name: "bits",
            reason: "must be 2..=8".into(),
        };
        assert!(e.to_string().contains("bits"));
        let e: QuantError = lm::LmError::BadSequence { reason: "x".into() }.into();
        assert!(e.to_string().contains("model error"));
    }
}
