//! Quantization and static-pruning baselines for the dynamic-sparsity
//! comparison (Section 6.3 / Fig. 9 of the paper).
//!
//! * [`BlockwiseQuantizer`] — group-wise symmetric uniform quantization
//!   (the GPTQ-style "BQ" baseline at 2/3/4 bits),
//! * [`VectorQuantizer`] — k-means codebook quantization over weight
//!   sub-vectors (the GPTVQ-style "VQ" baseline),
//! * [`StaticPruner`] — one-shot magnitude / diagonal-Hessian pruning with
//!   unstructured and N:M (2:4, 4:8) masks, plus mask-overhead accounting,
//! * [`PackedQuantMatrix`] — INT4/INT8 codes in packed panel order with
//!   fused dequant-matvec microkernels (serving-time memory-traffic win;
//!   bitwise identical to materializing the reconstruction),
//! * [`model_ops`] — applying any of the above to a model's MLP weights and
//!   computing the resulting memory footprint.
//!
//! # Example
//!
//! ```
//! use quant::{BlockwiseQuantizer, model_ops::quantize_mlp_blockwise};
//! use lm::{build_synthetic, ModelConfig};
//!
//! let model = build_synthetic(&ModelConfig::tiny(), 0)?;
//! let q = BlockwiseQuantizer::new(4, 32).expect("valid config");
//! let int4 = quantize_mlp_blockwise(&model, &q);
//! assert_eq!(int4.n_layers(), model.n_layers());
//! # Ok::<(), lm::LmError>(())
//! ```

#![warn(missing_docs)]

pub mod blockwise;
pub mod error;
pub mod model_ops;
pub mod packed;
pub mod static_pruning;
pub mod vector_quant;

pub use blockwise::BlockwiseQuantizer;
pub use error::{QuantError, Result};
pub use packed::PackedQuantMatrix;
pub use static_pruning::{
    mask_overhead_bits_per_weight, PruningCriterion, PruningStructure, StaticPruner,
};
pub use vector_quant::VectorQuantizer;
