//! Blockwise (group-wise) uniform quantization — the BQ / GPTQ-style
//! baseline of Section 6.3.
//!
//! Weights are split into groups of `group_size` consecutive values along
//! each row; each group gets a symmetric scale and every weight is rounded to
//! a `bits`-bit signed integer grid. Only the *error* matters for the
//! accuracy experiments, so [`BlockwiseQuantizer::quantize_dequantize`]
//! returns the reconstructed matrix directly; byte accounting for the memory
//! plots is provided separately.

use crate::error::{QuantError, Result};
use serde::{Deserialize, Serialize};
use tensor::Matrix;

/// Blockwise symmetric uniform quantizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockwiseQuantizer {
    /// Bit-width of the integer grid (2–8).
    pub bits: u8,
    /// Number of consecutive weights sharing one scale.
    pub group_size: usize,
}

impl BlockwiseQuantizer {
    /// Creates a quantizer.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidParameter`] for a bit-width outside
    /// `2..=8` or a zero group size.
    pub fn new(bits: u8, group_size: usize) -> Result<Self> {
        if !(2..=8).contains(&bits) {
            return Err(QuantError::InvalidParameter {
                name: "bits",
                reason: format!("must be in 2..=8, got {bits}"),
            });
        }
        if group_size == 0 {
            return Err(QuantError::InvalidParameter {
                name: "group_size",
                reason: "must be > 0".to_string(),
            });
        }
        Ok(BlockwiseQuantizer { bits, group_size })
    }

    /// Number of positive quantization levels (`2^(bits-1) - 1`).
    fn max_level(&self) -> f32 {
        ((1u32 << (self.bits - 1)) - 1) as f32
    }

    /// Quantizes and immediately dequantizes a matrix, returning the
    /// reconstruction the model would actually use at inference time.
    pub fn quantize_dequantize(&self, w: &Matrix) -> Matrix {
        let mut out = w.clone();
        let max_level = self.max_level();
        for row in 0..out.rows() {
            let cols = out.cols();
            for group_start in (0..cols).step_by(self.group_size) {
                let group_end = (group_start + self.group_size).min(cols);
                let mut absmax = 0.0f32;
                for c in group_start..group_end {
                    absmax = absmax.max(out.get(row, c).abs());
                }
                if absmax == 0.0 {
                    continue;
                }
                let scale = absmax / max_level;
                for c in group_start..group_end {
                    let q = (out.get(row, c) / scale)
                        .round()
                        .clamp(-max_level, max_level);
                    out.set(row, c, q * scale);
                }
            }
        }
        out
    }

    /// Mean squared reconstruction error on a matrix.
    pub fn reconstruction_mse(&self, w: &Matrix) -> f32 {
        let deq = self.quantize_dequantize(w);
        let n = w.len().max(1) as f32;
        w.as_slice()
            .iter()
            .zip(deq.as_slice().iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            / n
    }

    /// Effective bits per weight including the per-group FP16 scale overhead.
    pub fn effective_bits_per_weight(&self) -> f64 {
        f64::from(self.bits) + 16.0 / self.group_size as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::init;

    fn sample_matrix() -> Matrix {
        init::heavy_tailed_matrix(&mut init::rng(3), 16, 64, 1.0)
    }

    #[test]
    fn construction_validates_parameters() {
        assert!(BlockwiseQuantizer::new(4, 32).is_ok());
        assert!(BlockwiseQuantizer::new(1, 32).is_err());
        assert!(BlockwiseQuantizer::new(9, 32).is_err());
        assert!(BlockwiseQuantizer::new(4, 0).is_err());
    }

    #[test]
    fn reconstruction_preserves_shape_and_zeroes() {
        let q = BlockwiseQuantizer::new(4, 16).unwrap();
        let w = Matrix::zeros(4, 8);
        let deq = q.quantize_dequantize(&w);
        assert_eq!(deq, w);
        let w = sample_matrix();
        assert_eq!(q.quantize_dequantize(&w).shape(), w.shape());
    }

    #[test]
    fn more_bits_means_less_error() {
        let w = sample_matrix();
        let mse2 = BlockwiseQuantizer::new(2, 32)
            .unwrap()
            .reconstruction_mse(&w);
        let mse3 = BlockwiseQuantizer::new(3, 32)
            .unwrap()
            .reconstruction_mse(&w);
        let mse4 = BlockwiseQuantizer::new(4, 32)
            .unwrap()
            .reconstruction_mse(&w);
        let mse8 = BlockwiseQuantizer::new(8, 32)
            .unwrap()
            .reconstruction_mse(&w);
        assert!(mse2 > mse3);
        assert!(mse3 > mse4);
        assert!(mse4 > mse8);
        assert!(mse8 < 1e-4);
    }

    #[test]
    fn smaller_groups_reduce_error_but_cost_more_bits() {
        let w = sample_matrix();
        let coarse = BlockwiseQuantizer::new(4, 64).unwrap();
        let fine = BlockwiseQuantizer::new(4, 8).unwrap();
        assert!(fine.reconstruction_mse(&w) <= coarse.reconstruction_mse(&w));
        assert!(fine.effective_bits_per_weight() > coarse.effective_bits_per_weight());
    }

    #[test]
    fn quantized_values_lie_on_the_grid() {
        let q = BlockwiseQuantizer::new(3, 4).unwrap();
        let w = Matrix::from_rows(&[vec![0.1, -0.5, 0.25, 0.9]]).unwrap();
        let deq = q.quantize_dequantize(&w);
        // the absmax element is reconstructed exactly
        assert!((deq.get(0, 3) - 0.9).abs() < 1e-6);
        // every value is an integer multiple of the scale (0.9 / 3)
        let scale = 0.9 / 3.0;
        for c in 0..4 {
            let ratio = deq.get(0, c) / scale;
            assert!((ratio - ratio.round()).abs() < 1e-4);
        }
    }
}
