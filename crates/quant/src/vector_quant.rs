//! Vector quantization (VQ) — the GPTVQ-style baseline of Section 6.3.
//!
//! Rows are split into sub-vectors of `vector_dim` consecutive weights; a
//! k-means codebook with `2^(bits * vector_dim)` entries (capped) is fitted
//! per matrix and every sub-vector is replaced by its nearest centroid.

use crate::error::{QuantError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};
use tensor::{init, Matrix};

/// Vector quantizer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VectorQuantizer {
    /// Bits per weight.
    pub bits: u8,
    /// Sub-vector length.
    pub vector_dim: usize,
    /// Lloyd iterations for the codebook fit.
    pub iterations: usize,
    /// RNG seed for centroid initialisation.
    pub seed: u64,
}

impl VectorQuantizer {
    /// Creates a vector quantizer.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidParameter`] for a bit-width outside
    /// `1..=6`, a zero vector dimension, or zero iterations.
    pub fn new(bits: u8, vector_dim: usize, iterations: usize, seed: u64) -> Result<Self> {
        if !(1..=6).contains(&bits) {
            return Err(QuantError::InvalidParameter {
                name: "bits",
                reason: format!("must be in 1..=6, got {bits}"),
            });
        }
        if vector_dim == 0 {
            return Err(QuantError::InvalidParameter {
                name: "vector_dim",
                reason: "must be > 0".to_string(),
            });
        }
        if iterations == 0 {
            return Err(QuantError::InvalidParameter {
                name: "iterations",
                reason: "must be > 0".to_string(),
            });
        }
        Ok(VectorQuantizer {
            bits,
            vector_dim,
            iterations,
            seed,
        })
    }

    /// Codebook size implied by bits-per-weight and the sub-vector length,
    /// capped at 4096 entries to keep the fit tractable.
    pub fn codebook_size(&self) -> usize {
        let exponent = (self.bits as u32 * self.vector_dim as u32).min(12);
        1usize << exponent
    }

    /// Effective bits per weight including a FP16 codebook amortised over the
    /// matrix (the codebook overhead is tiny for realistic matrices).
    pub fn effective_bits_per_weight(&self, matrix_elems: usize) -> f64 {
        let index_bits = f64::from(self.bits);
        let codebook_bits = (self.codebook_size() * self.vector_dim * 16) as f64;
        index_bits + codebook_bits / matrix_elems.max(1) as f64
    }

    fn collect_subvectors(&self, w: &Matrix) -> Vec<Vec<f32>> {
        let mut subvectors = Vec::new();
        for r in 0..w.rows() {
            let row = w.row(r).expect("row exists");
            for chunk in row.chunks(self.vector_dim) {
                let mut v = chunk.to_vec();
                v.resize(self.vector_dim, 0.0);
                subvectors.push(v);
            }
        }
        subvectors
    }

    fn fit_codebook(&self, subvectors: &[Vec<f32>]) -> Vec<Vec<f32>> {
        let k = self.codebook_size().min(subvectors.len().max(1));
        let mut rng = init::rng(self.seed);
        let mut centroids: Vec<Vec<f32>> = (0..k)
            .map(|_| subvectors[rng.gen_range(0..subvectors.len())].clone())
            .collect();

        let mut assignment = vec![0usize; subvectors.len()];
        for _ in 0..self.iterations {
            // assignment step
            for (i, v) in subvectors.iter().enumerate() {
                assignment[i] = nearest_centroid(v, &centroids);
            }
            // update step
            let mut sums = vec![vec![0.0f32; self.vector_dim]; centroids.len()];
            let mut counts = vec![0usize; centroids.len()];
            for (v, &a) in subvectors.iter().zip(assignment.iter()) {
                counts[a] += 1;
                for (s, x) in sums[a].iter_mut().zip(v.iter()) {
                    *s += x;
                }
            }
            for (c, (sum, count)) in centroids.iter_mut().zip(sums.iter().zip(counts.iter())) {
                if *count > 0 {
                    *c = sum.iter().map(|s| s / *count as f32).collect();
                }
            }
        }
        centroids
    }

    /// Quantizes and immediately dequantizes a matrix.
    pub fn quantize_dequantize(&self, w: &Matrix) -> Matrix {
        if w.is_empty() {
            return w.clone();
        }
        let subvectors = self.collect_subvectors(w);
        let centroids = self.fit_codebook(&subvectors);

        let mut out = Matrix::zeros(w.rows(), w.cols());
        let chunks_per_row = w.cols().div_ceil(self.vector_dim);
        for r in 0..w.rows() {
            for chunk_idx in 0..chunks_per_row {
                let sub = &subvectors[r * chunks_per_row + chunk_idx];
                let c = &centroids[nearest_centroid(sub, &centroids)];
                for (offset, value) in c.iter().enumerate() {
                    let col = chunk_idx * self.vector_dim + offset;
                    if col < w.cols() {
                        out.set(r, col, *value);
                    }
                }
            }
        }
        out
    }

    /// Mean squared reconstruction error on a matrix.
    pub fn reconstruction_mse(&self, w: &Matrix) -> f32 {
        let deq = self.quantize_dequantize(w);
        let n = w.len().max(1) as f32;
        w.as_slice()
            .iter()
            .zip(deq.as_slice().iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            / n
    }
}

fn nearest_centroid(v: &[f32], centroids: &[Vec<f32>]) -> usize {
    let mut best = 0usize;
    let mut best_dist = f32::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let mut d = 0.0f32;
        for (a, b) in v.iter().zip(c.iter()) {
            d += (a - b) * (a - b);
        }
        if d < best_dist {
            best_dist = d;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blockwise::BlockwiseQuantizer;

    fn sample_matrix() -> Matrix {
        init::heavy_tailed_matrix(&mut init::rng(7), 24, 48, 0.8)
    }

    #[test]
    fn construction_validates_parameters() {
        assert!(VectorQuantizer::new(3, 2, 5, 0).is_ok());
        assert!(VectorQuantizer::new(0, 2, 5, 0).is_err());
        assert!(VectorQuantizer::new(7, 2, 5, 0).is_err());
        assert!(VectorQuantizer::new(3, 0, 5, 0).is_err());
        assert!(VectorQuantizer::new(3, 2, 0, 0).is_err());
    }

    #[test]
    fn codebook_size_is_capped() {
        assert_eq!(
            VectorQuantizer::new(2, 2, 3, 0).unwrap().codebook_size(),
            16
        );
        assert_eq!(
            VectorQuantizer::new(6, 4, 3, 0).unwrap().codebook_size(),
            4096
        );
    }

    #[test]
    fn reconstruction_error_decreases_with_bits() {
        let w = sample_matrix();
        let mse2 = VectorQuantizer::new(2, 2, 8, 1)
            .unwrap()
            .reconstruction_mse(&w);
        let mse4 = VectorQuantizer::new(4, 2, 8, 1)
            .unwrap()
            .reconstruction_mse(&w);
        assert!(
            mse4 < mse2,
            "4-bit VQ ({mse4}) should beat 2-bit VQ ({mse2})"
        );
    }

    #[test]
    fn vq_at_3_bits_is_competitive_with_bq_at_3_bits() {
        // the blessing of dimensionality: VQ should not be dramatically worse
        // than scalar blockwise quantization at the same bit budget
        let w = sample_matrix();
        let vq = VectorQuantizer::new(3, 2, 10, 1)
            .unwrap()
            .reconstruction_mse(&w);
        let bq = BlockwiseQuantizer::new(3, 32)
            .unwrap()
            .reconstruction_mse(&w);
        assert!(vq < bq * 3.0, "vq {vq} vs bq {bq}");
    }

    #[test]
    fn reconstruction_preserves_shape_and_handles_ragged_rows() {
        let q = VectorQuantizer::new(3, 4, 4, 0).unwrap();
        let w = Matrix::from_rows(&[
            vec![0.1, -0.2, 0.3, 0.4, 0.5],
            vec![1.0, 0.9, -0.8, 0.7, -0.6],
        ])
        .unwrap();
        let deq = q.quantize_dequantize(&w);
        assert_eq!(deq.shape(), w.shape());
        assert!(deq.as_slice().iter().all(|v| v.is_finite()));
        assert!(q.effective_bits_per_weight(w.len()) > 3.0);
    }
}
