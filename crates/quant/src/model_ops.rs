//! Applying quantizers and static pruners to a whole model's MLP weights,
//! plus the byte accounting used by the memory-vs-perplexity comparison
//! (Fig. 9).
//!
//! Following the paper, only the MLP matrices are transformed (attention and
//! embeddings are comparatively small and held at the base precision), and
//! static pruning charges at least one extra bit per weight for the mask.

use crate::blockwise::BlockwiseQuantizer;
use crate::error::Result;
use crate::static_pruning::{mask_overhead_bits_per_weight, StaticPruner};
use crate::vector_quant::VectorQuantizer;
use lm::{ModelConfig, TransformerModel};

/// Returns a copy of the model whose MLP weights carry blockwise
/// quantization error (quantize → dequantize).
pub fn quantize_mlp_blockwise(
    model: &TransformerModel,
    quantizer: &BlockwiseQuantizer,
) -> TransformerModel {
    let mut out = model.clone();
    for layer in &mut out.layers {
        layer.mlp.w_up = quantizer.quantize_dequantize(&layer.mlp.w_up);
        layer.mlp.w_gate = quantizer.quantize_dequantize(&layer.mlp.w_gate);
        layer.mlp.w_down = quantizer.quantize_dequantize(&layer.mlp.w_down);
    }
    out
}

/// Returns a copy of the model whose MLP layers carry **fused** blockwise
/// quantization: packed INT4/INT8 codes attached for the serving-time
/// dequant-matvec kernels, with the f32 weights replaced by the dequantized
/// reconstruction so every non-fused path (allocating helpers, reference
/// mode) stays bitwise consistent with the fused kernels.
///
/// The returned model produces bitwise identical forwards to
/// [`quantize_mlp_blockwise`] with the same quantizer, while the fused
/// kernels read `bits/32` of the weight traffic.
///
/// # Errors
///
/// Fails when the quantizer's bit width is not 4 or 8 (the only widths with
/// packed code layouts).
pub fn quantize_mlp_fused(
    model: &TransformerModel,
    quantizer: &BlockwiseQuantizer,
) -> Result<TransformerModel> {
    use crate::packed::PackedQuantMatrix;
    use std::sync::Arc;

    let mut out = model.clone();
    for layer in &mut out.layers {
        let mlp = &mut layer.mlp;
        let up = PackedQuantMatrix::quantize(&mlp.w_up, quantizer)?;
        let gate = PackedQuantMatrix::quantize(&mlp.w_gate, quantizer)?;
        let down = PackedQuantMatrix::quantize(&mlp.w_down, quantizer)?;
        // Replace the f32 weights with the reconstruction BEFORE attaching,
        // so paths that never consult `quant` see the same effective weights.
        mlp.w_up = quantizer.quantize_dequantize(&mlp.w_up);
        mlp.w_gate = quantizer.quantize_dequantize(&mlp.w_gate);
        mlp.w_down = quantizer.quantize_dequantize(&mlp.w_down);
        mlp.quant = Some(lm::mlp::QuantizedGluWeights {
            up: Arc::new(up),
            gate: Arc::new(gate),
            down: Arc::new(down),
        });
    }
    Ok(out)
}

/// Returns a copy of the model whose MLP weights carry vector-quantization
/// error (quantize → dequantize).
pub fn quantize_mlp_vector(
    model: &TransformerModel,
    quantizer: &VectorQuantizer,
) -> TransformerModel {
    let mut out = model.clone();
    for layer in &mut out.layers {
        layer.mlp.w_up = quantizer.quantize_dequantize(&layer.mlp.w_up);
        layer.mlp.w_gate = quantizer.quantize_dequantize(&layer.mlp.w_gate);
        layer.mlp.w_down = quantizer.quantize_dequantize(&layer.mlp.w_down);
    }
    out
}

/// Returns a copy of the model whose MLP weights are statically pruned to the
/// given density.
///
/// # Errors
///
/// Propagates pruning errors (invalid density or missing calibration data).
pub fn prune_mlp_static(
    model: &TransformerModel,
    pruner: &StaticPruner,
    density: f32,
) -> Result<TransformerModel> {
    let mut out = model.clone();
    for layer in &mut out.layers {
        layer.mlp.w_up = pruner.prune(&layer.mlp.w_up, density)?;
        layer.mlp.w_gate = pruner.prune(&layer.mlp.w_gate, density)?;
        layer.mlp.w_down = pruner.prune(&layer.mlp.w_down, density)?;
    }
    Ok(out)
}

/// Memory footprint accounting for the Fig. 9 comparison, in bytes.
///
/// * `mlp_bits_per_weight` — effective bits per MLP weight (quantizer bits
///   plus scale/codebook overhead),
/// * `mlp_density` — fraction of MLP weights that must be resident (1.0 for
///   purely static methods; the dynamic-sparsity density for DIP),
/// * `mask_structure` — when a static pruning mask must be stored, its
///   structure (adds ≥1 bit per weight for unstructured masks),
/// * non-MLP weights (attention, embeddings, norms) are charged at
///   `static_bits_per_weight`.
pub fn model_memory_bytes(
    config: &ModelConfig,
    static_bits_per_weight: f64,
    mlp_bits_per_weight: f64,
    mlp_density: f64,
    mask_structure: Option<crate::static_pruning::PruningStructure>,
) -> f64 {
    let static_params = (config.total_params() - config.total_mlp_params()) as f64;
    let mlp_params = config.total_mlp_params() as f64;
    let mask_bits = mask_structure.map_or(0.0, mask_overhead_bits_per_weight);
    let static_bytes = static_params * static_bits_per_weight / 8.0;
    let mlp_bytes = mlp_params * (mlp_bits_per_weight * mlp_density + mask_bits) / 8.0;
    static_bytes + mlp_bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::static_pruning::PruningStructure;
    use lm::{build_synthetic, eval, mlp::DenseMlp};

    fn model() -> TransformerModel {
        build_synthetic(&ModelConfig::tiny(), 3).unwrap()
    }

    #[test]
    fn blockwise_quantization_perturbs_but_preserves_quality_at_4_bits() {
        let model = model();
        let seqs = eval::standard_eval_corpus(&model, 4, 24, 11).unwrap();
        let dense = eval::perplexity(&model, &mut DenseMlp, &seqs)
            .unwrap()
            .perplexity;

        let q4 = quantize_mlp_blockwise(&model, &BlockwiseQuantizer::new(4, 32).unwrap());
        let ppl4 = eval::perplexity(&q4, &mut DenseMlp, &seqs)
            .unwrap()
            .perplexity;
        let q2 = quantize_mlp_blockwise(&model, &BlockwiseQuantizer::new(2, 32).unwrap());
        let ppl2 = eval::perplexity(&q2, &mut DenseMlp, &seqs)
            .unwrap()
            .perplexity;

        assert!(ppl4 < ppl2, "4-bit ({ppl4}) should beat 2-bit ({ppl2})");
        // the divergence-style perplexity is very sensitive to weight noise,
        // so "close" here only means "within 2x of dense", while 2-bit should
        // be far worse
        assert!(
            ppl4 < dense * 2.0,
            "4-bit should stay close to dense: {ppl4} vs {dense}"
        );
        assert!(ppl2 > dense, "2-bit should visibly hurt: {ppl2} vs {dense}");
        // weights actually changed
        assert_ne!(
            q4.layers[0].mlp.w_up.as_slice(),
            model.layers[0].mlp.w_up.as_slice()
        );
    }

    #[test]
    fn vector_quantization_applies_to_all_mlp_matrices() {
        let model = model();
        let vq = VectorQuantizer::new(3, 2, 4, 0).unwrap();
        let q = quantize_mlp_vector(&model, &vq);
        for (orig, new) in model.layers.iter().zip(q.layers.iter()) {
            assert_ne!(orig.mlp.w_down.as_slice(), new.mlp.w_down.as_slice());
            // attention untouched
            assert_eq!(orig.attn.w_q.as_slice(), new.attn.w_q.as_slice());
        }
    }

    #[test]
    fn static_pruning_reduces_density_and_quality() {
        let model = model();
        let seqs = eval::standard_eval_corpus(&model, 4, 24, 12).unwrap();
        let dense = eval::perplexity(&model, &mut DenseMlp, &seqs)
            .unwrap()
            .perplexity;
        let pruner = StaticPruner::magnitude(PruningStructure::Unstructured);
        let pruned = prune_mlp_static(&model, &pruner, 0.5).unwrap();
        let sparsity = pruned.layers[0].mlp.w_up.sparsity();
        assert!((sparsity - 0.5).abs() < 0.05);
        let ppl = eval::perplexity(&pruned, &mut DenseMlp, &seqs)
            .unwrap()
            .perplexity;
        assert!(ppl >= dense * 0.97);
    }

    #[test]
    fn memory_accounting_orders_methods_sensibly() {
        let config = ModelConfig::tiny();
        let dense_fp16 = model_memory_bytes(&config, 16.0, 16.0, 1.0, None);
        let dense_int4 = model_memory_bytes(&config, 4.0, 4.0, 1.0, None);
        let dip_int4_half = model_memory_bytes(&config, 4.0, 4.0, 0.5, None);
        let sparsegpt_int4_half =
            model_memory_bytes(&config, 4.0, 4.0, 0.5, Some(PruningStructure::Unstructured));
        assert!(dense_int4 < dense_fp16);
        assert!(dip_int4_half < dense_int4);
        // SparseGPT stores only the surviving weights but pays one mask bit
        // per original weight (Section 6.3), so at 50% sparsity it sits
        // between DIP and the dense INT4 model.
        assert!(dip_int4_half < sparsegpt_int4_half);
        assert!(sparsegpt_int4_half < dense_int4);
    }
}
