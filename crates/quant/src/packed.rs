//! Fused dequant-matvec over packed INT4/INT8 blockwise weights.
//!
//! [`BlockwiseQuantizer::quantize_dequantize`](crate::BlockwiseQuantizer)
//! materializes a whole `f32` reconstruction — fine for accuracy studies,
//! but at serving time it forfeits the entire memory-traffic win of
//! quantization: the matvec still streams 4 bytes per weight.
//! [`PackedQuantMatrix`] instead stores the integer codes and per-group
//! scales directly in the `MR`-row panel order of [`tensor::packed`], and
//! the kernels dequantize **inside the panel loop** into register-resident
//! tiles: the weight stream shrinks to ~1 byte (INT8) or ~0.5 bytes (INT4)
//! per weight, which is exactly the traffic the paper's cache-cost model
//! prices.
//!
//! # Parity argument
//!
//! Every kernel here is bitwise identical to materializing the
//! reconstruction and running the naive [`tensor::reference`] loops on it:
//!
//! * The stored reconstruction is `q * scale`, one `f32` multiply; the
//!   fused kernels compute `(q as f32) * scale` — the *same* multiply on
//!   the same operands, hence the same bits. No FMA is used anywhere.
//! * Accumulation order per output is untouched: ascending columns for the
//!   dense kernels, active-list order with the exact-zero skip on `x` for
//!   the sparse ones. Register tiling spans independent outputs only.
//! * Zero signs: the reconstruction can hold `-0.0` where the fused path
//!   reconstructs `+0.0` — in all-zero groups (`absmax == 0`, where
//!   `quantize_dequantize` leaves the original `±0.0` in place) and
//!   wherever a tiny negative weight rounds to `-0.0` (an integer code
//!   cannot carry the sign). The *products* can then differ in zero sign —
//!   but an accumulator that starts at `+0.0` can never be driven to
//!   `-0.0` by adding zeros (`-0.0` only arises from `-0.0 + -0.0`), and
//!   adding a signed zero to any value never changes it, so every *sum*
//!   still matches bit-for-bit.
//!
//! `kernel_parity.rs`-style proptests in `tests/fused_parity.rs` pin all of
//! this for every dispatch choice.

use crate::blockwise::BlockwiseQuantizer;
use crate::error::{QuantError, Result};
use tensor::error::Result as TensorResult;
use tensor::kernels::{kernel_arch, KernelArch};
use tensor::packed::MR;
use tensor::{Matrix, QuantMatvec, TensorError};

/// Integer code storage: one signed byte per weight (INT8) or two weights
/// per byte (INT4; byte `i` of a column holds lane `i` in its low nibble
/// and lane `i + MR/2` in its high nibble — deinterleaved so the decode is
/// two independent 4-lane streams, which the vectorizer handles without a
/// lane shuffle).
#[derive(Debug, Clone, PartialEq, Eq)]
enum QStore {
    I8(Vec<i8>),
    I4(Vec<u8>),
}

/// A blockwise-quantized weight matrix in `MR`-row panel order, ready for
/// the fused dequant-matvec microkernels.
///
/// Layout (`p` = panel, `l` = lane in `0..MR`, `c` = column, `g` = group):
///
/// * scales: `scales[(p * n_groups + g) * MR + l]`
/// * INT8 codes: `q[(p * cols + c) * MR + l]`
/// * INT4 codes: byte `q[(p * cols + c) * MR/2 + (l % MR/2)]`; lanes
///   `0..MR/2` ride the low nibbles and lanes `MR/2..MR` the high nibbles
///   — one column of one panel is 4 contiguous bytes, and the two nibble
///   streams decode without interleaving.
///
/// The quantization grid is exactly
/// [`BlockwiseQuantizer::quantize_dequantize`]'s: symmetric, per-row groups
/// of `group_size` consecutive columns, `scale = absmax / max_level`,
/// `q = round(w / scale)` clamped to `±max_level` (which always fits the
/// signed 4-/8-bit range).
#[derive(Debug, Clone, PartialEq)]
pub struct PackedQuantMatrix {
    rows: usize,
    cols: usize,
    bits: u8,
    group_size: usize,
    n_groups: usize,
    scales: Vec<f32>,
    qdata: QStore,
}

impl PackedQuantMatrix {
    /// Quantizes a matrix straight into packed panel order.
    ///
    /// # Errors
    ///
    /// Returns [`QuantError::InvalidParameter`] unless `quantizer.bits` is
    /// 4 or 8 (the only widths with a fused kernel).
    pub fn quantize(w: &Matrix, quantizer: &BlockwiseQuantizer) -> Result<PackedQuantMatrix> {
        let bits = quantizer.bits;
        if bits != 4 && bits != 8 {
            return Err(QuantError::InvalidParameter {
                name: "bits",
                reason: format!("fused dequant kernels support 4 or 8 bits, got {bits}"),
            });
        }
        let group_size = quantizer.group_size;
        let (rows, cols) = w.shape();
        let n_groups = cols.div_ceil(group_size).max(1);
        let panels = rows.div_ceil(MR);
        let max_level = ((1u32 << (bits - 1)) - 1) as f32;
        let mut scales = vec![0.0f32; panels * n_groups * MR];
        let mut qdata = match bits {
            8 => QStore::I8(vec![0i8; panels * cols * MR]),
            _ => QStore::I4(vec![0u8; panels * cols * (MR / 2)]),
        };
        for r in 0..rows {
            let (p, l) = (r / MR, r % MR);
            for g in 0..n_groups {
                let gs = g * group_size;
                let ge = (gs + group_size).min(cols);
                let mut absmax = 0.0f32;
                for c in gs..ge {
                    absmax = absmax.max(w.get(r, c).abs());
                }
                if absmax == 0.0 {
                    continue; // scale 0, codes 0: reconstructs +0.0
                }
                let scale = absmax / max_level;
                scales[(p * n_groups + g) * MR + l] = scale;
                for c in gs..ge {
                    let q = (w.get(r, c) / scale).round().clamp(-max_level, max_level) as i32;
                    match &mut qdata {
                        QStore::I8(v) => v[(p * cols + c) * MR + l] = q as i8,
                        QStore::I4(v) => {
                            let byte = &mut v[(p * cols + c) * (MR / 2) + (l % (MR / 2))];
                            let nib = (q as u8) & 0x0F;
                            if l < MR / 2 {
                                *byte = (*byte & 0xF0) | nib;
                            } else {
                                *byte = (*byte & 0x0F) | (nib << 4);
                            }
                        }
                    }
                }
            }
        }
        Ok(PackedQuantMatrix {
            rows,
            cols,
            bits,
            group_size,
            n_groups,
            scales,
            qdata,
        })
    }

    /// Bit-width of the integer grid (4 or 8).
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Columns per scale group.
    pub fn group_size(&self) -> usize {
        self.group_size
    }

    /// Bytes of packed storage (codes + scales), for memory accounting.
    pub fn packed_bytes(&self) -> usize {
        let codes = match &self.qdata {
            QStore::I8(v) => v.len(),
            QStore::I4(v) => v.len(),
        };
        codes + self.scales.len() * std::mem::size_of::<f32>()
    }

    /// Materializes the `f32` reconstruction — elementwise equal to
    /// [`BlockwiseQuantizer::quantize_dequantize`] up to zero signs (see
    /// the module docs; every *matvec sum* over either matrix is bitwise
    /// identical). Used by parity tests and by callers that need the
    /// dequantized weights for non-fused paths.
    pub fn dequantize(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            let (p, l) = (r / MR, r % MR);
            for c in 0..self.cols {
                let g = c / self.group_size;
                let scale = self.scales[(p * self.n_groups + g) * MR + l];
                out.set(r, c, self.q_at(p, c, l) as f32 * scale);
            }
        }
        out
    }

    /// Integer code at (panel, column, lane).
    #[inline(always)]
    fn q_at(&self, p: usize, c: usize, l: usize) -> i32 {
        match &self.qdata {
            QStore::I8(v) => i32::from(v[(p * self.cols + c) * MR + l]),
            QStore::I4(v) => {
                let b = v[(p * self.cols + c) * (MR / 2) + (l % (MR / 2))];
                if l < MR / 2 {
                    i32::from(((b << 4) as i8) >> 4)
                } else {
                    i32::from((b as i8) >> 4)
                }
            }
        }
    }

    /// Scales of group `g` for panel `p` as a register tile.
    #[inline(always)]
    fn scale_lanes(&self, p: usize, g: usize) -> [f32; MR] {
        let base = (p * self.n_groups + g) * MR;
        let mut sc = [0.0f32; MR];
        sc.copy_from_slice(&self.scales[base..base + MR]);
        sc
    }

    fn check_vec_shapes(&self, op: &'static str, x: &[f32], out: &[f32]) -> TensorResult<()> {
        if x.len() != self.cols {
            return Err(TensorError::ShapeMismatch {
                op,
                expected: (self.cols, 1),
                found: (x.len(), 1),
            });
        }
        if out.len() != self.rows {
            return Err(TensorError::ShapeMismatch {
                op,
                expected: (self.rows, 1),
                found: (out.len(), 1),
            });
        }
        Ok(())
    }

    fn check_batch_shapes(&self, xs: &[f32], k: usize, out: &[f32]) -> TensorResult<()> {
        if xs.len() != k * self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "quant_matvec_batch",
                expected: (k, self.cols),
                found: (xs.len(), 1),
            });
        }
        if out.len() != k * self.rows {
            return Err(TensorError::ShapeMismatch {
                op: "quant_matvec_batch",
                expected: (k, self.rows),
                found: (out.len(), 1),
            });
        }
        Ok(())
    }

    /// Naive scalar fused matvec — the reference-mode path. Per output row,
    /// one ascending-column loop over on-the-fly dequantized values: the
    /// same sums as [`tensor::reference::matvec_into`] on the materialized
    /// reconstruction.
    fn matvec_naive(&self, x: &[f32], out: &mut [f32]) {
        for (r, o) in out.iter_mut().enumerate() {
            let (p, l) = (r / MR, r % MR);
            let mut acc = 0.0f32;
            for (c, &xv) in x.iter().enumerate() {
                let scale = self.scales[(p * self.n_groups + c / self.group_size) * MR + l];
                acc += (self.q_at(p, c, l) as f32 * scale) * xv;
            }
            *o = acc;
        }
    }

    /// Naive scalar fused sparse matvec (active order, exact-zero skip).
    fn matvec_cols_naive(&self, x: &[f32], active: &[usize], out: &mut [f32]) {
        for (r, o) in out.iter_mut().enumerate() {
            let (p, l) = (r / MR, r % MR);
            let mut acc = 0.0f32;
            for &c in active {
                let xv = x[c];
                if xv == 0.0 {
                    continue;
                }
                let scale = self.scales[(p * self.n_groups + c / self.group_size) * MR + l];
                acc += (self.q_at(p, c, l) as f32 * scale) * xv;
            }
            *o = acc;
        }
    }
}

// ---------------------------------------------------------------------------
// Register-blocked fused microkernel bodies (same multiversioning scheme as
// `tensor::packed`: generic `#[inline(always)]` bodies, recompiled under
// AVX2 by `#[target_feature]` wrappers; `NP` panels / `NR` RHS per tile).
// The bodies are additionally generic over a [`CodeView`] so the code-store
// variant is decided once per call, not once per column — the inner loops
// monomorphize to straight-line decode the vectorizer can work with.
// ---------------------------------------------------------------------------

/// Read-only view of one [`QStore`] variant. `idx` addresses a column of a
/// panel (`idx = p * cols + c`); `lanes` dequantizes it into an `MR`-lane
/// register tile as `(q as f32) * scale[l]` — the exact multiply of
/// `quantize_dequantize`, so downstream sums match it bitwise.
trait CodeView: Copy {
    fn lanes(self, idx: usize, sc: &[f32; MR]) -> [f32; MR];
}

#[derive(Clone, Copy)]
struct I8View<'a>(&'a [i8]);

impl CodeView for I8View<'_> {
    #[inline(always)]
    fn lanes(self, idx: usize, sc: &[f32; MR]) -> [f32; MR] {
        let codes = &self.0[idx * MR..idx * MR + MR];
        let mut w = [0.0f32; MR];
        for l in 0..MR {
            w[l] = codes[l] as f32 * sc[l];
        }
        w
    }
}

#[derive(Clone, Copy)]
struct I4View<'a>(&'a [u8]);

impl CodeView for I4View<'_> {
    #[inline(always)]
    fn lanes(self, idx: usize, sc: &[f32; MR]) -> [f32; MR] {
        const HALF: usize = MR / 2;
        let bytes = &self.0[idx * HALF..idx * HALF + HALF];
        let mut w = [0.0f32; MR];
        // deinterleaved nibbles: two independent 4-lane streams, no shuffle
        for i in 0..HALF {
            let b = i32::from(bytes[i]);
            let lo = (b << 28) >> 28;
            let hi = (b << 24) >> 28;
            w[i] = lo as f32 * sc[i];
            w[i + HALF] = hi as f32 * sc[i + HALF];
        }
        w
    }
}

#[inline(always)]
#[allow(clippy::needless_range_loop)]
fn fused_matvec_tile<V: CodeView, const NP: usize>(
    v: V,
    pq: &PackedQuantMatrix,
    p0: usize,
    x: &[f32],
    out: &mut [f32],
) {
    let mut acc = [[0.0f32; MR]; NP];
    for g in 0..pq.n_groups {
        let gs = g * pq.group_size;
        let ge = (gs + pq.group_size).min(pq.cols);
        let mut sc = [[0.0f32; MR]; NP];
        for p in 0..NP {
            sc[p] = pq.scale_lanes(p0 + p, g);
        }
        for c in gs..ge {
            let xv = x[c];
            for p in 0..NP {
                let w = v.lanes((p0 + p) * pq.cols + c, &sc[p]);
                for l in 0..MR {
                    acc[p][l] += w[l] * xv;
                }
            }
        }
    }
    for (p, chunk) in out.chunks_mut(MR).enumerate() {
        chunk.copy_from_slice(&acc[p][..chunk.len()]);
    }
}

#[inline(always)]
fn fused_matvec_impl<V: CodeView, const NP: usize>(
    v: V,
    pq: &PackedQuantMatrix,
    x: &[f32],
    out: &mut [f32],
) {
    let panels = pq.rows.div_ceil(MR);
    let mut p = 0usize;
    while p + NP <= panels {
        let lo = p * MR;
        let hi = ((p + NP) * MR).min(pq.rows);
        fused_matvec_tile::<V, NP>(v, pq, p, x, &mut out[lo..hi]);
        p += NP;
    }
    while p < panels {
        let lo = p * MR;
        let hi = ((p + 1) * MR).min(pq.rows);
        fused_matvec_tile::<V, 1>(v, pq, p, x, &mut out[lo..hi]);
        p += 1;
    }
}

#[inline(always)]
#[allow(clippy::needless_range_loop)]
fn fused_matvec_cols_tile<V: CodeView, const NP: usize>(
    v: V,
    pq: &PackedQuantMatrix,
    p0: usize,
    x: &[f32],
    active: &[usize],
    out: &mut [f32],
) {
    let mut acc = [[0.0f32; MR]; NP];
    for &c in active {
        let xv = x[c];
        if xv == 0.0 {
            continue;
        }
        let g = c / pq.group_size;
        for p in 0..NP {
            let sc = pq.scale_lanes(p0 + p, g);
            let w = v.lanes((p0 + p) * pq.cols + c, &sc);
            for l in 0..MR {
                acc[p][l] += w[l] * xv;
            }
        }
    }
    for (p, chunk) in out.chunks_mut(MR).enumerate() {
        chunk.copy_from_slice(&acc[p][..chunk.len()]);
    }
}

#[inline(always)]
fn fused_matvec_cols_impl<V: CodeView, const NP: usize>(
    v: V,
    pq: &PackedQuantMatrix,
    x: &[f32],
    active: &[usize],
    out: &mut [f32],
) {
    let panels = pq.rows.div_ceil(MR);
    let mut p = 0usize;
    while p + NP <= panels {
        let lo = p * MR;
        let hi = ((p + NP) * MR).min(pq.rows);
        fused_matvec_cols_tile::<V, NP>(v, pq, p, x, active, &mut out[lo..hi]);
        p += NP;
    }
    while p < panels {
        let lo = p * MR;
        let hi = ((p + 1) * MR).min(pq.rows);
        fused_matvec_cols_tile::<V, 1>(v, pq, p, x, active, &mut out[lo..hi]);
        p += 1;
    }
}

/// Batched tile: codes are dequantized **once** per (column, panel) and the
/// resulting register tile feeds all `NR` RHS vectors — the dequant cost is
/// amortized across the batch on top of the traffic win.
#[inline(always)]
#[allow(clippy::needless_range_loop, clippy::too_many_arguments)]
fn fused_matvec_batch_tile<V: CodeView, const NP: usize, const NR: usize>(
    v: V,
    pq: &PackedQuantMatrix,
    p0: usize,
    xs: &[f32],
    s0: usize,
    lo: usize,
    valid: usize,
    out: &mut [f32],
) {
    let (rows, cols) = (pq.rows, pq.cols);
    let mut acc = [[[0.0f32; MR]; NP]; NR];
    for g in 0..pq.n_groups {
        let gs = g * pq.group_size;
        let ge = (gs + pq.group_size).min(cols);
        let mut sc = [[0.0f32; MR]; NP];
        for p in 0..NP {
            sc[p] = pq.scale_lanes(p0 + p, g);
        }
        for c in gs..ge {
            let mut w = [[0.0f32; MR]; NP];
            for p in 0..NP {
                w[p] = v.lanes((p0 + p) * cols + c, &sc[p]);
            }
            for s in 0..NR {
                let xv = xs[(s0 + s) * cols + c];
                for p in 0..NP {
                    for l in 0..MR {
                        acc[s][p][l] += w[p][l] * xv;
                    }
                }
            }
        }
    }
    for s in 0..NR {
        let dst = &mut out[(s0 + s) * rows + lo..(s0 + s) * rows + lo + valid];
        for (p, chunk) in dst.chunks_mut(MR).enumerate() {
            chunk.copy_from_slice(&acc[s][p][..chunk.len()]);
        }
    }
}

#[inline(always)]
fn fused_matvec_batch_impl<V: CodeView, const NP: usize>(
    v: V,
    pq: &PackedQuantMatrix,
    xs: &[f32],
    k: usize,
    out: &mut [f32],
) {
    let panels = pq.rows.div_ceil(MR);
    let mut p = 0usize;
    while p < panels {
        let np = if p + NP <= panels { NP } else { 1 };
        let lo = p * MR;
        let valid = ((p + np) * MR).min(pq.rows) - lo;
        let mut s0 = 0usize;
        macro_rules! run {
            ($np:expr) => {{
                while s0 + 4 <= k {
                    fused_matvec_batch_tile::<V, $np, 4>(v, pq, p, xs, s0, lo, valid, out);
                    s0 += 4;
                }
                if s0 + 2 <= k {
                    fused_matvec_batch_tile::<V, $np, 2>(v, pq, p, xs, s0, lo, valid, out);
                    s0 += 2;
                }
                if s0 < k {
                    fused_matvec_batch_tile::<V, $np, 1>(v, pq, p, xs, s0, lo, valid, out);
                }
            }};
        }
        if np == NP {
            run!(NP);
        } else {
            run!(1);
        }
        p += np;
    }
}

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
mod avx2 {
    //! Safety: reached only when [`super::kernel_arch`] returns
    //! [`KernelArch::Avx2`], which requires a successful
    //! `is_x86_feature_detected!("avx2")`. One non-generic wrapper per
    //! (op, code store) so `#[target_feature]` applies to concrete fns.
    use super::*;

    #[target_feature(enable = "avx2")]
    pub unsafe fn matvec_i8(codes: &[i8], pq: &PackedQuantMatrix, x: &[f32], out: &mut [f32]) {
        fused_matvec_impl::<_, 4>(I8View(codes), pq, x, out);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn matvec_i4(codes: &[u8], pq: &PackedQuantMatrix, x: &[f32], out: &mut [f32]) {
        fused_matvec_impl::<_, 4>(I4View(codes), pq, x, out);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn matvec_cols_i8(
        codes: &[i8],
        pq: &PackedQuantMatrix,
        x: &[f32],
        active: &[usize],
        out: &mut [f32],
    ) {
        fused_matvec_cols_impl::<_, 4>(I8View(codes), pq, x, active, out);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn matvec_cols_i4(
        codes: &[u8],
        pq: &PackedQuantMatrix,
        x: &[f32],
        active: &[usize],
        out: &mut [f32],
    ) {
        fused_matvec_cols_impl::<_, 4>(I4View(codes), pq, x, active, out);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn matvec_batch_i8(
        codes: &[i8],
        pq: &PackedQuantMatrix,
        xs: &[f32],
        k: usize,
        out: &mut [f32],
    ) {
        fused_matvec_batch_impl::<_, 2>(I8View(codes), pq, xs, k, out);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn matvec_batch_i4(
        codes: &[u8],
        pq: &PackedQuantMatrix,
        xs: &[f32],
        k: usize,
        out: &mut [f32],
    ) {
        fused_matvec_batch_impl::<_, 2>(I4View(codes), pq, xs, k, out);
    }
}

fn matvec_dispatch(pq: &PackedQuantMatrix, x: &[f32], out: &mut [f32]) {
    match (kernel_arch(), &pq.qdata) {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        // SAFETY: `kernel_arch` only returns `Avx2` when the host supports it.
        (KernelArch::Avx2, QStore::I8(v)) => unsafe { avx2::matvec_i8(v, pq, x, out) },
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        // SAFETY: as above.
        (KernelArch::Avx2, QStore::I4(v)) => unsafe { avx2::matvec_i4(v, pq, x, out) },
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        (KernelArch::Avx2, QStore::I8(v)) => fused_matvec_impl::<_, 2>(I8View(v), pq, x, out),
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        (KernelArch::Avx2, QStore::I4(v)) => fused_matvec_impl::<_, 2>(I4View(v), pq, x, out),
        (KernelArch::Portable, QStore::I8(v)) => fused_matvec_impl::<_, 2>(I8View(v), pq, x, out),
        (KernelArch::Portable, QStore::I4(v)) => fused_matvec_impl::<_, 2>(I4View(v), pq, x, out),
    }
}

fn matvec_cols_dispatch(pq: &PackedQuantMatrix, x: &[f32], active: &[usize], out: &mut [f32]) {
    match (kernel_arch(), &pq.qdata) {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        // SAFETY: `kernel_arch` only returns `Avx2` when the host supports it.
        (KernelArch::Avx2, QStore::I8(v)) => unsafe { avx2::matvec_cols_i8(v, pq, x, active, out) },
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        // SAFETY: as above.
        (KernelArch::Avx2, QStore::I4(v)) => unsafe { avx2::matvec_cols_i4(v, pq, x, active, out) },
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        (KernelArch::Avx2, QStore::I8(v)) => {
            fused_matvec_cols_impl::<_, 2>(I8View(v), pq, x, active, out)
        }
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        (KernelArch::Avx2, QStore::I4(v)) => {
            fused_matvec_cols_impl::<_, 2>(I4View(v), pq, x, active, out)
        }
        (KernelArch::Portable, QStore::I8(v)) => {
            fused_matvec_cols_impl::<_, 2>(I8View(v), pq, x, active, out)
        }
        (KernelArch::Portable, QStore::I4(v)) => {
            fused_matvec_cols_impl::<_, 2>(I4View(v), pq, x, active, out)
        }
    }
}

fn matvec_batch_dispatch(pq: &PackedQuantMatrix, xs: &[f32], k: usize, out: &mut [f32]) {
    match (kernel_arch(), &pq.qdata) {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        // SAFETY: `kernel_arch` only returns `Avx2` when the host supports it.
        (KernelArch::Avx2, QStore::I8(v)) => unsafe { avx2::matvec_batch_i8(v, pq, xs, k, out) },
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        // SAFETY: as above.
        (KernelArch::Avx2, QStore::I4(v)) => unsafe { avx2::matvec_batch_i4(v, pq, xs, k, out) },
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        (KernelArch::Avx2, QStore::I8(v)) => {
            fused_matvec_batch_impl::<_, 1>(I8View(v), pq, xs, k, out)
        }
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        (KernelArch::Avx2, QStore::I4(v)) => {
            fused_matvec_batch_impl::<_, 1>(I4View(v), pq, xs, k, out)
        }
        (KernelArch::Portable, QStore::I8(v)) => {
            fused_matvec_batch_impl::<_, 1>(I8View(v), pq, xs, k, out)
        }
        (KernelArch::Portable, QStore::I4(v)) => {
            fused_matvec_batch_impl::<_, 1>(I4View(v), pq, xs, k, out)
        }
    }
}

impl QuantMatvec for PackedQuantMatrix {
    fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    fn matvec_into(&self, x: &[f32], out: &mut [f32]) -> TensorResult<()> {
        self.check_vec_shapes("quant_matvec", x, out)?;
        if tensor::kernels::reference_mode() {
            self.matvec_naive(x, out);
            return Ok(());
        }
        matvec_dispatch(self, x, out);
        Ok(())
    }

    fn matvec_cols_into(
        &self,
        x: &[f32],
        active_cols: &[usize],
        out: &mut [f32],
    ) -> TensorResult<()> {
        self.check_vec_shapes("quant_matvec_cols", x, out)?;
        out.fill(0.0);
        if let Some(&bad) = active_cols.iter().find(|&&c| c >= self.cols) {
            return Err(TensorError::IndexOutOfBounds {
                index: bad,
                len: self.cols,
            });
        }
        if tensor::kernels::reference_mode() {
            self.matvec_cols_naive(x, active_cols, out);
            return Ok(());
        }
        matvec_cols_dispatch(self, x, active_cols, out);
        Ok(())
    }

    fn matvec_batch_into(&self, xs: &[f32], k: usize, out: &mut [f32]) -> TensorResult<()> {
        self.check_batch_shapes(xs, k, out)?;
        if tensor::kernels::reference_mode() {
            for s in 0..k {
                let (x, o) = (
                    &xs[s * self.cols..(s + 1) * self.cols],
                    &mut out[s * self.rows..(s + 1) * self.rows],
                );
                self.matvec_naive(x, o);
            }
            return Ok(());
        }
        matvec_batch_dispatch(self, xs, k, out);
        Ok(())
    }

    fn matvec_cols_batch_into(
        &self,
        xs: &[f32],
        k: usize,
        indices: &[usize],
        offsets: &[usize],
        out: &mut [f32],
    ) -> TensorResult<()> {
        self.check_batch_shapes(xs, k, out)?;
        if offsets.len() != k + 1
            || offsets.windows(2).any(|w| w[0] > w[1])
            || offsets.last().copied().unwrap_or(0) > indices.len()
        {
            return Err(TensorError::ShapeMismatch {
                op: "quant_matvec_cols_batch",
                expected: (k + 1, 1),
                found: (offsets.len(), 1),
            });
        }
        out.fill(0.0);
        let used = &indices[..offsets[k]];
        if let Some(&bad) = used.iter().find(|&&c| c >= self.cols) {
            return Err(TensorError::IndexOutOfBounds {
                index: bad,
                len: self.cols,
            });
        }
        let reference = tensor::kernels::reference_mode();
        for s in 0..k {
            let x = &xs[s * self.cols..(s + 1) * self.cols];
            let active = &indices[offsets[s]..offsets[s + 1]];
            let o = &mut out[s * self.rows..(s + 1) * self.rows];
            if reference {
                self.matvec_cols_naive(x, active, o);
            } else {
                matvec_cols_dispatch(self, x, active, o);
            }
        }
        Ok(())
    }

    fn kernel_name(&self) -> &'static str {
        match self.bits {
            4 => "fused_int4",
            _ => "fused_int8",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::init;

    #[test]
    fn rejects_unsupported_bit_widths() {
        let w = Matrix::zeros(4, 8);
        let q2 = BlockwiseQuantizer::new(2, 4).unwrap();
        assert!(PackedQuantMatrix::quantize(&w, &q2).is_err());
    }

    #[test]
    fn dequantize_matches_quantize_dequantize_bitwise() {
        for bits in [4u8, 8] {
            let q = BlockwiseQuantizer::new(bits, 16).unwrap();
            let w = init::heavy_tailed_matrix(&mut init::rng(11), 21, 40, 1.0);
            let pq = PackedQuantMatrix::quantize(&w, &q).unwrap();
            let via_packed = pq.dequantize();
            let via_materialize = q.quantize_dequantize(&w);
            for (a, b) in via_packed
                .as_slice()
                .iter()
                .zip(via_materialize.as_slice().iter())
            {
                if *a == 0.0 && *b == 0.0 {
                    continue; // zero signs may legitimately differ
                }
                assert_eq!(a.to_bits(), b.to_bits(), "bits={bits}");
            }
        }
    }

    #[test]
    fn zero_groups_reconstruct_zero_and_shrink_storage() {
        let q = BlockwiseQuantizer::new(4, 8).unwrap();
        let w = Matrix::zeros(9, 16);
        let pq = PackedQuantMatrix::quantize(&w, &q).unwrap();
        assert!(pq.dequantize().as_slice().iter().all(|&v| v == 0.0));
        // INT4 codes: 2 panels × 16 cols × 4 bytes; f32 would be 9*16*4
        assert!(pq.packed_bytes() < 9 * 16 * 4);
        assert_eq!(pq.kernel_name(), "fused_int4");
    }
}
