//! Bitwise parity of the fused dequant-matvec kernels against
//! materialise-then-reference, and of fused-attached models against the
//! plain quantize→dequantize baseline.
//!
//! The contract (documented in `quant::packed`): for every supported bit
//! width, group size, shape, dispatch choice and sparsity mask, running the
//! fused kernels over the packed INT4/INT8 codes produces **bit-for-bit**
//! the same sums as first materialising the reconstruction with
//! [`BlockwiseQuantizer::quantize_dequantize`] and then running the naive
//! scalar references from `tensor::reference`.

use proptest::prelude::*;
use quant::model_ops::{quantize_mlp_blockwise, quantize_mlp_fused};
use quant::{BlockwiseQuantizer, PackedQuantMatrix};
use tensor::kernels::{available_arches, force_kernel_arch};
use tensor::{reference, Matrix, QuantMatvec};

/// Runs `f` once per microkernel family the host can execute (dispatch
/// pinned), then resets to auto-detection. Fused parity must hold for every
/// family, exactly like the f32 packed kernels.
fn for_each_arch(mut f: impl FnMut(&'static str)) {
    for arch in available_arches() {
        force_kernel_arch(Some(arch));
        f(match arch {
            tensor::kernels::KernelArch::Portable => "portable",
            tensor::kernels::KernelArch::Avx2 => "avx2",
        });
    }
    force_kernel_arch(None);
}

/// Bit-exact comparison (distinguishes `-0.0` from `0.0` and is NaN-safe).
fn assert_bits_eq(fast: &[f32], naive: &[f32], what: &str) {
    assert_eq!(fast.len(), naive.len(), "{what}: length mismatch");
    for (i, (a, b)) in fast.iter().zip(naive.iter()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{what}: output {i} diverged ({a} vs {b})"
        );
    }
}

/// Weight grid: exact zeros (so whole groups can hit `absmax == 0`), tiny
/// values that round to code 0, and ordinary magnitudes.
fn weight() -> impl Strategy<Value = f32> {
    (0u32..10, -1000i64..1000).prop_map(|(kind, mantissa)| match kind {
        0 | 1 => 0.0,
        2 => 1e-30 * mantissa as f32,
        _ => mantissa as f32 / 97.0,
    })
}

fn xval() -> impl Strategy<Value = f32> {
    (0u32..8, -1000i64..1000).prop_map(|(kind, mantissa)| match kind {
        0 => 0.0,
        1 => -0.0,
        _ => mantissa as f32 / 53.0,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fused_kernels_match_materialise_then_reference(
        rows in 1usize..20,
        cols in 1usize..20,
        bits_idx in 0usize..2,
        gs_idx in 0usize..3,
        wvals in prop::collection::vec(weight(), (20 * 20)..(20 * 20 + 1)),
        xvals in prop::collection::vec(xval(), (20 * 8)..(20 * 8 + 1)),
        mask in prop::collection::vec(0usize..20, 0..32),
        k in 1usize..8,
    ) {
        let bits = [4u8, 8][bits_idx];
        let group_size = [4usize, 8, 32][gs_idx];
        let w = Matrix::from_vec(rows, cols, wvals[..rows * cols].to_vec()).unwrap();
        let quantizer = BlockwiseQuantizer::new(bits, group_size).unwrap();
        let packed = PackedQuantMatrix::quantize(&w, &quantizer).unwrap();
        // the naive targets all run over the materialised reconstruction
        let wq = quantizer.quantize_dequantize(&w);
        let active: Vec<usize> = mask.into_iter().map(|c| c % cols).collect();

        let x = &xvals[..cols];
        let xs = &xvals[..k * cols];

        let mut naive = vec![0.0f32; rows];
        reference::matvec_into(&wq, x, &mut naive);
        let mut naive_cols = vec![0.0f32; rows];
        reference::matvec_cols_into(&wq, x, &active, &mut naive_cols);
        let mut naive_batch = vec![0.0f32; k * rows];
        reference::matvec_batch_into(&wq, xs, k, &mut naive_batch);

        // per-row CSR active lists for the batched sparse kernel: row r uses
        // a rotation of the shared mask so rows genuinely differ
        let mut indices = Vec::new();
        let mut offsets = vec![0usize];
        for r in 0..k {
            for (j, &c) in active.iter().enumerate() {
                indices.push(active[(j + r) % active.len().max(1)] % cols.max(1));
                let _ = c;
            }
            offsets.push(indices.len());
        }
        let mut naive_cb = vec![0.0f32; k * rows];
        for r in 0..k {
            let lane = &indices[offsets[r]..offsets[r + 1]];
            reference::matvec_cols_into(
                &wq,
                &xs[r * cols..(r + 1) * cols],
                lane,
                &mut naive_cb[r * rows..(r + 1) * rows],
            );
        }

        for_each_arch(|arch| {
            let mut out = vec![f32::NAN; rows];
            packed.matvec_into(x, &mut out).unwrap();
            assert_bits_eq(&out, &naive, &format!("fused_matvec[{arch}]"));

            let mut out = vec![f32::NAN; rows];
            packed.matvec_cols_into(x, &active, &mut out).unwrap();
            assert_bits_eq(&out, &naive_cols, &format!("fused_matvec_cols[{arch}]"));

            let mut out = vec![f32::NAN; k * rows];
            packed.matvec_batch_into(xs, k, &mut out).unwrap();
            assert_bits_eq(&out, &naive_batch, &format!("fused_matvec_batch[{arch}]"));

            let mut out = vec![f32::NAN; k * rows];
            packed
                .matvec_cols_batch_into(xs, k, &indices, &offsets, &mut out)
                .unwrap();
            assert_bits_eq(&out, &naive_cb, &format!("fused_matvec_cols_batch[{arch}]"));
        });
    }
}

/// A fused-attached model must decode **bitwise identically** to the plain
/// quantize→dequantize model: the fused kernels replace the materialised
/// matvec without changing a single logit bit, across dense scratch decode
/// (mirrors on), the allocating wrapper (mirrors off) and reference mode.
#[test]
fn fused_model_decodes_bitwise_like_blockwise_model() {
    use lm::mlp::DenseMlp;
    use lm::scratch::DecodeScratch;
    use lm::{build_synthetic, ModelConfig};

    let model = build_synthetic(&ModelConfig::tiny(), 7).unwrap();
    let quantizer = BlockwiseQuantizer::new(4, 16).unwrap();
    let baseline = quantize_mlp_blockwise(&model, &quantizer);
    let fused = quantize_mlp_fused(&model, &quantizer).unwrap();

    // the f32 weights themselves must be the reconstruction
    for (b, f) in baseline.layers.iter().zip(fused.layers.iter()) {
        assert_eq!(b.mlp.w_up.as_slice(), f.mlp.w_up.as_slice());
        assert_eq!(b.mlp.w_gate.as_slice(), f.mlp.w_gate.as_slice());
        assert_eq!(b.mlp.w_down.as_slice(), f.mlp.w_down.as_slice());
        let q = f.mlp.quant.as_ref().expect("fused weights attached");
        assert_eq!(q.up.kernel_name(), "fused_int4");
    }

    let tokens = [3u32, 1, 4, 1, 5, 9, 2, 6];
    let mut logits_base = Vec::new();
    {
        let mut state = baseline.new_decode_state();
        let mut scratch = DecodeScratch::for_model(&baseline);
        for &t in &tokens {
            baseline
                .forward_token_into(t, &mut state, &mut DenseMlp, &mut scratch)
                .unwrap();
            logits_base.push(scratch.logits.clone());
        }
    }

    for_each_arch(|arch| {
        let mut state = fused.new_decode_state();
        let mut scratch = DecodeScratch::for_model(&fused);
        for (i, &t) in tokens.iter().enumerate() {
            fused
                .forward_token_into(t, &mut state, &mut DenseMlp, &mut scratch)
                .unwrap();
            assert_bits_eq(
                &scratch.logits,
                &logits_base[i],
                &format!("fused decode[{arch}] token {i}"),
            );
        }
    });

    // allocating wrapper path (mirrors disabled → quant routing still wins)
    let mut state = fused.new_decode_state();
    let mut state_b = baseline.new_decode_state();
    for (i, &t) in tokens.iter().enumerate() {
        let out_f = fused.forward_token(t, &mut state, &mut DenseMlp).unwrap();
        let out_b = baseline
            .forward_token(t, &mut state_b, &mut DenseMlp)
            .unwrap();
        assert_bits_eq(
            &out_f.logits,
            &out_b.logits,
            &format!("alloc decode token {i}"),
        );
    }
}

/// The input-pruned and active-list GluMlp helpers must route through the
/// fused column kernels and stay bitwise identical to the baseline model's
/// materialised sparse kernels — this is the path every DIP strategy takes.
#[test]
fn fused_glu_helpers_match_materialised_sparse_paths() {
    use lm::{build_synthetic, ModelConfig};

    let model = build_synthetic(&ModelConfig::tiny(), 11).unwrap();
    let quantizer = BlockwiseQuantizer::new(8, 8).unwrap();
    let baseline = quantize_mlp_blockwise(&model, &quantizer);
    let fused = quantize_mlp_fused(&model, &quantizer).unwrap();

    let mlp_b = &baseline.layers[0].mlp;
    let mlp_f = &fused.layers[0].mlp;
    let d_model = mlp_b.d_model();
    let d_ff = mlp_b.d_ff();

    let x: Vec<f32> = (0..d_model)
        .map(|i| {
            if i % 5 == 0 {
                0.0
            } else {
                (i as f32 - 3.0) / 7.0
            }
        })
        .collect();
    let active_in: Vec<usize> = (0..d_model).filter(|i| i % 3 != 0).collect();
    let active_ff: Vec<usize> = (0..d_ff).filter(|i| i % 2 == 0).collect();

    for_each_arch(|arch| {
        let mut got = vec![f32::NAN; d_ff];
        let mut want = vec![f32::NAN; d_ff];
        mlp_f.gate_preactivations_into(&x, &mut got, None).unwrap();
        mlp_b.gate_preactivations_into(&x, &mut want, None).unwrap();
        assert_bits_eq(&got, &want, &format!("gate_preactivations[{arch}]"));

        mlp_f
            .up_activations_input_pruned_into(&x, &active_in, &mut got, None)
            .unwrap();
        mlp_b
            .up_activations_input_pruned_into(&x, &active_in, &mut want, None)
            .unwrap();
        assert_bits_eq(&got, &want, &format!("up_input_pruned[{arch}]"));

        let glu: Vec<f32> = (0..d_ff).map(|i| (i as f32 - 10.0) / 13.0).collect();
        let mut got_d = vec![f32::NAN; d_model];
        let mut want_d = vec![f32::NAN; d_model];
        mlp_f
            .down_from_glu_into(&glu, &active_ff, &mut got_d, None)
            .unwrap();
        mlp_b
            .down_from_glu_into(&glu, &active_ff, &mut want_d, None)
            .unwrap();
        assert_bits_eq(&got_d, &want_d, &format!("down_from_glu[{arch}]"));
    });
}
