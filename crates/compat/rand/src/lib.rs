//! Vendored stand-in for the `rand` crate.
//!
//! The workspace builds offline, so it vendors the small `rand` API surface
//! it uses: the [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256** seeded via
//! splitmix64 — statistically solid and deterministic, though its stream
//! differs from the real `StdRng` (nothing in this workspace depends on the
//! exact stream, only on determinism per seed).

#![warn(missing_docs)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly from the "standard" distribution.
pub trait StandardSample: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draws one value from `rng`, uniform over the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Lemire-style rejection-free modulo is fine here: spans are
                // tiny relative to 2^64, so the bias is negligible for the
                // synthetic workloads in this workspace.
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64 + 1;
                start + (rng.next_u64() % span.max(1)) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i64 - start as i64) as u64 + 1;
                (start as i64 + (rng.next_u64() % span.max(1)) as i64) as $t
            }
        }
    )*};
}

impl_signed_range!(i64 => u64, i32 => u32, i16 => u16, i8 => u8, isize => usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                start + unit * (end - start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// The user-facing random-value API (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** generator seeded via splitmix64 (stand-in for `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (subset of `rand::seq`).
pub mod seq {
    use super::RngCore;

    /// Slice shuffling (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chooses one element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = rng.gen_range(0.25f32..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(3usize..10);
            assert!((3..10).contains(&i));
            let s = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&s));
            let inc = rng.gen_range(-1.0f32..=1.0);
            assert!((-1.0..=1.0).contains(&inc));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            lo |= f < 0.1;
            hi |= f > 0.9;
        }
        assert!(lo && hi, "samples should cover both tails");
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
        assert!(v.choose(&mut rng).is_some());
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
