//! Vendored mini property-testing harness.
//!
//! Implements the subset of the `proptest` API that this workspace's tests
//! use — the [`proptest!`] macro, range strategies, `prop_map`,
//! `prop::collection::vec`, `ProptestConfig::with_cases` and the
//! `prop_assert*` macros — on top of the vendored `rand` crate. Unlike the
//! real proptest there is no shrinking: a failing case panics with the seed
//! and case index so it can be reproduced deterministically.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SampleRange};

#[doc(hidden)]
pub use rand as rng_impl;

/// A source of random test inputs (stand-in for proptest's `Strategy`).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

// Tuples of strategies are strategies, as in the real proptest.
impl_tuple_strategy!(
    (A 0, B 1),
    (A 0, B 1, C 2),
    (A 0, B 1, C 2, D 3),
    (A 0, B 1, C 2, D 3, E 4),
    (A 0, B 1, C 2, D 3, E 4, F 5),
);

/// Strategy producing a constant value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (stand-in for `proptest::collection`).
pub mod collection {
    use super::{SampleRange, Strategy};
    use rand::rngs::StdRng;

    /// Strategy for `Vec`s with element strategy `S` and a length range.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Generates vectors whose length is uniform in `len` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = self.len.clone().sample_single(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Namespace module mirroring `proptest::prop` paths used via the prelude.
pub mod prop {
    pub use crate::collection;
}

/// Test-runner configuration (stand-in for `proptest::test_runner`).
pub mod test_runner {
    /// How many random cases each property runs.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct ProptestConfig {
        /// Number of cases.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

/// The default seed properties derive their RNG stream from.
pub const DEFAULT_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy};
}

/// Asserts a condition inside a property (panics with case context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { ... }`
/// becomes a `#[test]` that runs the body for `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]; do not invoke directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = <$crate::rng_impl::rngs::StdRng as $crate::rng_impl::SeedableRng>::seed_from_u64(
                    $crate::DEFAULT_SEED ^ (stringify!($name).len() as u64),
                );
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let run = || -> () { $body };
                    if let Err(panic) = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)) {
                        eprintln!(
                            "property `{}` failed at case {} (seed {:#x})",
                            stringify!($name),
                            case,
                            $crate::DEFAULT_SEED,
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn scaled() -> impl Strategy<Value = f32> {
        (-100i32..100).prop_map(|v| v as f32 / 10.0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 2usize..9, y in -4i32..4) {
            prop_assert!((2..9).contains(&x));
            prop_assert!((-4..4).contains(&y));
        }

        #[test]
        fn vectors_respect_length(v in prop::collection::vec(0u32..10, 1..17)) {
            prop_assert!(!v.is_empty() && v.len() < 17);
            prop_assert!(v.iter().all(|e| *e < 10));
        }

        #[test]
        fn map_applies(x in scaled()) {
            prop_assert!((-10.0..10.0).contains(&x));
        }

        #[test]
        fn nested_collections(m in prop::collection::vec(prop::collection::vec(0usize..5, 1..4), 1..6)) {
            prop_assert!(m.iter().all(|row| !row.is_empty()));
            prop_assert_ne!(m.len(), 0);
        }
    }

    #[test]
    fn config_defaults() {
        assert_eq!(ProptestConfig::default().cases, 64);
        assert_eq!(ProptestConfig::with_cases(8).cases, 8);
    }
}
