//! Derive macros for the vendored `serde` stand-in.
//!
//! The real `serde_derive` generates visitor-based (de)serializers; this
//! stand-in only needs to emit empty marker-trait impls, so it parses the
//! item header by hand (no `syn`/`quote`, which are unavailable offline).
//! Only non-generic `struct`s and `enum`s are supported — which is every type
//! that derives serde traits in this workspace.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name that follows the `struct` / `enum` / `union`
/// keyword, skipping attributes, doc comments and visibility modifiers.
fn type_name(input: TokenStream) -> String {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match tt {
            // `#[...]` / `#![...]`: skip the bracketed group that follows.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(_)) = tokens.peek() {
                    tokens.next();
                }
            }
            TokenTree::Ident(id) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" || kw == "union" {
                    match tokens.next() {
                        Some(TokenTree::Ident(name)) => {
                            if let Some(TokenTree::Punct(p)) = tokens.peek() {
                                if p.as_char() == '<' {
                                    panic!(
                                        "vendored serde_derive does not support generic type `{name}`"
                                    );
                                }
                            }
                            return name.to_string();
                        }
                        other => panic!("expected type name after `{kw}`, found {other:?}"),
                    }
                }
                // `pub`, `pub(crate)`, etc. — keep scanning.
            }
            _ => {}
        }
    }
    panic!("vendored serde_derive: no struct/enum found in derive input")
}

/// Derives the `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Derives the `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(input);
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}
