//! Vendored stand-in for the `serde` crate.
//!
//! The container this workspace builds in has no access to crates.io, so the
//! workspace vendors the tiny subset of serde it actually relies on: the
//! `Serialize` / `Deserialize` marker traits and their derive macros. No code
//! in the workspace serializes through serde at runtime (reports are rendered
//! as markdown/CSV by hand), so the traits carry no methods; deriving them
//! simply asserts "this type is plain data", which keeps every type
//! source-compatible with the real serde should the build ever move back to
//! the registry.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize {}

macro_rules! impl_markers {
    ($($t:ty),* $(,)?) => {
        $(impl Serialize for $t {} impl Deserialize for $t {})*
    };
}

impl_markers!(
    bool, char, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, String
);

impl Serialize for str {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Deserialize> Deserialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<T: Deserialize> Deserialize for Option<T> {}
impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize + ?Sized> Serialize for &T {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {}
impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {}
impl<K: Deserialize, V: Deserialize> Deserialize for std::collections::HashMap<K, V> {}
impl Serialize for std::path::PathBuf {}
impl Deserialize for std::path::PathBuf {}
