//! Vendored mini benchmark harness.
//!
//! The workspace builds offline, so it vendors the subset of the `criterion`
//! API its benches use: [`Criterion`], [`BenchmarkGroup`], [`Bencher`] with
//! `iter` / `iter_batched`, [`BatchSize`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Instead of criterion's statistical analysis it
//! runs a short warm-up followed by `sample_size` timed samples and prints
//! the mean, minimum and maximum wall time per iteration.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup cost (accepted for API compatibility;
/// the stand-in always times routine executions individually).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Benchmark runner configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement-time budget per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up-time budget per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup: {name}");
        let (sample_size, measurement_time, warm_up_time) =
            (self.sample_size, self.measurement_time, self.warm_up_time);
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size,
            measurement_time,
            warm_up_time,
        }
    }

    /// Runs a single benchmark outside a group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let (sample_size, measurement, warmup) =
            (self.sample_size, self.measurement_time, self.warm_up_time);
        run_bench(name, sample_size, measurement, warmup, f);
        self
    }
}

/// A named group of benchmarks sharing timing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement-time budget for benchmarks in this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up-time budget for benchmarks in this group.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let label = format!("{}/{name}", self.name);
        run_bench(
            &label,
            self.sample_size,
            self.measurement_time,
            self.warm_up_time,
            f,
        );
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

fn run_bench(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(sample_size),
        sample_size,
        measurement_time,
        warm_up_time,
    };
    f(&mut bencher);
    let n = bencher.samples.len().max(1);
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / n as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    println!(
        "  {label}: mean {} [min {}, max {}] over {n} samples",
        fmt_duration(mean),
        fmt_duration(min),
        fmt_duration(max)
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Times the closure passed to [`BenchmarkGroup::bench_function`].
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher {
    /// Times `routine`, collecting one sample per execution.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: run until the warm-up budget is exhausted (at least once).
        let warm_start = Instant::now();
        loop {
            std::hint::black_box(routine());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t.elapsed());
            if budget_start.elapsed() >= self.measurement_time {
                break;
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup` (setup time excluded).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        std::hint::black_box(routine(setup()));
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t.elapsed());
            if budget_start.elapsed() >= self.measurement_time {
                break;
            }
        }
    }
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub use std::hint::black_box;

/// Defines a benchmark group function from a config and target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines the benchmark binary's `main` from group functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("test");
        group.sample_size(3);
        group.bench_function("add", |b| b.iter(|| black_box(1u64 + 1)));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group! {
        name = smoke;
        config = Criterion::default().sample_size(3);
        targets = trivial_bench
    }

    #[test]
    fn harness_runs() {
        smoke();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(10)), "10 ns");
        assert!(fmt_duration(Duration::from_micros(15)).contains("µs"));
        assert!(fmt_duration(Duration::from_millis(15)).contains("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).contains(" s"));
    }
}
