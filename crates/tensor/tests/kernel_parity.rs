//! Bitwise parity of the optimised kernels against the naive references.
//!
//! The optimisation contract of `crates/tensor` is that unrolling runs only
//! across independent outputs, so no floating-point reduction is ever
//! reordered: for *any* shape, values (including exact zeros, negatives and
//! denormals) and active-index mask, the optimised `_into` / mirrored /
//! threaded kernels must produce **bit-for-bit** the same output as the
//! pre-optimisation scalar loops in `tensor::reference`.

use proptest::prelude::*;
use tensor::kernels::{available_arches, force_kernel_arch};
use tensor::pool::WorkerPool;
use tensor::{reference, Matrix, PackedMatrix};

/// Runs `f` once per microkernel family the host can execute, with the
/// dispatch table pinned to that family, then resets to auto-detection.
/// Parity must hold for **every** dispatch choice, not just the detected
/// one — this is what makes `TENSOR_FORCE_PORTABLE=1` a pure speed switch.
fn for_each_arch(mut f: impl FnMut(&'static str)) {
    for arch in available_arches() {
        force_kernel_arch(Some(arch));
        f(match arch {
            tensor::kernels::KernelArch::Portable => "portable",
            tensor::kernels::KernelArch::Avx2 => "avx2",
        });
    }
    force_kernel_arch(None);
}

/// Bit-exact comparison (distinguishes `-0.0` from `0.0` and is NaN-safe).
fn assert_bits_eq(fast: &[f32], naive: &[f32], what: &str) {
    assert_eq!(fast.len(), naive.len(), "{what}: length mismatch");
    for (i, (a, b)) in fast.iter().zip(naive.iter()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{what}: output {i} diverged ({a} vs {b})"
        );
    }
}

/// A value grid that includes exact zeros (both signs), small and large
/// magnitudes — the cases where reordered arithmetic would show first.
fn value() -> impl Strategy<Value = f32> {
    (0u32..12, -1000i64..1000).prop_map(|(kind, mantissa)| match kind {
        0 => 0.0,
        1 => -0.0,
        2 => 1e-30 * mantissa as f32,
        3 => 1e6 * mantissa as f32,
        _ => mantissa as f32 / 97.0,
    })
}

fn matrix(rows: usize, cols: usize, values: Vec<f32>) -> Matrix {
    Matrix::from_vec(rows, cols, values).expect("generated buffer matches shape")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn matvec_matches_reference(
        rows in 1usize..24,
        cols in 1usize..24,
        seedvals in prop::collection::vec(value(), (24 * 24 + 24)..(24 * 24 + 25)),
    ) {
        let m = matrix(rows, cols, seedvals[..rows * cols].to_vec());
        let x = &seedvals[rows * cols..rows * cols + cols];
        let fast = m.matvec(x).unwrap();
        let mut naive = vec![0.0f32; rows];
        reference::matvec_into(&m, x, &mut naive);
        assert_bits_eq(&fast, &naive, "matvec");

        let mut into = vec![f32::NAN; rows];
        m.matvec_into(x, &mut into).unwrap();
        assert_bits_eq(&into, &naive, "matvec_into");

        // the dense mirrored kernel accumulates per output in the same
        // ascending-column order as the sequential row dot
        let mirror = m.transpose();
        let mut mirrored = vec![f32::NAN; rows];
        m.matvec_mirrored(&mirror, x, &mut mirrored).unwrap();
        assert_bits_eq(&mirrored, &naive, "matvec_mirrored");

        // the packed register-blocked kernels, under every dispatch choice
        let pm = PackedMatrix::pack(&m);
        for_each_arch(|arch| {
            let mut packed = vec![f32::NAN; rows];
            m.matvec_packed(&pm, x, &mut packed).unwrap();
            assert_bits_eq(&packed, &naive, &format!("matvec_packed[{arch}]"));
        });
    }

    #[test]
    fn matvec_cols_matches_reference(
        rows in 1usize..24,
        cols in 1usize..24,
        seedvals in prop::collection::vec(value(), (24 * 24 + 24)..(24 * 24 + 25)),
        mask in prop::collection::vec(0usize..24, 0..40),
    ) {
        let m = matrix(rows, cols, seedvals[..rows * cols].to_vec());
        let x = &seedvals[rows * cols..rows * cols + cols];
        // masks may repeat and arrive in arbitrary order — both are part of
        // the kernel contract (accumulation order follows the active list)
        let active: Vec<usize> = mask.into_iter().map(|c| c % cols).collect();

        let mut naive = vec![0.0f32; rows];
        reference::matvec_cols_into(&m, x, &active, &mut naive);

        let fast = m.matvec_cols(x, &active).unwrap();
        assert_bits_eq(&fast, &naive, "matvec_cols");

        let mut into = vec![f32::NAN; rows];
        m.matvec_cols_into(x, &active, &mut into).unwrap();
        assert_bits_eq(&into, &naive, "matvec_cols_into");

        let mirror = m.transpose();
        let mut mirrored = vec![f32::NAN; rows];
        m.matvec_cols_mirrored(&mirror, x, &active, &mut mirrored).unwrap();
        assert_bits_eq(&mirrored, &naive, "matvec_cols_mirrored");

        let pm = PackedMatrix::pack(&m);
        for_each_arch(|arch| {
            let mut packed = vec![f32::NAN; rows];
            m.matvec_cols_packed(&pm, x, &active, &mut packed).unwrap();
            assert_bits_eq(&packed, &naive, &format!("matvec_cols_packed[{arch}]"));
        });
    }

    #[test]
    fn matvec_rows_matches_reference(
        rows in 1usize..24,
        cols in 1usize..24,
        seedvals in prop::collection::vec(value(), (24 * 24 + 24)..(24 * 24 + 25)),
        mask in prop::collection::vec(0usize..24, 0..40),
    ) {
        let m = matrix(rows, cols, seedvals[..rows * cols].to_vec());
        let x = &seedvals[rows * cols..rows * cols + cols];
        let active: Vec<usize> = mask.into_iter().map(|r| r % rows).collect();

        let mut naive = vec![0.0f32; rows];
        reference::matvec_rows_into(&m, x, &active, &mut naive);

        let fast = m.matvec_rows(x, &active).unwrap();
        assert_bits_eq(&fast, &naive, "matvec_rows");

        let mut into = vec![f32::NAN; rows];
        m.matvec_rows_into(x, &active, &mut into).unwrap();
        assert_bits_eq(&into, &naive, "matvec_rows_into");
    }

    #[test]
    fn matvec_t_matches_reference(
        rows in 1usize..24,
        cols in 1usize..24,
        seedvals in prop::collection::vec(value(), (24 * 24 + 24)..(24 * 24 + 25)),
    ) {
        let m = matrix(rows, cols, seedvals[..rows * cols].to_vec());
        let x = &seedvals[rows * cols..rows * cols + rows];
        let mut naive = vec![0.0f32; cols];
        reference::matvec_t_into(&m, x, &mut naive);

        let fast = m.matvec_t(x).unwrap();
        assert_bits_eq(&fast, &naive, "matvec_t");

        let mut into = vec![f32::NAN; cols];
        m.matvec_t_into(x, &mut into).unwrap();
        assert_bits_eq(&into, &naive, "matvec_t_into");
    }

    #[test]
    fn matvec_batch_matches_reference(
        rows in 1usize..24,
        cols in 1usize..24,
        k in 1usize..6,
        seedvals in prop::collection::vec(value(), (24 * 24 + 6 * 24)..(24 * 24 + 6 * 24 + 1)),
    ) {
        let m = matrix(rows, cols, seedvals[..rows * cols].to_vec());
        let xs = &seedvals[rows * cols..rows * cols + k * cols];
        let mut naive = vec![0.0f32; k * rows];
        reference::matvec_batch_into(&m, xs, k, &mut naive);

        // the reference itself is k independent single-RHS references
        for s in 0..k {
            let mut single = vec![0.0f32; rows];
            reference::matvec_into(&m, &xs[s * cols..(s + 1) * cols], &mut single);
            assert_bits_eq(&naive[s * rows..(s + 1) * rows], &single, "batch reference row");
        }

        let mut fused = vec![f32::NAN; k * rows];
        m.matvec_batch_into(xs, k, &mut fused).unwrap();
        assert_bits_eq(&fused, &naive, "matvec_batch_into");

        let mirror = m.transpose();
        let mut mirrored = vec![f32::NAN; k * rows];
        m.matvec_batch_mirrored(&mirror, xs, k, &mut mirrored).unwrap();
        assert_bits_eq(&mirrored, &naive, "matvec_batch_mirrored");

        for pool in [WorkerPool::new(0), WorkerPool::new(3)] {
            let mut threaded = vec![f32::NAN; k * rows];
            m.matvec_batch_into_threaded(xs, k, &mut threaded, &pool).unwrap();
            assert_bits_eq(&threaded, &naive, "matvec_batch_into_threaded");
        }

        let pm = PackedMatrix::pack(&m);
        for_each_arch(|arch| {
            let mut packed = vec![f32::NAN; k * rows];
            m.matvec_batch_packed(&pm, xs, k, &mut packed).unwrap();
            assert_bits_eq(&packed, &naive, &format!("matvec_batch_packed[{arch}]"));
        });
    }

    #[test]
    fn matvec_cols_batch_matches_reference(
        rows in 1usize..24,
        cols in 1usize..24,
        k in 1usize..6,
        seedvals in prop::collection::vec(value(), (24 * 24 + 6 * 24)..(24 * 24 + 6 * 24 + 1)),
        masks in prop::collection::vec(prop::collection::vec(0usize..24, 0..30), 6..7),
    ) {
        let m = matrix(rows, cols, seedvals[..rows * cols].to_vec());
        let xs = &seedvals[rows * cols..rows * cols + k * cols];
        // per-RHS active lists in arbitrary order with repeats, CSR-packed
        let mut indices = Vec::new();
        let mut offsets = vec![0usize];
        for mask in masks.iter().take(k) {
            indices.extend(mask.iter().map(|c| c % cols));
            offsets.push(indices.len());
        }

        let mut naive = vec![0.0f32; k * rows];
        reference::matvec_cols_batch_into(&m, xs, k, &indices, &offsets, &mut naive);
        let mut fused = vec![f32::NAN; k * rows];
        m.matvec_cols_batch_into(xs, k, &indices, &offsets, &mut fused).unwrap();
        assert_bits_eq(&fused, &naive, "matvec_cols_batch_into");

        let pm = PackedMatrix::pack(&m);
        for_each_arch(|arch| {
            let mut packed = vec![f32::NAN; k * rows];
            m.matvec_cols_batch_packed(&pm, xs, k, &indices, &offsets, &mut packed).unwrap();
            assert_bits_eq(&packed, &naive, &format!("matvec_cols_batch_packed[{arch}]"));
        });

        // and each row equals the single-RHS gathered kernel on its own list
        for s in 0..k {
            let mut single = vec![f32::NAN; rows];
            m.matvec_cols_into(
                &xs[s * cols..(s + 1) * cols],
                &indices[offsets[s]..offsets[s + 1]],
                &mut single,
            )
            .unwrap();
            assert_bits_eq(&fused[s * rows..(s + 1) * rows], &single, "batch vs single cols");
        }
    }

    #[test]
    fn blocked_matmul_matches_reference(
        m_rows in 1usize..12,
        inner in 1usize..12,
        n_cols in 1usize..12,
        seedvals in prop::collection::vec(value(), (12 * 12 * 2)..(12 * 12 * 2 + 1)),
    ) {
        let a = matrix(m_rows, inner, seedvals[..m_rows * inner].to_vec());
        let b = matrix(inner, n_cols, seedvals[144..144 + inner * n_cols].to_vec());
        let naive = reference::matmul(&a, &b);
        for_each_arch(|arch| {
            let blocked = a.matmul(&b).unwrap();
            assert_eq!(blocked.shape(), naive.shape());
            assert_bits_eq(blocked.as_slice(), naive.as_slice(), &format!("matmul[{arch}]"));
        });
    }

    #[test]
    fn blocked_transpose_matches_reference(
        rows in 1usize..40,
        cols in 1usize..40,
        seedvals in prop::collection::vec(value(), (40 * 40)..(40 * 40 + 1)),
    ) {
        let m = matrix(rows, cols, seedvals[..rows * cols].to_vec());
        let blocked = m.transpose();
        let naive = reference::transpose(&m);
        prop_assert_eq!(blocked.shape(), naive.shape());
        assert_bits_eq(blocked.as_slice(), naive.as_slice(), "transpose");
    }

    #[test]
    fn threaded_matvec_is_bitwise_deterministic(
        rows in 1usize..40,
        cols in 1usize..24,
        seedvals in prop::collection::vec(value(), (40 * 24 + 24)..(40 * 24 + 25)),
    ) {
        // the threaded kernel row-partitions the output and never splits a
        // reduction, so any pool size must reproduce the sequential result
        let m = matrix(rows, cols, seedvals[..rows * cols].to_vec());
        let x = &seedvals[rows * cols..rows * cols + cols];
        let mut naive = vec![0.0f32; rows];
        reference::matvec_into(&m, x, &mut naive);
        for pool in [WorkerPool::new(0), WorkerPool::new(3)] {
            let mut threaded = vec![f32::NAN; rows];
            m.matvec_into_threaded(x, &mut threaded, &pool).unwrap();
            assert_bits_eq(&threaded, &naive, "matvec_into_threaded");
        }
    }
}

/// The batched mirrored kernel switches to a register-tiled segment walk
/// for tall batches (k ≥ 16); force both shapes past every segment and
/// remainder boundary, including the exact production prefill shape
/// (chunk 64 at phi3-mini dims).
#[test]
fn tall_batch_mirrored_parity_hits_the_tiled_path() {
    for (rows, cols, k) in [
        (70usize, 70usize, 24usize),
        (320, 96, 64),
        (5, 130, 33),
        (96, 96, 64),
        (37, 41, 17),
    ] {
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| ((i * 2654435761usize) % 997) as f32 / 331.0 - 1.5)
            .collect();
        let m = Matrix::from_vec(rows, cols, data).unwrap();
        let mirror = m.transpose();
        let xs: Vec<f32> = (0..k * cols)
            .map(|i| ((i * 40503) % 641) as f32 / 127.0 - 2.5)
            .collect();
        let mut naive = vec![0.0f32; k * rows];
        reference::matvec_batch_into(&m, &xs, k, &mut naive);
        let mut tiled = vec![f32::NAN; k * rows];
        m.matvec_batch_mirrored(&mirror, &xs, k, &mut tiled)
            .unwrap();
        assert_bits_eq(&tiled, &naive, "matvec_batch_mirrored (tiled)");
        let mut fused = vec![f32::NAN; k * rows];
        m.matvec_batch_into(&xs, k, &mut fused).unwrap();
        assert_bits_eq(&fused, &naive, "matvec_batch_into (tall)");
    }
}

/// The blocked matmul's tile loops (J_TILE = K_TILE = 64) never trigger on
/// proptest-sized shapes; pin multi-tile shapes with awkward remainders to
/// the naive reference bitwise.
#[test]
fn multi_tile_matmul_matches_reference() {
    for (m, k, n) in [
        (70usize, 150usize, 130usize),
        (64, 64, 64),
        (1, 200, 65),
        (130, 1, 70),
    ] {
        let a_data: Vec<f32> = (0..m * k)
            .map(|i| ((i * 2654435761usize) % 997) as f32 / 331.0 - 1.5)
            .collect();
        let b_data: Vec<f32> = (0..k * n)
            .map(|i| {
                if i % 7 == 0 {
                    0.0
                } else {
                    ((i * 40503) % 641) as f32 / 127.0 - 2.5
                }
            })
            .collect();
        // exact zeros in the left operand exercise the historical skip
        let a_data: Vec<f32> = a_data
            .into_iter()
            .enumerate()
            .map(|(i, v)| if i % 5 == 0 { 0.0 } else { v })
            .collect();
        let a = Matrix::from_vec(m, k, a_data).unwrap();
        let b = Matrix::from_vec(k, n, b_data).unwrap();
        let naive = reference::matmul(&a, &b);
        for_each_arch(|arch| {
            let blocked = a.matmul(&b).unwrap();
            assert_bits_eq(
                blocked.as_slice(),
                naive.as_slice(),
                &format!("matmul (multi-tile)[{arch}]"),
            );
        });
    }
}

/// Proptest shapes (≤ 24 rows) never span more than three MR-panels, so the
/// wide accumulator tiles (4 and 8 panels in flight) and the panel-group
/// remainder loops would go unexercised; pin production shapes (phi3-mini
/// dims among them) and batch widths crossing every NR remainder (4/2/1)
/// under every dispatch choice.
#[test]
fn packed_kernels_parity_at_production_shapes() {
    for (rows, cols) in [
        (320usize, 96usize),
        (96, 320),
        (96, 96),
        (257, 96),
        (70, 33),
    ] {
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| {
                if i % 11 == 0 {
                    0.0
                } else {
                    ((i * 2654435761usize) % 997) as f32 / 331.0 - 1.5
                }
            })
            .collect();
        let m = Matrix::from_vec(rows, cols, data).unwrap();
        let pm = PackedMatrix::pack(&m);

        let x: Vec<f32> = (0..cols)
            .map(|i| {
                if i % 13 == 0 {
                    0.0
                } else {
                    ((i * 40503) % 641) as f32 / 127.0 - 2.5
                }
            })
            .collect();
        let mut naive = vec![0.0f32; rows];
        reference::matvec_into(&m, &x, &mut naive);

        let active: Vec<usize> = (0..cols)
            .filter(|c| c % 3 != 1)
            .map(|c| (c * 7) % cols)
            .collect();
        let mut naive_cols = vec![0.0f32; rows];
        reference::matvec_cols_into(&m, &x, &active, &mut naive_cols);

        for_each_arch(|arch| {
            let mut packed = vec![f32::NAN; rows];
            m.matvec_packed(&pm, &x, &mut packed).unwrap();
            assert_bits_eq(&packed, &naive, &format!("matvec_packed wide[{arch}]"));

            let mut packed_cols = vec![f32::NAN; rows];
            m.matvec_cols_packed(&pm, &x, &active, &mut packed_cols)
                .unwrap();
            assert_bits_eq(
                &packed_cols,
                &naive_cols,
                &format!("matvec_cols_packed wide[{arch}]"),
            );

            for k in [1usize, 2, 3, 5, 7, 8, 64] {
                let xs: Vec<f32> = (0..k * cols)
                    .map(|i| {
                        if i % 17 == 0 {
                            0.0
                        } else {
                            ((i * 48271) % 1021) as f32 / 255.0 - 2.0
                        }
                    })
                    .collect();
                let mut naive_b = vec![0.0f32; k * rows];
                reference::matvec_batch_into(&m, &xs, k, &mut naive_b);
                let mut packed_b = vec![f32::NAN; k * rows];
                m.matvec_batch_packed(&pm, &xs, k, &mut packed_b).unwrap();
                assert_bits_eq(
                    &packed_b,
                    &naive_b,
                    &format!("matvec_batch_packed k={k}[{arch}]"),
                );
            }
        });
    }
}

/// The threaded kernel only forks above a size threshold; force a matrix
/// past it to exercise the actual parallel path.
#[test]
fn threaded_matvec_parity_above_fork_threshold() {
    let rows = 512;
    let cols = 128;
    let data: Vec<f32> = (0..rows * cols)
        .map(|i| ((i * 2654435761usize) % 1000) as f32 / 997.0 - 0.5)
        .collect();
    let m = Matrix::from_vec(rows, cols, data).unwrap();
    let x: Vec<f32> = (0..cols).map(|i| (i as f32 * 0.37).sin()).collect();
    let mut naive = vec![0.0f32; rows];
    reference::matvec_into(&m, &x, &mut naive);
    let pool = WorkerPool::new(4);
    let mut threaded = vec![f32::NAN; rows];
    m.matvec_into_threaded(&x, &mut threaded, &pool).unwrap();
    for (a, b) in threaded.iter().zip(naive.iter()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
