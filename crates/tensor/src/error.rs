//! Error types for the tensor crate.

use std::fmt;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, TensorError>;

/// Errors produced by tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands had incompatible shapes.
    ShapeMismatch {
        /// Human readable description of the operation that failed.
        op: &'static str,
        /// Shape expected by the operation.
        expected: (usize, usize),
        /// Shape actually provided.
        found: (usize, usize),
    },
    /// An index was out of bounds for the given dimension.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The length of the dimension that was indexed.
        len: usize,
    },
    /// An operation that requires a non-empty input received an empty one.
    Empty {
        /// The operation that failed.
        op: &'static str,
    },
    /// A parameter was outside its valid range.
    InvalidParameter {
        /// The parameter name.
        name: &'static str,
        /// Explanation of the constraint that was violated.
        reason: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch {
                op,
                expected,
                found,
            } => write!(
                f,
                "shape mismatch in {op}: expected {}x{}, found {}x{}",
                expected.0, expected.1, found.0, found.1
            ),
            TensorError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            TensorError::Empty { op } => write!(f, "{op} requires a non-empty input"),
            TensorError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = TensorError::ShapeMismatch {
            op: "matvec",
            expected: (2, 3),
            found: (3, 2),
        };
        assert_eq!(
            e.to_string(),
            "shape mismatch in matvec: expected 2x3, found 3x2"
        );
    }

    #[test]
    fn display_index_out_of_bounds() {
        let e = TensorError::IndexOutOfBounds { index: 5, len: 3 };
        assert_eq!(e.to_string(), "index 5 out of bounds for length 3");
    }

    #[test]
    fn display_empty_and_invalid() {
        assert_eq!(
            TensorError::Empty { op: "softmax" }.to_string(),
            "softmax requires a non-empty input"
        );
        let e = TensorError::InvalidParameter {
            name: "k",
            reason: "must be <= len".to_string(),
        };
        assert!(e.to_string().contains("invalid parameter `k`"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
