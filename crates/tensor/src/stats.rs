//! Summary statistics, quantiles and histograms.
//!
//! Used to (a) calibrate per-layer thresholds from activation CDFs
//! (Section 3.1 of the paper) and (b) reproduce the activation magnitude
//! distribution plots (Fig. 3 and Fig. 10-left).

use crate::error::{Result, TensorError};
use serde::{Deserialize, Serialize};

/// Arithmetic mean, 0 for an empty slice.
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f32>() / xs.len() as f32
    }
}

/// Population variance, 0 for slices with fewer than two elements.
pub fn variance(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / xs.len() as f32
}

/// Population standard deviation.
pub fn std_dev(xs: &[f32]) -> f32 {
    variance(xs).sqrt()
}

/// Minimum value, `+inf` for an empty slice.
pub fn min(xs: &[f32]) -> f32 {
    xs.iter().fold(f32::INFINITY, |m, &x| m.min(x))
}

/// Maximum value, `-inf` for an empty slice.
pub fn max(xs: &[f32]) -> f32 {
    xs.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x))
}

/// Quantile of the data using linear interpolation between order statistics.
///
/// `q` must be in `[0, 1]`; `q = 0.5` is the median.
///
/// # Errors
///
/// Returns [`TensorError::Empty`] on empty input and
/// [`TensorError::InvalidParameter`] for `q` outside `[0, 1]`.
pub fn quantile(xs: &[f32], q: f32) -> Result<f32> {
    if xs.is_empty() {
        return Err(TensorError::Empty { op: "quantile" });
    }
    if !(0.0..=1.0).contains(&q) || !q.is_finite() {
        return Err(TensorError::InvalidParameter {
            name: "q",
            reason: format!("must be in [0, 1], got {q}"),
        });
    }
    let mut sorted: Vec<f32> = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pos = q as f64 * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = (pos - lo as f64) as f32;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Threshold `t` such that approximately `density` of the *magnitudes* of the
/// calibration data exceed `t`.
///
/// This is the per-layer calibration described in Section 3.1: a fixed
/// threshold per layer derived from the CDF of activation magnitudes over a
/// calibration set.
///
/// # Errors
///
/// Propagates errors from [`quantile`].
pub fn magnitude_threshold_for_density(xs: &[f32], density: f32) -> Result<f32> {
    let mags: Vec<f32> = xs.iter().map(|x| x.abs()).collect();
    // Keeping the top `density` fraction means thresholding at the
    // (1 - density) quantile of the magnitude distribution.
    quantile(&mags, (1.0 - density).clamp(0.0, 1.0))
}

/// A simple fixed-width histogram over `[lo, hi]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f32,
    hi: f32,
    counts: Vec<u64>,
    total: u64,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates an empty histogram with `bins` equally sized bins over `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidParameter`] if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f32, hi: f32, bins: usize) -> Result<Self> {
        if bins == 0 {
            return Err(TensorError::InvalidParameter {
                name: "bins",
                reason: "must be > 0".to_string(),
            });
        }
        // rejects hi <= lo and NaN bounds alike
        if hi.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
            return Err(TensorError::InvalidParameter {
                name: "hi",
                reason: format!("must be greater than lo ({lo}), got {hi}"),
            });
        }
        Ok(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            underflow: 0,
            overflow: 0,
        })
    }

    /// Adds a single observation.
    pub fn add(&mut self, x: f32) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        if x >= self.hi {
            self.overflow += 1;
            return;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f32;
        let bin = ((x - self.lo) / width) as usize;
        let bin = bin.min(self.counts.len() - 1);
        self.counts[bin] += 1;
    }

    /// Adds every observation in the slice.
    pub fn extend_from_slice(&mut self, xs: &[f32]) {
        for &x in xs {
            self.add(x);
        }
    }

    /// Raw per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations added (including under/overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Observations below the lower bound.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Normalised bin densities (probability mass per bin, excluding
    /// under/overflow). Returns all zeros when the histogram is empty.
    pub fn densities(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Centre value of each bin.
    pub fn bin_centers(&self) -> Vec<f32> {
        let width = (self.hi - self.lo) / self.counts.len() as f32;
        (0..self.counts.len())
            .map(|i| self.lo + (i as f32 + 0.5) * width)
            .collect()
    }
}

/// Per-layer summary of an activation-density profile (used by the Fig. 4
/// reproduction: mean, std, min and max density for each layer).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesSummary {
    /// Mean of the observations.
    pub mean: f32,
    /// Standard deviation of the observations.
    pub std: f32,
    /// Minimum observation.
    pub min: f32,
    /// Maximum observation.
    pub max: f32,
}

impl SeriesSummary {
    /// Summarises a slice of observations.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] on an empty slice.
    pub fn from_slice(xs: &[f32]) -> Result<Self> {
        if xs.is_empty() {
            return Err(TensorError::Empty {
                op: "SeriesSummary::from_slice",
            });
        }
        Ok(SeriesSummary {
            mean: mean(xs),
            std: std_dev(xs),
            min: min(xs),
            max: max(xs),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-6);
        assert!((variance(&xs) - 4.0).abs() < 1e-6);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-6);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((quantile(&xs, 0.0).unwrap() - 1.0).abs() < 1e-6);
        assert!((quantile(&xs, 1.0).unwrap() - 4.0).abs() < 1e-6);
        assert!((quantile(&xs, 0.5).unwrap() - 2.5).abs() < 1e-6);
        assert!(quantile(&[], 0.5).is_err());
        assert!(quantile(&xs, 1.5).is_err());
    }

    #[test]
    fn magnitude_threshold_keeps_expected_fraction() {
        let xs: Vec<f32> = (1..=100)
            .map(|i| i as f32 * if i % 2 == 0 { -1.0 } else { 1.0 })
            .collect();
        let t = magnitude_threshold_for_density(&xs, 0.25).unwrap();
        let kept = xs.iter().filter(|x| x.abs() > t).count();
        // roughly 25 of 100 values should exceed the threshold
        assert!((20..=30).contains(&kept), "kept={kept}, t={t}");
    }

    #[test]
    fn histogram_counts_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.extend_from_slice(&[0.5, 1.5, 9.9, 10.0, -1.0]);
        assert_eq!(h.total(), 5);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 1);
        assert_eq!(h.counts()[9], 1);
        let d = h.densities();
        assert!((d.iter().sum::<f64>() - 0.6).abs() < 1e-9);
        assert_eq!(h.bin_centers().len(), 10);
        assert!((h.bin_centers()[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn histogram_validates_parameters() {
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(2.0, 1.0, 4).is_err());
    }

    #[test]
    fn series_summary() {
        let s = SeriesSummary::from_slice(&[1.0, 2.0, 3.0]).unwrap();
        assert!((s.mean - 2.0).abs() < 1e-6);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!(SeriesSummary::from_slice(&[]).is_err());
    }
}
