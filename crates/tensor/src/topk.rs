//! Top-k selection utilities used by magnitude-based dynamic pruning.
//!
//! The paper's per-token thresholding strategy (Section 3.1) is exactly
//! "keep the top-K largest magnitude activations for each token"; these
//! helpers implement that selection plus threshold-based variants.

use crate::error::{Result, TensorError};

/// Returns the indices of the `k` largest elements of `scores` (by value, not
/// magnitude), in descending score order.
///
/// When `k >= scores.len()` all indices are returned. Ties are broken by
/// lower index first so the selection is deterministic.
///
/// # Example
///
/// ```
/// let idx = tensor::topk::top_k_indices(&[0.1, 3.0, 2.0], 2);
/// assert_eq!(idx, vec![1, 2]);
/// ```
pub fn top_k_indices(scores: &[f32], k: usize) -> Vec<usize> {
    let mut out = Vec::new();
    top_k_indices_into(scores, k, &mut out);
    out
}

/// Allocation-free [`top_k_indices`]: writes the selection into `out`
/// (cleared first; capacity is reused across calls). Selection and ordering
/// are identical to the allocating variant.
pub fn top_k_indices_into(scores: &[f32], k: usize, out: &mut Vec<usize>) {
    out.clear();
    let k = k.min(scores.len());
    if k == 0 {
        return;
    }
    out.extend(0..scores.len());
    // The index tiebreak makes the comparator a strict total order, so the
    // top-k *set* is unique: selecting the k best in O(n) and then sorting
    // only those k is allocation-free and produces exactly the same list a
    // full stable sort would.
    let cmp = |a: &usize, b: &usize| {
        scores[*b]
            .partial_cmp(&scores[*a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(b))
    };
    if k < out.len() {
        out.select_nth_unstable_by(k, cmp);
        out.truncate(k);
    }
    out.sort_unstable_by(cmp);
}

/// Returns the indices of the `k` elements with the largest *absolute* value.
///
/// This is the per-token top-K magnitude selection used by GLU pruning and
/// DIP (Eqs. 4, 7, 8 in the paper).
pub fn top_k_by_magnitude(values: &[f32], k: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut abs = Vec::new();
    top_k_by_magnitude_into(values, k, &mut abs, &mut out);
    out
}

/// Allocation-free [`top_k_by_magnitude`]: `abs_scratch` holds the
/// magnitude scores (reused across calls), `out` receives the selection.
pub fn top_k_by_magnitude_into(
    values: &[f32],
    k: usize,
    abs_scratch: &mut Vec<f32>,
    out: &mut Vec<usize>,
) {
    abs_scratch.clear();
    abs_scratch.extend(values.iter().map(|v| v.abs()));
    top_k_indices_into(abs_scratch, k, out);
}

/// Returns indices whose absolute value is strictly greater than `threshold`.
pub fn indices_above_threshold(values: &[f32], threshold: f32) -> Vec<usize> {
    let mut out = Vec::new();
    indices_above_threshold_into(values, threshold, &mut out);
    out
}

/// Allocation-free [`indices_above_threshold`] into a reused buffer.
pub fn indices_above_threshold_into(values: &[f32], threshold: f32, out: &mut Vec<usize>) {
    out.clear();
    out.extend(
        values
            .iter()
            .enumerate()
            .filter(|(_, v)| v.abs() > threshold)
            .map(|(i, _)| i),
    );
}

/// Computes the number of elements to keep for a target *density*
/// (fraction of elements retained), rounding to the nearest integer and
/// clamping to `[0, len]`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidParameter`] if `density` is not finite or
/// lies outside `[0, 1]`.
pub fn count_for_density(len: usize, density: f32) -> Result<usize> {
    if !density.is_finite() || !(0.0..=1.0).contains(&density) {
        return Err(TensorError::InvalidParameter {
            name: "density",
            reason: format!("must be in [0, 1], got {density}"),
        });
    }
    Ok(((len as f64) * (density as f64)).round() as usize)
}

/// Selects the top-`density` fraction of elements by magnitude.
///
/// # Errors
///
/// Propagates the density validation error from [`count_for_density`].
pub fn top_density_by_magnitude(values: &[f32], density: f32) -> Result<Vec<usize>> {
    let k = count_for_density(values.len(), density)?;
    Ok(top_k_by_magnitude(values, k))
}

/// Returns the magnitude of the `k`-th largest |value| (the per-token
/// threshold that [`top_k_by_magnitude`] implicitly applies). Returns 0 when
/// `k == 0` or the input is empty; returns `-inf` when `k > len` so that all
/// elements pass.
pub fn kth_magnitude(values: &[f32], k: usize) -> f32 {
    if k == 0 || values.is_empty() {
        return 0.0;
    }
    if k > values.len() {
        return f32::NEG_INFINITY;
    }
    let mut mags: Vec<f32> = values.iter().map(|v| v.abs()).collect();
    mags.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    mags[k - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_indices_orders_by_score() {
        let idx = top_k_indices(&[0.5, 2.0, 1.0, 3.0], 3);
        assert_eq!(idx, vec![3, 1, 2]);
    }

    #[test]
    fn top_k_handles_edge_cases() {
        assert!(top_k_indices(&[], 3).is_empty());
        assert!(top_k_indices(&[1.0, 2.0], 0).is_empty());
        assert_eq!(top_k_indices(&[1.0, 2.0], 10), vec![1, 0]);
    }

    #[test]
    fn ties_break_by_lower_index() {
        let idx = top_k_indices(&[1.0, 1.0, 1.0], 2);
        assert_eq!(idx, vec![0, 1]);
    }

    #[test]
    fn magnitude_selection_uses_abs() {
        let idx = top_k_by_magnitude(&[-5.0, 1.0, 3.0], 2);
        assert_eq!(idx, vec![0, 2]);
    }

    #[test]
    fn threshold_selection() {
        let idx = indices_above_threshold(&[-0.5, 0.2, 1.5, -2.0], 0.4);
        assert_eq!(idx, vec![0, 2, 3]);
    }

    #[test]
    fn count_for_density_rounds_and_validates() {
        assert_eq!(count_for_density(10, 0.5).unwrap(), 5);
        assert_eq!(count_for_density(3, 0.5).unwrap(), 2);
        assert_eq!(count_for_density(10, 0.0).unwrap(), 0);
        assert_eq!(count_for_density(10, 1.0).unwrap(), 10);
        assert!(count_for_density(10, 1.5).is_err());
        assert!(count_for_density(10, -0.1).is_err());
        assert!(count_for_density(10, f32::NAN).is_err());
    }

    #[test]
    fn top_density_selects_expected_fraction() {
        let v: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let idx = top_density_by_magnitude(&v, 0.25).unwrap();
        assert_eq!(idx.len(), 25);
        assert!(idx.contains(&99));
        assert!(!idx.contains(&0));
    }

    #[test]
    fn kth_magnitude_matches_selection_boundary() {
        let v = [0.1, -0.9, 0.5, 0.3];
        assert!((kth_magnitude(&v, 2) - 0.5).abs() < 1e-6);
        assert_eq!(kth_magnitude(&v, 0), 0.0);
        assert_eq!(kth_magnitude(&v, 10), f32::NEG_INFINITY);
        assert_eq!(kth_magnitude(&[], 3), 0.0);
    }
}
