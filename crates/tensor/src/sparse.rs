//! Column masks and index-set helpers shared by the sparsity and caching code.

use crate::error::{Result, TensorError};
use serde::{Deserialize, Serialize};

/// A boolean mask over the columns (equivalently, neurons) of a weight matrix.
///
/// Dynamic sparsity methods produce one of these per token and per layer; the
/// hardware simulator consumes the same masks to decide which neurons must be
/// resident in DRAM.
///
/// # Example
///
/// ```
/// use tensor::ColumnMask;
/// let mask = ColumnMask::from_active_indices(4, &[1, 3]).unwrap();
/// assert_eq!(mask.active_count(), 2);
/// assert!(mask.is_active(3));
/// assert!(!mask.is_active(0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnMask {
    bits: Vec<bool>,
}

impl ColumnMask {
    /// Creates a mask with all columns inactive.
    pub fn all_inactive(len: usize) -> Self {
        ColumnMask {
            bits: vec![false; len],
        }
    }

    /// Creates a mask with all columns active (dense computation).
    pub fn all_active(len: usize) -> Self {
        ColumnMask {
            bits: vec![true; len],
        }
    }

    /// Creates a mask of length `len` with exactly the listed indices active.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if any index is `>= len`.
    pub fn from_active_indices(len: usize, active: &[usize]) -> Result<Self> {
        let mut bits = vec![false; len];
        for &i in active {
            if i >= len {
                return Err(TensorError::IndexOutOfBounds { index: i, len });
            }
            bits[i] = true;
        }
        Ok(ColumnMask { bits })
    }

    /// Creates a mask directly from a boolean vector.
    pub fn from_bits(bits: Vec<bool>) -> Self {
        ColumnMask { bits }
    }

    /// Mask length (number of columns).
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the mask covers zero columns.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Whether column `i` is active. Out-of-range indices count as inactive.
    pub fn is_active(&self, i: usize) -> bool {
        self.bits.get(i).copied().unwrap_or(false)
    }

    /// Marks column `i` active.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `i >= len`.
    pub fn activate(&mut self, i: usize) -> Result<()> {
        if i >= self.bits.len() {
            return Err(TensorError::IndexOutOfBounds {
                index: i,
                len: self.bits.len(),
            });
        }
        self.bits[i] = true;
        Ok(())
    }

    /// Marks column `i` inactive.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `i >= len`.
    pub fn deactivate(&mut self, i: usize) -> Result<()> {
        if i >= self.bits.len() {
            return Err(TensorError::IndexOutOfBounds {
                index: i,
                len: self.bits.len(),
            });
        }
        self.bits[i] = false;
        Ok(())
    }

    /// Number of active columns.
    pub fn active_count(&self) -> usize {
        self.bits.iter().filter(|b| **b).count()
    }

    /// Fraction of active columns (density). Returns 1.0 for an empty mask so
    /// that an "empty layer" is treated as fully dense by accounting code.
    pub fn density(&self) -> f32 {
        if self.bits.is_empty() {
            return 1.0;
        }
        self.active_count() as f32 / self.bits.len() as f32
    }

    /// Indices of the active columns, ascending.
    pub fn active_indices(&self) -> Vec<usize> {
        self.bits
            .iter()
            .enumerate()
            .filter(|(_, b)| **b)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of the inactive columns, ascending.
    pub fn inactive_indices(&self) -> Vec<usize> {
        self.bits
            .iter()
            .enumerate()
            .filter(|(_, b)| !**b)
            .map(|(i, _)| i)
            .collect()
    }

    /// Element-wise logical AND with another mask.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the lengths differ.
    pub fn and(&self, other: &ColumnMask) -> Result<ColumnMask> {
        if self.len() != other.len() {
            return Err(TensorError::ShapeMismatch {
                op: "ColumnMask::and",
                expected: (self.len(), 1),
                found: (other.len(), 1),
            });
        }
        Ok(ColumnMask {
            bits: self
                .bits
                .iter()
                .zip(other.bits.iter())
                .map(|(a, b)| *a && *b)
                .collect(),
        })
    }

    /// Element-wise logical OR with another mask.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the lengths differ.
    pub fn or(&self, other: &ColumnMask) -> Result<ColumnMask> {
        if self.len() != other.len() {
            return Err(TensorError::ShapeMismatch {
                op: "ColumnMask::or",
                expected: (self.len(), 1),
                found: (other.len(), 1),
            });
        }
        Ok(ColumnMask {
            bits: self
                .bits
                .iter()
                .zip(other.bits.iter())
                .map(|(a, b)| *a || *b)
                .collect(),
        })
    }

    /// Number of columns active in `self` but not in `other` (set difference
    /// size). Used to count cache misses: "required but not cached".
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the lengths differ.
    pub fn count_not_in(&self, other: &ColumnMask) -> Result<usize> {
        if self.len() != other.len() {
            return Err(TensorError::ShapeMismatch {
                op: "ColumnMask::count_not_in",
                expected: (self.len(), 1),
                found: (other.len(), 1),
            });
        }
        Ok(self
            .bits
            .iter()
            .zip(other.bits.iter())
            .filter(|(a, b)| **a && !**b)
            .count())
    }

    /// Overlap (Jaccard similarity) with another mask; 1.0 when both are empty.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the lengths differ.
    pub fn jaccard(&self, other: &ColumnMask) -> Result<f32> {
        let inter = self.and(other)?.active_count();
        let union = self.or(other)?.active_count();
        if union == 0 {
            return Ok(1.0);
        }
        Ok(inter as f32 / union as f32)
    }

    /// Applies the mask to a vector, zeroing inactive entries.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `x.len() != len`.
    pub fn apply(&self, x: &[f32]) -> Result<Vec<f32>> {
        if x.len() != self.len() {
            return Err(TensorError::ShapeMismatch {
                op: "ColumnMask::apply",
                expected: (self.len(), 1),
                found: (x.len(), 1),
            });
        }
        Ok(x.iter()
            .zip(self.bits.iter())
            .map(|(v, b)| if *b { *v } else { 0.0 })
            .collect())
    }

    /// Returns the underlying boolean slice.
    pub fn as_bits(&self) -> &[bool] {
        &self.bits
    }
}

impl FromIterator<bool> for ColumnMask {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        ColumnMask {
            bits: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_counts() {
        let m = ColumnMask::from_active_indices(5, &[0, 2, 4]).unwrap();
        assert_eq!(m.len(), 5);
        assert_eq!(m.active_count(), 3);
        assert!((m.density() - 0.6).abs() < 1e-6);
        assert_eq!(m.active_indices(), vec![0, 2, 4]);
        assert_eq!(m.inactive_indices(), vec![1, 3]);
        assert!(ColumnMask::from_active_indices(3, &[3]).is_err());
    }

    #[test]
    fn all_active_inactive() {
        assert_eq!(ColumnMask::all_active(4).active_count(), 4);
        assert_eq!(ColumnMask::all_inactive(4).active_count(), 0);
        assert!((ColumnMask::all_inactive(0).density() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn activate_deactivate() {
        let mut m = ColumnMask::all_inactive(3);
        m.activate(1).unwrap();
        assert!(m.is_active(1));
        m.deactivate(1).unwrap();
        assert!(!m.is_active(1));
        assert!(m.activate(3).is_err());
        assert!(m.deactivate(3).is_err());
        assert!(!m.is_active(99));
    }

    #[test]
    fn boolean_algebra() {
        let a = ColumnMask::from_active_indices(4, &[0, 1]).unwrap();
        let b = ColumnMask::from_active_indices(4, &[1, 2]).unwrap();
        assert_eq!(a.and(&b).unwrap().active_indices(), vec![1]);
        assert_eq!(a.or(&b).unwrap().active_indices(), vec![0, 1, 2]);
        assert_eq!(a.count_not_in(&b).unwrap(), 1);
        assert!((a.jaccard(&b).unwrap() - 1.0 / 3.0).abs() < 1e-6);
        let c = ColumnMask::all_inactive(2);
        assert!(a.and(&c).is_err());
    }

    #[test]
    fn jaccard_of_empty_masks_is_one() {
        let a = ColumnMask::all_inactive(3);
        assert!((a.jaccard(&a).unwrap() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn apply_zeroes_inactive_entries() {
        let m = ColumnMask::from_active_indices(3, &[1]).unwrap();
        assert_eq!(m.apply(&[1.0, 2.0, 3.0]).unwrap(), vec![0.0, 2.0, 0.0]);
        assert!(m.apply(&[1.0]).is_err());
    }

    #[test]
    fn from_iterator() {
        let m: ColumnMask = vec![true, false, true].into_iter().collect();
        assert_eq!(m.active_indices(), vec![0, 2]);
    }
}
