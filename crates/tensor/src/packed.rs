//! Packed-panel weight layout and the register-blocked microkernel family.
//!
//! # Panel layout
//!
//! [`PackedMatrix::pack`] reorders a row-major weight matrix `W` (`rows ×
//! cols`) into panels of [`MR`] = 8 consecutive output rows:
//!
//! ```text
//! data[(p * cols + c) * MR + l] = W[p * MR + l][c]      (0 ≤ l < MR)
//! ```
//!
//! A microkernel walking one panel with ascending `c` therefore reads the
//! buffer **fully sequentially** while keeping `MR` output accumulators in
//! registers: each output element is loaded and stored exactly once per
//! call, instead of once per column quad as in the mirrored axpy kernels.
//! The final panel is zero-padded (padding lanes compute `±0.0`
//! contributions into accumulators that are never stored).
//!
//! # Parity discipline
//!
//! Every kernel here obeys the workspace-wide rule: blocking and register
//! tiling only ever span *independent outputs*; each output's reduction
//! runs in exactly the naive order (ascending columns for dense kernels,
//! active-list order with the exact-zero skip for the sparse ones). The
//! accumulator-tile shape (how many panels × how many RHS vectors are in
//! flight) is therefore free to vary per [`crate::kernels::KernelArch`]
//! without changing a single output bit — `kernel_parity.rs` pins this
//! against [`crate::reference`] for every dispatch choice.
//!
//! The architecture-specialised variants are the *same* generic Rust
//! bodies compiled under `#[target_feature(enable = "avx2")]`; no FMA
//! intrinsics are used anywhere (a fused multiply-add rounds once where
//! the scalar reference rounds twice, which would break bitwise parity).

use crate::error::Result;
use crate::kernels::{kernel_arch, KernelArch};
use crate::matrix::Matrix;

/// Panel height: every packed matrix interleaves groups of `MR` output
/// rows. Fixed across architectures so any dispatch choice can consume any
/// packed buffer (wider kernels process several consecutive panels).
pub const MR: usize = 8;

/// A weight matrix packed into cache-friendly `MR`-row panels (see the
/// module docs for the exact layout).
#[derive(Debug, Clone, PartialEq)]
pub struct PackedMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl PackedMatrix {
    /// Packs a row-major matrix into `MR`-row panels (the one expensive
    /// step; packed buffers are built once per weight matrix and reused).
    pub fn pack(w: &Matrix) -> PackedMatrix {
        let (rows, cols) = w.shape();
        let panels = rows.div_ceil(MR);
        let mut data = vec![0.0f32; panels * cols * MR];
        let src = w.as_slice();
        for p in 0..panels {
            let panel = &mut data[p * cols * MR..(p + 1) * cols * MR];
            for l in 0..MR {
                let r = p * MR + l;
                if r >= rows {
                    break;
                }
                let row = &src[r * cols..(r + 1) * cols];
                for (c, &v) in row.iter().enumerate() {
                    panel[c * MR + l] = v;
                }
            }
        }
        PackedMatrix { rows, cols, data }
    }

    /// Rows of the original (unpacked) matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of the original (unpacked) matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of `MR`-row panels (including the zero-padded tail panel).
    pub fn panels(&self) -> usize {
        self.rows.div_ceil(MR)
    }

    /// Bytes of packed storage (telemetry / memory accounting).
    pub fn packed_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

/// A weight matrix's complete mirror set: the pre-transposed copy (used by
/// the historical mirrored kernels and by transpose-consuming callers) plus
/// the packed panels the register-blocked microkernels run on.
///
/// Built once per weight matrix by `lm::scratch::ModelMirrors` and
/// revalidated by fingerprint; see there for the staleness rules.
#[derive(Debug, Clone)]
pub struct WeightMirror {
    /// `W^T`, row-major (`cols × rows`).
    pub transposed: Matrix,
    /// `W` packed into `MR`-row panels.
    pub packed: PackedMatrix,
}

impl WeightMirror {
    /// Builds both mirrors of a weight matrix.
    pub fn build(w: &Matrix) -> WeightMirror {
        WeightMirror {
            transposed: w.transpose(),
            packed: PackedMatrix::pack(w),
        }
    }
}

/// The hook through which quantized packed weights (the `quant` crate's
/// fused dequant-matvec panels) plug into higher layers without a
/// dependency cycle: `lm`'s MLP block holds `Arc<dyn QuantMatvec>` and
/// routes its kernels through it, so every sparsity strategy's column
/// selections ride the fused panels unchanged.
///
/// Implementations must be bitwise identical to materialising the
/// dequantized `f32` matrix and running [`crate::reference`]'s loops on it
/// (same per-output accumulation order, same exact-zero skip rules).
pub trait QuantMatvec: std::fmt::Debug + Send + Sync {
    /// `(rows, cols)` of the logical (dequantized) matrix.
    fn shape(&self) -> (usize, usize);

    /// Dense fused dequant-matvec; bitwise identical to
    /// [`crate::reference::matvec_into`] on the materialised matrix.
    ///
    /// # Errors
    ///
    /// Shape errors exactly like [`Matrix::matvec_into`].
    fn matvec_into(&self, x: &[f32], out: &mut [f32]) -> Result<()>;

    /// Column-sparse fused dequant-matvec (active-list order, exact-zero
    /// skip); bitwise identical to [`crate::reference::matvec_cols_into`]
    /// on the materialised matrix.
    ///
    /// # Errors
    ///
    /// Shape/index errors exactly like [`Matrix::matvec_cols_into`].
    fn matvec_cols_into(&self, x: &[f32], active_cols: &[usize], out: &mut [f32]) -> Result<()>;

    /// Batched dense fused dequant-matvec over `k` stacked RHS vectors.
    ///
    /// # Errors
    ///
    /// Shape errors exactly like [`Matrix::matvec_batch_into`].
    fn matvec_batch_into(&self, xs: &[f32], k: usize, out: &mut [f32]) -> Result<()>;

    /// Batched column-sparse fused dequant-matvec (CSR per-row lists).
    ///
    /// # Errors
    ///
    /// Shape/index errors exactly like [`Matrix::matvec_cols_batch_into`].
    fn matvec_cols_batch_into(
        &self,
        xs: &[f32],
        k: usize,
        indices: &[usize],
        offsets: &[usize],
        out: &mut [f32],
    ) -> Result<()>;

    /// Microkernel name for telemetry (e.g. `"fused_int4"`).
    fn kernel_name(&self) -> &'static str;
}

// ---------------------------------------------------------------------------
// Generic microkernel bodies.
//
// Everything below is `#[inline(always)]` so the `#[target_feature]`
// wrappers at the bottom re-compile the same source under wider instruction
// sets. `NP` = panels (of MR outputs each) per accumulator tile; `NR` = RHS
// vectors per tile. Results are independent of both (independent outputs).
// ---------------------------------------------------------------------------

/// One dense tile: `NP` consecutive panels against one RHS. `out` holds the
/// valid output rows of the tile (`≤ NP * MR`; the zero-padded tail lanes
/// are computed but never stored).
#[inline(always)]
fn matvec_tile<const NP: usize>(panels: &[f32], cols: usize, x: &[f32], out: &mut [f32]) {
    let mut acc = [[0.0f32; MR]; NP];
    for (c, &xv) in x.iter().enumerate() {
        for p in 0..NP {
            let w = &panels[(p * cols + c) * MR..(p * cols + c) * MR + MR];
            for l in 0..MR {
                acc[p][l] += w[l] * xv;
            }
        }
    }
    for (p, chunk) in out.chunks_mut(MR).enumerate() {
        chunk.copy_from_slice(&acc[p][..chunk.len()]);
    }
}

#[inline(always)]
fn matvec_impl<const NP: usize>(pm: &PackedMatrix, x: &[f32], out: &mut [f32]) {
    let cols = pm.cols;
    let panel_len = cols * MR;
    let panels = pm.panels();
    let mut p = 0usize;
    while p + NP <= panels {
        let lo = p * MR;
        let hi = ((p + NP) * MR).min(pm.rows);
        matvec_tile::<NP>(
            &pm.data[p * panel_len..(p + NP) * panel_len],
            cols,
            x,
            &mut out[lo..hi],
        );
        p += NP;
    }
    while p < panels {
        let lo = p * MR;
        let hi = ((p + 1) * MR).min(pm.rows);
        matvec_tile::<1>(
            &pm.data[p * panel_len..(p + 1) * panel_len],
            cols,
            x,
            &mut out[lo..hi],
        );
        p += 1;
    }
}

/// One column-sparse tile: like [`matvec_tile`] but walking the active list
/// in order with the exact-zero skip (the reference sparse order).
#[inline(always)]
fn matvec_cols_tile<const NP: usize>(
    panels: &[f32],
    cols: usize,
    x: &[f32],
    active: &[usize],
    out: &mut [f32],
) {
    let mut acc = [[0.0f32; MR]; NP];
    for &c in active {
        let xv = x[c];
        if xv == 0.0 {
            continue;
        }
        for p in 0..NP {
            let w = &panels[(p * cols + c) * MR..(p * cols + c) * MR + MR];
            for l in 0..MR {
                acc[p][l] += w[l] * xv;
            }
        }
    }
    for (p, chunk) in out.chunks_mut(MR).enumerate() {
        chunk.copy_from_slice(&acc[p][..chunk.len()]);
    }
}

#[inline(always)]
fn matvec_cols_impl<const NP: usize>(
    pm: &PackedMatrix,
    x: &[f32],
    active: &[usize],
    out: &mut [f32],
) {
    let cols = pm.cols;
    let panel_len = cols * MR;
    let panels = pm.panels();
    let mut p = 0usize;
    while p + NP <= panels {
        let lo = p * MR;
        let hi = ((p + NP) * MR).min(pm.rows);
        matvec_cols_tile::<NP>(
            &pm.data[p * panel_len..(p + NP) * panel_len],
            cols,
            x,
            active,
            &mut out[lo..hi],
        );
        p += NP;
    }
    while p < panels {
        let lo = p * MR;
        let hi = ((p + 1) * MR).min(pm.rows);
        matvec_cols_tile::<1>(
            &pm.data[p * panel_len..(p + 1) * panel_len],
            cols,
            x,
            active,
            &mut out[lo..hi],
        );
        p += 1;
    }
}

/// One batched tile: `NP` panels × `NR` RHS vectors of accumulators. The
/// panel band stays L1-resident while every RHS group streams over it
/// (panel-outer looping in [`matvec_batch_impl`]), and each `(output, rhs)`
/// accumulation still runs ascending columns — the naive dot order.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn matvec_batch_tile<const NP: usize, const NR: usize>(
    panels: &[f32],
    cols: usize,
    xs: &[f32],
    s0: usize,
    rows: usize,
    lo: usize,
    valid: usize,
    out: &mut [f32],
) {
    let mut acc = [[[0.0f32; MR]; NP]; NR];
    for c in 0..cols {
        let mut w = [[0.0f32; MR]; NP];
        for p in 0..NP {
            w[p].copy_from_slice(&panels[(p * cols + c) * MR..(p * cols + c) * MR + MR]);
        }
        for s in 0..NR {
            let xv = xs[(s0 + s) * cols + c];
            for p in 0..NP {
                for l in 0..MR {
                    acc[s][p][l] += w[p][l] * xv;
                }
            }
        }
    }
    for s in 0..NR {
        let dst = &mut out[(s0 + s) * rows + lo..(s0 + s) * rows + lo + valid];
        for (p, chunk) in dst.chunks_mut(MR).enumerate() {
            chunk.copy_from_slice(&acc[s][p][..chunk.len()]);
        }
    }
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn matvec_batch_panel_group<const NP: usize>(
    panels: &[f32],
    cols: usize,
    xs: &[f32],
    k: usize,
    rows: usize,
    lo: usize,
    valid: usize,
    out: &mut [f32],
) {
    let mut s0 = 0usize;
    while s0 + 4 <= k {
        matvec_batch_tile::<NP, 4>(panels, cols, xs, s0, rows, lo, valid, out);
        s0 += 4;
    }
    if s0 + 2 <= k {
        matvec_batch_tile::<NP, 2>(panels, cols, xs, s0, rows, lo, valid, out);
        s0 += 2;
    }
    if s0 < k {
        matvec_batch_tile::<NP, 1>(panels, cols, xs, s0, rows, lo, valid, out);
    }
}

#[inline(always)]
fn matvec_batch_impl<const NP: usize>(pm: &PackedMatrix, xs: &[f32], k: usize, out: &mut [f32]) {
    let cols = pm.cols;
    let rows = pm.rows;
    let panel_len = cols * MR;
    let panels = pm.panels();
    let mut p = 0usize;
    while p + NP <= panels {
        let lo = p * MR;
        let valid = (((p + NP) * MR).min(rows)) - lo;
        matvec_batch_panel_group::<NP>(
            &pm.data[p * panel_len..(p + NP) * panel_len],
            cols,
            xs,
            k,
            rows,
            lo,
            valid,
            out,
        );
        p += NP;
    }
    while p < panels {
        let lo = p * MR;
        let valid = (((p + 1) * MR).min(rows)) - lo;
        matvec_batch_panel_group::<1>(
            &pm.data[p * panel_len..(p + 1) * panel_len],
            cols,
            xs,
            k,
            rows,
            lo,
            valid,
            out,
        );
        p += 1;
    }
}

/// Register-tiled matmul microkernel: an `NR`-column accumulator tile of
/// one output row is held in registers across the full ascending-`k` loop
/// (with the historical zero-skip on the left operand), so each output
/// element is stored exactly once. The right operand's row-major layout
/// already *is* the panel layout this access pattern wants — `b[k][j..j+NR]`
/// is contiguous — so no explicit packing pass is needed.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn matmul_impl<const NR: usize>(
    a: &[f32],
    m: usize,
    kk: usize,
    b: &[f32],
    n: usize,
    out: &mut [f32],
) {
    for i in 0..m {
        let a_row = &a[i * kk..(i + 1) * kk];
        let out_row = &mut out[i * n..(i + 1) * n];
        let mut j = 0usize;
        while j + NR <= n {
            let mut acc = [0.0f32; NR];
            for (ko, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b_chunk = &b[ko * n + j..ko * n + j + NR];
                for t in 0..NR {
                    acc[t] += av * b_chunk[t];
                }
            }
            out_row[j..j + NR].copy_from_slice(&acc);
            j += NR;
        }
        if j < n {
            let rem = n - j;
            let mut acc = [0.0f32; NR];
            for (ko, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b_chunk = &b[ko * n + j..ko * n + j + rem];
                for (t, &bv) in b_chunk.iter().enumerate() {
                    acc[t] += av * bv;
                }
            }
            out_row[j..].copy_from_slice(&acc[..rem]);
        }
    }
}

// ---------------------------------------------------------------------------
// Architecture-specialised wrappers + dispatch.
// ---------------------------------------------------------------------------

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
mod avx2 {
    //! The same generic bodies compiled under AVX2 with wider accumulator
    //! tiles. Safety: callers reach these only through [`super::kernel_arch`]
    //! returning [`KernelArch::Avx2`], which requires
    //! `is_x86_feature_detected!("avx2")`.
    use super::*;

    #[target_feature(enable = "avx2")]
    pub unsafe fn matvec(pm: &PackedMatrix, x: &[f32], out: &mut [f32]) {
        matvec_impl::<8>(pm, x, out);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn matvec_cols(pm: &PackedMatrix, x: &[f32], active: &[usize], out: &mut [f32]) {
        matvec_cols_impl::<8>(pm, x, active, out);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn matvec_batch(pm: &PackedMatrix, xs: &[f32], k: usize, out: &mut [f32]) {
        matvec_batch_impl::<2>(pm, xs, k, out);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn matmul(a: &[f32], m: usize, kk: usize, b: &[f32], n: usize, out: &mut [f32]) {
        matmul_impl::<16>(a, m, kk, b, n, out);
    }
}

pub(crate) fn matvec_dispatch(pm: &PackedMatrix, x: &[f32], out: &mut [f32]) {
    match kernel_arch() {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        // SAFETY: `kernel_arch` only returns `Avx2` when the host supports it.
        KernelArch::Avx2 => unsafe { avx2::matvec(pm, x, out) },
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        KernelArch::Avx2 => matvec_impl::<4>(pm, x, out),
        KernelArch::Portable => matvec_impl::<4>(pm, x, out),
    }
}

pub(crate) fn matvec_cols_dispatch(
    pm: &PackedMatrix,
    x: &[f32],
    active: &[usize],
    out: &mut [f32],
) {
    match kernel_arch() {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        // SAFETY: `kernel_arch` only returns `Avx2` when the host supports it.
        KernelArch::Avx2 => unsafe { avx2::matvec_cols(pm, x, active, out) },
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        KernelArch::Avx2 => matvec_cols_impl::<4>(pm, x, active, out),
        KernelArch::Portable => matvec_cols_impl::<4>(pm, x, active, out),
    }
}

pub(crate) fn matvec_batch_dispatch(pm: &PackedMatrix, xs: &[f32], k: usize, out: &mut [f32]) {
    match kernel_arch() {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        // SAFETY: `kernel_arch` only returns `Avx2` when the host supports it.
        KernelArch::Avx2 => unsafe { avx2::matvec_batch(pm, xs, k, out) },
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        KernelArch::Avx2 => matvec_batch_impl::<1>(pm, xs, k, out),
        KernelArch::Portable => matvec_batch_impl::<1>(pm, xs, k, out),
    }
}

pub(crate) fn matmul_dispatch(
    a: &[f32],
    m: usize,
    kk: usize,
    b: &[f32],
    n: usize,
    out: &mut [f32],
) {
    match kernel_arch() {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        // SAFETY: `kernel_arch` only returns `Avx2` when the host supports it.
        KernelArch::Avx2 => unsafe { avx2::matmul(a, m, kk, b, n, out) },
        #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
        KernelArch::Avx2 => matmul_impl::<8>(a, m, kk, b, n, out),
        KernelArch::Portable => matmul_impl::<8>(a, m, kk, b, n, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(rows: usize, cols: usize) -> Matrix {
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| ((i * 37 + 11) % 23) as f32 - 11.0)
            .collect();
        Matrix::from_vec(rows, cols, data).unwrap()
    }

    #[test]
    fn pack_layout_round_trips() {
        let w = sample(11, 5); // non-multiple of MR → padded tail panel
        let pm = PackedMatrix::pack(&w);
        assert_eq!(pm.panels(), 2);
        assert_eq!((pm.rows(), pm.cols()), (11, 5));
        for r in 0..11 {
            for c in 0..5 {
                let (p, l) = (r / MR, r % MR);
                assert_eq!(pm.data[(p * 5 + c) * MR + l], w.get(r, c));
            }
        }
        // padding lanes are exactly zero
        for c in 0..5 {
            for l in 3..MR {
                assert_eq!(pm.data[(5 + c) * MR + l], 0.0);
            }
        }
        assert_eq!(pm.packed_bytes(), 2 * 5 * MR * 4);
    }

    #[test]
    fn weight_mirror_carries_both_layouts() {
        let w = sample(9, 4);
        let mw = WeightMirror::build(&w);
        assert_eq!(mw.transposed.shape(), (4, 9));
        assert_eq!((mw.packed.rows(), mw.packed.cols()), (9, 4));
    }
}
