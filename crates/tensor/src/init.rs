//! Random weight initialisation.
//!
//! Besides the standard Xavier/Kaiming style initialisers, this module
//! provides [`heavy_tailed_matrix`], which scales individual rows by a
//! log-normal factor. Matrices initialised this way produce GLU activation
//! magnitude distributions in which a small fraction of neurons fire orders
//! of magnitude more strongly than the rest — the property that the paper's
//! Fig. 10 (left) reports for Phi-3-Medium and that motivates DIP-CA's
//! re-weighting. This is the calibrated synthetic substitute for real
//! pretrained weights (see DESIGN.md §1).

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG used across the workspace so every experiment is
/// reproducible from a single seed.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Standard normal sample via Box–Muller (avoids a dependency on
/// `rand_distr`).
pub fn sample_standard_normal<R: Rng>(rng: &mut R) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// Fills a vector with i.i.d. normal samples of the given standard deviation.
pub fn normal_vec<R: Rng>(rng: &mut R, len: usize, std: f32) -> Vec<f32> {
    (0..len)
        .map(|_| sample_standard_normal(rng) * std)
        .collect()
}

/// Xavier/Glorot-style initialisation: `std = sqrt(2 / (fan_in + fan_out))`.
pub fn xavier_matrix<R: Rng>(rng: &mut R, rows: usize, cols: usize) -> Matrix {
    let std = (2.0 / (rows + cols) as f32).sqrt();
    let data = normal_vec(rng, rows * cols, std);
    Matrix::from_vec(rows, cols, data).expect("length matches by construction")
}

/// Xavier initialisation with per-row log-normal gain.
///
/// Each row `r` is scaled by `exp(sigma * z_r)` with `z_r ~ N(0, 1)`. With
/// `sigma` around 1.0–1.5 the resulting GLU activations reproduce the
/// "few neurons fire orders of magnitude stronger" behaviour from the paper.
pub fn heavy_tailed_matrix<R: Rng>(rng: &mut R, rows: usize, cols: usize, sigma: f32) -> Matrix {
    let mut m = xavier_matrix(rng, rows, cols);
    for r in 0..rows {
        let gain = (sigma * sample_standard_normal(rng)).exp();
        m.scale_row(r, gain).expect("row index in range");
    }
    m
}

/// Uniform initialisation in `[-limit, limit]`.
pub fn uniform_matrix<R: Rng>(rng: &mut R, rows: usize, cols: usize, limit: f32) -> Matrix {
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-limit..=limit))
        .collect();
    Matrix::from_vec(rows, cols, data).expect("length matches by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn rng_is_deterministic() {
        let a = normal_vec(&mut rng(42), 16, 1.0);
        let b = normal_vec(&mut rng(42), 16, 1.0);
        assert_eq!(a, b);
        let c = normal_vec(&mut rng(43), 16, 1.0);
        assert_ne!(a, c);
    }

    #[test]
    fn normal_samples_have_roughly_unit_variance() {
        let xs = normal_vec(&mut rng(7), 20_000, 1.0);
        assert!(stats::mean(&xs).abs() < 0.05);
        assert!((stats::variance(&xs) - 1.0).abs() < 0.1);
    }

    #[test]
    fn xavier_scale_shrinks_with_size() {
        let small = xavier_matrix(&mut rng(1), 8, 8);
        let large = xavier_matrix(&mut rng(1), 512, 512);
        assert!(small.mean_abs() > large.mean_abs());
    }

    #[test]
    fn heavy_tailed_rows_have_wider_magnitude_spread() {
        let mut r = rng(3);
        let plain = xavier_matrix(&mut r, 64, 64);
        let heavy = heavy_tailed_matrix(&mut r, 64, 64, 1.5);
        let row_norm = |m: &Matrix| -> Vec<f32> {
            (0..m.rows())
                .map(|i| m.row(i).unwrap().iter().map(|v| v * v).sum::<f32>().sqrt())
                .collect()
        };
        let spread = |v: &[f32]| stats::max(v) / stats::min(v).max(1e-9);
        assert!(spread(&row_norm(&heavy)) > spread(&row_norm(&plain)) * 2.0);
    }

    #[test]
    fn uniform_matrix_respects_limit() {
        let m = uniform_matrix(&mut rng(5), 10, 10, 0.25);
        assert!(m.as_slice().iter().all(|v| v.abs() <= 0.25));
    }
}
