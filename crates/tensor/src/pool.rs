//! A small persistent worker pool for deterministic data parallelism.
//!
//! The offline build has no crates.io access (so no `rayon`); this is a
//! std-only stand-in sized for the workspace's needs: fan a fixed number of
//! *index-addressed* tasks across a set of persistent threads, block the
//! caller until every task ran, and guarantee that results are
//! **bitwise-deterministic** — each task owns a disjoint slice of the
//! output, so which thread runs it (or in what order) can never change a
//! single floating-point operation. Reductions are never split across
//! tasks.
//!
//! The pool is created once ([`WorkerPool::global`]) and reused for the
//! lifetime of the process; per-call cost is one atomic handshake per
//! worker, no thread spawns and no heap allocation beyond one `Arc`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

/// One in-flight `run` call: the (lifetime-erased) task closure plus the
/// shared work-claiming and completion state.
struct Job {
    /// Type- and lifetime-erased `&(dyn Fn(usize) + Sync)`; valid until
    /// `done == n_tasks`, which `run` blocks on before returning.
    f: *const (dyn Fn(usize) + Sync),
    next: AtomicUsize,
    n_tasks: usize,
    done: Mutex<usize>,
    finished: Condvar,
    panicked: AtomicBool,
}

// SAFETY: the raw closure pointer is only dereferenced while the `run` call
// that created it is blocked waiting for `done == n_tasks`; the underlying
// closure is `Sync` so concurrent calls are allowed.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claims and runs task indices until none remain, then records this
    /// participant's completion.
    fn work(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n_tasks {
                break;
            }
            // SAFETY: see the `Send`/`Sync` justification above.
            let f = unsafe { &*self.f };
            if catch_unwind(AssertUnwindSafe(|| f(i))).is_err() {
                self.panicked.store(true, Ordering::Release);
            }
            let mut done = self.done.lock().expect("pool lock poisoned");
            *done += 1;
            if *done == self.n_tasks {
                self.finished.notify_all();
            }
        }
    }

    fn wait(&self) {
        let mut done = self.done.lock().expect("pool lock poisoned");
        while *done < self.n_tasks {
            done = self.finished.wait(done).expect("pool lock poisoned");
        }
    }
}

/// A persistent pool of worker threads executing index-addressed tasks.
pub struct WorkerPool {
    senders: Vec<Sender<Arc<Job>>>,
}

impl WorkerPool {
    /// Creates a pool with `workers` background threads (the calling thread
    /// always participates too, so `workers == 0` degrades to inline
    /// sequential execution).
    pub fn new(workers: usize) -> Self {
        let senders = (0..workers)
            .map(|i| {
                let (tx, rx) = channel::<Arc<Job>>();
                thread::Builder::new()
                    .name(format!("tensor-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job.work();
                        }
                    })
                    .expect("failed to spawn pool worker");
                tx
            })
            .collect();
        WorkerPool { senders }
    }

    /// The process-wide pool: one worker per available core beyond the
    /// caller's own.
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| {
            let cores = thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            WorkerPool::new(cores.saturating_sub(1))
        })
    }

    /// Total number of threads that participate in a `run` call (workers
    /// plus the caller).
    pub fn parallelism(&self) -> usize {
        self.senders.len() + 1
    }

    /// Runs `f(0), f(1), …, f(n_tasks - 1)` across the pool (tasks are
    /// claimed dynamically; the caller participates) and returns once every
    /// task completed.
    ///
    /// Tasks must write to disjoint data — under that contract the result
    /// is identical whatever the thread assignment, so parallel execution
    /// is bitwise-deterministic.
    ///
    /// # Panics
    ///
    /// Re-raises (as a panic in the calling thread) if any task panicked.
    pub fn run(&self, n_tasks: usize, f: impl Fn(usize) + Sync) {
        if n_tasks == 0 {
            return;
        }
        if self.senders.is_empty() || n_tasks == 1 {
            for i in 0..n_tasks {
                f(i);
            }
            return;
        }
        let erased: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: `run` blocks on `wait()` below until all tasks finished,
        // so the erased borrow outlives every dereference.
        let erased: *const (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(erased) };
        let job = Arc::new(Job {
            f: erased,
            next: AtomicUsize::new(0),
            n_tasks,
            done: Mutex::new(0),
            finished: Condvar::new(),
            panicked: AtomicBool::new(false),
        });
        for tx in &self.senders {
            // a worker that died takes its sender error silently; the
            // remaining participants (at least the caller) finish the job
            let _ = tx.send(Arc::clone(&job));
        }
        job.work();
        job.wait();
        assert!(
            !job.panicked.load(Ordering::Acquire),
            "a pool task panicked"
        );
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.senders.len())
            .finish()
    }
}

/// Splits `len` items into at most `max_chunks` contiguous ranges of at
/// least `min_chunk` items each (except possibly the last), returning the
/// chunk size. The split depends only on the arguments, never on thread
/// timing.
pub fn chunk_size(len: usize, max_chunks: usize, min_chunk: usize) -> usize {
    if len == 0 {
        return 1;
    }
    let chunks = max_chunks.max(1);
    len.div_ceil(chunks).max(min_chunk.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_every_task_exactly_once() {
        let pool = WorkerPool::new(3);
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        pool.run(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.parallelism(), 1);
        let mut seen = vec![false; 5];
        let cell = std::sync::Mutex::new(&mut seen);
        pool.run(5, |i| {
            cell.lock().unwrap()[i] = true;
        });
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn disjoint_writes_are_deterministic() {
        let pool = WorkerPool::new(2);
        let run_once = || {
            let mut out = vec![0.0f64; 1000];
            {
                // hand each task its chunk up front so writes are disjoint
                let chunks: Vec<Mutex<&mut [f64]>> = out.chunks_mut(100).map(Mutex::new).collect();
                pool.run(chunks.len(), |i| {
                    let mut chunk = chunks[i].lock().unwrap();
                    for (j, v) in chunk.iter_mut().enumerate() {
                        *v = ((i * 100 + j) as f64).sin();
                    }
                });
            }
            out
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    #[should_panic(expected = "pool task panicked")]
    fn worker_panic_propagates() {
        let pool = WorkerPool::new(2);
        pool.run(8, |i| {
            if i == 3 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn chunk_size_bounds() {
        assert_eq!(chunk_size(0, 4, 1), 1);
        assert_eq!(chunk_size(100, 4, 1), 25);
        assert_eq!(chunk_size(100, 4, 64), 64);
        assert_eq!(chunk_size(3, 8, 1), 1);
        assert_eq!(chunk_size(10, 0, 0), 10);
    }

    #[test]
    fn global_pool_is_usable() {
        let pool = WorkerPool::global();
        assert!(pool.parallelism() >= 1);
        let sum = AtomicUsize::new(0);
        pool.run(10, |i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }
}
