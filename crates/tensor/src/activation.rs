//! Non-linearities used by transformer MLP blocks.

use serde::{Deserialize, Serialize};

/// The element-wise non-linearity applied inside a GLU MLP.
///
/// The paper contrasts SwiGLU networks (SiLU gating, virtually no natural
/// sparsity) against ReLU-fied networks (high natural sparsity). The
/// [`Activation::Relu`] variant is used to build the "ReLU-fied" synthetic
/// models (analogue of TurboSparse-Mistral in Fig. 3 / Fig. 6).
///
/// # Example
///
/// ```
/// use tensor::Activation;
/// assert_eq!(Activation::Relu.apply_scalar(-1.0), 0.0);
/// assert_eq!(Activation::Identity.apply_scalar(-1.0), -1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Activation {
    /// Sigmoid-weighted linear unit `x * sigmoid(x)` (SwiGLU gating).
    #[default]
    Silu,
    /// Rectified linear unit `max(x, 0)`.
    Relu,
    /// Gaussian error linear unit (tanh approximation).
    Gelu,
    /// The identity function (no non-linearity).
    Identity,
}

impl Activation {
    /// Applies the non-linearity to a single scalar.
    #[inline]
    pub fn apply_scalar(self, x: f32) -> f32 {
        match self {
            Activation::Silu => x * sigmoid(x),
            Activation::Relu => x.max(0.0),
            Activation::Gelu => {
                // tanh approximation of GELU
                const SQRT_2_OVER_PI: f32 = 0.797_884_6;
                0.5 * x * (1.0 + (SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x)).tanh())
            }
            Activation::Identity => x,
        }
    }

    /// Applies the non-linearity element-wise in place.
    pub fn apply(self, xs: &mut [f32]) {
        for x in xs.iter_mut() {
            *x = self.apply_scalar(*x);
        }
    }

    /// Returns a new vector with the non-linearity applied element-wise.
    pub fn map(self, xs: &[f32]) -> Vec<f32> {
        xs.iter().map(|&x| self.apply_scalar(x)).collect()
    }

    /// Whether this non-linearity produces exact zeros for negative inputs.
    ///
    /// ReLU-activated LLMs exhibit *natural* activation sparsity precisely
    /// because of this property; SiLU/GELU do not.
    pub fn induces_natural_sparsity(self) -> bool {
        matches!(self, Activation::Relu)
    }
}

impl std::fmt::Display for Activation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Activation::Silu => "silu",
            Activation::Relu => "relu",
            Activation::Gelu => "gelu",
            Activation::Identity => "identity",
        };
        f.write_str(name)
    }
}

/// Numerically stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn silu_matches_reference_values() {
        // silu(0) = 0, silu(1) ~ 0.7311, silu(-1) ~ -0.2689
        assert_eq!(Activation::Silu.apply_scalar(0.0), 0.0);
        assert!((Activation::Silu.apply_scalar(1.0) - 0.731_058_6).abs() < 1e-5);
        assert!((Activation::Silu.apply_scalar(-1.0) + 0.268_941_4).abs() < 1e-5);
    }

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Activation::Relu.apply_scalar(-3.5), 0.0);
        assert_eq!(Activation::Relu.apply_scalar(2.0), 2.0);
    }

    #[test]
    fn gelu_reference_values() {
        assert!((Activation::Gelu.apply_scalar(0.0)).abs() < 1e-6);
        assert!((Activation::Gelu.apply_scalar(1.0) - 0.841_192).abs() < 1e-3);
        assert!(Activation::Gelu.apply_scalar(-10.0).abs() < 1e-3);
    }

    #[test]
    fn apply_in_place_matches_map() {
        let xs = vec![-2.0, -0.5, 0.0, 0.5, 2.0];
        for act in [
            Activation::Silu,
            Activation::Relu,
            Activation::Gelu,
            Activation::Identity,
        ] {
            let mapped = act.map(&xs);
            let mut in_place = xs.clone();
            act.apply(&mut in_place);
            assert_eq!(mapped, in_place);
        }
    }

    #[test]
    fn sigmoid_is_stable_for_large_inputs() {
        assert!((sigmoid(100.0) - 1.0).abs() < 1e-6);
        assert!(sigmoid(-100.0).abs() < 1e-6);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
    }

    #[test]
    fn only_relu_induces_natural_sparsity() {
        assert!(Activation::Relu.induces_natural_sparsity());
        assert!(!Activation::Silu.induces_natural_sparsity());
        assert!(!Activation::Gelu.induces_natural_sparsity());
        assert!(!Activation::Identity.induces_natural_sparsity());
    }

    #[test]
    fn display_names() {
        assert_eq!(Activation::Silu.to_string(), "silu");
        assert_eq!(Activation::Relu.to_string(), "relu");
    }
}
