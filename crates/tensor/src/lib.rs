//! Minimal dense / column-sparse linear algebra substrate.
//!
//! This crate provides the numerical kernels used by every other crate in the
//! `dynamic-sparsity` workspace:
//!
//! * [`Matrix`] — a row-major `f32` matrix with dense and **column-sparse**
//!   matrix–vector products (the core operation of LLM token generation),
//! * [`Vector`] helpers — dot products, softmax, norms,
//! * [`Activation`] — the non-linearities used by GLU MLPs (SiLU, ReLU, GELU),
//! * [`topk`] — per-token top-k selection used by magnitude pruning,
//! * [`stats`] — quantiles, histograms and calibration-set CDF thresholds,
//! * [`init`] — random weight initialisation, including the heavy-tailed
//!   initialisers used to mimic the GLU activation magnitude distribution
//!   reported in the paper (Fig. 10, left),
//! * [`pool`] — a persistent std-only worker pool for deterministic
//!   row-partitioned parallelism,
//! * [`mod@reference`] — the naive scalar kernels kept as bit-exact oracles
//!   for the optimised paths (see the kernel-design notes in [`matrix`]).
//!
//! # Example
//!
//! ```
//! use tensor::{Matrix, Activation};
//!
//! // A 2x3 matrix applied to a 3-vector.
//! let w = Matrix::from_rows(&[vec![1.0, 0.0, 2.0], vec![0.0, 1.0, -1.0]]).unwrap();
//! let x = vec![1.0, 2.0, 3.0];
//! let y = w.matvec(&x).unwrap();
//! assert_eq!(y, vec![7.0, -1.0]);
//! let a = Activation::Silu.apply_scalar(1.0);
//! assert!(a > 0.7 && a < 0.74);
//! ```

#![warn(missing_docs)]

pub mod activation;
pub mod error;
pub mod init;
pub mod kernels;
pub mod matrix;
pub mod packed;
pub mod pool;
pub mod reference;
pub mod sparse;
pub mod stats;
pub mod topk;
pub mod vector;

pub use activation::Activation;
pub use error::{Result, TensorError};
pub use matrix::Matrix;
pub use packed::{PackedMatrix, QuantMatvec, WeightMirror};
pub use pool::WorkerPool;
pub use sparse::ColumnMask;
pub use vector::Vector;
