//! Free functions over `&[f32]` vectors, grouped under the [`Vector`] namespace.

use crate::error::{Result, TensorError};

/// Namespace struct exposing vector helper functions.
///
/// All functions are associated functions (no state); the struct exists only
/// to group them under a single importable name.
///
/// # Example
///
/// ```
/// use tensor::Vector;
/// let p = Vector::softmax(&[1.0, 1.0]).unwrap();
/// assert!((p[0] - 0.5).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Vector;

impl Vector {
    /// Dot product of two equally sized vectors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the lengths differ.
    pub fn dot(a: &[f32], b: &[f32]) -> Result<f32> {
        if a.len() != b.len() {
            return Err(TensorError::ShapeMismatch {
                op: "dot",
                expected: (a.len(), 1),
                found: (b.len(), 1),
            });
        }
        Ok(a.iter().zip(b.iter()).map(|(x, y)| x * y).sum())
    }

    /// Element-wise product `a ⊙ b`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the lengths differ.
    pub fn hadamard(a: &[f32], b: &[f32]) -> Result<Vec<f32>> {
        if a.len() != b.len() {
            return Err(TensorError::ShapeMismatch {
                op: "hadamard",
                expected: (a.len(), 1),
                found: (b.len(), 1),
            });
        }
        Ok(a.iter().zip(b.iter()).map(|(x, y)| x * y).collect())
    }

    /// In-place `y += alpha * x`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the lengths differ.
    pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) -> Result<()> {
        if x.len() != y.len() {
            return Err(TensorError::ShapeMismatch {
                op: "axpy",
                expected: (y.len(), 1),
                found: (x.len(), 1),
            });
        }
        for (yi, xi) in y.iter_mut().zip(x.iter()) {
            *yi += alpha * xi;
        }
        Ok(())
    }

    /// Element-wise sum of two vectors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the lengths differ.
    pub fn add(a: &[f32], b: &[f32]) -> Result<Vec<f32>> {
        if a.len() != b.len() {
            return Err(TensorError::ShapeMismatch {
                op: "add",
                expected: (a.len(), 1),
                found: (b.len(), 1),
            });
        }
        Ok(a.iter().zip(b.iter()).map(|(x, y)| x + y).collect())
    }

    /// Element-wise difference `a - b`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the lengths differ.
    pub fn sub(a: &[f32], b: &[f32]) -> Result<Vec<f32>> {
        if a.len() != b.len() {
            return Err(TensorError::ShapeMismatch {
                op: "sub",
                expected: (a.len(), 1),
                found: (b.len(), 1),
            });
        }
        Ok(a.iter().zip(b.iter()).map(|(x, y)| x - y).collect())
    }

    /// Multiplies every element by `s` and returns the result.
    pub fn scale(a: &[f32], s: f32) -> Vec<f32> {
        a.iter().map(|x| x * s).collect()
    }

    /// Euclidean (L2) norm.
    pub fn norm_l2(a: &[f32]) -> f32 {
        a.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// L1 norm (sum of absolute values).
    pub fn norm_l1(a: &[f32]) -> f32 {
        a.iter().map(|x| x.abs()).sum()
    }

    /// Infinity norm (maximum absolute value), 0 for an empty slice.
    pub fn norm_inf(a: &[f32]) -> f32 {
        a.iter().fold(0.0f32, |m, x| m.max(x.abs()))
    }

    /// Mean value, 0 for an empty slice.
    pub fn mean(a: &[f32]) -> f32 {
        if a.is_empty() {
            0.0
        } else {
            a.iter().sum::<f32>() / a.len() as f32
        }
    }

    /// Index of the maximum element.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] on an empty slice.
    pub fn argmax(a: &[f32]) -> Result<usize> {
        if a.is_empty() {
            return Err(TensorError::Empty { op: "argmax" });
        }
        let mut best = 0;
        for (i, v) in a.iter().enumerate() {
            if *v > a[best] {
                best = i;
            }
        }
        Ok(best)
    }

    /// Numerically stable softmax.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] on an empty slice.
    pub fn softmax(a: &[f32]) -> Result<Vec<f32>> {
        let mut out = vec![0.0f32; a.len()];
        Self::softmax_into(a, &mut out)?;
        Ok(out)
    }

    /// Allocation-free [`Vector::softmax`] into a caller-owned buffer.
    /// Bitwise identical to the allocating variant.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] on an empty slice and
    /// [`TensorError::ShapeMismatch`] if the lengths differ.
    pub fn softmax_into(a: &[f32], out: &mut [f32]) -> Result<()> {
        if a.is_empty() {
            return Err(TensorError::Empty { op: "softmax" });
        }
        if a.len() != out.len() {
            return Err(TensorError::ShapeMismatch {
                op: "softmax",
                expected: (a.len(), 1),
                found: (out.len(), 1),
            });
        }
        let max = a.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
        for (o, &x) in out.iter_mut().zip(a.iter()) {
            *o = (x - max).exp();
        }
        let sum: f32 = out.iter().sum();
        for o in out.iter_mut() {
            *o /= sum;
        }
        Ok(())
    }

    /// Allocation-free [`Vector::log_softmax`] into a caller-owned buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] on an empty slice and
    /// [`TensorError::ShapeMismatch`] if the lengths differ.
    pub fn log_softmax_into(a: &[f32], out: &mut [f32]) -> Result<()> {
        if a.is_empty() {
            return Err(TensorError::Empty { op: "log_softmax" });
        }
        if a.len() != out.len() {
            return Err(TensorError::ShapeMismatch {
                op: "log_softmax",
                expected: (a.len(), 1),
                found: (out.len(), 1),
            });
        }
        let max = a.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
        let log_sum: f32 = a.iter().map(|x| (x - max).exp()).sum::<f32>().ln() + max;
        for (o, &x) in out.iter_mut().zip(a.iter()) {
            *o = x - log_sum;
        }
        Ok(())
    }

    /// Numerically stable log-softmax.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] on an empty slice.
    pub fn log_softmax(a: &[f32]) -> Result<Vec<f32>> {
        if a.is_empty() {
            return Err(TensorError::Empty { op: "log_softmax" });
        }
        let max = a.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
        let log_sum: f32 = a.iter().map(|x| (x - max).exp()).sum::<f32>().ln() + max;
        Ok(a.iter().map(|x| x - log_sum).collect())
    }

    /// Cross-entropy `-log p[target]` of a *log*-probability vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `target >= log_probs.len()`.
    pub fn nll(log_probs: &[f32], target: usize) -> Result<f32> {
        if target >= log_probs.len() {
            return Err(TensorError::IndexOutOfBounds {
                index: target,
                len: log_probs.len(),
            });
        }
        Ok(-log_probs[target])
    }

    /// KL divergence `KL(p || q)` between two probability vectors.
    ///
    /// Entries of `q` are floored at `1e-12` to keep the result finite.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the lengths differ.
    pub fn kl_divergence(p: &[f32], q: &[f32]) -> Result<f32> {
        if p.len() != q.len() {
            return Err(TensorError::ShapeMismatch {
                op: "kl_divergence",
                expected: (p.len(), 1),
                found: (q.len(), 1),
            });
        }
        let mut kl = 0.0f32;
        for (&pi, &qi) in p.iter().zip(q.iter()) {
            if pi > 0.0 {
                kl += pi * (pi / qi.max(1e-12)).ln();
            }
        }
        Ok(kl.max(0.0))
    }

    /// Cosine similarity between two vectors; 0 if either has zero norm.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the lengths differ.
    pub fn cosine_similarity(a: &[f32], b: &[f32]) -> Result<f32> {
        let dot = Self::dot(a, b)?;
        let na = Self::norm_l2(a);
        let nb = Self::norm_l2(b);
        if na == 0.0 || nb == 0.0 {
            return Ok(0.0);
        }
        Ok(dot / (na * nb))
    }

    /// Relative L2 error `||a - b|| / ||b||`; returns `||a||` when `b` is zero.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the lengths differ.
    pub fn relative_error(a: &[f32], b: &[f32]) -> Result<f32> {
        let diff = Self::sub(a, b)?;
        let nb = Self::norm_l2(b);
        let nd = Self::norm_l2(&diff);
        if nb == 0.0 {
            Ok(Self::norm_l2(a))
        } else {
            Ok(nd / nb)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_hadamard() {
        assert_eq!(Vector::dot(&[1.0, 2.0], &[3.0, 4.0]).unwrap(), 11.0);
        assert_eq!(
            Vector::hadamard(&[1.0, 2.0], &[3.0, 4.0]).unwrap(),
            vec![3.0, 8.0]
        );
        assert!(Vector::dot(&[1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        Vector::axpy(2.0, &[1.0, -1.0], &mut y).unwrap();
        assert_eq!(y, vec![3.0, -1.0]);
    }

    #[test]
    fn norms() {
        let v = [3.0, -4.0];
        assert!((Vector::norm_l2(&v) - 5.0).abs() < 1e-6);
        assert!((Vector::norm_l1(&v) - 7.0).abs() < 1e-6);
        assert!((Vector::norm_inf(&v) - 4.0).abs() < 1e-6);
        assert_eq!(Vector::norm_inf(&[]), 0.0);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let p = Vector::softmax(&[1000.0, 1000.0, 1000.0]).unwrap();
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(p.iter().all(|x| (x - 1.0 / 3.0).abs() < 1e-5));
        assert!(Vector::softmax(&[]).is_err());
    }

    #[test]
    fn log_softmax_matches_softmax() {
        let logits = [0.5, -1.0, 2.0, 0.0];
        let p = Vector::softmax(&logits).unwrap();
        let lp = Vector::log_softmax(&logits).unwrap();
        for (pi, lpi) in p.iter().zip(lp.iter()) {
            assert!((pi.ln() - lpi).abs() < 1e-5);
        }
    }

    #[test]
    fn nll_picks_target() {
        let lp = Vector::log_softmax(&[1.0, 2.0, 3.0]).unwrap();
        let n = Vector::nll(&lp, 2).unwrap();
        assert!(n > 0.0 && n < 1.0);
        assert!(Vector::nll(&lp, 3).is_err());
    }

    #[test]
    fn kl_divergence_properties() {
        let p = [0.5, 0.5];
        assert!(Vector::kl_divergence(&p, &p).unwrap().abs() < 1e-6);
        let q = [0.9, 0.1];
        assert!(Vector::kl_divergence(&p, &q).unwrap() > 0.0);
        assert!(Vector::kl_divergence(&p, &[0.5]).is_err());
    }

    #[test]
    fn cosine_similarity_bounds() {
        assert!((Vector::cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]).unwrap() - 1.0).abs() < 1e-6);
        assert!((Vector::cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).unwrap()).abs() < 1e-6);
        assert_eq!(Vector::cosine_similarity(&[0.0], &[1.0]).unwrap(), 0.0);
    }

    #[test]
    fn relative_error_zero_for_identical() {
        let a = [1.0, 2.0, 3.0];
        assert!(Vector::relative_error(&a, &a).unwrap().abs() < 1e-7);
        assert!(Vector::relative_error(&[1.0, 0.0], &[0.0, 0.0]).unwrap() > 0.0);
    }

    #[test]
    fn argmax_and_mean() {
        assert_eq!(Vector::argmax(&[1.0, 5.0, 3.0]).unwrap(), 1);
        assert!(Vector::argmax(&[]).is_err());
        assert!((Vector::mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-6);
        assert_eq!(Vector::mean(&[]), 0.0);
    }
}
