//! Row-major dense matrix with dense and column-sparse matrix–vector products.
//!
//! # Kernel design
//!
//! The matrix–vector kernels dominate decode wall-clock time, so each has an
//! allocation-free `_into` variant writing into a caller-owned buffer, with
//! the allocating method kept as a thin wrapper. The optimised loops follow
//! one rule that makes them **bitwise identical** to the naive scalar
//! references in [`crate::reference`]: unrolling runs across *independent
//! outputs* (4 rows in flight, each with its own accumulator), never inside
//! a single reduction, so no floating-point addition is ever reordered.
//! `matvec_cols` additionally swaps its cache-hostile stride-`cols` column
//! walk for a row-outer loop with a gathered inner loop (each row is a
//! contiguous cache-resident slice), preserving the per-output accumulation
//! order exactly; [`Matrix::matvec_cols_mirrored`] offers the alternative
//! contiguous formulation through a pre-transposed mirror.

use crate::error::{Result, TensorError};
use crate::pool::{chunk_size, WorkerPool};
use crate::sparse::ColumnMask;
use serde::{Deserialize, Serialize};

/// Minimum number of matrix elements before a threaded kernel splits work
/// across the pool; below this the handshake costs more than the math.
const PAR_MIN_ELEMENTS: usize = 1 << 15;

/// Four independent sequential dot products sharing one pass over `x`.
///
/// Each accumulator observes its row's products in exactly the order the
/// naive per-row loop would, so the results are bitwise identical to four
/// separate naive dots while giving the CPU four independent dependency
/// chains (and a vectorisable inner loop).
#[inline(always)]
fn dot4(x: &[f32], r0: &[f32], r1: &[f32], r2: &[f32], r3: &[f32]) -> (f32, f32, f32, f32) {
    let (mut a0, mut a1, mut a2, mut a3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for ((((&xv, &w0), &w1), &w2), &w3) in x
        .iter()
        .zip(r0.iter())
        .zip(r1.iter())
        .zip(r2.iter())
        .zip(r3.iter())
    {
        a0 += w0 * xv;
        a1 += w1 * xv;
        a2 += w2 * xv;
        a3 += w3 * xv;
    }
    (a0, a1, a2, a3)
}

/// One sequential dot product (the naive order).
#[inline(always)]
fn dot1(x: &[f32], row: &[f32]) -> f32 {
    let mut acc = 0.0f32;
    for (&w, &xv) in row.iter().zip(x.iter()) {
        acc += w * xv;
    }
    acc
}

/// A row-major dense `f32` matrix.
///
/// The matrix–vector product `W x` is the dominant operation during LLM token
/// generation; this type provides the dense kernel plus the two sparse
/// variants exploited by dynamic sparsity methods:
///
/// * [`Matrix::matvec_cols`] — skip pruned *input columns* (used when the
///   input activation vector is sparsified, e.g. DIP's `W_u`/`W_g` step),
/// * [`Matrix::matvec_rows`] — compute only selected *output rows*
///   (used for the transposed view of down-projection pruning).
///
/// # Example
///
/// ```
/// use tensor::Matrix;
/// let w = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
/// assert_eq!(w.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix of zeros with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with a constant value.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::ShapeMismatch {
                op: "Matrix::from_vec",
                expected: (rows, cols),
                found: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of rows.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] when `rows` is empty and
    /// [`TensorError::ShapeMismatch`] when rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Result<Self> {
        if rows.is_empty() {
            return Err(TensorError::Empty {
                op: "Matrix::from_rows",
            });
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(TensorError::ShapeMismatch {
                    op: "Matrix::from_rows",
                    expected: (rows.len(), cols),
                    found: (rows.len(), r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Returns row `r` as a slice.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `r >= rows`.
    pub fn row(&self, r: usize) -> Result<&[f32]> {
        if r >= self.rows {
            return Err(TensorError::IndexOutOfBounds {
                index: r,
                len: self.rows,
            });
        }
        Ok(&self.data[r * self.cols..(r + 1) * self.cols])
    }

    /// Returns a mutable view of row `r`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> Result<&mut [f32]> {
        if r >= self.rows {
            return Err(TensorError::IndexOutOfBounds {
                index: r,
                len: self.rows,
            });
        }
        Ok(&mut self.data[r * self.cols..(r + 1) * self.cols])
    }

    /// Returns column `c` as an owned vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `c >= cols`.
    pub fn column(&self, c: usize) -> Result<Vec<f32>> {
        if c >= self.cols {
            return Err(TensorError::IndexOutOfBounds {
                index: c,
                len: self.cols,
            });
        }
        if self.rows == 0 {
            return Ok(Vec::new());
        }
        Ok(self.data[c..].iter().step_by(self.cols).copied().collect())
    }

    /// Iterates over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Dense matrix–vector product `y = W x`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `x.len() != cols`.
    pub fn matvec(&self, x: &[f32]) -> Result<Vec<f32>> {
        let mut y = vec![0.0f32; self.rows];
        self.matvec_into(x, &mut y)?;
        Ok(y)
    }

    /// Allocation-free dense product: writes `W x` into `out`.
    ///
    /// Bitwise identical to [`Matrix::matvec`] / [`crate::reference::matvec_into`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `x.len() != cols` or
    /// `out.len() != rows`.
    pub fn matvec_into(&self, x: &[f32], out: &mut [f32]) -> Result<()> {
        if x.len() != self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matvec",
                expected: (self.cols, 1),
                found: (x.len(), 1),
            });
        }
        if out.len() != self.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matvec",
                expected: (self.rows, 1),
                found: (out.len(), 1),
            });
        }
        if crate::kernels::reference_mode() {
            crate::reference::matvec_into(self, x, out);
            return Ok(());
        }
        self.matvec_rows_range(x, 0, out);
        Ok(())
    }

    /// Computes output rows `[lo, lo + out.len())` of `W x` into `out` with
    /// the 4-row-unrolled kernel. Shapes must be pre-validated.
    fn matvec_rows_range(&self, x: &[f32], lo: usize, out: &mut [f32]) {
        let cols = self.cols;
        let mut r = lo;
        let mut chunks = out.chunks_exact_mut(4);
        for quad in &mut chunks {
            let base = r * cols;
            let r0 = &self.data[base..base + cols];
            let r1 = &self.data[base + cols..base + 2 * cols];
            let r2 = &self.data[base + 2 * cols..base + 3 * cols];
            let r3 = &self.data[base + 3 * cols..base + 4 * cols];
            let (a0, a1, a2, a3) = dot4(x, r0, r1, r2, r3);
            quad[0] = a0;
            quad[1] = a1;
            quad[2] = a2;
            quad[3] = a3;
            r += 4;
        }
        for o in chunks.into_remainder() {
            *o = dot1(x, &self.data[r * cols..(r + 1) * cols]);
            r += 1;
        }
    }

    /// Like [`Matrix::matvec_into`], but row-partitions the output across
    /// the worker pool for large matrices.
    ///
    /// Row partitioning never splits a dot product, so the result is
    /// bitwise identical to the sequential kernel whatever the thread
    /// count or scheduling.
    ///
    /// # Errors
    ///
    /// Same shape errors as [`Matrix::matvec_into`].
    pub fn matvec_into_threaded(
        &self,
        x: &[f32],
        out: &mut [f32],
        pool: &WorkerPool,
    ) -> Result<()> {
        if self.len() < PAR_MIN_ELEMENTS || pool.parallelism() == 1 {
            return self.matvec_into(x, out);
        }
        if x.len() != self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matvec",
                expected: (self.cols, 1),
                found: (x.len(), 1),
            });
        }
        if out.len() != self.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matvec",
                expected: (self.rows, 1),
                found: (out.len(), 1),
            });
        }
        if crate::kernels::reference_mode() {
            crate::reference::matvec_into(self, x, out);
            return Ok(());
        }
        let chunk = chunk_size(self.rows, pool.parallelism(), 16);
        let chunks: Vec<std::sync::Mutex<(usize, &mut [f32])>> = out
            .chunks_mut(chunk)
            .enumerate()
            .map(|(i, c)| std::sync::Mutex::new((i * chunk, c)))
            .collect();
        pool.run(chunks.len(), |i| {
            let mut guard = chunks[i].lock().expect("chunk lock poisoned");
            let (lo, chunk) = &mut *guard;
            self.matvec_rows_range(x, *lo, chunk);
        });
        Ok(())
    }

    /// Column-sparse matrix–vector product: only the listed input columns
    /// contribute (all other entries of `x` are treated as zero).
    ///
    /// This is the kernel exercised when the *input* activation vector has
    /// been pruned: pruned entries mean the corresponding weight columns
    /// never need to be loaded from Flash/DRAM.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `x.len() != cols` and
    /// [`TensorError::IndexOutOfBounds`] if any column index is invalid.
    pub fn matvec_cols(&self, x: &[f32], active_cols: &[usize]) -> Result<Vec<f32>> {
        let mut y = vec![0.0f32; self.rows];
        self.matvec_cols_into(x, active_cols, &mut y)?;
        Ok(y)
    }

    /// Allocation-free column-sparse product into `out`.
    ///
    /// The historical kernel walked each active *column* with stride
    /// `cols` — one cache line fetched per element. This kernel iterates
    /// rows on the outside (each row a contiguous slice, 4 rows in flight)
    /// and gathers the active columns on the inside, preserving the exact
    /// per-output accumulation order (active-list order, entries whose `x`
    /// value is exactly zero skipped) of
    /// [`crate::reference::matvec_cols_into`] — so the result is bitwise
    /// identical.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] for bad `x`/`out` lengths and
    /// [`TensorError::IndexOutOfBounds`] if any column index is invalid
    /// (checked up front; `out` is zeroed but otherwise untouched on error).
    pub fn matvec_cols_into(
        &self,
        x: &[f32],
        active_cols: &[usize],
        out: &mut [f32],
    ) -> Result<()> {
        if x.len() != self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matvec_cols",
                expected: (self.cols, 1),
                found: (x.len(), 1),
            });
        }
        if out.len() != self.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matvec_cols",
                expected: (self.rows, 1),
                found: (out.len(), 1),
            });
        }
        out.fill(0.0);
        if let Some(&bad) = active_cols.iter().find(|&&c| c >= self.cols) {
            return Err(TensorError::IndexOutOfBounds {
                index: bad,
                len: self.cols,
            });
        }
        if crate::kernels::reference_mode() {
            crate::reference::matvec_cols_into(self, x, active_cols, out);
            return Ok(());
        }
        let cols = self.cols;
        let mut r = 0usize;
        let mut quads = out.chunks_exact_mut(4);
        for quad in &mut quads {
            let base = r * cols;
            let r0 = &self.data[base..base + cols];
            let r1 = &self.data[base + cols..base + 2 * cols];
            let r2 = &self.data[base + 2 * cols..base + 3 * cols];
            let r3 = &self.data[base + 3 * cols..base + 4 * cols];
            let (mut a0, mut a1, mut a2, mut a3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for &c in active_cols {
                let xv = x[c];
                if xv == 0.0 {
                    continue;
                }
                a0 += r0[c] * xv;
                a1 += r1[c] * xv;
                a2 += r2[c] * xv;
                a3 += r3[c] * xv;
            }
            quad[0] = a0;
            quad[1] = a1;
            quad[2] = a2;
            quad[3] = a3;
            r += 4;
        }
        for o in quads.into_remainder() {
            let row = &self.data[r * cols..(r + 1) * cols];
            let mut acc = 0.0f32;
            for &c in active_cols {
                let xv = x[c];
                if xv == 0.0 {
                    continue;
                }
                acc += row[c] * xv;
            }
            *o = acc;
            r += 1;
        }
        Ok(())
    }

    /// Dense product through a pre-transposed mirror of this matrix
    /// (`mirror == self.transpose()`).
    ///
    /// Accumulating column contributions in ascending-column order gives
    /// every output exactly the same addition sequence as the sequential
    /// row dot (`0 + w[r][0]·x[0] + w[r][1]·x[1] + …`), so this is bitwise
    /// identical to [`Matrix::matvec`] — but each pass reads *contiguous*
    /// mirror rows and the per-element updates are independent, which the
    /// autovectorizer turns into full-width SIMD. This is the preferred
    /// dense kernel wherever a mirror is worth its memory (see
    /// `lm::scratch::ModelMirrors`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the mirror's shape is not
    /// the transpose of this matrix's or the vector lengths are wrong.
    pub fn matvec_mirrored(&self, mirror: &Matrix, x: &[f32], out: &mut [f32]) -> Result<()> {
        if mirror.shape() != (self.cols, self.rows) {
            return Err(TensorError::ShapeMismatch {
                op: "matvec_mirrored",
                expected: (self.cols, self.rows),
                found: mirror.shape(),
            });
        }
        if x.len() != self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matvec_mirrored",
                expected: (self.cols, 1),
                found: (x.len(), 1),
            });
        }
        if out.len() != self.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matvec_mirrored",
                expected: (self.rows, 1),
                found: (out.len(), 1),
            });
        }
        if crate::kernels::reference_mode() {
            crate::reference::matvec_into(self, x, out);
            return Ok(());
        }
        out.fill(0.0);
        let rows = self.rows;
        let mut c = 0usize;
        let mut quads = x.chunks_exact(4);
        for quad in &mut quads {
            let base = c * rows;
            let w0 = &mirror.data[base..base + rows];
            let w1 = &mirror.data[base + rows..base + 2 * rows];
            let w2 = &mirror.data[base + 2 * rows..base + 3 * rows];
            let w3 = &mirror.data[base + 3 * rows..base + 4 * rows];
            let (x0, x1, x2, x3) = (quad[0], quad[1], quad[2], quad[3]);
            for (i, o) in out.iter_mut().enumerate() {
                let mut acc = *o;
                acc += w0[i] * x0;
                acc += w1[i] * x1;
                acc += w2[i] * x2;
                acc += w3[i] * x3;
                *o = acc;
            }
            c += 4;
        }
        for &xv in quads.remainder() {
            let row = &mirror.data[c * rows..(c + 1) * rows];
            for (o, &wv) in out.iter_mut().zip(row.iter()) {
                *o += wv * xv;
            }
            c += 1;
        }
        Ok(())
    }

    /// Column-sparse product through a pre-transposed mirror of this matrix
    /// (`mirror == self.transpose()`): each active column of `W` is a
    /// *contiguous row* of the mirror, so the kernel degenerates to a few
    /// fused axpy passes. Bitwise identical to [`Matrix::matvec_cols`].
    ///
    /// Worth the 2× weight memory only for heavily-reused matrices; the
    /// gathered row-outer kernel ([`Matrix::matvec_cols_into`]) is the
    /// default hot path.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the mirror's shape is not
    /// the transpose of this matrix's or the vector lengths are wrong, and
    /// [`TensorError::IndexOutOfBounds`] for an invalid column index.
    pub fn matvec_cols_mirrored(
        &self,
        mirror: &Matrix,
        x: &[f32],
        active_cols: &[usize],
        out: &mut [f32],
    ) -> Result<()> {
        if mirror.shape() != (self.cols, self.rows) {
            return Err(TensorError::ShapeMismatch {
                op: "matvec_cols_mirrored",
                expected: (self.cols, self.rows),
                found: mirror.shape(),
            });
        }
        if x.len() != self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matvec_cols_mirrored",
                expected: (self.cols, 1),
                found: (x.len(), 1),
            });
        }
        if out.len() != self.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matvec_cols_mirrored",
                expected: (self.rows, 1),
                found: (out.len(), 1),
            });
        }
        out.fill(0.0);
        if let Some(&bad) = active_cols.iter().find(|&&c| c >= self.cols) {
            return Err(TensorError::IndexOutOfBounds {
                index: bad,
                len: self.cols,
            });
        }
        // Accumulate mirror rows in active order, fusing up to 4 rows per
        // pass over `out`. Within one fused pass the per-element additions
        // stay in active order, so the result is bitwise identical to one
        // axpy pass per active column.
        let rows = self.rows;
        let mut batch: [(&[f32], f32); 4] = [(&[], 0.0); 4];
        let mut filled = 0usize;
        for &c in active_cols {
            let xv = x[c];
            if xv == 0.0 {
                continue;
            }
            batch[filled] = (&mirror.data[c * rows..(c + 1) * rows], xv);
            filled += 1;
            if filled == 4 {
                let [(w0, x0), (w1, x1), (w2, x2), (w3, x3)] = batch;
                for (i, o) in out.iter_mut().enumerate() {
                    let mut acc = *o;
                    acc += w0[i] * x0;
                    acc += w1[i] * x1;
                    acc += w2[i] * x2;
                    acc += w3[i] * x3;
                    *o = acc;
                }
                filled = 0;
            }
        }
        for &(w, xv) in &batch[..filled] {
            for (o, &wv) in out.iter_mut().zip(w.iter()) {
                *o += wv * xv;
            }
        }
        Ok(())
    }

    /// Validates a packed-panel mirror against this matrix's shape.
    fn check_packed(&self, op: &'static str, packed: &crate::packed::PackedMatrix) -> Result<()> {
        if (packed.rows(), packed.cols()) != self.shape() {
            return Err(TensorError::ShapeMismatch {
                op,
                expected: self.shape(),
                found: (packed.rows(), packed.cols()),
            });
        }
        Ok(())
    }

    /// Dense product through a packed-panel mirror of this matrix
    /// (`packed == PackedMatrix::pack(self)`), dispatched to the
    /// register-blocked microkernel family selected by
    /// [`crate::kernels::kernel_arch`].
    ///
    /// Accumulators live in registers for the whole ascending-column loop
    /// (one load/store per output instead of one per column quad), so the
    /// addition sequence per output is exactly the sequential row dot —
    /// bitwise identical to [`Matrix::matvec`] and
    /// [`Matrix::matvec_mirrored`] for every dispatch choice.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the packed mirror was
    /// built from a matrix of a different shape or the vector lengths are
    /// wrong.
    pub fn matvec_packed(
        &self,
        packed: &crate::packed::PackedMatrix,
        x: &[f32],
        out: &mut [f32],
    ) -> Result<()> {
        self.check_packed("matvec_packed", packed)?;
        if x.len() != self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matvec_packed",
                expected: (self.cols, 1),
                found: (x.len(), 1),
            });
        }
        if out.len() != self.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matvec_packed",
                expected: (self.rows, 1),
                found: (out.len(), 1),
            });
        }
        if crate::kernels::reference_mode() {
            crate::reference::matvec_into(self, x, out);
            return Ok(());
        }
        crate::packed::matvec_dispatch(packed, x, out);
        Ok(())
    }

    /// Column-sparse product through a packed-panel mirror, dispatched to
    /// the register-blocked microkernel family. Walks the active list in
    /// order with the exact-zero skip inside the panel loop, so it is
    /// bitwise identical to [`Matrix::matvec_cols`] for every dispatch
    /// choice.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] for a mismatched packed
    /// mirror or bad vector lengths, and [`TensorError::IndexOutOfBounds`]
    /// for an invalid column index (checked up front).
    pub fn matvec_cols_packed(
        &self,
        packed: &crate::packed::PackedMatrix,
        x: &[f32],
        active_cols: &[usize],
        out: &mut [f32],
    ) -> Result<()> {
        self.check_packed("matvec_cols_packed", packed)?;
        if x.len() != self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matvec_cols_packed",
                expected: (self.cols, 1),
                found: (x.len(), 1),
            });
        }
        if out.len() != self.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matvec_cols_packed",
                expected: (self.rows, 1),
                found: (out.len(), 1),
            });
        }
        out.fill(0.0);
        if let Some(&bad) = active_cols.iter().find(|&&c| c >= self.cols) {
            return Err(TensorError::IndexOutOfBounds {
                index: bad,
                len: self.cols,
            });
        }
        if crate::kernels::reference_mode() {
            crate::reference::matvec_cols_into(self, x, active_cols, out);
            return Ok(());
        }
        crate::packed::matvec_cols_dispatch(packed, x, active_cols, out);
        Ok(())
    }

    /// Multi-RHS product through a packed-panel mirror: `k` stacked RHS
    /// vectors against register tiles of panels × RHS accumulators, so a
    /// weight lane loaded once feeds several sessions *and* several output
    /// rows without touching memory. Each `(row, rhs)` output is one
    /// sequential ascending-column dot — bitwise identical to a separate
    /// [`Matrix::matvec_into`] per RHS for every dispatch choice.
    ///
    /// The panel band is walked on the outside (staying cache-resident
    /// while every RHS group streams over it), which is what makes this
    /// kernel hold up from fleet decode (`k ≤ 8`) through prefill chunks.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] for a mismatched packed
    /// mirror or bad `xs`/`out` lengths.
    pub fn matvec_batch_packed(
        &self,
        packed: &crate::packed::PackedMatrix,
        xs: &[f32],
        k: usize,
        out: &mut [f32],
    ) -> Result<()> {
        self.check_packed("matvec_batch_packed", packed)?;
        self.check_batch_shapes(xs, k, out)?;
        if crate::kernels::reference_mode() {
            crate::reference::matvec_batch_into(self, xs, k, out);
            return Ok(());
        }
        crate::packed::matvec_batch_dispatch(packed, xs, k, out);
        Ok(())
    }

    /// Batched column-sparse product through a packed-panel mirror: `k`
    /// stacked RHS vectors, each with its own CSR active-column list (as
    /// [`Matrix::matvec_cols_batch_into`]). Runs the packed column-sparse
    /// microkernel once per RHS, so every output row is bitwise identical
    /// to a separate [`Matrix::matvec_cols_into`] on that RHS for every
    /// dispatch choice.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] for a mismatched packed
    /// mirror or bad `xs`/`out`/`offsets` lengths, and
    /// [`TensorError::IndexOutOfBounds`] for an invalid column index
    /// (checked up front; `out` is zeroed but otherwise untouched).
    pub fn matvec_cols_batch_packed(
        &self,
        packed: &crate::packed::PackedMatrix,
        xs: &[f32],
        k: usize,
        indices: &[usize],
        offsets: &[usize],
        out: &mut [f32],
    ) -> Result<()> {
        self.check_packed("matvec_cols_batch_packed", packed)?;
        self.check_batch_shapes(xs, k, out)?;
        if offsets.len() != k + 1
            || offsets.windows(2).any(|w| w[0] > w[1])
            || offsets.last().copied().unwrap_or(0) > indices.len()
        {
            return Err(TensorError::ShapeMismatch {
                op: "matvec_cols_batch",
                expected: (k + 1, 1),
                found: (offsets.len(), 1),
            });
        }
        out.fill(0.0);
        let used = &indices[..offsets[k]];
        if let Some(&bad) = used.iter().find(|&&c| c >= self.cols) {
            return Err(TensorError::IndexOutOfBounds {
                index: bad,
                len: self.cols,
            });
        }
        if crate::kernels::reference_mode() {
            crate::reference::matvec_cols_batch_into(self, xs, k, indices, offsets, out);
            return Ok(());
        }
        let (rows, cols) = self.shape();
        for s in 0..k {
            let x = &xs[s * cols..(s + 1) * cols];
            let active = &indices[offsets[s]..offsets[s + 1]];
            let o = &mut out[s * rows..(s + 1) * rows];
            crate::packed::matvec_cols_dispatch(packed, x, active, o);
        }
        Ok(())
    }

    /// Row-sparse matrix–vector product: only the listed output rows are
    /// computed; all other outputs are zero.
    ///
    /// This is the kernel exercised when the *output* of a projection has
    /// been pruned (e.g. pruning intermediate GLU activations means the
    /// corresponding rows of `W_u`/`W_g` are skipped).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `x.len() != cols` and
    /// [`TensorError::IndexOutOfBounds`] if any row index is invalid.
    pub fn matvec_rows(&self, x: &[f32], active_rows: &[usize]) -> Result<Vec<f32>> {
        let mut y = vec![0.0f32; self.rows];
        self.matvec_rows_into(x, active_rows, &mut y)?;
        Ok(y)
    }

    /// Allocation-free row-sparse product into `out` (inactive outputs are
    /// zeroed). Runs 4 active rows in flight, each reduction sequential —
    /// bitwise identical to [`crate::reference::matvec_rows_into`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] for bad `x`/`out` lengths and
    /// [`TensorError::IndexOutOfBounds`] if any row index is invalid
    /// (checked up front; `out` is zeroed but otherwise untouched on error).
    pub fn matvec_rows_into(
        &self,
        x: &[f32],
        active_rows: &[usize],
        out: &mut [f32],
    ) -> Result<()> {
        if x.len() != self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matvec_rows",
                expected: (self.cols, 1),
                found: (x.len(), 1),
            });
        }
        if out.len() != self.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matvec_rows",
                expected: (self.rows, 1),
                found: (out.len(), 1),
            });
        }
        out.fill(0.0);
        if let Some(&bad) = active_rows.iter().find(|&&r| r >= self.rows) {
            return Err(TensorError::IndexOutOfBounds {
                index: bad,
                len: self.rows,
            });
        }
        if crate::kernels::reference_mode() {
            crate::reference::matvec_rows_into(self, x, active_rows, out);
            return Ok(());
        }
        let cols = self.cols;
        let row = |r: usize| &self.data[r * cols..(r + 1) * cols];
        let mut quads = active_rows.chunks_exact(4);
        for quad in &mut quads {
            let (a0, a1, a2, a3) = dot4(x, row(quad[0]), row(quad[1]), row(quad[2]), row(quad[3]));
            out[quad[0]] = a0;
            out[quad[1]] = a1;
            out[quad[2]] = a2;
            out[quad[3]] = a3;
        }
        for &r in quads.remainder() {
            out[r] = dot1(x, row(r));
        }
        Ok(())
    }

    /// Masked column-sparse product using a [`ColumnMask`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the mask length differs from
    /// the number of columns or `x.len() != cols`.
    pub fn matvec_masked(&self, x: &[f32], mask: &ColumnMask) -> Result<Vec<f32>> {
        if mask.len() != self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matvec_masked",
                expected: (self.cols, 1),
                found: (mask.len(), 1),
            });
        }
        self.matvec_cols(x, &mask.active_indices())
    }

    /// Transposed matrix–vector product `y = W^T x`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `x.len() != rows`.
    pub fn matvec_t(&self, x: &[f32]) -> Result<Vec<f32>> {
        let mut y = vec![0.0f32; self.cols];
        self.matvec_t_into(x, &mut y)?;
        Ok(y)
    }

    /// Allocation-free transposed product `y = W^T x` into `out`.
    ///
    /// Fuses up to 4 contributing rows per pass over `out`, with the
    /// per-element additions kept in row order — bitwise identical to the
    /// one-axpy-per-row loop in [`crate::reference::matvec_t_into`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `x.len() != rows` or
    /// `out.len() != cols`.
    pub fn matvec_t_into(&self, x: &[f32], out: &mut [f32]) -> Result<()> {
        if x.len() != self.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matvec_t",
                expected: (self.rows, 1),
                found: (x.len(), 1),
            });
        }
        if out.len() != self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matvec_t",
                expected: (self.cols, 1),
                found: (out.len(), 1),
            });
        }
        out.fill(0.0);
        if crate::kernels::reference_mode() {
            crate::reference::matvec_t_into(self, x, out);
            return Ok(());
        }
        let cols = self.cols;
        let mut batch: [(&[f32], f32); 4] = [(&[], 0.0); 4];
        let mut filled = 0usize;
        for (r, &xv) in x.iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            batch[filled] = (&self.data[r * cols..(r + 1) * cols], xv);
            filled += 1;
            if filled == 4 {
                let [(w0, x0), (w1, x1), (w2, x2), (w3, x3)] = batch;
                for (i, o) in out.iter_mut().enumerate() {
                    let mut acc = *o;
                    acc += w0[i] * x0;
                    acc += w1[i] * x1;
                    acc += w2[i] * x2;
                    acc += w3[i] * x3;
                    *o = acc;
                }
                filled = 0;
            }
        }
        for &(w, xv) in &batch[..filled] {
            for (o, &wv) in out.iter_mut().zip(w.iter()) {
                *o += wv * xv;
            }
        }
        Ok(())
    }

    /// Dense matrix–matrix product `C = A B` through the blocked kernel
    /// ([`Matrix::matmul_into`]); used by the LoRA/quantization paths and by
    /// chunked-prefill consumers that want an owned result.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out)?;
        Ok(out)
    }

    /// Allocation-free blocked matrix–matrix product `out = self · other`.
    ///
    /// The kernel tiles the right operand and the output into cache-sized
    /// column/depth panels, but every output element still accumulates its
    /// `k`-products in ascending order with the historical zero-skip on the
    /// left operand — so the result is **bitwise identical** to the naive
    /// triple loop preserved in [`crate::reference::matmul`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `self.cols != other.rows`
    /// or `out` is not `(self.rows, other.cols)`.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) -> Result<()> {
        if self.cols != other.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                expected: (self.cols, self.cols),
                found: other.shape(),
            });
        }
        if out.shape() != (self.rows, other.cols) {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                expected: (self.rows, other.cols),
                found: out.shape(),
            });
        }
        if crate::kernels::reference_mode() {
            let naive = crate::reference::matmul(self, other);
            out.data.copy_from_slice(&naive.data);
            return Ok(());
        }
        // Register-tiled microkernel, selected by the runtime dispatch
        // table: an NR-column accumulator tile of one output row is held in
        // registers across the full ascending-k loop (zero-skip on the left
        // operand preserved), so each output element is stored exactly once
        // and `other`'s row-major layout is read contiguously (`b[k][j..]`
        // already is the panel order this access pattern wants, so no
        // packing pass is needed).
        let (m, kk) = self.shape();
        let n = other.cols;
        crate::packed::matmul_dispatch(&self.data, m, kk, &other.data, n, &mut out.data);
        Ok(())
    }

    /// Validates the shared shapes of the batched (multi-RHS) kernels:
    /// `xs` holds `k` stacked input vectors row-major, `out` receives `k`
    /// stacked output vectors row-major.
    fn check_batch_shapes(&self, xs: &[f32], k: usize, out: &[f32]) -> Result<()> {
        if xs.len() != k * self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matvec_batch",
                expected: (k, self.cols),
                found: (xs.len(), 1),
            });
        }
        if out.len() != k * self.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matvec_batch",
                expected: (k, self.rows),
                found: (out.len(), 1),
            });
        }
        Ok(())
    }

    /// Multi-RHS "skinny GEMM": computes `W x_s` for `k` stacked activation
    /// vectors in **one pass over the weights**.
    ///
    /// `xs` holds the `k` input vectors row-major (`k × cols`); `out`
    /// receives the `k` output vectors row-major (`k × rows`). Each
    /// `(row, rhs)` output is one sequential dot product in exactly the
    /// naive order, so every output row is bitwise identical to a separate
    /// [`Matrix::matvec_into`] on that RHS — the fusion only amortises the
    /// weight traffic: a quad of weight rows is loaded once and reused by
    /// all `k` vectors while cache-resident.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] for bad `xs`/`out` lengths.
    pub fn matvec_batch_into(&self, xs: &[f32], k: usize, out: &mut [f32]) -> Result<()> {
        self.check_batch_shapes(xs, k, out)?;
        if crate::kernels::reference_mode() {
            crate::reference::matvec_batch_into(self, xs, k, out);
            return Ok(());
        }
        self.matvec_batch_rows_range(xs, k, 0, self.rows, out);
        Ok(())
    }

    /// Computes output rows `[lo, hi)` of the batched product for all `k`
    /// RHS vectors (shapes pre-validated). `out` is the full `k × rows`
    /// buffer; only the `[lo, hi)` slice of each RHS row is written.
    fn matvec_batch_rows_range(&self, xs: &[f32], k: usize, lo: usize, hi: usize, out: &mut [f32]) {
        let (rows, cols) = self.shape();
        let mut r = lo;
        while r + 4 <= hi {
            let base = r * cols;
            let r0 = &self.data[base..base + cols];
            let r1 = &self.data[base + cols..base + 2 * cols];
            let r2 = &self.data[base + 2 * cols..base + 3 * cols];
            let r3 = &self.data[base + 3 * cols..base + 4 * cols];
            for s in 0..k {
                let x = &xs[s * cols..(s + 1) * cols];
                let (a0, a1, a2, a3) = dot4(x, r0, r1, r2, r3);
                let o = &mut out[s * rows + r..s * rows + r + 4];
                o[0] = a0;
                o[1] = a1;
                o[2] = a2;
                o[3] = a3;
            }
            r += 4;
        }
        while r < hi {
            let row = &self.data[r * cols..(r + 1) * cols];
            for s in 0..k {
                out[s * rows + r] = dot1(&xs[s * cols..(s + 1) * cols], row);
            }
            r += 1;
        }
    }

    /// Batched dense product through a pre-transposed mirror
    /// (`mirror == self.transpose()`): the column-outer formulation of
    /// [`Matrix::matvec_batch_into`]. Each RHS accumulates column
    /// contributions in ascending order — the same addition sequence as the
    /// sequential row dot — so every output row is bitwise identical to
    /// [`Matrix::matvec_mirrored`] / [`Matrix::matvec`] on that RHS, while a
    /// quad of mirror rows is loaded once for all `k` vectors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] for a non-transposed mirror or
    /// bad `xs`/`out` lengths.
    pub fn matvec_batch_mirrored(
        &self,
        mirror: &Matrix,
        xs: &[f32],
        k: usize,
        out: &mut [f32],
    ) -> Result<()> {
        if mirror.shape() != (self.cols, self.rows) {
            return Err(TensorError::ShapeMismatch {
                op: "matvec_batch",
                expected: (self.cols, self.rows),
                found: mirror.shape(),
            });
        }
        self.check_batch_shapes(xs, k, out)?;
        if crate::kernels::reference_mode() {
            crate::reference::matvec_batch_into(self, xs, k, out);
            return Ok(());
        }
        out.fill(0.0);
        let (rows, cols) = self.shape();
        if k >= 16 {
            // Tall batches (prefill chunks): keep one SEG-wide output
            // segment in registers across the *entire* column loop, so each
            // output is loaded and stored exactly once per call and the
            // mirror's SEG-element column band (hot in L1 across all RHS
            // rows) is the only streamed operand. Per output the accumulation still runs
            // over ascending columns — bitwise identical to the sequential
            // row dot.
            const SEG: usize = 32;
            let mut jb = 0usize;
            while jb + SEG <= rows {
                for s in 0..k {
                    let x_row = &xs[s * cols..(s + 1) * cols];
                    let mut acc = [0.0f32; SEG];
                    for (c, &xv) in x_row.iter().enumerate() {
                        let w = &mirror.data[c * rows + jb..c * rows + jb + SEG];
                        for i in 0..SEG {
                            acc[i] += w[i] * xv;
                        }
                    }
                    out[s * rows + jb..s * rows + jb + SEG].copy_from_slice(&acc);
                }
                jb += SEG;
            }
            // remainder output rows: scalar accumulators, same order
            if jb < rows {
                let tail = rows - jb;
                for s in 0..k {
                    let x_row = &xs[s * cols..(s + 1) * cols];
                    let out_tail = &mut out[s * rows + jb..(s + 1) * rows];
                    for (c, &xv) in x_row.iter().enumerate() {
                        let w = &mirror.data[c * rows + jb..c * rows + jb + tail];
                        for (o, &wv) in out_tail.iter_mut().zip(w.iter()) {
                            *o += wv * xv;
                        }
                    }
                }
            }
            return Ok(());
        }
        let mut c = 0usize;
        while c + 4 <= cols {
            let base = c * rows;
            let w0 = &mirror.data[base..base + rows];
            let w1 = &mirror.data[base + rows..base + 2 * rows];
            let w2 = &mirror.data[base + 2 * rows..base + 3 * rows];
            let w3 = &mirror.data[base + 3 * rows..base + 4 * rows];
            for s in 0..k {
                let xb = &xs[s * cols + c..s * cols + c + 4];
                let (x0, x1, x2, x3) = (xb[0], xb[1], xb[2], xb[3]);
                let o = &mut out[s * rows..(s + 1) * rows];
                for (i, ov) in o.iter_mut().enumerate() {
                    let mut acc = *ov;
                    acc += w0[i] * x0;
                    acc += w1[i] * x1;
                    acc += w2[i] * x2;
                    acc += w3[i] * x3;
                    *ov = acc;
                }
            }
            c += 4;
        }
        while c < cols {
            let w = &mirror.data[c * rows..(c + 1) * rows];
            for s in 0..k {
                let xv = xs[s * cols + c];
                let o = &mut out[s * rows..(s + 1) * rows];
                for (ov, &wv) in o.iter_mut().zip(w.iter()) {
                    *ov += wv * xv;
                }
            }
            c += 1;
        }
        Ok(())
    }

    /// Like [`Matrix::matvec_batch_into`], but row-partitions the weight
    /// pass across the worker pool for large matrices. Row partitioning
    /// never splits a dot product, so the result is bitwise identical to the
    /// sequential batch kernel whatever the thread count.
    ///
    /// # Errors
    ///
    /// Same shape errors as [`Matrix::matvec_batch_into`].
    pub fn matvec_batch_into_threaded(
        &self,
        xs: &[f32],
        k: usize,
        out: &mut [f32],
        pool: &WorkerPool,
    ) -> Result<()> {
        if self.len() * k < PAR_MIN_ELEMENTS || pool.parallelism() == 1 {
            return self.matvec_batch_into(xs, k, out);
        }
        self.check_batch_shapes(xs, k, out)?;
        if crate::kernels::reference_mode() {
            crate::reference::matvec_batch_into(self, xs, k, out);
            return Ok(());
        }
        let rows = self.rows;
        let chunk = chunk_size(rows, pool.parallelism(), 16);
        let n_row_chunks = rows.div_ceil(chunk);
        // session-major part list: part (s, ci) lives at index
        // s * n_row_chunks + ci, and task ci claims that part for every s —
        // each part is locked by exactly one task, writes stay disjoint
        let parts: Vec<std::sync::Mutex<(usize, &mut [f32])>> = out
            .chunks_mut(rows)
            .flat_map(|session_out| {
                session_out
                    .chunks_mut(chunk)
                    .enumerate()
                    .map(|(ci, c)| std::sync::Mutex::new((ci * chunk, c)))
            })
            .collect();
        pool.run(n_row_chunks, |ci| {
            for s in 0..k {
                let mut guard = parts[s * n_row_chunks + ci].lock().expect("chunk lock");
                let (lo, part) = &mut *guard;
                let hi = *lo + part.len();
                // compute rows [lo, hi) of RHS `s` directly into its part
                let xs_row = &xs[s * self.cols..(s + 1) * self.cols];
                self.matvec_rows_span(xs_row, *lo, hi, part);
            }
        });
        Ok(())
    }

    /// Computes output rows `[lo, hi)` of `W x` into `part` (which holds
    /// exactly `hi - lo` values) with the 4-row-unrolled kernel.
    fn matvec_rows_span(&self, x: &[f32], lo: usize, hi: usize, part: &mut [f32]) {
        debug_assert_eq!(part.len(), hi - lo);
        self.matvec_rows_range(x, lo, part);
    }

    /// Batched column-sparse product: `k` stacked RHS vectors, each with its
    /// **own** active-column list in CSR layout (row `s`'s columns are
    /// `indices[offsets[s]..offsets[s + 1]]`).
    ///
    /// The kernel walks weight rows on the outside (quads in flight, each
    /// row a contiguous cache-resident slice reused by all `k` vectors) and
    /// gathers each RHS's active columns on the inside **in that RHS's own
    /// list order** with the exact-zero skip — so every output row is
    /// bitwise identical to a separate [`Matrix::matvec_cols_into`] on that
    /// RHS. Sharing the row pass across the batch is what turns `k`
    /// per-session weight passes into one.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] for bad `xs`/`out`/`offsets`
    /// lengths and [`TensorError::IndexOutOfBounds`] for an invalid column
    /// index (checked up front; `out` is zeroed but otherwise untouched).
    pub fn matvec_cols_batch_into(
        &self,
        xs: &[f32],
        k: usize,
        indices: &[usize],
        offsets: &[usize],
        out: &mut [f32],
    ) -> Result<()> {
        self.check_batch_shapes(xs, k, out)?;
        if offsets.len() != k + 1
            || offsets.windows(2).any(|w| w[0] > w[1])
            || offsets.last().copied().unwrap_or(0) > indices.len()
        {
            return Err(TensorError::ShapeMismatch {
                op: "matvec_cols_batch",
                expected: (k + 1, 1),
                found: (offsets.len(), 1),
            });
        }
        out.fill(0.0);
        let used = &indices[..offsets[k]];
        if let Some(&bad) = used.iter().find(|&&c| c >= self.cols) {
            return Err(TensorError::IndexOutOfBounds {
                index: bad,
                len: self.cols,
            });
        }
        if crate::kernels::reference_mode() {
            crate::reference::matvec_cols_batch_into(self, xs, k, indices, offsets, out);
            return Ok(());
        }
        let (rows, cols) = self.shape();
        let mut r = 0usize;
        while r + 4 <= rows {
            let base = r * cols;
            let r0 = &self.data[base..base + cols];
            let r1 = &self.data[base + cols..base + 2 * cols];
            let r2 = &self.data[base + 2 * cols..base + 3 * cols];
            let r3 = &self.data[base + 3 * cols..base + 4 * cols];
            for s in 0..k {
                let x = &xs[s * cols..(s + 1) * cols];
                let active = &indices[offsets[s]..offsets[s + 1]];
                let (mut a0, mut a1, mut a2, mut a3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
                for &c in active {
                    let xv = x[c];
                    if xv == 0.0 {
                        continue;
                    }
                    a0 += r0[c] * xv;
                    a1 += r1[c] * xv;
                    a2 += r2[c] * xv;
                    a3 += r3[c] * xv;
                }
                let o = &mut out[s * rows + r..s * rows + r + 4];
                o[0] = a0;
                o[1] = a1;
                o[2] = a2;
                o[3] = a3;
            }
            r += 4;
        }
        while r < rows {
            let row = &self.data[r * cols..(r + 1) * cols];
            for s in 0..k {
                let x = &xs[s * cols..(s + 1) * cols];
                let active = &indices[offsets[s]..offsets[s + 1]];
                let mut acc = 0.0f32;
                for &c in active {
                    let xv = x[c];
                    if xv == 0.0 {
                        continue;
                    }
                    acc += row[c] * xv;
                }
                out[s * rows + r] = acc;
            }
            r += 1;
        }
        Ok(())
    }

    /// Returns the transpose of this matrix.
    ///
    /// Walks the matrix in cache-sized tiles so both the source rows and
    /// the destination rows stay resident, instead of the naive
    /// stride-`rows` scalar walk ([`crate::reference::transpose`], which
    /// this is element-for-element identical to). The result doubles as the
    /// mirror argument of [`Matrix::matvec_cols_mirrored`].
    pub fn transpose(&self) -> Matrix {
        const TILE: usize = 32;
        let (rows, cols) = self.shape();
        let mut out = Matrix::zeros(cols, rows);
        for rb in (0..rows).step_by(TILE) {
            let r_end = (rb + TILE).min(rows);
            for cb in (0..cols).step_by(TILE) {
                let c_end = (cb + TILE).min(cols);
                for r in rb..r_end {
                    let src = &self.data[r * cols + cb..r * cols + c_end];
                    for (c, &v) in src.iter().enumerate() {
                        out.data[(cb + c) * rows + r] = v;
                    }
                }
            }
        }
        out
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "add",
                expected: self.shape(),
                found: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Element-wise subtraction `self - other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "sub",
                expected: self.shape(),
                found: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a - b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Multiplies every element by a scalar, in place.
    pub fn scale_in_place(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Scales an individual row in place.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `r >= rows`.
    pub fn scale_row(&mut self, r: usize, s: f32) -> Result<()> {
        let row = self.row_mut(r)?;
        for v in row {
            *v *= s;
        }
        Ok(())
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Mean absolute value of all elements (0 for an empty matrix).
    pub fn mean_abs(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().map(|v| v.abs()).sum::<f32>() / self.data.len() as f32
    }

    /// Zeros the listed columns in place (structured column pruning).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] on an invalid column index.
    pub fn zero_columns(&mut self, cols: &[usize]) -> Result<()> {
        for &c in cols {
            if c >= self.cols {
                return Err(TensorError::IndexOutOfBounds {
                    index: c,
                    len: self.cols,
                });
            }
            for r in 0..self.rows {
                self.set(r, c, 0.0);
            }
        }
        Ok(())
    }

    /// Zeros the listed rows in place (structured row pruning).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] on an invalid row index.
    pub fn zero_rows(&mut self, rows: &[usize]) -> Result<()> {
        for &r in rows {
            if r >= self.rows {
                return Err(TensorError::IndexOutOfBounds {
                    index: r,
                    len: self.rows,
                });
            }
            for v in self.row_mut(r)? {
                *v = 0.0;
            }
        }
        Ok(())
    }

    /// Counts elements that are exactly zero.
    pub fn count_zeros(&self) -> usize {
        self.data.iter().filter(|v| **v == 0.0).count()
    }

    /// Fraction of elements that are exactly zero (0 for an empty matrix).
    pub fn sparsity(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.count_zeros() as f32 / self.data.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let m = sample();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(0).unwrap(), &[1.0, 2.0, 3.0]);
        assert_eq!(m.column(1).unwrap(), vec![2.0, 5.0]);
        assert_eq!(m.len(), 6);
        assert!(!m.is_empty());
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_validates_shape() {
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn identity_matvec_is_noop() {
        let id = Matrix::identity(4);
        let x = vec![1.0, -2.0, 3.0, 0.5];
        assert_eq!(id.matvec(&x).unwrap(), x);
    }

    #[test]
    fn matvec_matches_manual_computation() {
        let m = sample();
        let y = m.matvec(&[1.0, 0.0, -1.0]).unwrap();
        assert_eq!(y, vec![-2.0, -2.0]);
    }

    #[test]
    fn matvec_rejects_bad_shape() {
        let m = sample();
        assert!(m.matvec(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn matvec_cols_equals_dense_with_zeroed_inputs() {
        let m = sample();
        let x = vec![1.0, 2.0, 3.0];
        let active = vec![0, 2];
        let sparse = m.matvec_cols(&x, &active).unwrap();
        let mut x_masked = x.clone();
        x_masked[1] = 0.0;
        let dense = m.matvec(&x_masked).unwrap();
        assert_eq!(sparse, dense);
    }

    #[test]
    fn matvec_rows_only_computes_selected_outputs() {
        let m = sample();
        let y = m.matvec_rows(&[1.0, 1.0, 1.0], &[1]).unwrap();
        assert_eq!(y, vec![0.0, 15.0]);
    }

    #[test]
    fn matvec_cols_rejects_bad_index() {
        let m = sample();
        assert!(m.matvec_cols(&[1.0, 1.0, 1.0], &[3]).is_err());
    }

    #[test]
    fn matvec_t_matches_transpose() {
        let m = sample();
        let x = vec![1.0, -1.0];
        let a = m.matvec_t(&x).unwrap();
        let b = m.transpose().matvec(&x).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn matmul_matches_manual() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(&[vec![2.0, 1.0], vec![4.0, 3.0]]).unwrap()
        );
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = sample();
        assert!(a.matmul(&sample()).is_err());
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = sample();
        let b = Matrix::filled(2, 3, 1.0);
        let c = a.add(&b).unwrap().sub(&b).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn zero_columns_and_sparsity() {
        let mut m = sample();
        m.zero_columns(&[0, 2]).unwrap();
        assert_eq!(m.column(0).unwrap(), vec![0.0, 0.0]);
        assert_eq!(m.column(2).unwrap(), vec![0.0, 0.0]);
        assert_eq!(m.count_zeros(), 4);
        assert!((m.sparsity() - 4.0 / 6.0).abs() < 1e-6);
    }

    #[test]
    fn zero_rows_clears_entire_row() {
        let mut m = sample();
        m.zero_rows(&[0]).unwrap();
        assert_eq!(m.row(0).unwrap(), &[0.0, 0.0, 0.0]);
        assert_eq!(m.row(1).unwrap(), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn frobenius_and_mean_abs() {
        let m = Matrix::from_rows(&[vec![3.0, 4.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
        assert!((m.mean_abs() - 3.5).abs() < 1e-6);
    }

    #[test]
    fn scale_row_and_scale_in_place() {
        let mut m = sample();
        m.scale_row(0, 2.0).unwrap();
        assert_eq!(m.row(0).unwrap(), &[2.0, 4.0, 6.0]);
        m.scale_in_place(0.5);
        assert_eq!(m.row(0).unwrap(), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1).unwrap(), &[2.0, 2.5, 3.0]);
    }

    #[test]
    fn iter_rows_yields_all_rows() {
        let m = sample();
        let rows: Vec<&[f32]> = m.iter_rows().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], &[4.0, 5.0, 6.0]);
    }
}
