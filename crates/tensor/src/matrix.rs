//! Row-major dense matrix with dense and column-sparse matrix–vector products.

use crate::error::{Result, TensorError};
use crate::sparse::ColumnMask;
use serde::{Deserialize, Serialize};

/// A row-major dense `f32` matrix.
///
/// The matrix–vector product `W x` is the dominant operation during LLM token
/// generation; this type provides the dense kernel plus the two sparse
/// variants exploited by dynamic sparsity methods:
///
/// * [`Matrix::matvec_cols`] — skip pruned *input columns* (used when the
///   input activation vector is sparsified, e.g. DIP's `W_u`/`W_g` step),
/// * [`Matrix::matvec_rows`] — compute only selected *output rows*
///   (used for the transposed view of down-projection pruning).
///
/// # Example
///
/// ```
/// use tensor::Matrix;
/// let w = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
/// assert_eq!(w.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix of zeros with the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with a constant value.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(TensorError::ShapeMismatch {
                op: "Matrix::from_vec",
                expected: (rows, cols),
                found: (data.len(), 1),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Creates a matrix from a slice of rows.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::Empty`] when `rows` is empty and
    /// [`TensorError::ShapeMismatch`] when rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Result<Self> {
        if rows.is_empty() {
            return Err(TensorError::Empty {
                op: "Matrix::from_rows",
            });
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(TensorError::ShapeMismatch {
                    op: "Matrix::from_rows",
                    expected: (rows.len(), cols),
                    found: (rows.len(), r.len()),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows` or `c >= cols`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Returns row `r` as a slice.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `r >= rows`.
    pub fn row(&self, r: usize) -> Result<&[f32]> {
        if r >= self.rows {
            return Err(TensorError::IndexOutOfBounds {
                index: r,
                len: self.rows,
            });
        }
        Ok(&self.data[r * self.cols..(r + 1) * self.cols])
    }

    /// Returns a mutable view of row `r`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> Result<&mut [f32]> {
        if r >= self.rows {
            return Err(TensorError::IndexOutOfBounds {
                index: r,
                len: self.rows,
            });
        }
        Ok(&mut self.data[r * self.cols..(r + 1) * self.cols])
    }

    /// Returns column `c` as an owned vector.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `c >= cols`.
    pub fn column(&self, c: usize) -> Result<Vec<f32>> {
        if c >= self.cols {
            return Err(TensorError::IndexOutOfBounds {
                index: c,
                len: self.cols,
            });
        }
        Ok((0..self.rows).map(|r| self.get(r, c)).collect())
    }

    /// Iterates over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Dense matrix–vector product `y = W x`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `x.len() != cols`.
    pub fn matvec(&self, x: &[f32]) -> Result<Vec<f32>> {
        if x.len() != self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matvec",
                expected: (self.cols, 1),
                found: (x.len(), 1),
            });
        }
        let mut y = vec![0.0f32; self.rows];
        for (r, out) in y.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0f32;
            for (w, v) in row.iter().zip(x.iter()) {
                acc += w * v;
            }
            *out = acc;
        }
        Ok(y)
    }

    /// Column-sparse matrix–vector product: only the listed input columns
    /// contribute (all other entries of `x` are treated as zero).
    ///
    /// This is the kernel exercised when the *input* activation vector has
    /// been pruned: pruned entries mean the corresponding weight columns
    /// never need to be loaded from Flash/DRAM.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `x.len() != cols` and
    /// [`TensorError::IndexOutOfBounds`] if any column index is invalid.
    pub fn matvec_cols(&self, x: &[f32], active_cols: &[usize]) -> Result<Vec<f32>> {
        if x.len() != self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matvec_cols",
                expected: (self.cols, 1),
                found: (x.len(), 1),
            });
        }
        let mut y = vec![0.0f32; self.rows];
        for &c in active_cols {
            if c >= self.cols {
                return Err(TensorError::IndexOutOfBounds {
                    index: c,
                    len: self.cols,
                });
            }
            let xv = x[c];
            if xv == 0.0 {
                continue;
            }
            for (r, out) in y.iter_mut().enumerate() {
                *out += self.data[r * self.cols + c] * xv;
            }
        }
        Ok(y)
    }

    /// Row-sparse matrix–vector product: only the listed output rows are
    /// computed; all other outputs are zero.
    ///
    /// This is the kernel exercised when the *output* of a projection has
    /// been pruned (e.g. pruning intermediate GLU activations means the
    /// corresponding rows of `W_u`/`W_g` are skipped).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `x.len() != cols` and
    /// [`TensorError::IndexOutOfBounds`] if any row index is invalid.
    pub fn matvec_rows(&self, x: &[f32], active_rows: &[usize]) -> Result<Vec<f32>> {
        if x.len() != self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matvec_rows",
                expected: (self.cols, 1),
                found: (x.len(), 1),
            });
        }
        let mut y = vec![0.0f32; self.rows];
        for &r in active_rows {
            if r >= self.rows {
                return Err(TensorError::IndexOutOfBounds {
                    index: r,
                    len: self.rows,
                });
            }
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0f32;
            for (w, v) in row.iter().zip(x.iter()) {
                acc += w * v;
            }
            y[r] = acc;
        }
        Ok(y)
    }

    /// Masked column-sparse product using a [`ColumnMask`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the mask length differs from
    /// the number of columns or `x.len() != cols`.
    pub fn matvec_masked(&self, x: &[f32], mask: &ColumnMask) -> Result<Vec<f32>> {
        if mask.len() != self.cols {
            return Err(TensorError::ShapeMismatch {
                op: "matvec_masked",
                expected: (self.cols, 1),
                found: (mask.len(), 1),
            });
        }
        self.matvec_cols(x, &mask.active_indices())
    }

    /// Transposed matrix–vector product `y = W^T x`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `x.len() != rows`.
    pub fn matvec_t(&self, x: &[f32]) -> Result<Vec<f32>> {
        if x.len() != self.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matvec_t",
                expected: (self.rows, 1),
                found: (x.len(), 1),
            });
        }
        let mut y = vec![0.0f32; self.cols];
        for (r, &xv) in x.iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (out, w) in y.iter_mut().zip(row.iter()) {
                *out += w * xv;
            }
        }
        Ok(y)
    }

    /// Dense matrix–matrix product `C = A B` (small sizes only; used by tests
    /// and the LoRA/quantization code paths, not the inference hot loop).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(TensorError::ShapeMismatch {
                op: "matmul",
                expected: (self.cols, self.cols),
                found: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    let v = out.get(i, j) + a * other.get(k, j);
                    out.set(i, j, v);
                }
            }
        }
        Ok(out)
    }

    /// Returns the transpose of this matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn add(&self, other: &Matrix) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "add",
                expected: self.shape(),
                found: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Element-wise subtraction `self - other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the shapes differ.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(TensorError::ShapeMismatch {
                op: "sub",
                expected: self.shape(),
                found: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a - b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Multiplies every element by a scalar, in place.
    pub fn scale_in_place(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Scales an individual row in place.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `r >= rows`.
    pub fn scale_row(&mut self, r: usize, s: f32) -> Result<()> {
        let row = self.row_mut(r)?;
        for v in row {
            *v *= s;
        }
        Ok(())
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Mean absolute value of all elements (0 for an empty matrix).
    pub fn mean_abs(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().map(|v| v.abs()).sum::<f32>() / self.data.len() as f32
    }

    /// Zeros the listed columns in place (structured column pruning).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] on an invalid column index.
    pub fn zero_columns(&mut self, cols: &[usize]) -> Result<()> {
        for &c in cols {
            if c >= self.cols {
                return Err(TensorError::IndexOutOfBounds {
                    index: c,
                    len: self.cols,
                });
            }
            for r in 0..self.rows {
                self.set(r, c, 0.0);
            }
        }
        Ok(())
    }

    /// Zeros the listed rows in place (structured row pruning).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] on an invalid row index.
    pub fn zero_rows(&mut self, rows: &[usize]) -> Result<()> {
        for &r in rows {
            if r >= self.rows {
                return Err(TensorError::IndexOutOfBounds {
                    index: r,
                    len: self.rows,
                });
            }
            for v in self.row_mut(r)? {
                *v = 0.0;
            }
        }
        Ok(())
    }

    /// Counts elements that are exactly zero.
    pub fn count_zeros(&self) -> usize {
        self.data.iter().filter(|v| **v == 0.0).count()
    }

    /// Fraction of elements that are exactly zero (0 for an empty matrix).
    pub fn sparsity(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.count_zeros() as f32 / self.data.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let m = sample();
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(0).unwrap(), &[1.0, 2.0, 3.0]);
        assert_eq!(m.column(1).unwrap(), vec![2.0, 5.0]);
        assert_eq!(m.len(), 6);
        assert!(!m.is_empty());
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_validates_shape() {
        assert!(Matrix::from_rows(&[]).is_err());
        assert!(Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn identity_matvec_is_noop() {
        let id = Matrix::identity(4);
        let x = vec![1.0, -2.0, 3.0, 0.5];
        assert_eq!(id.matvec(&x).unwrap(), x);
    }

    #[test]
    fn matvec_matches_manual_computation() {
        let m = sample();
        let y = m.matvec(&[1.0, 0.0, -1.0]).unwrap();
        assert_eq!(y, vec![-2.0, -2.0]);
    }

    #[test]
    fn matvec_rejects_bad_shape() {
        let m = sample();
        assert!(m.matvec(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn matvec_cols_equals_dense_with_zeroed_inputs() {
        let m = sample();
        let x = vec![1.0, 2.0, 3.0];
        let active = vec![0, 2];
        let sparse = m.matvec_cols(&x, &active).unwrap();
        let mut x_masked = x.clone();
        x_masked[1] = 0.0;
        let dense = m.matvec(&x_masked).unwrap();
        assert_eq!(sparse, dense);
    }

    #[test]
    fn matvec_rows_only_computes_selected_outputs() {
        let m = sample();
        let y = m.matvec_rows(&[1.0, 1.0, 1.0], &[1]).unwrap();
        assert_eq!(y, vec![0.0, 15.0]);
    }

    #[test]
    fn matvec_cols_rejects_bad_index() {
        let m = sample();
        assert!(m.matvec_cols(&[1.0, 1.0, 1.0], &[3]).is_err());
    }

    #[test]
    fn matvec_t_matches_transpose() {
        let m = sample();
        let x = vec![1.0, -1.0];
        let a = m.matvec_t(&x).unwrap();
        let b = m.transpose().matvec(&x).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn matmul_matches_manual() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(&[vec![2.0, 1.0], vec![4.0, 3.0]]).unwrap()
        );
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = sample();
        assert!(a.matmul(&sample()).is_err());
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = sample();
        let b = Matrix::filled(2, 3, 1.0);
        let c = a.add(&b).unwrap().sub(&b).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn zero_columns_and_sparsity() {
        let mut m = sample();
        m.zero_columns(&[0, 2]).unwrap();
        assert_eq!(m.column(0).unwrap(), vec![0.0, 0.0]);
        assert_eq!(m.column(2).unwrap(), vec![0.0, 0.0]);
        assert_eq!(m.count_zeros(), 4);
        assert!((m.sparsity() - 4.0 / 6.0).abs() < 1e-6);
    }

    #[test]
    fn zero_rows_clears_entire_row() {
        let mut m = sample();
        m.zero_rows(&[0]).unwrap();
        assert_eq!(m.row(0).unwrap(), &[0.0, 0.0, 0.0]);
        assert_eq!(m.row(1).unwrap(), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn frobenius_and_mean_abs() {
        let m = Matrix::from_rows(&[vec![3.0, 4.0]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-6);
        assert!((m.mean_abs() - 3.5).abs() < 1e-6);
    }

    #[test]
    fn scale_row_and_scale_in_place() {
        let mut m = sample();
        m.scale_row(0, 2.0).unwrap();
        assert_eq!(m.row(0).unwrap(), &[2.0, 4.0, 6.0]);
        m.scale_in_place(0.5);
        assert_eq!(m.row(0).unwrap(), &[1.0, 2.0, 3.0]);
        assert_eq!(m.row(1).unwrap(), &[2.0, 2.5, 3.0]);
    }

    #[test]
    fn iter_rows_yields_all_rows() {
        let m = sample();
        let rows: Vec<&[f32]> = m.iter_rows().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], &[4.0, 5.0, 6.0]);
    }
}
