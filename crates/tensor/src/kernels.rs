//! Global kernel-dispatch controls.
//!
//! The optimised matrix kernels are bitwise-identical to the naive loops in
//! [`crate::reference`], so this switch changes *speed only*: the benchmark
//! harness flips it to measure honest before/after numbers for the same
//! end-to-end code path in one binary. It is not meant for production use.

use std::sync::atomic::{AtomicBool, Ordering};

static REFERENCE_MODE: AtomicBool = AtomicBool::new(false);

/// Routes every matrix kernel through the naive scalar reference loops
/// (`true`) or the optimised paths (`false`, the default).
pub fn set_reference_mode(on: bool) {
    REFERENCE_MODE.store(on, Ordering::Relaxed);
}

/// Whether kernels are currently routed through the reference loops.
#[inline]
pub fn reference_mode() -> bool {
    REFERENCE_MODE.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_round_trips() {
        assert!(!reference_mode());
        set_reference_mode(true);
        assert!(reference_mode());
        set_reference_mode(false);
        assert!(!reference_mode());
    }
}
