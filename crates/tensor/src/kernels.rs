//! Global kernel-dispatch controls.
//!
//! Two independent switches live here:
//!
//! * **Reference mode** routes every matrix kernel through the naive scalar
//!   loops in [`crate::reference`]. The optimised kernels are
//!   bitwise-identical to those loops, so this switch changes *speed only*:
//!   the benchmark harness flips it to measure honest before/after numbers
//!   for the same end-to-end code path in one binary. It is not meant for
//!   production use.
//! * **The [`KernelArch`] dispatch table** selects which register-blocked
//!   microkernel family the packed-panel kernels ([`crate::packed`]) run.
//!   The deployment target is commodity CPUs of unknown microarchitecture,
//!   so the choice happens once at *runtime* (`is_x86_feature_detected!`)
//!   rather than at compile time; every family is bitwise identical to the
//!   reference loops (blocking only ever spans independent outputs), so the
//!   choice — like reference mode — changes speed only. Tests and the
//!   `TENSOR_FORCE_PORTABLE=1` environment variable can pin it.

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};

static REFERENCE_MODE: AtomicBool = AtomicBool::new(false);

/// Routes every matrix kernel through the naive scalar reference loops
/// (`true`) or the optimised paths (`false`, the default).
pub fn set_reference_mode(on: bool) {
    REFERENCE_MODE.store(on, Ordering::Relaxed);
}

/// Whether kernels are currently routed through the reference loops.
#[inline]
pub fn reference_mode() -> bool {
    REFERENCE_MODE.load(Ordering::Relaxed)
}

/// Which register-blocked microkernel family the packed kernels run.
///
/// Every variant computes bit-for-bit identical results (see
/// [`crate::packed`]); the variants differ only in accumulator-tile widths
/// and in the instruction set the compiler may assume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelArch {
    /// Baseline tiles, no instruction-set assumptions beyond the build
    /// target. Always available; pinned by `TENSOR_FORCE_PORTABLE=1`.
    Portable,
    /// Wide tiles compiled under `#[target_feature(enable = "avx2")]`.
    /// Selected only when `is_x86_feature_detected!("avx2")` holds.
    Avx2,
}

/// Dispatch cell: 0 = undecided, 1 = portable, 2 = AVX2.
static KERNEL_ARCH: AtomicU8 = AtomicU8::new(0);

fn detect_arch() -> KernelArch {
    if std::env::var_os("TENSOR_FORCE_PORTABLE").is_some_and(|v| v == "1") {
        return KernelArch::Portable;
    }
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    if std::arch::is_x86_feature_detected!("avx2") {
        return KernelArch::Avx2;
    }
    KernelArch::Portable
}

/// The microkernel family the packed kernels currently dispatch to.
///
/// Decided once (environment override, then CPU feature detection, then the
/// portable fallback) and cached; [`force_kernel_arch`] can pin or reset it.
#[inline]
pub fn kernel_arch() -> KernelArch {
    match KERNEL_ARCH.load(Ordering::Relaxed) {
        1 => KernelArch::Portable,
        2 => KernelArch::Avx2,
        _ => {
            let arch = detect_arch();
            KERNEL_ARCH.store(
                match arch {
                    KernelArch::Portable => 1,
                    KernelArch::Avx2 => 2,
                },
                Ordering::Relaxed,
            );
            arch
        }
    }
}

/// Pins the dispatch choice (`Some`) or resets it to re-detect on next use
/// (`None`). Pinning [`KernelArch::Avx2`] on a CPU without AVX2 is rejected
/// (falls back to detection) — the dispatch table never selects a kernel
/// the host cannot run.
pub fn force_kernel_arch(arch: Option<KernelArch>) {
    let cell = match arch {
        None => 0,
        Some(KernelArch::Portable) => 1,
        Some(KernelArch::Avx2) => {
            #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
            let ok = std::arch::is_x86_feature_detected!("avx2");
            #[cfg(not(any(target_arch = "x86", target_arch = "x86_64")))]
            let ok = false;
            if ok {
                2
            } else {
                0
            }
        }
    };
    KERNEL_ARCH.store(cell, Ordering::Relaxed);
}

/// Every [`KernelArch`] the current host can actually run — the dispatch
/// choices a parity suite must cover.
pub fn available_arches() -> Vec<KernelArch> {
    let mut arches = vec![KernelArch::Portable];
    #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
    if std::arch::is_x86_feature_detected!("avx2") {
        arches.push(KernelArch::Avx2);
    }
    arches
}

/// The resolved dispatch table: which microkernel each packed op runs,
/// by name. Telemetry exporters surface this as an info gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelDispatch {
    /// The selected architecture tier (`"portable"` / `"avx2"`).
    pub arch: &'static str,
    /// Packed dense matvec microkernel ([`crate::Matrix::matvec_packed`]).
    pub matvec: &'static str,
    /// Packed column-sparse matvec ([`crate::Matrix::matvec_cols_packed`]).
    pub matvec_cols: &'static str,
    /// Packed multi-RHS matvec ([`crate::Matrix::matvec_batch_packed`]).
    pub matvec_batch: &'static str,
    /// Register-tiled matmul ([`crate::Matrix::matmul_into`]).
    pub matmul: &'static str,
}

/// The dispatch table for the currently-selected [`kernel_arch`].
pub fn dispatch() -> KernelDispatch {
    match kernel_arch() {
        KernelArch::Portable => KernelDispatch {
            arch: "portable",
            matvec: "packed32x1",
            matvec_cols: "packed32x1",
            matvec_batch: "packed8x4",
            matmul: "tiled8",
        },
        KernelArch::Avx2 => KernelDispatch {
            arch: "avx2",
            matvec: "packed64x1",
            matvec_cols: "packed64x1",
            matvec_batch: "packed16x4",
            matmul: "tiled16",
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_round_trips() {
        assert!(!reference_mode());
        set_reference_mode(true);
        assert!(reference_mode());
        set_reference_mode(false);
        assert!(!reference_mode());
    }

    #[test]
    fn arch_detection_is_cached_and_forceable() {
        let detected = kernel_arch();
        assert_eq!(kernel_arch(), detected, "second read returns the cache");
        force_kernel_arch(Some(KernelArch::Portable));
        assert_eq!(kernel_arch(), KernelArch::Portable);
        assert_eq!(dispatch().arch, "portable");
        force_kernel_arch(None);
        assert_eq!(kernel_arch(), detected, "reset re-detects");
    }

    #[test]
    fn available_arches_always_includes_portable() {
        let arches = available_arches();
        assert!(arches.contains(&KernelArch::Portable));
        for arch in arches {
            force_kernel_arch(Some(arch));
            assert_eq!(kernel_arch(), arch, "every advertised arch is pinnable");
        }
        force_kernel_arch(None);
    }

    #[test]
    fn dispatch_names_are_nonempty() {
        let d = dispatch();
        for name in [d.arch, d.matvec, d.matvec_cols, d.matvec_batch, d.matmul] {
            assert!(!name.is_empty());
        }
    }
}
