//! Naive scalar reference kernels — the pre-optimisation loops, kept as
//! bit-exact oracles.
//!
//! Every optimised kernel in [`crate::Matrix`] preserves the *per-output
//! accumulation order* of these loops (unrolling runs across independent
//! outputs, never inside one reduction), so the optimised kernels must be
//! **bitwise identical** to these references on any input. The property
//! suite in `tests/kernel_parity.rs` enforces that, and the benchmark
//! harness uses this module (via [`crate::kernels::set_reference_mode`]) to
//! measure honest before/after numbers on the same binary.

use crate::Matrix;

/// Naive dense matrix–vector product: one sequential dot per row.
///
/// # Panics
///
/// Panics if `x.len() != cols` or `out.len() != rows`.
pub fn matvec_into(m: &Matrix, x: &[f32], out: &mut [f32]) {
    let (rows, cols) = m.shape();
    assert_eq!(x.len(), cols);
    assert_eq!(out.len(), rows);
    let w = m.as_slice();
    for (r, o) in out.iter_mut().enumerate() {
        let row = &w[r * cols..(r + 1) * cols];
        let mut acc = 0.0f32;
        for (wv, xv) in row.iter().zip(x.iter()) {
            acc += wv * xv;
        }
        *o = acc;
    }
}

/// Naive column-sparse product: walks each active *column* with stride
/// `cols` (the cache-hostile layout the optimised kernel fixes).
///
/// Indices must be pre-validated; columns whose `x` entry is exactly zero
/// are skipped, as in the original kernel.
///
/// # Panics
///
/// Panics if `x.len() != cols`, `out.len() != rows` or an index is out of
/// range.
pub fn matvec_cols_into(m: &Matrix, x: &[f32], active_cols: &[usize], out: &mut [f32]) {
    let (rows, cols) = m.shape();
    assert_eq!(x.len(), cols);
    assert_eq!(out.len(), rows);
    out.fill(0.0);
    let w = m.as_slice();
    for &c in active_cols {
        assert!(c < cols);
        let xv = x[c];
        if xv == 0.0 {
            continue;
        }
        for (r, o) in out.iter_mut().enumerate() {
            *o += w[r * cols + c] * xv;
        }
    }
    let _ = rows;
}

/// Naive row-sparse product: one sequential dot per active row.
///
/// # Panics
///
/// Panics if `x.len() != cols`, `out.len() != rows` or an index is out of
/// range.
pub fn matvec_rows_into(m: &Matrix, x: &[f32], active_rows: &[usize], out: &mut [f32]) {
    let (rows, cols) = m.shape();
    assert_eq!(x.len(), cols);
    assert_eq!(out.len(), rows);
    out.fill(0.0);
    let w = m.as_slice();
    for &r in active_rows {
        assert!(r < rows);
        let row = &w[r * cols..(r + 1) * cols];
        let mut acc = 0.0f32;
        for (wv, xv) in row.iter().zip(x.iter()) {
            acc += wv * xv;
        }
        out[r] = acc;
    }
}

/// Naive transposed product `y = W^T x`: one full axpy pass per row with a
/// non-zero coefficient.
///
/// # Panics
///
/// Panics if `x.len() != rows` or `out.len() != cols`.
pub fn matvec_t_into(m: &Matrix, x: &[f32], out: &mut [f32]) {
    let (rows, cols) = m.shape();
    assert_eq!(x.len(), rows);
    assert_eq!(out.len(), cols);
    out.fill(0.0);
    let w = m.as_slice();
    for (r, &xv) in x.iter().enumerate() {
        if xv == 0.0 {
            continue;
        }
        let row = &w[r * cols..(r + 1) * cols];
        for (o, wv) in out.iter_mut().zip(row.iter()) {
            *o += wv * xv;
        }
    }
}

/// Naive batched dense product: one [`matvec_into`] per stacked
/// right-hand-side row (`xs` holds `k` vectors of `m.cols()` values
/// row-major; `out` receives `k` rows of `m.rows()` values row-major).
///
/// # Panics
///
/// Panics if `xs.len() != k * cols` or `out.len() != k * rows`.
pub fn matvec_batch_into(m: &Matrix, xs: &[f32], k: usize, out: &mut [f32]) {
    let (rows, cols) = m.shape();
    assert_eq!(xs.len(), k * cols);
    assert_eq!(out.len(), k * rows);
    for (x, o) in xs.chunks_exact(cols).zip(out.chunks_exact_mut(rows)) {
        matvec_into(m, x, o);
    }
}

/// Naive batched column-sparse product: one [`matvec_cols_into`] per stacked
/// right-hand-side row, each with its own active-column list (CSR layout:
/// row `s`'s columns are `indices[offsets[s]..offsets[s + 1]]`).
///
/// # Panics
///
/// Panics on shape mismatches, malformed offsets or an out-of-range index.
pub fn matvec_cols_batch_into(
    m: &Matrix,
    xs: &[f32],
    k: usize,
    indices: &[usize],
    offsets: &[usize],
    out: &mut [f32],
) {
    let (rows, cols) = m.shape();
    assert_eq!(xs.len(), k * cols);
    assert_eq!(out.len(), k * rows);
    assert_eq!(offsets.len(), k + 1);
    for (s, (x, o)) in xs
        .chunks_exact(cols)
        .zip(out.chunks_exact_mut(rows))
        .enumerate()
    {
        matvec_cols_into(m, x, &indices[offsets[s]..offsets[s + 1]], o);
    }
}

/// Naive dense matrix–matrix product — the historical
/// `Matrix::matmul` triple loop (`i`/`k` outer with a zero-skip on the
/// left operand, ascending `k` accumulation per output).
///
/// # Panics
///
/// Panics if `a.cols() != b.rows()`.
pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows());
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let av = a.get(i, k);
            if av == 0.0 {
                continue;
            }
            for j in 0..b.cols() {
                let v = out.get(i, j) + av * b.get(k, j);
                out.set(i, j, v);
            }
        }
    }
    out
}

/// Naive element-by-element transpose (strided scalar walk).
pub fn transpose(m: &Matrix) -> Matrix {
    let (rows, cols) = m.shape();
    let mut out = Matrix::zeros(cols, rows);
    for r in 0..rows {
        for c in 0..cols {
            out.set(c, r, m.get(r, c));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_public_kernels_on_a_sample() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let x = [1.0, 0.0, -1.0];
        let mut y = vec![0.0; 2];
        matvec_into(&m, &x, &mut y);
        assert_eq!(y, m.matvec(&x).unwrap());
        matvec_cols_into(&m, &x, &[0, 2], &mut y);
        assert_eq!(y, m.matvec_cols(&x, &[0, 2]).unwrap());
        matvec_rows_into(&m, &x, &[1], &mut y);
        assert_eq!(y, m.matvec_rows(&x, &[1]).unwrap());
        let mut yt = vec![0.0; 3];
        matvec_t_into(&m, &[1.0, -1.0], &mut yt);
        assert_eq!(yt, m.matvec_t(&[1.0, -1.0]).unwrap());
        assert_eq!(transpose(&m), m.transpose());
    }
}
