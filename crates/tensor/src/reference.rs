//! Naive scalar reference kernels — the pre-optimisation loops, kept as
//! bit-exact oracles.
//!
//! Every optimised kernel in [`crate::Matrix`] preserves the *per-output
//! accumulation order* of these loops (unrolling runs across independent
//! outputs, never inside one reduction), so the optimised kernels must be
//! **bitwise identical** to these references on any input. The property
//! suite in `tests/kernel_parity.rs` enforces that, and the benchmark
//! harness uses this module (via [`crate::kernels::set_reference_mode`]) to
//! measure honest before/after numbers on the same binary.

use crate::Matrix;

/// Naive dense matrix–vector product: one sequential dot per row.
///
/// # Panics
///
/// Panics if `x.len() != cols` or `out.len() != rows`.
pub fn matvec_into(m: &Matrix, x: &[f32], out: &mut [f32]) {
    let (rows, cols) = m.shape();
    assert_eq!(x.len(), cols);
    assert_eq!(out.len(), rows);
    let w = m.as_slice();
    for (r, o) in out.iter_mut().enumerate() {
        let row = &w[r * cols..(r + 1) * cols];
        let mut acc = 0.0f32;
        for (wv, xv) in row.iter().zip(x.iter()) {
            acc += wv * xv;
        }
        *o = acc;
    }
}

/// Naive column-sparse product: walks each active *column* with stride
/// `cols` (the cache-hostile layout the optimised kernel fixes).
///
/// Indices must be pre-validated; columns whose `x` entry is exactly zero
/// are skipped, as in the original kernel.
///
/// # Panics
///
/// Panics if `x.len() != cols`, `out.len() != rows` or an index is out of
/// range.
pub fn matvec_cols_into(m: &Matrix, x: &[f32], active_cols: &[usize], out: &mut [f32]) {
    let (rows, cols) = m.shape();
    assert_eq!(x.len(), cols);
    assert_eq!(out.len(), rows);
    out.fill(0.0);
    let w = m.as_slice();
    for &c in active_cols {
        assert!(c < cols);
        let xv = x[c];
        if xv == 0.0 {
            continue;
        }
        for (r, o) in out.iter_mut().enumerate() {
            *o += w[r * cols + c] * xv;
        }
    }
    let _ = rows;
}

/// Naive row-sparse product: one sequential dot per active row.
///
/// # Panics
///
/// Panics if `x.len() != cols`, `out.len() != rows` or an index is out of
/// range.
pub fn matvec_rows_into(m: &Matrix, x: &[f32], active_rows: &[usize], out: &mut [f32]) {
    let (rows, cols) = m.shape();
    assert_eq!(x.len(), cols);
    assert_eq!(out.len(), rows);
    out.fill(0.0);
    let w = m.as_slice();
    for &r in active_rows {
        assert!(r < rows);
        let row = &w[r * cols..(r + 1) * cols];
        let mut acc = 0.0f32;
        for (wv, xv) in row.iter().zip(x.iter()) {
            acc += wv * xv;
        }
        out[r] = acc;
    }
}

/// Naive transposed product `y = W^T x`: one full axpy pass per row with a
/// non-zero coefficient.
///
/// # Panics
///
/// Panics if `x.len() != rows` or `out.len() != cols`.
pub fn matvec_t_into(m: &Matrix, x: &[f32], out: &mut [f32]) {
    let (rows, cols) = m.shape();
    assert_eq!(x.len(), rows);
    assert_eq!(out.len(), cols);
    out.fill(0.0);
    let w = m.as_slice();
    for (r, &xv) in x.iter().enumerate() {
        if xv == 0.0 {
            continue;
        }
        let row = &w[r * cols..(r + 1) * cols];
        for (o, wv) in out.iter_mut().zip(row.iter()) {
            *o += wv * xv;
        }
    }
}

/// Naive element-by-element transpose (strided scalar walk).
pub fn transpose(m: &Matrix) -> Matrix {
    let (rows, cols) = m.shape();
    let mut out = Matrix::zeros(cols, rows);
    for r in 0..rows {
        for c in 0..cols {
            out.set(c, r, m.get(r, c));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_public_kernels_on_a_sample() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let x = [1.0, 0.0, -1.0];
        let mut y = vec![0.0; 2];
        matvec_into(&m, &x, &mut y);
        assert_eq!(y, m.matvec(&x).unwrap());
        matvec_cols_into(&m, &x, &[0, 2], &mut y);
        assert_eq!(y, m.matvec_cols(&x, &[0, 2]).unwrap());
        matvec_rows_into(&m, &x, &[1], &mut y);
        assert_eq!(y, m.matvec_rows(&x, &[1]).unwrap());
        let mut yt = vec![0.0; 3];
        matvec_t_into(&m, &[1.0, -1.0], &mut yt);
        assert_eq!(yt, m.matvec_t(&[1.0, -1.0]).unwrap());
        assert_eq!(transpose(&m), m.transpose());
    }
}
