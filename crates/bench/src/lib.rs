//! Shared fixtures for the Criterion benchmark harness.
//!
//! The benches themselves live under `benches/`:
//!
//! * `kernels.rs` — micro-benchmarks of the sparse kernels and cache policies
//!   that dominate the runtime of the paper's system,
//! * `paper_artifacts.rs` — one benchmark per paper table/figure, exercising
//!   the measurement step that regenerates that artefact (at smoke scale, so
//!   `cargo bench` terminates in minutes).

#![warn(missing_docs)]

use experiments::{Scale, Workbench};
use lm::{build_synthetic, ModelConfig, TransformerModel};

/// The model configuration used by every benchmark fixture.
pub fn bench_config() -> ModelConfig {
    ModelConfig::tiny()
}

/// Builds the benchmark model (deterministic).
pub fn bench_model() -> TransformerModel {
    build_synthetic(&bench_config(), 42).expect("tiny config is valid")
}

/// Builds a smoke-scale workbench for artefact benchmarks.
pub fn bench_workbench() -> Workbench {
    Workbench::new(&bench_config(), Scale::Smoke, 42).expect("workbench builds")
}

/// A deterministic activation-like input vector of the given length.
pub fn bench_input(len: usize) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let x = (i as f32 * 0.37).sin();
            x * x * x * 3.0
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let model = bench_model();
        assert_eq!(model.config.name, "tiny-test");
        let input = bench_input(model.config.d_model);
        assert_eq!(input.len(), model.config.d_model);
        let wb = bench_workbench();
        assert!(wb.dense_ppl.is_finite());
    }
}
