//! `perf_report` — the perf-trajectory measurement bin.
//!
//! Measures honest before/after numbers for the serving hot paths **in one
//! binary**:
//!
//! * **kernels** — naive reference loops vs the optimised single-RHS and
//!   batched (multi-RHS "skinny GEMM") kernels at phi3-mini shapes,
//! * **kernels_packed** — the packed register-blocked panel kernels vs the
//!   transposed-mirror and reference paths at the same shapes, plus the
//!   fused INT4/INT8 dequant-matvec vs materialise-then-matvec (at a
//!   weight-streaming shape where the 8x smaller packed codes pay off),
//! * **single-stream decode** — the seed-replica allocating loop on
//!   reference kernels vs the zero-allocation scratch path (PR 3's
//!   measurement, kept for trajectory continuity),
//! * **prefill** — token-at-a-time prompt ingestion vs chunked prefill
//!   (`forward_prompt_into`: the whole chunk through each layer as a
//!   matrix),
//! * **fleet** — an 8-session serve-engine fleet under shared-cache
//!   contention: the token-at-a-time sequential engine vs batch-lane
//!   execution (cross-session fused decode + chunked prefill). Both modes
//!   compute bitwise-identical schedules (see
//!   `serve/tests/batched_equivalence.rs`), so the ratio is pure host-side
//!   speed,
//! * **paged fleet** — a 2048-session closed fleet on a fixed KV page
//!   budget: paged KV without prefix sharing vs copy-on-write shared-prefix
//!   caching. The simulated tokens/sec and TTFT-p95 ratios are
//!   deterministic (virtual clock); the wall-clock ratio measures the real
//!   prefill compute the prefix cache removes,
//! * **event loop** — the open-loop engine cores head-to-head on the
//!   head-of-line stall workload (six decoders + one long-prompt premium
//!   tenant): decode TBT p99 under the step loop vs the event-driven
//!   chunked-prefill core at equal aggregate tok/s, plus a preempting
//!   one-slot fleet whose KV spills are priced on the virtual clock
//!   (spill-priced tok/s, non-zero cost per preemption). All ratios come
//!   from the virtual clock, so they are deterministic,
//! * **chaos** — the seeded fault-injection scenario (client cancels,
//!   injected deadlines, retryable aborts, KV page loss, a slow lane) with
//!   conservation and replay-determinism verified, plus the degrade-vs-shed
//!   headline: graceful strategy degradation vs pure back-pressure on the
//!   same slots and KV page pool — premium SLO lift at near-equal
//!   aggregate tok/s. All numbers are virtual-clock deterministic.
//!
//! ```text
//! cargo run --release -p bench --bin perf_report -- --quick [--out FILE] [--check BASELINE]
//!     [--paged-out FILE] [--check-paged BASELINE]
//!     [--event-out FILE] [--check-event BASELINE]
//!     [--chaos-out FILE] [--check-chaos BASELINE]
//! ```
//!
//! Writes a flat JSON report (default `BENCH_PR8.json`; the paged-fleet
//! group goes to its own file, default `BENCH_PR7.json`, the event-loop
//! group to default `BENCH_PR9.json`, and the chaos/degradation group to
//! default `BENCH_PR10.json`) and the same measurements as a
//! Prometheus text exposition next to it (`<out>.prom`, one gauge per
//! entry, `mode`/`model` as const labels) so perf numbers flow through the
//! identical pipeline the serving telemetry uses. With `--check`, the
//! *speedup ratios* (both sides measured on the current machine, so the
//! check is host-independent) are compared against the committed baseline
//! and the process exits non-zero if any single-stream decode, fleet-batch
//! or prefill speedup regressed by more than 20 %; `--check-paged` and
//! `--check-event` apply the same gate to the paged-fleet and event-loop
//! *simulated* numbers (virtual clock — deterministic, so any drift is a
//! real change; wall-clock numbers are reported but too host-noisy to
//! gate).

use dip_core::strategies::{Dip, DipCacheAware};
use hwsim::BlockCacheCapacity;
use lm::mlp::DenseMlp;
use lm::{
    build_synthetic, BatchScratch, DecodeScratch, MlpForward, ModelConfig, SliceAxis,
    TransformerModel,
};
use serve::{ExecutionMode, GenRequest, ServeConfig, ServeEngine, StrategySpec};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

struct Opts {
    quick: bool,
    out: String,
    check: Option<String>,
    paged_out: String,
    check_paged: Option<String>,
    event_out: String,
    check_event: Option<String>,
    chaos_out: String,
    check_chaos: Option<String>,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        quick: false,
        out: "BENCH_PR8.json".to_string(),
        check: None,
        paged_out: "BENCH_PR7.json".to_string(),
        check_paged: None,
        event_out: "BENCH_PR9.json".to_string(),
        check_event: None,
        chaos_out: "BENCH_PR10.json".to_string(),
        check_chaos: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" | "quick" => opts.quick = true,
            "--out" => opts.out = args.next().expect("--out needs a path"),
            "--check" => opts.check = Some(args.next().expect("--check needs a path")),
            "--paged-out" => opts.paged_out = args.next().expect("--paged-out needs a path"),
            "--check-paged" => {
                opts.check_paged = Some(args.next().expect("--check-paged needs a path"))
            }
            "--event-out" => opts.event_out = args.next().expect("--event-out needs a path"),
            "--check-event" => {
                opts.check_event = Some(args.next().expect("--check-event needs a path"))
            }
            "--chaos-out" => opts.chaos_out = args.next().expect("--chaos-out needs a path"),
            "--check-chaos" => {
                opts.check_chaos = Some(args.next().expect("--check-chaos needs a path"))
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: perf_report [--quick] [--out FILE] [--check BASELINE] \
                     [--paged-out FILE] [--check-paged BASELINE] \
                     [--event-out FILE] [--check-event BASELINE] \
                     [--chaos-out FILE] [--check-chaos BASELINE]"
                );
                std::process::exit(2);
            }
        }
    }
    opts
}

/// Context window of the single-stream decode measurement: 64-token
/// assistant turns (matching the serving fleet's short-generation
/// workload), so the measurement stresses the weight-streaming kernels the
/// paper's system is bound by rather than long-context attention.
const DECODE_CONTEXT: usize = 64;

/// One token through a faithful replica of the *seed* decode loop: per-op
/// allocations, per-head attention passes over the KV cache (each position
/// re-sliced once per head), allocating softmax, allocating MLP strategy
/// API. Combined with reference-mode kernels this reproduces the pre-PR
/// scalar path inside the current binary (bitwise-identical outputs, seed
/// speed profile).
fn seed_forward_token(
    model: &TransformerModel,
    token: u32,
    state: &mut lm::DecodeState,
    strategy: &mut dyn MlpForward,
) -> Vec<f32> {
    use tensor::Vector;
    let pos = state.pos;
    let mut x: Vec<f32> = model.embedding.row(token as usize).unwrap().to_vec();
    for (li, layer) in model.layers.iter().enumerate() {
        let normed = layer.attn_norm.forward(&x);
        // seed-style attention: project, rope, then one pass over the whole
        // cache per head
        let attn = &layer.attn;
        let head_dim = model.config.d_model / model.config.n_heads;
        let group = model.config.n_heads / model.config.n_kv_heads;
        let mut q = attn.w_q.matvec(&normed).unwrap();
        let mut k = attn.w_k.matvec(&normed).unwrap();
        let v = attn.w_v.matvec(&normed).unwrap();
        lm::rope::apply_rope_multihead(&mut q, head_dim, pos, model.config.rope_theta);
        lm::rope::apply_rope_multihead(&mut k, head_dim, pos, model.config.rope_theta);
        let cache = &mut state.kv[li];
        cache.push(k, v).unwrap();
        let seq_len = cache.len();
        let scale = 1.0 / (head_dim as f32).sqrt();
        let mut attended = vec![0.0f32; model.config.n_heads * head_dim];
        for h in 0..model.config.n_heads {
            let kv_head = h / group;
            let q_head = &q[h * head_dim..(h + 1) * head_dim];
            let mut scores = Vec::with_capacity(seq_len);
            for t in 0..seq_len {
                let key = cache.key(t).unwrap();
                let k_head = &key[kv_head * head_dim..(kv_head + 1) * head_dim];
                scores.push(Vector::dot(q_head, k_head).unwrap() * scale);
            }
            let weights = Vector::softmax(&scores).unwrap();
            let out = &mut attended[h * head_dim..(h + 1) * head_dim];
            for (t, &w) in weights.iter().enumerate() {
                let value = cache.value(t).unwrap();
                let v_head = &value[kv_head * head_dim..(kv_head + 1) * head_dim];
                for (o, vv) in out.iter_mut().zip(v_head.iter()) {
                    *o += w * vv;
                }
            }
        }
        let attn_out = attn.w_o.matvec(&attended).unwrap();
        Vector::axpy(1.0, &attn_out, &mut x).unwrap();

        let normed = layer.mlp_norm.forward(&x);
        let mlp_out = strategy.forward(li, &layer.mlp, &normed).unwrap();
        Vector::axpy(1.0, &mlp_out.y, &mut x).unwrap();
    }
    let final_x = model.final_norm.forward(&x);
    state.pos += 1;
    model.lm_head.matvec(&final_x).unwrap()
}

/// Decodes `n_tokens` through the seed-replica loop (the pre-PR path when
/// reference mode is on) and returns tokens/sec of wall-clock time.
fn decode_tps_alloc(
    model: &TransformerModel,
    strategy: &mut dyn MlpForward,
    n_tokens: usize,
) -> f64 {
    strategy.reset();
    let mut state = model.new_decode_state();
    for i in 0..32 {
        black_box(seed_forward_token(
            model,
            (i % 255) as u32,
            &mut state,
            strategy,
        ));
        if state.pos >= DECODE_CONTEXT {
            state.reset();
        }
    }
    let start = Instant::now();
    for i in 0..n_tokens {
        let token = (i % (model.config.vocab_size - 1)) as u32;
        black_box(seed_forward_token(model, token, &mut state, strategy));
        if state.pos >= DECODE_CONTEXT {
            state.reset();
        }
    }
    n_tokens as f64 / start.elapsed().as_secs_f64()
}

/// Decodes `n_tokens` through the zero-allocation scratch path.
fn decode_tps_scratch(
    model: &TransformerModel,
    strategy: &mut dyn MlpForward,
    n_tokens: usize,
) -> f64 {
    strategy.reset();
    let mut state = model.new_decode_state();
    let mut scratch = DecodeScratch::for_model(model);
    for i in 0..32 {
        model
            .forward_token_into((i % 255) as u32, &mut state, strategy, &mut scratch)
            .expect("warm-up");
        if state.pos >= DECODE_CONTEXT {
            state.reset();
        }
    }
    let start = Instant::now();
    for i in 0..n_tokens {
        let token = (i % (model.config.vocab_size - 1)) as u32;
        model
            .forward_token_into(token, &mut state, strategy, &mut scratch)
            .expect("decode");
        black_box(&scratch.logits);
        if state.pos >= DECODE_CONTEXT {
            state.reset();
        }
    }
    n_tokens as f64 / start.elapsed().as_secs_f64()
}

/// Prompt length of the prefill measurement (a long assistant context).
const PREFILL_PROMPT: usize = 128;
/// Chunk height of the chunked-prefill measurement (the serve engine's
/// `MAX_PREFILL_CHUNK`).
const PREFILL_CHUNK: usize = 64;

fn prefill_prompt(model: &TransformerModel) -> Vec<u32> {
    (0..PREFILL_PROMPT)
        .map(|i| ((i * 11 + 3) % (model.config.vocab_size - 1)) as u32)
        .collect()
}

/// Token-at-a-time prefill: the prompt through `forward_token_into`, one
/// position per forward pass — the pre-PR 5 ingestion path (run under
/// reference-mode kernels by the caller for the "before" measurement, the
/// same honest-before convention the decode and fleet rows use).
fn prefill_tps_token(model: &TransformerModel, reps: usize) -> f64 {
    let prompt = prefill_prompt(model);
    let mut state = model.new_decode_state();
    let mut scratch = DecodeScratch::for_model(model);
    let mut strategy = DenseMlp;
    let mut run = |state: &mut lm::DecodeState| {
        state.reset();
        for &t in &prompt {
            model
                .forward_token_into(t, state, &mut strategy, &mut scratch)
                .expect("prefill token");
        }
        black_box(&scratch.logits);
    };
    run(&mut state); // warm-up (sizes scratch, builds mirrors)
    let mut best = f64::MIN;
    for _ in 0..reps {
        let start = Instant::now();
        run(&mut state);
        best = best.max(prompt.len() as f64 / start.elapsed().as_secs_f64());
    }
    best
}

/// Chunked prefill: the same prompt through `forward_prompt_into` in
/// `PREFILL_CHUNK`-token chunks (one fused weight pass per chunk per
/// matrix). Logits of the final position are bitwise identical to the
/// token-at-a-time loop.
fn prefill_tps_chunked(model: &TransformerModel, reps: usize) -> f64 {
    let prompt = prefill_prompt(model);
    let mut state = model.new_decode_state();
    let mut batch = BatchScratch::for_model(model);
    let mut strategy = DenseMlp;
    let mut run = |state: &mut lm::DecodeState| {
        state.reset();
        for chunk in prompt.chunks(PREFILL_CHUNK) {
            model
                .forward_prompt_into(chunk, state, &mut strategy, &mut batch)
                .expect("prefill chunk");
        }
        black_box(&batch.logits);
    };
    run(&mut state);
    let mut best = f64::MIN;
    for _ in 0..reps {
        let start = Instant::now();
        run(&mut state);
        best = best.max(prompt.len() as f64 / start.elapsed().as_secs_f64());
    }
    best
}

fn capacities(config: &ModelConfig) -> Vec<BlockCacheCapacity> {
    (0..config.n_layers)
        .map(|_| BlockCacheCapacity {
            up: config.d_model / 2,
            gate: config.d_model / 2,
            down: config.d_ff / 2,
        })
        .collect()
}

/// Builds a warm 8-session serving engine (layout with a ~55% MLP cache,
/// INT4 weights) in the given execution mode.
fn fleet_engine(
    config: &ModelConfig,
    tokens_per_session: usize,
    execution: ExecutionMode,
) -> ServeEngine {
    let sessions = 8usize;
    let kv_budget = (4 + tokens_per_session + 2).min(config.max_seq_len);
    let layout =
        serve::layout::layout_for_serving(config, [SliceAxis::Input; 3], 4.0, sessions, kv_budget);
    let dram = layout.static_bytes + ((layout.mlp_bytes() as f64) * 0.55) as u64;
    let device = hwsim::DeviceConfig::apple_a18(4.0).with_dram_bytes(dram);
    let model = build_synthetic(config, 13).expect("model builds");
    let serve_config = ServeConfig::new(device)
        .with_max_concurrent(sessions)
        .with_kv_budget(kv_budget)
        .with_execution(execution);
    ServeEngine::new(model, serve_config).expect("engine builds")
}

fn fleet_requests(spec: StrategySpec, tokens_per_session: usize) -> Vec<GenRequest> {
    (0..8usize)
        .map(|i| {
            GenRequest::new(
                i as u64,
                vec![(i % 5) as u32 + 1, (i % 11) as u32 + 2],
                tokens_per_session,
                spec,
            )
        })
        .collect()
}

/// Wall-clock tokens/sec of one `ServeEngine::run` call on a warm engine
/// (prefill + decode tokens over real elapsed time — the wall-clock
/// counterpart of the simulated `aggregate_tps`). The engine persists
/// across calls, as a long-lived serving deployment would: weight mirrors
/// and scratch buffers are built once, not once per fleet.
fn fleet_wall_tps(engine: &mut ServeEngine, spec: StrategySpec, tokens_per_session: usize) -> f64 {
    let requests = fleet_requests(spec, tokens_per_session);
    let total_tokens: usize = requests.iter().map(|r| r.total_tokens()).sum();
    let start = Instant::now();
    let report = engine.run(requests).expect("fleet runs");
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(report.total_generated_tokens, 8 * tokens_per_session);
    total_tokens as f64 / elapsed
}

/// Best-of-`reps` tokens/sec: rerunning the whole measurement and keeping
/// the fastest run filters out noisy-neighbor windows on shared runners
/// (the CI regression gate compares ratios of these).
fn best_tps(reps: usize, mut f: impl FnMut() -> f64) -> f64 {
    (0..reps).map(|_| f()).fold(f64::MIN, f64::max)
}

/// Sessions in the paged-fleet measurement. The tiny-model fleet is cheap
/// enough to run the headline size in both `--quick` and full mode, which
/// keeps the simulated ratios (virtual clock, deterministic) identical
/// across modes — the committed baseline gates exactly.
const PAGED_FLEET_SESSIONS: usize = 2048;
/// Template prefix length of the paged fleet (shared system prompt).
const PAGED_PREFIX: usize = 12;
/// Generated tokens per paged-fleet session.
const PAGED_GEN: usize = 6;

/// A paged-KV fleet engine mirroring
/// `experiments::serving::run_paged_fleet`: tiny model, 64 slots, fixed
/// page budget sized to half the slots' worst case (memory binds first).
fn paged_fleet_engine(sharing: bool) -> ServeEngine {
    let config = ModelConfig::tiny();
    let slots = 64usize;
    let page_size = 4usize;
    let total = PAGED_PREFIX + 2 + PAGED_GEN;
    let per_session = config.n_layers * lm::pages_spanning(total, page_size);
    let pool_pages = per_session * (slots / 2);
    let kv_budget = total.min(config.max_seq_len);
    let layout =
        serve::layout::layout_for_serving(&config, [SliceAxis::Input; 3], 4.0, slots, kv_budget);
    let dram = layout.static_bytes + ((layout.mlp_bytes() as f64) * 0.55) as u64;
    let device = hwsim::DeviceConfig::apple_a18(4.0).with_dram_bytes(dram);
    let model = build_synthetic(&config, 13).expect("tiny model builds");
    let mut serve_config = ServeConfig::new(device)
        .with_max_concurrent(slots)
        .with_kv_budget(kv_budget)
        .with_paged_kv(page_size, pool_pages);
    if sharing {
        serve_config = serve_config.with_prefix_sharing();
    }
    ServeEngine::new(model, serve_config).expect("paged engine builds")
}

/// The paged fleet's requests: two assistant templates, each opening with
/// its own 12-token shared system prompt, plus a 2-token unique suffix.
fn paged_fleet_requests() -> Vec<GenRequest> {
    let vocab = ModelConfig::tiny().vocab_size as u32;
    let prefixes: Vec<Vec<u32>> = (0..2u32)
        .map(|t| {
            (0..PAGED_PREFIX as u32)
                .map(|i| (t * 31 + i * 7 + 1) % vocab)
                .collect()
        })
        .collect();
    (0..PAGED_FLEET_SESSIONS)
        .map(|i| {
            let mut prompt = prefixes[i % 2].clone();
            prompt.extend([(i % 23) as u32 + 1, (i % 17) as u32 + 2]);
            GenRequest::new(i as u64, prompt, PAGED_GEN, StrategySpec::Dense)
                .with_shared_prefix(PAGED_PREFIX)
        })
        .collect()
}

/// Wall-clock tokens/sec of one paged-fleet run on a warm engine. The
/// numerator is the *requested* token total (identical whether or not the
/// prefix cache skipped prefill work), so the shared/isolated ratio
/// measures exactly the compute the cache removed.
fn paged_fleet_wall_tps(engine: &mut ServeEngine) -> f64 {
    let requests = paged_fleet_requests();
    let total_tokens: usize = requests.iter().map(|r| r.total_tokens()).sum();
    let start = Instant::now();
    let report = engine.run(requests).expect("paged fleet runs");
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(
        report.total_generated_tokens,
        PAGED_FLEET_SESSIONS * PAGED_GEN
    );
    total_tokens as f64 / elapsed
}

/// Times `f` and returns the best-of-`reps` nanoseconds per call.
fn best_ns(reps: usize, inner: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..inner {
            f();
        }
        best = best.min(start.elapsed().as_nanos() as f64 / inner as f64);
    }
    best
}

fn main() {
    let opts = parse_args();
    let (decode_tokens, kernel_reps, prefill_reps) = if opts.quick {
        (512, 30, 3)
    } else {
        (2048, 80, 8)
    };
    let config = ModelConfig::phi3_mini_sim();
    let model = build_synthetic(&config, 42).expect("phi3-mini-sim builds");
    let mut entries: Vec<(String, f64)> = Vec::new();

    // ---- kernel micro-benchmarks at phi3-mini shapes ----
    let mlp = &model.layers[0].mlp;
    let x: Vec<f32> = (0..mlp.d_model())
        .map(|i| {
            let v = (i as f32 * 0.37).sin();
            v * v * v * 3.0
        })
        .collect();
    let active: Vec<usize> = (0..mlp.d_model()).step_by(2).collect();
    let mirror = mlp.w_up.transpose();
    let mut out = vec![0.0f32; mlp.d_ff()];

    let packed_up = tensor::PackedMatrix::pack(&mlp.w_up);

    let naive_matvec = best_ns(kernel_reps, 200, || {
        tensor::reference::matvec_into(&mlp.w_up, black_box(&x), &mut out)
    });
    let fast_matvec = best_ns(kernel_reps, 200, || {
        mlp.w_up.matvec_into(black_box(&x), &mut out).unwrap()
    });
    let mirrored_matvec = best_ns(kernel_reps, 200, || {
        mlp.w_up
            .matvec_mirrored(&mirror, black_box(&x), &mut out)
            .unwrap()
    });
    let packed_matvec = best_ns(kernel_reps, 200, || {
        mlp.w_up
            .matvec_packed(&packed_up, black_box(&x), &mut out)
            .unwrap()
    });
    let naive_cols = best_ns(kernel_reps, 200, || {
        tensor::reference::matvec_cols_into(&mlp.w_up, black_box(&x), &active, &mut out)
    });
    let fast_cols = best_ns(kernel_reps, 200, || {
        mlp.w_up
            .matvec_cols_into(black_box(&x), &active, &mut out)
            .unwrap()
    });
    let mirrored_cols = best_ns(kernel_reps, 200, || {
        mlp.w_up
            .matvec_cols_mirrored(&mirror, black_box(&x), &active, &mut out)
            .unwrap()
    });
    let packed_cols = best_ns(kernel_reps, 200, || {
        mlp.w_up
            .matvec_cols_packed(&packed_up, black_box(&x), &active, &mut out)
            .unwrap()
    });
    entries.push(("kernel_matvec_reference_ns".into(), naive_matvec));
    entries.push(("kernel_matvec_optimized_ns".into(), fast_matvec));
    entries.push(("kernel_matvec_mirrored_ns".into(), mirrored_matvec));
    entries.push(("kernel_matvec_packed_ns".into(), packed_matvec));
    entries.push((
        "kernel_matvec_speedup".into(),
        naive_matvec / mirrored_matvec.min(fast_matvec).min(packed_matvec),
    ));
    entries.push(("kernel_matvec_cols50_reference_ns".into(), naive_cols));
    entries.push(("kernel_matvec_cols50_gathered_ns".into(), fast_cols));
    entries.push(("kernel_matvec_cols50_mirrored_ns".into(), mirrored_cols));
    entries.push(("kernel_matvec_cols50_packed_ns".into(), packed_cols));
    entries.push((
        "kernel_matvec_cols50_speedup".into(),
        naive_cols / mirrored_cols.min(fast_cols).min(packed_cols),
    ));

    // batched (multi-RHS) kernels: 8 stacked activation vectors, one weight
    // pass — compared per token against 8 single matvecs
    let batch_k = 8usize;
    let xs: Vec<f32> = (0..batch_k * mlp.d_model())
        .map(|i| ((i as f32) * 0.23).sin())
        .collect();
    let mut out_batch = vec![0.0f32; batch_k * mlp.d_ff()];
    let batch_ns = best_ns(kernel_reps, 50, || {
        mlp.w_up
            .matvec_batch_into(black_box(&xs), batch_k, &mut out_batch)
            .unwrap()
    });
    let batch_mirrored_ns = best_ns(kernel_reps, 50, || {
        mlp.w_up
            .matvec_batch_mirrored(&mirror, black_box(&xs), batch_k, &mut out_batch)
            .unwrap()
    });
    let batch_packed_ns = best_ns(kernel_reps, 50, || {
        mlp.w_up
            .matvec_batch_packed(&packed_up, black_box(&xs), batch_k, &mut out_batch)
            .unwrap()
    });
    let per_token_batch = (batch_ns / batch_k as f64)
        .min(batch_mirrored_ns / batch_k as f64)
        .min(batch_packed_ns / batch_k as f64);
    entries.push(("kernel_matvec_batch8_ns".into(), batch_ns));
    entries.push(("kernel_matvec_batch8_mirrored_ns".into(), batch_mirrored_ns));
    entries.push(("kernel_matvec_batch8_packed_ns".into(), batch_packed_ns));
    entries.push((
        "kernel_matvec_batch8_per_token_speedup".into(),
        mirrored_matvec.min(fast_matvec).min(packed_matvec) / per_token_batch,
    ));

    // ---- kernels_packed: the packed register-blocked panels against the
    //      transposed-mirror path they replace (same shapes as above), plus
    //      the fused INT4/INT8 dequant-matvec against materialising the f32
    //      reconstruction and streaming it. The f32-vs-packed rows above are
    //      L2-resident; the fused comparison runs at a weight-streaming
    //      shape (d_ff x d_model of a mid-size model) where the matvec is
    //      memory-bound and the 8x/4x smaller codes buy real bandwidth. ----
    entries.push((
        "kernel_packed_vs_mirrored_speedup".into(),
        mirrored_matvec / packed_matvec,
    ));
    entries.push((
        "kernel_packed_batch8_vs_mirrored_speedup".into(),
        batch_mirrored_ns / batch_packed_ns,
    ));
    {
        use quant::{BlockwiseQuantizer, PackedQuantMatrix};
        use tensor::QuantMatvec;
        let (big_rows, big_cols) = (4096usize, 1536usize);
        let w_big = tensor::Matrix::from_vec(
            big_rows,
            big_cols,
            (0..big_rows * big_cols)
                .map(|i| ((i as f32) * 0.013).sin())
                .collect(),
        )
        .expect("big weight builds");
        let x_big: Vec<f32> = (0..big_cols).map(|i| ((i as f32) * 0.29).cos()).collect();
        let mut out_big = vec![0.0f32; big_rows];
        let dequant_reps = kernel_reps.min(20);
        for bits in [4u8, 8u8] {
            let quantizer = BlockwiseQuantizer::new(bits, 32).expect("quantizer");
            let fused = PackedQuantMatrix::quantize(&w_big, &quantizer).expect("packs");
            // materialise-then-matvec: the pre-fused serving path pays the
            // one-off reconstruction at load time, then streams the full
            // f32 matrix every token — so the per-token cost is the packed
            // f32 matvec over the reconstruction
            let w_deq = quantizer.quantize_dequantize(&w_big);
            let packed_deq = tensor::PackedMatrix::pack(&w_deq);
            let materialized_ns = best_ns(dequant_reps, 4, || {
                w_deq
                    .matvec_packed(&packed_deq, black_box(&x_big), &mut out_big)
                    .unwrap()
            });
            let fused_ns = best_ns(dequant_reps, 4, || {
                fused.matvec_into(black_box(&x_big), &mut out_big).unwrap()
            });
            println!(
                "fused int{bits} dequant-matvec ({big_rows}x{big_cols}): \
                 {materialized_ns:.0} -> {fused_ns:.0} ns ({:.2}x)",
                materialized_ns / fused_ns
            );
            entries.push((
                format!("kernel_dequant{bits}_materialized_ns"),
                materialized_ns,
            ));
            entries.push((format!("kernel_dequant{bits}_fused_ns"), fused_ns));
            entries.push((
                format!("kernel_dequant{bits}_fused_speedup"),
                materialized_ns / fused_ns,
            ));
        }
    }

    // ---- single-stream decode, before (reference kernels + allocating
    //      path) vs after (optimised kernels + scratch path) ----
    let strategies: Vec<(&str, Box<dyn MlpForward>)> = vec![
        ("dense", Box::new(DenseMlp)),
        ("dip", Box::new(Dip::new(0.5, 0.5).unwrap())),
        (
            "dip_ca",
            Box::new(
                DipCacheAware::new(
                    0.5,
                    0.5,
                    0.2,
                    config.d_model,
                    config.d_ff,
                    capacities(&config),
                )
                .unwrap(),
            ),
        ),
    ];
    for (name, mut strategy) in strategies {
        tensor::kernels::set_reference_mode(true);
        let before = best_tps(3, || {
            decode_tps_alloc(&model, strategy.as_mut(), decode_tokens)
        });
        tensor::kernels::set_reference_mode(false);
        let after = best_tps(3, || {
            decode_tps_scratch(&model, strategy.as_mut(), decode_tokens)
        });
        println!(
            "decode {name}: {before:.0} -> {after:.0} tok/s ({:.2}x)",
            after / before
        );
        entries.push((format!("decode_{name}_reference_tps"), before));
        entries.push((format!("decode_{name}_optimized_tps"), after));
        entries.push((format!("decode_{name}_speedup"), after / before));
    }

    // ---- prefill: token-at-a-time on reference kernels (the pre-PR
    //      ingestion path, same before/after convention as the decode and
    //      fleet rows) vs chunked on the optimised kernels ----
    tensor::kernels::set_reference_mode(true);
    let prefill_token = prefill_tps_token(&model, prefill_reps.min(3));
    tensor::kernels::set_reference_mode(false);
    let prefill_optimized_token = prefill_tps_token(&model, prefill_reps);
    let prefill_chunked = prefill_tps_chunked(&model, prefill_reps);
    println!(
        "prefill: {prefill_token:.0} -> {prefill_chunked:.0} tok/s ({:.2}x)",
        prefill_chunked / prefill_token
    );
    entries.push(("prefill_token_at_a_time_tps".into(), prefill_token));
    entries.push((
        "prefill_token_optimized_tps".into(),
        prefill_optimized_token,
    ));
    entries.push(("prefill_chunked_tps".into(), prefill_chunked));
    entries.push(("prefill_speedup".into(), prefill_chunked / prefill_token));
    entries.push((
        "prefill_chunking_speedup".into(),
        prefill_chunked / prefill_optimized_token,
    ));

    // ---- 8-session fleet through the serve engine (wall clock):
    //      reference kernels + sequential engine ("before"), optimised
    //      kernels + sequential engine, optimised kernels + batch lanes
    //      ("after"). All three compute the same schedule. ----
    let fleet_tokens = if opts.quick { 16 } else { 48 };
    for (name, spec) in [
        ("dense", StrategySpec::Dense),
        ("dip", StrategySpec::Dip { density: 0.5 }),
        (
            "dip_ca",
            StrategySpec::DipCacheAware {
                density: 0.5,
                gamma: 0.2,
            },
        ),
    ] {
        let mut seq_engine = fleet_engine(&config, fleet_tokens, ExecutionMode::Sequential);
        let mut batched_engine = fleet_engine(&config, fleet_tokens, ExecutionMode::Batched);
        tensor::kernels::set_reference_mode(true);
        let reference = best_tps(3, || fleet_wall_tps(&mut seq_engine, spec, fleet_tokens));
        tensor::kernels::set_reference_mode(false);
        let sequential = best_tps(3, || fleet_wall_tps(&mut seq_engine, spec, fleet_tokens));
        let batched = best_tps(3, || {
            fleet_wall_tps(&mut batched_engine, spec, fleet_tokens)
        });
        println!(
            "fleet8 {name}: {reference:.0} (reference) -> {sequential:.0} (sequential) -> \
             {batched:.0} (batched) tok/s (batch {:.2}x)",
            batched / sequential
        );
        entries.push((format!("fleet8_{name}_reference_tps"), reference));
        entries.push((format!("fleet8_{name}_sequential_tps"), sequential));
        entries.push((format!("fleet8_{name}_optimized_tps"), batched));
        entries.push((format!("fleet8_{name}_speedup"), batched / reference));
        entries.push((format!("fleet8_{name}_batch_speedup"), batched / sequential));
    }

    // ---- paged-KV fleet: 2048 template-sharing sessions on a fixed page
    //      budget, prefix sharing off vs on. The simulated tok/s and
    //      TTFT-p95 ratios come from the virtual clock (deterministic, so
    //      `--quick` and full mode gate against the same baseline); the
    //      wall-clock ratio measures the prefill compute the prefix cache
    //      removes on this host. ----
    let tiny = ModelConfig::tiny();
    let scenario = experiments::serving::run_paged_fleet(PAGED_FLEET_SESSIONS)
        .expect("paged-fleet scenario runs");
    let shared_stats = scenario.shared.paged_kv.as_ref().expect("paged stats");
    let sim_speedup = scenario.shared.aggregate_tps / scenario.isolated.aggregate_tps;
    let ttft_speedup = scenario.isolated_ttft_p95_s / scenario.shared_ttft_p95_s.max(1e-12);
    let mut isolated_engine = paged_fleet_engine(false);
    let mut shared_engine = paged_fleet_engine(true);
    let isolated_wall = best_tps(3, || paged_fleet_wall_tps(&mut isolated_engine));
    let shared_wall = best_tps(3, || paged_fleet_wall_tps(&mut shared_engine));
    println!(
        "paged fleet ({PAGED_FLEET_SESSIONS} sessions): sim {:.0} -> {:.0} tok/s ({sim_speedup:.2}x), \
         TTFT p95 {ttft_speedup:.2}x, wall {isolated_wall:.0} -> {shared_wall:.0} tok/s ({:.2}x)",
        scenario.isolated.aggregate_tps,
        scenario.shared.aggregate_tps,
        shared_wall / isolated_wall
    );
    let paged_entries: Vec<(String, f64)> = vec![
        ("paged_fleet_sessions".into(), PAGED_FLEET_SESSIONS as f64),
        ("paged_fleet_pool_pages".into(), scenario.pool_pages as f64),
        (
            "paged_fleet_isolated_sim_tps".into(),
            scenario.isolated.aggregate_tps,
        ),
        (
            "paged_fleet_shared_sim_tps".into(),
            scenario.shared.aggregate_tps,
        ),
        ("paged_fleet_sharing_speedup".into(), sim_speedup),
        ("paged_fleet_ttft_p95_speedup".into(), ttft_speedup),
        (
            "paged_fleet_prefix_hits".into(),
            shared_stats.prefix_hits as f64,
        ),
        (
            "paged_fleet_prefix_tokens_saved".into(),
            shared_stats.prefix_tokens_saved as f64,
        ),
        (
            "paged_fleet_pages_high_water".into(),
            shared_stats.pages_high_water as f64,
        ),
        ("paged_fleet_isolated_wall_tps".into(), isolated_wall),
        ("paged_fleet_shared_wall_tps".into(), shared_wall),
        (
            "paged_fleet_wall_speedup".into(),
            shared_wall / isolated_wall,
        ),
    ];

    // ---- event-loop core: head-of-line stall + spill pricing, all on the
    //      deterministic virtual clock (no wall-clock rows; `--quick` and
    //      full mode gate against the same baseline) ----
    let stall = experiments::serving::run_event_loop_stall().expect("event-loop scenario runs");
    let spill_ol = stall.spill.open_loop.as_ref().expect("open-loop stats");
    let cost_per_preemption_us = 1e6 * spill_ol.kv_swap_s / spill_ol.preemptions.max(1) as f64;
    println!(
        "event loop: decode TBT p99 {:.3} -> {:.3} us ({:.2}x stall cut) at {:.2}x tok/s; \
         spill fleet {:.0} tok/s, {:.3} us/preemption over {} preemptions",
        1e6 * stall.step_tbt_p99_s,
        1e6 * stall.event_tbt_p99_s,
        stall.stall_ratio,
        stall.tps_ratio,
        stall.spill.aggregate_tps,
        cost_per_preemption_us,
        spill_ol.preemptions
    );
    let event_entries: Vec<(String, f64)> = vec![
        ("event_loop_decoders".into(), stall.decoders as f64),
        (
            "event_loop_long_prompt_tokens".into(),
            stall.long_prompt_tokens as f64,
        ),
        (
            "event_loop_prefill_chunk_tokens".into(),
            stall.prefill_chunk_tokens as f64,
        ),
        (
            "event_loop_step_tbt_p99_us".into(),
            1e6 * stall.step_tbt_p99_s,
        ),
        (
            "event_loop_event_tbt_p99_us".into(),
            1e6 * stall.event_tbt_p99_s,
        ),
        ("event_loop_tbt_p99_stall_ratio".into(), stall.stall_ratio),
        ("event_loop_step_sim_tps".into(), stall.step.aggregate_tps),
        ("event_loop_event_sim_tps".into(), stall.event.aggregate_tps),
        ("event_loop_tps_ratio".into(), stall.tps_ratio),
        (
            "event_loop_spill_fleet_sim_tps".into(),
            stall.spill.aggregate_tps,
        ),
        (
            "event_loop_spill_preemptions".into(),
            spill_ol.preemptions as f64,
        ),
        (
            "event_loop_spill_kv_swap_us".into(),
            1e6 * spill_ol.kv_swap_s,
        ),
        (
            "event_loop_spill_kv_swap_bytes".into(),
            spill_ol.kv_swap_bytes,
        ),
        (
            "event_loop_cost_per_preemption_us".into(),
            cost_per_preemption_us,
        ),
    ];
    assert!(
        cost_per_preemption_us > 0.0,
        "every preemption must carry a non-zero priced virtual cost"
    );

    // ---- chaos + graceful degradation: seeded fault injection with
    //      conservation and replay determinism verified, plus the
    //      degrade-vs-shed headline — all virtual-clock numbers, so
    //      `--quick` and full mode gate against the same baseline ----
    // seed 4 exercises every lifecycle path at once: client cancels,
    // injected deadline expiries, a retried abort, and KV page loss
    let chaos_seed = 4u64;
    let chaos = experiments::serving::run_chaos(chaos_seed).expect("chaos scenario runs");
    let chaos_replay = experiments::serving::run_chaos(chaos_seed).expect("chaos replay runs");
    let chaos_deterministic =
        chaos.chaos == chaos_replay.chaos && chaos.clean == chaos_replay.clean;
    let chaos_conserved = experiments::serving::conservation_violation(&chaos.clean).is_none()
        && experiments::serving::conservation_violation(&chaos.chaos).is_none();
    let chaos_ol = chaos.chaos.open_loop.as_ref().expect("open-loop stats");
    let headline =
        experiments::serving::run_degrade_vs_shed().expect("degrade-vs-shed scenario runs");
    println!(
        "chaos (seed {chaos_seed}): {} arrived -> {} completed, {} cancelled, {} expired, \
         {} failed after {} retries, {} pages lost; degrade vs shed: premium SLO \
         {:.1}% -> {:.1}% at {:.3}x tok/s",
        chaos_ol.arrived,
        chaos_ol.completed,
        chaos_ol.cancelled,
        chaos_ol.deadline_expired,
        chaos_ol.failed,
        chaos_ol.retries,
        chaos_ol.kv_pages_lost,
        100.0 * headline.shed_premium_slo,
        100.0 * headline.degrade_premium_slo,
        headline.tps_ratio
    );
    let chaos_entries: Vec<(String, f64)> = vec![
        ("chaos_seed".into(), chaos_seed as f64),
        ("chaos_arrived".into(), chaos_ol.arrived as f64),
        ("chaos_completed".into(), chaos_ol.completed as f64),
        ("chaos_cancelled".into(), chaos_ol.cancelled as f64),
        (
            "chaos_deadline_expired".into(),
            chaos_ol.deadline_expired as f64,
        ),
        ("chaos_failed".into(), chaos_ol.failed as f64),
        ("chaos_retries".into(), chaos_ol.retries as f64),
        ("chaos_kv_pages_lost".into(), chaos_ol.kv_pages_lost as f64),
        (
            "chaos_kv_refill_tokens".into(),
            chaos_ol.kv_refill_tokens as f64,
        ),
        (
            "chaos_degraded_sessions".into(),
            chaos_ol.degraded_sessions as f64,
        ),
        ("chaos_sim_tps".into(), chaos.chaos.aggregate_tps),
        ("chaos_clean_sim_tps".into(), chaos.clean.aggregate_tps),
        (
            "chaos_conserved".into(),
            if chaos_conserved { 1.0 } else { 0.0 },
        ),
        (
            "chaos_deterministic".into(),
            if chaos_deterministic { 1.0 } else { 0.0 },
        ),
        ("degrade_vs_shed_slots".into(), headline.slots as f64),
        (
            "degrade_vs_shed_pool_pages".into(),
            headline.pool_pages as f64,
        ),
        ("shed_premium_slo".into(), headline.shed_premium_slo),
        ("degrade_premium_slo".into(), headline.degrade_premium_slo),
        ("degrade_premium_slo_lift".into(), headline.premium_slo_lift),
        ("degrade_tps_ratio".into(), headline.tps_ratio),
        (
            "degrade_shed_only_sim_tps".into(),
            headline.shed_only.aggregate_tps,
        ),
        (
            "degrade_degraded_sim_tps".into(),
            headline.degraded.aggregate_tps,
        ),
    ];

    // ---- write the reports ----
    let mode = if opts.quick { "quick" } else { "full" };
    write_flat_json(&opts.out, &config.name, mode, &entries);
    write_flat_json(&opts.paged_out, &tiny.name, mode, &paged_entries);
    write_flat_json(&opts.event_out, &tiny.name, mode, &event_entries);
    write_flat_json(&opts.chaos_out, &tiny.name, mode, &chaos_entries);

    // ---- the same entries through the telemetry exposition pipeline ----
    // one writer, two sinks per group: the flat JSON above stays the
    // `--check`/`--check-paged`/`--check-event` baseline format, the
    // exposition below feeds the same scrape tooling the serving bin's
    // --metrics-out output does
    write_exposition(&opts.out, &config.name, mode, &entries);
    write_exposition(&opts.paged_out, &tiny.name, mode, &paged_entries);
    write_exposition(&opts.event_out, &tiny.name, mode, &event_entries);
    write_exposition(&opts.chaos_out, &tiny.name, mode, &chaos_entries);

    // ---- regression checks against the committed baselines ----
    let mut failures = Vec::new();
    let mut checked = false;
    if let Some(baseline_path) = &opts.check {
        checked = true;
        failures.extend(check_ratios(
            baseline_path,
            &entries,
            &[
                "decode_dense_speedup",
                "decode_dip_speedup",
                "decode_dip_ca_speedup",
                "prefill_speedup",
                "fleet8_dense_speedup",
                "fleet8_dip_speedup",
                "fleet8_dip_ca_speedup",
            ],
        ));
    }
    // only the simulated ratios are gated: they run on the virtual clock
    // and reproduce bit-for-bit, so any drift is a real scheduling or
    // sharing change. The wall-clock ratio is reported for trajectory but
    // not gated — host noise on shared runners spans more than the 20%
    // tolerance even best-of-3.
    if let Some(baseline_path) = &opts.check_paged {
        checked = true;
        failures.extend(check_ratios(
            baseline_path,
            &paged_entries,
            &[
                "paged_fleet_sharing_speedup",
                "paged_fleet_ttft_p95_speedup",
            ],
        ));
    }
    // event-loop rows are all virtual-clock numbers, so the stall cut, the
    // equal-work throughput ratio and the spill-priced fleet tok/s gate
    // exactly like the paged simulated ratios do
    if let Some(baseline_path) = &opts.check_event {
        checked = true;
        failures.extend(check_ratios(
            baseline_path,
            &event_entries,
            &[
                "event_loop_tbt_p99_stall_ratio",
                "event_loop_tps_ratio",
                "event_loop_spill_fleet_sim_tps",
            ],
        ));
    }
    // chaos rows are virtual-clock numbers too; the gate holds the
    // robustness trajectory — requests completed under the same fault
    // plan, the premium SLO lift degradation buys, near-equal throughput,
    // and the two binary invariants (conservation, replay determinism)
    // which a 20% tolerance on a 0-or-1 value only passes at exactly 1
    if let Some(baseline_path) = &opts.check_chaos {
        checked = true;
        failures.extend(check_ratios(
            baseline_path,
            &chaos_entries,
            &[
                "chaos_completed",
                "chaos_conserved",
                "chaos_deterministic",
                "degrade_premium_slo_lift",
                "degrade_tps_ratio",
            ],
        ));
    }
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("REGRESSION {f}");
        }
        std::process::exit(1);
    }
    if checked {
        println!("regression check passed");
    }
}

/// Writes one measurement group as the flat JSON the `--check` gates parse.
fn write_flat_json(path: &str, model: &str, mode: &str, entries: &[(String, f64)]) {
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"model\": \"{model}\",");
    let _ = writeln!(json, "  \"mode\": \"{mode}\",");
    for (i, (k, v)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        let _ = writeln!(json, "  \"{k}\": {v:.3}{comma}");
    }
    json.push_str("}\n");
    std::fs::write(path, &json).expect("write report");
    println!("wrote {path}");
}

/// Writes the same group as a Prometheus text exposition next to the JSON
/// (`<out>.prom`, one gauge per entry, `mode`/`model` as const labels).
fn write_exposition(out: &str, model: &str, mode: &str, entries: &[(String, f64)]) {
    let mut registry =
        telemetry::MetricsRegistry::with_const_labels(&[("mode", mode), ("model", model)]);
    for (key, value) in entries {
        let unit = if key.ends_with("_ns") {
            "nanoseconds per call, best-of-reps"
        } else if key.ends_with("_us") {
            "microseconds of virtual-clock time"
        } else if key.ends_with("_tps") {
            "tokens per second of wall clock"
        } else if key.ends_with("_speedup") {
            "speedup ratio (dimensionless)"
        } else if key.ends_with("_ratio") {
            "ratio (dimensionless)"
        } else if key.ends_with("_bytes") {
            "bytes of priced traffic"
        } else {
            "count (dimensionless)"
        };
        let id = registry.gauge(&format!("perf_{key}"), unit);
        registry.set(id, *value);
    }
    let exposition = telemetry::render_prometheus(&registry);
    telemetry::check_exposition(&exposition).expect("internal error: invalid exposition");
    let prom_out = format!("{out}.prom");
    std::fs::write(&prom_out, &exposition).expect("write exposition");
    println!("wrote {prom_out}");
}

/// Compares each `keys` entry against the committed baseline and returns
/// the failures. Speedups are self-normalising (both sides of every ratio
/// are measured on this host — or on the deterministic virtual clock), so
/// the check transfers across machines; >20% regression fails.
fn check_ratios(baseline_path: &str, entries: &[(String, f64)], keys: &[&str]) -> Vec<String> {
    let baseline = std::fs::read_to_string(baseline_path).expect("read baseline");
    let mut failures = Vec::new();
    for key in keys {
        let expected = extract_number(&baseline, key)
            .unwrap_or_else(|| panic!("baseline {baseline_path} lacks `{key}`"));
        let measured = entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
            .expect("measured entry present");
        if measured < expected * 0.8 {
            failures.push(format!(
                "{key}: measured {measured:.2}x vs baseline {expected:.2}x (>20% regression)"
            ));
        } else {
            println!("check {key}: {measured:.2}x vs baseline {expected:.2}x — ok");
        }
    }
    failures
}

/// Extracts `"key": <number>` from a flat JSON document.
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E' || c == '+')
        })
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}
