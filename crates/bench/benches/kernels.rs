//! Micro-benchmarks of the kernels that dominate on-device token generation:
//! dense vs column-sparse matrix–vector products, per-token top-k selection,
//! the DIP / DIP-CA MLP forward passes, and the DRAM cache policies.

use bench::{bench_input, bench_model};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dip_core::strategies::{Dip, DipCacheAware};
use hwsim::cache::{BeladyColumnCache, LfuColumnCache, LruColumnCache};
use hwsim::{BlockCacheCapacity, ColumnCache};
use lm::mlp::{DenseMlp, MlpForward};
use std::hint::black_box;
use tensor::topk;

fn bench_matvec(c: &mut Criterion) {
    let model = bench_model();
    let mlp = &model.layers[0].mlp;
    let x = bench_input(mlp.d_model());
    let active: Vec<usize> = (0..mlp.d_model()).step_by(2).collect();

    let mut group = c.benchmark_group("matvec");
    group.bench_function("dense", |b| {
        b.iter(|| black_box(mlp.w_up.matvec(black_box(&x)).unwrap()))
    });
    group.bench_function("column_sparse_50pct", |b| {
        b.iter(|| {
            black_box(
                mlp.w_up
                    .matvec_cols(black_box(&x), black_box(&active))
                    .unwrap(),
            )
        })
    });
    group.finish();
}

fn bench_topk(c: &mut Criterion) {
    let values = bench_input(4096);
    let mut group = c.benchmark_group("topk");
    group.bench_function("top_k_by_magnitude_50pct", |b| {
        b.iter(|| black_box(topk::top_k_by_magnitude(black_box(&values), 2048)))
    });
    group.bench_function("threshold_selection", |b| {
        b.iter(|| black_box(topk::indices_above_threshold(black_box(&values), 0.5)))
    });
    group.finish();
}

fn bench_mlp_strategies(c: &mut Criterion) {
    let model = bench_model();
    let mlp = &model.layers[0].mlp;
    let x = bench_input(mlp.d_model());
    let capacities: Vec<BlockCacheCapacity> = (0..model.n_layers())
        .map(|_| BlockCacheCapacity {
            up: mlp.d_model() / 2,
            gate: mlp.d_model() / 2,
            down: mlp.d_ff() / 2,
        })
        .collect();

    let mut group = c.benchmark_group("mlp_forward");
    group.bench_function("dense", |b| {
        let mut strategy = DenseMlp;
        b.iter(|| black_box(strategy.forward(0, mlp, black_box(&x)).unwrap()))
    });
    group.bench_function("dip_50pct", |b| {
        let mut strategy = Dip::new(0.5, 0.5).unwrap();
        b.iter(|| black_box(strategy.forward(0, mlp, black_box(&x)).unwrap()))
    });
    group.bench_function("dip_ca_50pct", |b| {
        let mut strategy =
            DipCacheAware::new(0.5, 0.5, 0.2, mlp.d_model(), mlp.d_ff(), capacities.clone())
                .unwrap();
        b.iter(|| black_box(strategy.forward(0, mlp, black_box(&x)).unwrap()))
    });
    group.finish();
}

fn bench_cache_policies(c: &mut Criterion) {
    let n_columns = 1024;
    let capacity = 256;
    let accesses: Vec<Vec<usize>> = (0..64)
        .map(|t| (0..128).map(|i| (i * 7 + t * 13) % n_columns).collect())
        .collect();

    let mut group = c.benchmark_group("cache_policies");
    group.bench_function("lru", |b| {
        b.iter_batched(
            || LruColumnCache::new(n_columns, capacity),
            |mut cache| {
                for a in &accesses {
                    black_box(cache.access(a));
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("lfu", |b| {
        b.iter_batched(
            || LfuColumnCache::new(n_columns, capacity),
            |mut cache| {
                for a in &accesses {
                    black_box(cache.access(a));
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("belady", |b| {
        b.iter_batched(
            || BeladyColumnCache::new(n_columns, capacity, &accesses),
            |mut cache| {
                for a in &accesses {
                    black_box(cache.access(a));
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_matvec, bench_topk, bench_mlp_strategies, bench_cache_policies
}
criterion_main!(kernels);
