//! Micro-benchmarks of the kernels that dominate on-device token generation:
//! dense vs column-sparse matrix–vector products, per-token top-k selection,
//! the DIP / DIP-CA MLP forward passes, and the DRAM cache policies.

use bench::{bench_input, bench_model};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use dip_core::strategies::{Dip, DipCacheAware};
use hwsim::cache::{BeladyColumnCache, LfuColumnCache, LruColumnCache};
use hwsim::{BlockCacheCapacity, ColumnCache};
use lm::mlp::{DenseMlp, MlpForward};
use std::hint::black_box;
use tensor::topk;

fn bench_matvec(c: &mut Criterion) {
    let model = bench_model();
    let mlp = &model.layers[0].mlp;
    let x = bench_input(mlp.d_model());
    let active: Vec<usize> = (0..mlp.d_model()).step_by(2).collect();

    let mut group = c.benchmark_group("matvec");
    group.bench_function("dense", |b| {
        b.iter(|| black_box(mlp.w_up.matvec(black_box(&x)).unwrap()))
    });
    group.bench_function("column_sparse_50pct", |b| {
        b.iter(|| {
            black_box(
                mlp.w_up
                    .matvec_cols(black_box(&x), black_box(&active))
                    .unwrap(),
            )
        })
    });
    group.finish();
}

/// Kernel variants at phi3-mini shapes (`W_u`: d_ff × d_model = 320 × 96):
/// naive reference vs allocating vs `_into` vs gathered column-sparse vs
/// pre-transposed mirror vs worker-pool threaded. The perf trajectory's
/// `BENCH_PR3.json` is produced from the same comparisons by the
/// `perf_report` bin.
fn bench_kernels_phi3_shapes(c: &mut Criterion) {
    use lm::ModelConfig;
    let config = ModelConfig::phi3_mini_sim();
    let model = lm::build_synthetic(&config, 42).expect("phi3-mini-sim builds");
    let mlp = &model.layers[0].mlp;
    let x = bench_input(mlp.d_model());
    let active: Vec<usize> = (0..mlp.d_model()).step_by(2).collect();
    let mirror = mlp.w_up.transpose();
    let mut out = vec![0.0f32; mlp.d_ff()];

    let mut group = c.benchmark_group("kernels");
    group.bench_function("matvec_reference", |b| {
        b.iter(|| {
            tensor::reference::matvec_into(black_box(&mlp.w_up), black_box(&x), &mut out);
            black_box(&out);
        })
    });
    group.bench_function("matvec_alloc", |b| {
        b.iter(|| black_box(mlp.w_up.matvec(black_box(&x)).unwrap()))
    });
    group.bench_function("matvec_into", |b| {
        b.iter(|| {
            mlp.w_up.matvec_into(black_box(&x), &mut out).unwrap();
            black_box(&out);
        })
    });
    group.bench_function("matvec_mirrored", |b| {
        b.iter(|| {
            mlp.w_up
                .matvec_mirrored(black_box(&mirror), black_box(&x), &mut out)
                .unwrap();
            black_box(&out);
        })
    });
    group.bench_function("matvec_cols_reference_50pct", |b| {
        b.iter(|| {
            tensor::reference::matvec_cols_into(
                black_box(&mlp.w_up),
                black_box(&x),
                black_box(&active),
                &mut out,
            );
            black_box(&out);
        })
    });
    group.bench_function("matvec_cols_gathered_50pct", |b| {
        b.iter(|| {
            mlp.w_up
                .matvec_cols_into(black_box(&x), black_box(&active), &mut out)
                .unwrap();
            black_box(&out);
        })
    });
    group.bench_function("matvec_cols_mirrored_50pct", |b| {
        b.iter(|| {
            mlp.w_up
                .matvec_cols_mirrored(
                    black_box(&mirror),
                    black_box(&x),
                    black_box(&active),
                    &mut out,
                )
                .unwrap();
            black_box(&out);
        })
    });

    // the threaded kernel only forks past its size threshold — use an
    // LM-head-scale matrix so the pool path actually runs
    let big = tensor::Matrix::from_vec(
        1024,
        256,
        (0..1024 * 256)
            .map(|i| ((i * 37) % 113) as f32 / 113.0 - 0.5)
            .collect(),
    )
    .unwrap();
    let big_x = bench_input(256);
    let mut big_out = vec![0.0f32; 1024];
    let pool = tensor::WorkerPool::global();
    group.bench_function("matvec_big_sequential", |b| {
        b.iter(|| {
            big.matvec_into(black_box(&big_x), &mut big_out).unwrap();
            black_box(&big_out);
        })
    });
    group.bench_function("matvec_big_threaded", |b| {
        b.iter(|| {
            big.matvec_into_threaded(black_box(&big_x), &mut big_out, pool)
                .unwrap();
            black_box(&big_out);
        })
    });
    group.finish();
}

fn bench_topk(c: &mut Criterion) {
    let values = bench_input(4096);
    let mut group = c.benchmark_group("topk");
    group.bench_function("top_k_by_magnitude_50pct", |b| {
        b.iter(|| black_box(topk::top_k_by_magnitude(black_box(&values), 2048)))
    });
    group.bench_function("threshold_selection", |b| {
        b.iter(|| black_box(topk::indices_above_threshold(black_box(&values), 0.5)))
    });
    group.finish();
}

fn bench_mlp_strategies(c: &mut Criterion) {
    let model = bench_model();
    let mlp = &model.layers[0].mlp;
    let x = bench_input(mlp.d_model());
    let capacities: Vec<BlockCacheCapacity> = (0..model.n_layers())
        .map(|_| BlockCacheCapacity {
            up: mlp.d_model() / 2,
            gate: mlp.d_model() / 2,
            down: mlp.d_ff() / 2,
        })
        .collect();

    let mut group = c.benchmark_group("mlp_forward");
    group.bench_function("dense", |b| {
        let mut strategy = DenseMlp;
        b.iter(|| black_box(strategy.forward(0, mlp, black_box(&x)).unwrap()))
    });
    group.bench_function("dip_50pct", |b| {
        let mut strategy = Dip::new(0.5, 0.5).unwrap();
        b.iter(|| black_box(strategy.forward(0, mlp, black_box(&x)).unwrap()))
    });
    group.bench_function("dip_ca_50pct", |b| {
        let mut strategy =
            DipCacheAware::new(0.5, 0.5, 0.2, mlp.d_model(), mlp.d_ff(), capacities.clone())
                .unwrap();
        b.iter(|| black_box(strategy.forward(0, mlp, black_box(&x)).unwrap()))
    });
    group.finish();
}

fn bench_cache_policies(c: &mut Criterion) {
    let n_columns = 1024;
    let capacity = 256;
    let accesses: Vec<Vec<usize>> = (0..64)
        .map(|t| (0..128).map(|i| (i * 7 + t * 13) % n_columns).collect())
        .collect();

    let mut group = c.benchmark_group("cache_policies");
    group.bench_function("lru", |b| {
        b.iter_batched(
            || LruColumnCache::new(n_columns, capacity),
            |mut cache| {
                for a in &accesses {
                    black_box(cache.access(a));
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("lfu", |b| {
        b.iter_batched(
            || LfuColumnCache::new(n_columns, capacity),
            |mut cache| {
                for a in &accesses {
                    black_box(cache.access(a));
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("belady", |b| {
        b.iter_batched(
            || BeladyColumnCache::new(n_columns, capacity, &accesses),
            |mut cache| {
                for a in &accesses {
                    black_box(cache.access(a));
                }
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_matvec, bench_kernels_phi3_shapes, bench_topk, bench_mlp_strategies,
        bench_cache_policies
}
criterion_main!(kernels);
