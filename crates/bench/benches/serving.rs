//! Benchmarks of the multi-session serving engine: end-to-end fleet runs
//! (dense vs DIP vs DIP-CA under shared-cache contention) plus the
//! interleaved shared-cache replay in isolation.

use bench::bench_config;
use criterion::{criterion_group, criterion_main, Criterion};
use lm::{build_synthetic, SliceAxis};
use serve::{
    ArrivalProcess, GenRequest, RequestTemplate, SchedulerPolicy, ServeConfig, ServeEngine,
    StrategySpec, Tier, Workload,
};
use std::hint::black_box;
use std::time::Duration;

const SLOTS: usize = 8;

fn engine_with(scheduler: SchedulerPolicy) -> ServeEngine {
    let config = bench_config();
    let model = build_synthetic(&config, 42).expect("tiny config is valid");
    let layout = serve::layout::layout_for_serving(
        &config,
        [SliceAxis::Input; 3],
        4.0,
        SLOTS,
        config.max_seq_len,
    );
    let dram = layout.static_bytes + ((layout.mlp_bytes() as f64) * 0.55) as u64;
    let device = hwsim::DeviceConfig::apple_a18(4.0).with_dram_bytes(dram);
    ServeEngine::new(
        model,
        ServeConfig::new(device)
            .with_max_concurrent(SLOTS)
            .with_scheduler(scheduler),
    )
    .expect("serve config is valid")
}

fn engine() -> ServeEngine {
    engine_with(SchedulerPolicy::Fifo)
}

fn fleet(strategy: StrategySpec) -> Vec<GenRequest> {
    (0..SLOTS)
        .map(|i| GenRequest::new(i as u64, vec![(i % 5) as u32 + 1], 8, strategy))
        .collect()
}

fn bench_fleet_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("serve_fleet");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    group.bench_function("dense_8_sessions", |b| {
        let mut engine = engine();
        b.iter(|| black_box(engine.run(fleet(StrategySpec::Dense)).unwrap()))
    });
    group.bench_function("dip_50pct_8_sessions", |b| {
        let mut engine = engine();
        b.iter(|| {
            black_box(
                engine
                    .run(fleet(StrategySpec::Dip { density: 0.5 }))
                    .unwrap(),
            )
        })
    });
    group.bench_function("dip_ca_50pct_8_sessions", |b| {
        let mut engine = engine();
        b.iter(|| {
            black_box(
                engine
                    .run(fleet(StrategySpec::DipCacheAware {
                        density: 0.5,
                        gamma: 0.2,
                    }))
                    .unwrap(),
            )
        })
    });
    group.finish();
}

fn bench_open_loop(c: &mut Criterion) {
    // Open-loop pipeline end to end: workload generation, admission,
    // preemptive scheduling, online pricing. The workload is calibrated to
    // the simulated service rate so the bursts genuinely queue and preempt.
    let per_token = {
        let mut probe = engine();
        let report = probe
            .run(vec![GenRequest::new(
                0,
                vec![1, 2],
                30,
                StrategySpec::Dense,
            )])
            .expect("probe run");
        report.makespan_s / 32.0
    };
    let on_s = 20.0 * SLOTS as f64 * per_token;
    let workload = Workload::new(
        0xb0b,
        4.0 * on_s,
        ArrivalProcess::OnOff {
            rate_per_s: 1.0 / (2.0 * per_token),
            on_s,
            off_s: on_s,
        },
        vec![
            RequestTemplate::new((2, 4), (6, 10), StrategySpec::Dip { density: 0.5 })
                .with_tier(Tier::Batch)
                .with_weight(4.0),
            RequestTemplate::new((1, 2), (2, 4), StrategySpec::Dip { density: 0.5 })
                .with_tier(Tier::Premium),
        ],
    );

    let mut group = c.benchmark_group("serve_open_loop");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    group.bench_function("fifo_bursty", |b| {
        let mut engine = engine();
        b.iter(|| black_box(engine.run_open_loop(&workload).unwrap()))
    });
    group.bench_function("priority_preemptive_bursty", |b| {
        let mut engine = engine_with(SchedulerPolicy::PriorityPreemptive);
        b.iter(|| black_box(engine.run_open_loop(&workload).unwrap()))
    });
    group.finish();
}

fn bench_concurrent_replay(c: &mut Criterion) {
    // Isolate the shared-cache replay from model execution: price a fixed
    // 8-stream interleave.
    let layout = hwsim::ModelLayout::from_dims("replay-bench", 4, 64, 192, 4.0, 100_000);
    let device = hwsim::DeviceConfig::apple_a18(4.0).with_dram_bytes(260_000);
    let streams: Vec<hwsim::AccessTrace> = (0..8)
        .map(|s| {
            let mut trace = hwsim::AccessTrace::new();
            for t in 0..16 {
                let blocks = (0..4)
                    .map(|b| hwsim::BlockAccess {
                        up: hwsim::AccessSet::Subset(
                            (0..32).map(|i| (i + s * 3 + t + b) % 64).collect(),
                        ),
                        gate: hwsim::AccessSet::Subset(
                            (0..32).map(|i| (i + s * 3 + t + b) % 64).collect(),
                        ),
                        down: hwsim::AccessSet::Subset(
                            (0..96).map(|i| (i + s * 5 + t + b) % 192).collect(),
                        ),
                    })
                    .collect();
                trace.push(hwsim::TokenAccess { blocks });
            }
            trace
        })
        .collect();
    let order = hwsim::round_robin_order(&streams);

    let mut group = c.benchmark_group("serve_replay");
    group.sample_size(20);
    group.bench_function("simulate_concurrent_8x16", |b| {
        b.iter(|| {
            black_box(
                hwsim::simulate_concurrent(
                    &layout,
                    &device,
                    hwsim::EvictionPolicy::Lfu,
                    &streams,
                    &order,
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group! {
    name = serving;
    config = Criterion::default().sample_size(10);
    targets = bench_fleet_runs, bench_open_loop, bench_concurrent_replay
}
criterion_main!(serving);
