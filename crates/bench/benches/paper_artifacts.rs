//! One benchmark per paper table/figure.
//!
//! Each benchmark exercises the measurement step that regenerates the
//! corresponding artefact at smoke scale (the full sweeps are produced by the
//! `experiments` binaries; these benches track how expensive each artefact's
//! core measurement is and guard against performance regressions).

use bench::bench_workbench;
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::figures::{fig10, fig11, fig12, fig2, fig3, fig4, fig6, fig8, fig9};
use experiments::tables::{ablations, table1, table2, table5};
use experiments::{MethodKind, Scale};
use hwsim::EvictionPolicy;
use std::hint::black_box;
use std::time::Duration;

fn bench_quality_and_throughput_steps(c: &mut Criterion) {
    let mut wb = bench_workbench();
    let device = wb.table2_device();

    let mut group = c.benchmark_group("measurement_steps");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    group.bench_function("table1_quality_dip_50pct", |b| {
        b.iter(|| black_box(wb.quality(MethodKind::Dip, 0.5).unwrap()))
    });
    group.bench_function("table2_throughput_dip_50pct", |b| {
        b.iter(|| {
            black_box(
                wb.throughput(MethodKind::Dip, 0.5, &device, EvictionPolicy::Lfu)
                    .unwrap(),
            )
        })
    });
    group.bench_function("table2_throughput_dip_ca_50pct", |b| {
        b.iter(|| {
            black_box(
                wb.throughput(MethodKind::DipCacheAware, 0.5, &device, EvictionPolicy::Lfu)
                    .unwrap(),
            )
        })
    });
    group.bench_function("table5_quality_cats_50pct", |b| {
        b.iter(|| black_box(wb.quality(MethodKind::Cats, 0.5).unwrap()))
    });
    group.finish();
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    group.bench_function("fig2_trend_fits", |b| {
        b.iter(|| black_box(fig2::run().unwrap()))
    });
    group.bench_function("fig3_activation_histograms", |b| {
        b.iter(|| black_box(fig3::run(Scale::Smoke).unwrap()))
    });
    group.bench_function("fig4_thresholding", |b| {
        b.iter(|| black_box(fig4::run(Scale::Smoke).unwrap()))
    });
    group.finish();
}

fn bench_heavy_artifacts(c: &mut Criterion) {
    // the full artefact runs are heavy even at smoke scale, so sample them
    // only a handful of times
    let mut group = c.benchmark_group("artifacts_smoke");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(300));
    group.bench_function("fig6_predictive_vs_oracle", |b| {
        b.iter(|| black_box(fig6::run(Scale::Smoke).unwrap()))
    });
    group.bench_function("fig8_pareto", |b| {
        b.iter(|| black_box(fig8::run(Scale::Smoke).unwrap()))
    });
    group.bench_function("fig9_memory_vs_ppl", |b| {
        b.iter(|| black_box(fig9::run(Scale::Smoke).unwrap()))
    });
    group.bench_function("fig10_gamma_ablation", |b| {
        b.iter(|| black_box(fig10::run(Scale::Smoke).unwrap()))
    });
    group.bench_function("fig11_cache_policies", |b| {
        b.iter(|| black_box(fig11::run(Scale::Smoke).unwrap()))
    });
    group.bench_function("fig12_density_allocation", |b| {
        b.iter(|| black_box(fig12::run(Scale::Smoke).unwrap()))
    });
    group.bench_function("table1_methods_at_50pct", |b| {
        b.iter(|| black_box(table1::run(Scale::Smoke).unwrap()))
    });
    group.bench_function("table2_throughput", |b| {
        b.iter(|| black_box(table2::run(Scale::Smoke).unwrap()))
    });
    group.bench_function("table5_per_task_accuracy", |b| {
        b.iter(|| black_box(table5::run(Scale::Smoke).unwrap()))
    });
    group.bench_function("table6_dram_ablation", |b| {
        b.iter(|| black_box(ablations::run_dram_ablation(Scale::Smoke).unwrap()))
    });
    group.bench_function("table7_flash_ablation", |b| {
        b.iter(|| black_box(ablations::run_flash_ablation(Scale::Smoke).unwrap()))
    });
    group.finish();
}

criterion_group! {
    name = artifacts;
    config = Criterion::default().sample_size(10);
    targets = bench_quality_and_throughput_steps, bench_figures, bench_heavy_artifacts
}
criterion_main!(artifacts);
