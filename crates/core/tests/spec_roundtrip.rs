//! Property tests for the declarative strategy API: any valid
//! [`StrategySpec`] must survive a JSON serialize → deserialize round trip
//! *identically*, and its report label must be stable across the round trip.

use dip_core::spec::{NmPattern, PredictorSpec, StrategySpec};
use proptest::prelude::*;

/// A density grid in (0, 1] with two-decimal resolution (representable
/// exactly enough that equality is meaningful after a round trip).
fn density() -> impl Strategy<Value = f32> {
    (1u32..=100).prop_map(|i| i as f32 / 100.0)
}

/// Densities reachable by two-of-three neuron-pruning schemes (> 1/3).
fn two_of_three_density() -> impl Strategy<Value = f32> {
    (34u32..=100).prop_map(|i| i as f32 / 100.0)
}

/// Densities reachable by down-only GLU pruning (≥ 2/3).
fn down_only_density() -> impl Strategy<Value = f32> {
    (67u32..=100).prop_map(|i| i as f32 / 100.0)
}

fn gamma() -> impl Strategy<Value = f32> {
    (1u32..=10).prop_map(|i| i as f32 / 10.0)
}

/// One random spec drawn across every method family.
fn any_spec() -> impl Strategy<Value = StrategySpec> {
    (0u32..9, density(), gamma(), 1u32..=16, 0u32..3).prop_map(
        |(method, density, gamma, rank, sub)| match method {
            0 => StrategySpec::Dense,
            1 => StrategySpec::GluOracle { density },
            2 => StrategySpec::Cats {
                density: density.max(0.34),
            },
            3 => StrategySpec::CatsLora {
                density: density.max(0.34),
                rank,
            },
            4 => StrategySpec::Predictive {
                density,
                predictor: match sub {
                    0 => PredictorSpec::default(),
                    1 => PredictorSpec {
                        hidden: Some(8 + rank),
                        epochs: None,
                    },
                    _ => PredictorSpec {
                        hidden: Some(8 + rank),
                        epochs: Some(1 + sub),
                    },
                },
            },
            5 => StrategySpec::SparseGpt {
                density,
                pattern: NmPattern::Unstructured,
            },
            6 => StrategySpec::Dip { density },
            7 => StrategySpec::DipLora { density, rank },
            _ => StrategySpec::DipCacheAware { density, gamma },
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn json_round_trip_is_identity(spec in any_spec()) {
        prop_assert!(spec.validate().is_ok(), "generated spec must be valid: {}", spec.label());
        let json = spec.to_json();
        let back = StrategySpec::from_json(&json).expect("round trip parses");
        prop_assert_eq!(spec, back);
    }

    #[test]
    fn label_is_stable_across_round_trip(spec in any_spec()) {
        let back = StrategySpec::from_json(&spec.to_json()).expect("round trip parses");
        prop_assert_eq!(spec.label(), back.label());
        prop_assert_eq!(spec.method_name(), back.method_name());
    }

    #[test]
    fn list_round_trip_preserves_order(
        specs in prop::collection::vec(any_spec(), 1..8),
    ) {
        let json = StrategySpec::list_to_json(&specs);
        let back = StrategySpec::list_from_json(&json).expect("list parses");
        prop_assert_eq!(specs, back);
    }

    #[test]
    fn gate_up_glu_variants_round_trip(
        d23 in two_of_three_density(),
        d_down in down_only_density(),
        pick in 0u32..2,
    ) {
        let neuron = if pick == 0 {
            StrategySpec::GatePruning { density: d23 }
        } else {
            StrategySpec::UpPruning { density: d23 }
        };
        prop_assert_eq!(neuron, StrategySpec::from_json(&neuron.to_json()).unwrap());
        let glu = StrategySpec::GluPruning { density: d_down };
        prop_assert_eq!(glu, StrategySpec::from_json(&glu.to_json()).unwrap());
    }

    #[test]
    fn nm_patterns_round_trip(n in 1u32..8, extra in 1u32..8) {
        let m = n + extra;
        let spec = StrategySpec::SparseGpt {
            density: n as f32 / m as f32,
            pattern: NmPattern::NofM { n, m },
        };
        prop_assert_eq!(spec, StrategySpec::from_json(&spec.to_json()).unwrap());
    }
}
