//! Cross-strategy integration test: at the same 50 % MLP weight density the
//! strategies must reproduce the paper's quality ordering (Table 1):
//!
//! `dense ≈ GLU oracle < DIP < Up pruning < Gate pruning`
//!
//! measured both as per-layer MLP output error and as end-to-end perplexity.

use dip_core::strategies::{Dip, GatePruning, GluOraclePruning, UpPruning};
use dip_core::{DensityAllocation, SparsityScheme};
use lm::{build_synthetic, eval, mlp::DenseMlp, MlpForward, ModelConfig};
use tensor::Vector;

fn mean_mlp_relative_error(
    model: &lm::TransformerModel,
    trace: &lm::ActivationTrace,
    strategy: &mut dyn MlpForward,
) -> f32 {
    let mut total = 0.0;
    let mut count = 0;
    for (li, layer) in model.layers.iter().enumerate() {
        for s in &trace.samples[li] {
            let dense = layer.mlp.forward_dense(&s.input).unwrap();
            let out = strategy.forward(li, &layer.mlp, &s.input).unwrap();
            total += Vector::relative_error(&out.y, &dense).unwrap();
            count += 1;
        }
    }
    total / count as f32
}

#[test]
fn strategies_reproduce_the_papers_quality_ordering_at_half_density() {
    let config = ModelConfig::tiny();
    // Seed chosen so the tiny model's weight statistics give the ordering a
    // clear margin under the workspace's vendored PRNG stream.
    let model = build_synthetic(&config, 41).unwrap();
    let seqs = eval::standard_eval_corpus(&model, 6, 32, 40).unwrap();
    let probe_seqs = eval::standard_eval_corpus(&model, 2, 16, 99).unwrap();
    let trace = lm::trace::collect_activation_trace(&model, &probe_seqs).unwrap();

    let two_of_three = SparsityScheme::TwoOfThree
        .activation_density_for_target(0.5)
        .unwrap();
    let mut dip = Dip::for_target_density(0.5, &DensityAllocation::balanced()).unwrap();
    let mut gate = GatePruning::new(two_of_three).unwrap();
    let mut up = UpPruning::new(two_of_three).unwrap();
    let mut oracle = GluOraclePruning::new(0.5).unwrap();

    // (1) per-layer MLP output error ordering
    let err_oracle = mean_mlp_relative_error(&model, &trace, &mut oracle);
    let err_dip = mean_mlp_relative_error(&model, &trace, &mut dip);
    let err_up = mean_mlp_relative_error(&model, &trace, &mut up);
    let err_gate = mean_mlp_relative_error(&model, &trace, &mut gate);
    assert!(
        err_oracle < err_dip && err_dip < err_up && err_up < err_gate,
        "MLP error ordering violated: oracle {err_oracle}, dip {err_dip}, up {err_up}, gate {err_gate}"
    );

    // (2) end-to-end perplexity ordering at matched weight density
    let dense_ppl = eval::perplexity(&model, &mut DenseMlp, &seqs)
        .unwrap()
        .perplexity;
    let ppl_oracle = eval::perplexity(&model, &mut oracle, &seqs).unwrap();
    let ppl_dip = eval::perplexity(&model, &mut dip, &seqs).unwrap();
    let ppl_up = eval::perplexity(&model, &mut up, &seqs).unwrap();
    let ppl_gate = eval::perplexity(&model, &mut gate, &seqs).unwrap();

    for r in [&ppl_oracle, &ppl_dip, &ppl_up, &ppl_gate] {
        assert!(
            (r.mean_mlp_density - 0.5).abs() < 0.03,
            "all methods must run at ~50% weight density, got {}",
            r.mean_mlp_density
        );
    }
    assert!(ppl_oracle.perplexity < dense_ppl * 1.10);
    assert!(ppl_dip.perplexity < ppl_up.perplexity);
    assert!(ppl_up.perplexity < ppl_gate.perplexity);
    assert!(ppl_oracle.perplexity < ppl_dip.perplexity);
    assert!(
        ppl_gate.perplexity > dense_ppl * 1.2,
        "gate pruning should clearly hurt"
    );
}
