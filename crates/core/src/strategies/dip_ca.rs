//! Cache-aware Dynamic Input Pruning (DIP-CA, Section 5.2, Eq. 10, Alg. 1).
//!
//! DIP-CA keeps DIP's per-token top-k selection but re-weights the magnitude
//! scores with the current DRAM cache state before the selection:
//!
//! `s = |x| * (c + γ (1 - c)) / ||x||_inf`
//!
//! where `c` is the binary "is this column currently cached" mask and
//! `γ ∈ (0, 1]` penalises non-cached columns. Activations in the broad
//! middle of the magnitude distribution (which contribute similarly to the
//! output — Fig. 10 left) get re-ordered in favour of cached columns, which
//! raises the cache hit rate and therefore throughput, while the strongest
//! activations still win even when not cached.
//!
//! The strategy owns one LFU cache (from the `hwsim` crate) per layer and per
//! pruned dimension, sized from a [`hwsim::BlockCacheCapacity`] allocation,
//! so its view of "what is cached" is exactly the simulator's.

use crate::error::{DipError, Result};
use hwsim::cache::LfuColumnCache;
use hwsim::{BlockCacheCapacity, ColumnCache};
use lm::{
    GluMlp, MatrixAccess, MlpAccessRecord, MlpAccessScratch, MlpBatchWorkspace, MlpForward,
    MlpForwardOutput, MlpWorkspace, SliceAxis,
};
use tensor::topk;

use crate::error::to_lm_error;

/// Per-layer caches: one over the input (`d_model`) dimension shared by
/// `W_u`/`W_g`, one over the intermediate (`d_ff`) dimension for `W_d`.
#[derive(Debug)]
struct LayerCaches {
    input: LfuColumnCache,
    glu: LfuColumnCache,
}

/// Cache-aware DIP.
#[derive(Debug)]
pub struct DipCacheAware {
    input_density: f32,
    glu_density: f32,
    gamma: f32,
    caches: Vec<LayerCaches>,
    capacities: Vec<BlockCacheCapacity>,
}

impl DipCacheAware {
    /// Creates DIP-CA.
    ///
    /// `capacities` must contain one entry per transformer layer; the
    /// up/gate (input-dimension) cache uses the smaller of the up and gate
    /// column budgets, the down cache uses the down budget.
    ///
    /// # Errors
    ///
    /// Returns [`DipError::InvalidParameter`] for densities outside `(0, 1]`,
    /// `gamma` outside `(0, 1]`, or an empty capacity list.
    pub fn new(
        input_density: f32,
        glu_density: f32,
        gamma: f32,
        d_model: usize,
        d_ff: usize,
        capacities: Vec<BlockCacheCapacity>,
    ) -> Result<Self> {
        super::validate_density("input_density", input_density)?;
        super::validate_density("glu_density", glu_density)?;
        if !(gamma.is_finite() && gamma > 0.0 && gamma <= 1.0) {
            return Err(DipError::InvalidParameter {
                name: "gamma",
                reason: format!("must be in (0, 1], got {gamma}"),
            });
        }
        if capacities.is_empty() {
            return Err(DipError::InvalidParameter {
                name: "capacities",
                reason: "need at least one layer capacity".to_string(),
            });
        }
        let caches = capacities
            .iter()
            .map(|c| LayerCaches {
                input: LfuColumnCache::new(d_model, c.up.min(c.gate)),
                glu: LfuColumnCache::new(d_ff, c.down),
            })
            .collect();
        Ok(DipCacheAware {
            input_density,
            glu_density,
            gamma,
            caches,
            capacities,
        })
    }

    /// The cache-aware penalty hyper-parameter γ.
    pub fn gamma(&self) -> f32 {
        self.gamma
    }

    /// The input (up/gate column) density.
    pub fn input_density(&self) -> f32 {
        self.input_density
    }

    /// The GLU (down column) density.
    pub fn glu_density(&self) -> f32 {
        self.glu_density
    }

    /// The overall MLP weight density implied by the two knobs.
    pub fn mlp_density(&self) -> f32 {
        (2.0 * self.input_density + self.glu_density) / 3.0
    }

    /// The per-layer capacities the internal caches were built from.
    pub fn capacities(&self) -> &[BlockCacheCapacity] {
        &self.capacities
    }

    /// Feeds another tenant's weight accesses into the internal cache
    /// models.
    ///
    /// In a multi-session serving deployment the DRAM column cache is shared
    /// by every session, so a cache-aware mask must account for co-tenant
    /// traffic (dense streams, plain DIP, other DIP-CA configurations) that
    /// hits and evicts the same columns. Layers outside the configured
    /// capacity list are ignored.
    pub fn observe_access(&mut self, layer: usize, input_cols: &[usize], glu_cols: &[usize]) {
        if let Some(caches) = self.caches.get_mut(layer) {
            caches.input.access(input_cols);
            caches.glu.access(glu_cols);
        }
    }

    /// Cache-aware re-weighting of magnitude scores (Eq. 10).
    ///
    /// Exposed for testing and for the γ-ablation experiment.
    pub fn reweight(values: &[f32], cached: &[bool], gamma: f32) -> Vec<f32> {
        let norm = values.iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1e-12);
        values
            .iter()
            .zip(cached.iter())
            .map(|(v, &c)| {
                let penalty = if c { 1.0 } else { gamma };
                v.abs() * penalty / norm
            })
            .collect()
    }

    fn select(
        values: &[f32],
        cache: &mut LfuColumnCache,
        density: f32,
        gamma: f32,
    ) -> Result<Vec<usize>> {
        let mut mask = Vec::new();
        let mut scores = Vec::new();
        let mut active = Vec::new();
        Self::select_into(
            values,
            cache,
            density,
            gamma,
            &mut mask,
            &mut scores,
            &mut active,
        )?;
        Ok(active)
    }

    /// Allocation-free [`DipCacheAware::select`]: mask / score / index
    /// buffers are caller-owned and reused. Selection (and therefore the
    /// cache update) is identical to the allocating variant.
    fn select_into(
        values: &[f32],
        cache: &mut LfuColumnCache,
        density: f32,
        gamma: f32,
        mask: &mut Vec<bool>,
        scores: &mut Vec<f32>,
        out: &mut Vec<usize>,
    ) -> Result<()> {
        cache.cached_mask_into(mask);
        let norm = values.iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1e-12);
        scores.clear();
        scores.extend(values.iter().zip(mask.iter()).map(|(v, &c)| {
            let penalty = if c { 1.0 } else { gamma };
            v.abs() * penalty / norm
        }));
        let k = topk::count_for_density(values.len(), density)?;
        topk::top_k_indices_into(scores, k, out);
        cache.access(out);
        Ok(())
    }
}

impl MlpForward for DipCacheAware {
    fn forward(&mut self, layer: usize, mlp: &GluMlp, x: &[f32]) -> lm::Result<MlpForwardOutput> {
        let caches = self.caches.get_mut(layer).ok_or_else(|| {
            to_lm_error(DipError::CalibrationMismatch {
                reason: format!("no cache allocation for layer {layer}"),
            })
        })?;

        let active_in = Self::select(x, &mut caches.input, self.input_density, self.gamma)
            .map_err(to_lm_error)?;

        let up = mlp.up_activations_input_pruned(x, &active_in)?;
        let gate = mlp.gate_activations_input_pruned(x, &active_in)?;
        let glu: Vec<f32> = up.iter().zip(gate.iter()).map(|(u, g)| u * g).collect();

        let active_glu = Self::select(&glu, &mut caches.glu, self.glu_density, self.gamma)
            .map_err(to_lm_error)?;
        let y = mlp.down_from_glu(&glu, &active_glu)?;

        Ok(MlpForwardOutput {
            y,
            access: MlpAccessRecord {
                up: MatrixAccess::input(active_in.clone()),
                gate: MatrixAccess::input(active_in),
                down: MatrixAccess::input(active_glu),
            },
        })
    }

    fn forward_scratch(
        &mut self,
        layer: usize,
        mlp: &GluMlp,
        x: &[f32],
        ws: &mut MlpWorkspace,
        access: &mut MlpAccessScratch,
        mirrors: Option<&lm::MlpMirrors>,
    ) -> lm::Result<()> {
        let caches = self.caches.get_mut(layer).ok_or_else(|| {
            to_lm_error(DipError::CalibrationMismatch {
                reason: format!("no cache allocation for layer {layer}"),
            })
        })?;
        ws.ensure(mlp.d_model(), mlp.d_ff());

        Self::select_into(
            x,
            &mut caches.input,
            self.input_density,
            self.gamma,
            &mut ws.mask,
            &mut ws.aux,
            &mut ws.active_a,
        )
        .map_err(to_lm_error)?;

        mlp.up_activations_input_pruned_into(x, &ws.active_a, &mut ws.up, mirrors.map(|m| &m.up))?;
        mlp.gate_activations_input_pruned_into(
            x,
            &ws.active_a,
            &mut ws.gate,
            mirrors.map(|m| &m.gate),
        )?;
        for ((g, u), gate) in ws.glu.iter_mut().zip(ws.up.iter()).zip(ws.gate.iter()) {
            *g = u * gate;
        }

        Self::select_into(
            &ws.glu,
            &mut caches.glu,
            self.glu_density,
            self.gamma,
            &mut ws.mask,
            &mut ws.aux,
            &mut ws.active_b,
        )
        .map_err(to_lm_error)?;
        mlp.down_from_glu_into(&ws.glu, &ws.active_b, &mut ws.y, mirrors.map(|m| &m.down))?;

        access.up.set_subset(SliceAxis::Input, &ws.active_a);
        access.gate.set_subset(SliceAxis::Input, &ws.active_a);
        access.down.set_subset(SliceAxis::Input, &ws.active_b);
        Ok(())
    }

    /// Every session sharing the physical DRAM cache shares *one* DIP-CA
    /// cell (see `spec::SharedMlpForward`), so one instance driving a lane
    /// is exactly the shared-state semantics.
    fn batch_fusable(&self) -> bool {
        true
    }

    /// Fused batched DIP-CA. Selections (and therefore the internal cache
    /// model updates) run row by row in batch order — the same order the
    /// sequential engine would update the shared cell in — and the weight
    /// passes are fused through the CSR-batched gathered kernels. The input
    /// and GLU selections use *disjoint* cache models, so hoisting all
    /// input selections before the up/gate pass (and all GLU selections
    /// before the down pass) preserves each cache's exact access sequence.
    fn forward_batch_scratch(
        &mut self,
        layer: usize,
        mlp: &GluMlp,
        xs: &[f32],
        rows: usize,
        ws: &mut MlpBatchWorkspace,
        accesses: &mut [MlpAccessScratch],
        mirrors: Option<&lm::MlpMirrors>,
    ) -> lm::Result<()> {
        let (d_model, d_ff) = (mlp.d_model(), mlp.d_ff());
        if rows == 1 {
            self.forward_scratch(layer, mlp, xs, &mut ws.row_ws, &mut accesses[0], mirrors)?;
            ws.ensure(1, d_model, d_ff);
            ws.y.copy_from_slice(&ws.row_ws.y);
            return Ok(());
        }
        let caches = self.caches.get_mut(layer).ok_or_else(|| {
            to_lm_error(DipError::CalibrationMismatch {
                reason: format!("no cache allocation for layer {layer}"),
            })
        })?;
        ws.ensure(rows, d_model, d_ff);

        ws.active_in_offsets.push(0);
        for r in 0..rows {
            let x = &xs[r * d_model..(r + 1) * d_model];
            Self::select_into(
                x,
                &mut caches.input,
                self.input_density,
                self.gamma,
                &mut ws.mask,
                &mut ws.aux,
                &mut ws.row_active,
            )
            .map_err(to_lm_error)?;
            ws.active_in.extend_from_slice(&ws.row_active);
            ws.active_in_offsets.push(ws.active_in.len());
        }
        mlp.up_activations_input_pruned_batch_into(
            xs,
            rows,
            &ws.active_in,
            &ws.active_in_offsets,
            &mut ws.up,
            mirrors.map(|m| &m.up),
        )?;
        mlp.gate_activations_input_pruned_batch_into(
            xs,
            rows,
            &ws.active_in,
            &ws.active_in_offsets,
            &mut ws.gate,
            mirrors.map(|m| &m.gate),
        )?;
        for ((g, u), gate) in ws.glu.iter_mut().zip(ws.up.iter()).zip(ws.gate.iter()) {
            *g = u * gate;
        }

        ws.active_glu_offsets.push(0);
        for r in 0..rows {
            let glu = &ws.glu[r * d_ff..(r + 1) * d_ff];
            Self::select_into(
                glu,
                &mut caches.glu,
                self.glu_density,
                self.gamma,
                &mut ws.mask,
                &mut ws.aux,
                &mut ws.row_active,
            )
            .map_err(to_lm_error)?;
            ws.active_glu.extend_from_slice(&ws.row_active);
            ws.active_glu_offsets.push(ws.active_glu.len());
        }
        mlp.down_from_glu_batch_into(
            &ws.glu,
            rows,
            &ws.active_glu,
            &ws.active_glu_offsets,
            &mut ws.y,
            mirrors.map(|m| &m.down),
        )?;

        for (r, access) in accesses.iter_mut().enumerate().take(rows) {
            let in_row = &ws.active_in[ws.active_in_offsets[r]..ws.active_in_offsets[r + 1]];
            let glu_row = &ws.active_glu[ws.active_glu_offsets[r]..ws.active_glu_offsets[r + 1]];
            access.up.set_subset(SliceAxis::Input, in_row);
            access.gate.set_subset(SliceAxis::Input, in_row);
            access.down.set_subset(SliceAxis::Input, glu_row);
        }
        Ok(())
    }

    fn name(&self) -> String {
        format!(
            "dip-ca@{:.2}/{:.2}(gamma={})",
            self.input_density, self.glu_density, self.gamma
        )
    }

    fn reset(&mut self) {
        for c in &mut self.caches {
            c.input.clear();
            c.glu.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm::{build_synthetic, eval, ModelConfig};

    fn capacities(config: &ModelConfig, fraction: f64) -> Vec<BlockCacheCapacity> {
        (0..config.n_layers)
            .map(|_| BlockCacheCapacity {
                up: (config.d_model as f64 * fraction) as usize,
                gate: (config.d_model as f64 * fraction) as usize,
                down: (config.d_ff as f64 * fraction) as usize,
            })
            .collect()
    }

    fn model() -> lm::TransformerModel {
        build_synthetic(&ModelConfig::tiny(), 31).unwrap()
    }

    #[test]
    fn construction_validates_parameters() {
        let c = ModelConfig::tiny();
        assert!(DipCacheAware::new(0.5, 0.5, 0.2, c.d_model, c.d_ff, capacities(&c, 0.5)).is_ok());
        assert!(DipCacheAware::new(0.0, 0.5, 0.2, c.d_model, c.d_ff, capacities(&c, 0.5)).is_err());
        assert!(DipCacheAware::new(0.5, 0.5, 0.0, c.d_model, c.d_ff, capacities(&c, 0.5)).is_err());
        assert!(DipCacheAware::new(0.5, 0.5, 1.5, c.d_model, c.d_ff, capacities(&c, 0.5)).is_err());
        assert!(DipCacheAware::new(0.5, 0.5, 0.2, c.d_model, c.d_ff, vec![]).is_err());
    }

    #[test]
    fn reweight_prefers_cached_columns_in_the_middle_of_the_distribution() {
        let values = vec![10.0, 1.0, 0.9, 0.01];
        let cached = vec![false, false, true, false];
        let scores = DipCacheAware::reweight(&values, &cached, 0.2);
        // the dominant activation survives despite not being cached
        assert!(scores[0] > scores[2]);
        // but the cached mid-range activation now outranks the non-cached one
        assert!(scores[2] > scores[1]);
        // gamma = 1 recovers plain magnitude ordering
        let plain = DipCacheAware::reweight(&values, &cached, 1.0);
        assert!(plain[1] > plain[2]);
    }

    #[test]
    fn gamma_one_matches_plain_dip_outputs() {
        let config = ModelConfig::tiny();
        let model = model();
        let seqs = eval::standard_eval_corpus(&model, 2, 12, 3).unwrap();
        let mut dip = crate::strategies::Dip::new(0.5, 0.5).unwrap();
        let mut dip_ca = DipCacheAware::new(
            0.5,
            0.5,
            1.0,
            config.d_model,
            config.d_ff,
            capacities(&config, 0.5),
        )
        .unwrap();
        let a = eval::perplexity(&model, &mut dip, &seqs).unwrap();
        let b = eval::perplexity(&model, &mut dip_ca, &seqs).unwrap();
        assert!((a.perplexity - b.perplexity).abs() / a.perplexity < 1e-5);
    }

    #[test]
    fn cache_aware_masking_increases_hit_rate() {
        // The core DIP-CA claim (Fig. 11): at the same density, re-using
        // cached columns raises the cache hit rate relative to plain DIP.
        let config = ModelConfig::tiny();
        let model = model();
        let seqs = eval::standard_eval_corpus(&model, 2, 20, 5).unwrap();
        let caps = capacities(&config, 0.3);

        let hit_rate = |gamma: f32| -> f64 {
            let mut strategy =
                DipCacheAware::new(0.5, 0.5, gamma, config.d_model, config.d_ff, caps.clone())
                    .unwrap();
            // run the evaluation, then replay the recorded accesses through a
            // fresh LFU cache of the same capacity to measure the hit rate
            let mut state = model.new_decode_state();
            let mut caches: Vec<LfuColumnCache> = (0..config.n_layers)
                .map(|_| LfuColumnCache::new(config.d_model, caps[0].up))
                .collect();
            let mut hits = 0u64;
            let mut total = 0u64;
            let mut cols: Vec<usize> = Vec::new();
            for seq in &seqs {
                state.reset();
                for &t in seq {
                    let out = model.forward_token(t, &mut state, &mut strategy).unwrap();
                    for (li, access) in out.mlp_accesses.iter().enumerate() {
                        cols.clear();
                        access.up.slices.extend_indices(config.d_model, &mut cols);
                        let outcome = caches[li].access(&cols);
                        hits += outcome.hits as u64;
                        total += outcome.total() as u64;
                    }
                }
            }
            hits as f64 / total as f64
        };

        let hr_plain = hit_rate(1.0);
        let hr_aware = hit_rate(0.2);
        assert!(
            hr_aware > hr_plain,
            "cache-aware hit rate {hr_aware} should exceed plain {hr_plain}"
        );
    }

    #[test]
    fn accuracy_cost_of_cache_awareness_is_bounded() {
        let config = ModelConfig::tiny();
        let model = model();
        let seqs = eval::standard_eval_corpus(&model, 2, 16, 7).unwrap();
        let mut dip = crate::strategies::Dip::new(0.5, 0.5).unwrap();
        let mut dip_ca = DipCacheAware::new(
            0.5,
            0.5,
            0.2,
            config.d_model,
            config.d_ff,
            capacities(&config, 0.3),
        )
        .unwrap();
        let plain = eval::perplexity(&model, &mut dip, &seqs)
            .unwrap()
            .perplexity;
        let aware = eval::perplexity(&model, &mut dip_ca, &seqs)
            .unwrap()
            .perplexity;
        // cache-aware masking trades a bounded amount of accuracy
        assert!(aware < plain * 1.5, "aware {aware} vs plain {plain}");
    }

    #[test]
    fn reset_clears_cache_state() {
        let config = ModelConfig::tiny();
        let model = model();
        let mlp = &model.layers[0].mlp;
        let x = vec![0.3; config.d_model];
        let mut s = DipCacheAware::new(
            0.5,
            0.5,
            0.2,
            config.d_model,
            config.d_ff,
            capacities(&config, 0.4),
        )
        .unwrap();
        let first = s.forward(0, mlp, &x).unwrap();
        let _second = s.forward(0, mlp, &x).unwrap();
        s.reset();
        let after_reset = s.forward(0, mlp, &x).unwrap();
        assert_eq!(first.access, after_reset.access);
        assert!(s.name().contains("dip-ca"));
        assert!((s.gamma() - 0.2).abs() < 1e-6);
        assert!((s.mlp_density() - 0.5).abs() < 1e-6);
        assert_eq!(s.capacities().len(), config.n_layers);
        assert!((s.input_density() - 0.5).abs() < 1e-6);
        assert!((s.glu_density() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn observed_co_tenant_traffic_shifts_the_selection() {
        let config = ModelConfig::tiny();
        let model = model();
        let mlp = &model.layers[0].mlp;
        // near-uniform input: the cache-aware re-weighting dominates selection
        let x: Vec<f32> = (0..config.d_model)
            .map(|i| 0.5 + 1e-4 * (i as f32))
            .collect();
        let fresh = || {
            DipCacheAware::new(
                0.5,
                0.5,
                0.2,
                config.d_model,
                config.d_ff,
                capacities(&config, 0.4),
            )
            .unwrap()
        };

        let mut isolated = fresh();
        let baseline = isolated.forward(0, mlp, &x).unwrap();

        // a co-tenant hammers a disjoint set of input columns first
        let mut contended = fresh();
        let foreign: Vec<usize> = (0..config.d_model / 3).collect();
        for _ in 0..8 {
            contended.observe_access(0, &foreign, &foreign);
        }
        let after = contended.forward(0, mlp, &x).unwrap();
        assert_ne!(
            baseline.access, after.access,
            "observed co-tenant traffic must influence the cache-aware mask"
        );
        // out-of-range layers are ignored rather than panicking
        contended.observe_access(99, &foreign, &foreign);
    }

    #[test]
    fn batched_forward_is_bitwise_identical_to_row_by_row() {
        use lm::{MlpBatchWorkspace, MlpWorkspace};

        let config = ModelConfig::tiny();
        let model = model();
        let mlp = &model.layers[0].mlp;
        let rows = 5usize;
        let xs: Vec<f32> = (0..rows * config.d_model)
            .map(|i| ((i as f32) * 0.13).sin())
            .collect();

        let run_pair = |mut sequential: Box<dyn MlpForward>, mut batched: Box<dyn MlpForward>| {
            // sequential oracle: one row at a time through forward_scratch
            let mut ws = MlpWorkspace::new(config.d_model, config.d_ff);
            let mut seq_y = Vec::new();
            let mut seq_access = Vec::new();
            for r in 0..rows {
                let mut access = lm::MlpAccessScratch::default();
                sequential
                    .forward_scratch(
                        0,
                        mlp,
                        &xs[r * config.d_model..(r + 1) * config.d_model],
                        &mut ws,
                        &mut access,
                        None,
                    )
                    .unwrap();
                seq_y.extend_from_slice(&ws.y);
                seq_access.push(access.to_record());
            }

            let mut bws = MlpBatchWorkspace::default();
            let mut accesses: Vec<lm::MlpAccessScratch> =
                (0..rows).map(|_| Default::default()).collect();
            batched
                .forward_batch_scratch(0, mlp, &xs, rows, &mut bws, &mut accesses, None)
                .unwrap();

            for (i, (a, b)) in bws.y.iter().zip(seq_y.iter()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "output {i} diverged");
            }
            for (r, access) in accesses.iter().enumerate() {
                assert_eq!(access.to_record(), seq_access[r], "row {r} access diverged");
            }
        };

        let dip = crate::strategies::Dip::new(0.5, 0.5).unwrap();
        run_pair(Box::new(dip), Box::new(dip));

        let fresh_ca = || {
            Box::new(
                DipCacheAware::new(
                    0.5,
                    0.5,
                    0.2,
                    config.d_model,
                    config.d_ff,
                    capacities(&config, 0.4),
                )
                .unwrap(),
            )
        };
        run_pair(fresh_ca(), fresh_ca());
    }

    #[test]
    fn unknown_layer_is_an_error() {
        let config = ModelConfig::tiny();
        let model = model();
        let mlp = &model.layers[0].mlp;
        let mut s = DipCacheAware::new(
            0.5,
            0.5,
            0.2,
            config.d_model,
            config.d_ff,
            vec![BlockCacheCapacity {
                up: 4,
                gate: 4,
                down: 8,
            }],
        )
        .unwrap();
        assert!(s.forward(5, mlp, &vec![0.1; config.d_model]).is_err());
    }
}
