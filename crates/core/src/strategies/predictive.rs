//! Predictive GLU pruning (DejaVu-style, Fig. 5c).
//!
//! A small trained predictor guesses which GLU activations will be large;
//! only the predicted neurons are computed and loaded. When the predictor is
//! right this sparsifies all three MLP matrices "for free"; when it is wrong
//! it prunes relevant activations — which is exactly what happens on SwiGLU
//! models (Section 3.3) and why DIP drops the predictor entirely.

use crate::error::to_lm_error;
use crate::predictor::Predictor;
use lm::{
    GluMlp, MatrixAccess, MlpAccessRecord, MlpAccessScratch, MlpForward, MlpForwardOutput,
    MlpWorkspace, SliceAxis,
};
use tensor::topk;

/// DejaVu-style predictive pruning with one trained predictor per layer.
#[derive(Debug, Clone)]
pub struct PredictiveGluPruning {
    predictors: Vec<Predictor>,
    neuron_density: f32,
}

impl PredictiveGluPruning {
    /// Wraps a set of per-layer predictors; at inference the top
    /// `neuron_density` fraction of predictor logits is kept.
    ///
    /// # Errors
    ///
    /// Returns an error if the density is outside `(0, 1]` or no predictors
    /// are provided.
    pub fn new(predictors: Vec<Predictor>, neuron_density: f32) -> crate::Result<Self> {
        super::validate_density("neuron_density", neuron_density)?;
        if predictors.is_empty() {
            return Err(crate::DipError::InvalidParameter {
                name: "predictors",
                reason: "need at least one predictor".to_string(),
            });
        }
        Ok(PredictiveGluPruning {
            predictors,
            neuron_density,
        })
    }

    /// The configured neuron density.
    pub fn neuron_density(&self) -> f32 {
        self.neuron_density
    }

    /// Total parameter count of the predictors — the memory overhead this
    /// method adds (up to ~15 % of the MLP in the paper's setups).
    pub fn predictor_params(&self) -> usize {
        self.predictors.iter().map(|p| p.num_params()).sum()
    }

    /// Number of per-layer predictors.
    pub fn n_layers(&self) -> usize {
        self.predictors.len()
    }
}

impl MlpForward for PredictiveGluPruning {
    fn forward(&mut self, layer: usize, mlp: &GluMlp, x: &[f32]) -> lm::Result<MlpForwardOutput> {
        let predictor = self.predictors.get(layer).ok_or_else(|| {
            to_lm_error(crate::DipError::CalibrationMismatch {
                reason: format!("no predictor for layer {layer}"),
            })
        })?;
        let logits = predictor.forward(x).map_err(to_lm_error)?;
        let k = topk::count_for_density(logits.len(), self.neuron_density)
            .map_err(|e| to_lm_error(e.into()))?;
        let active = topk::top_k_indices(&logits, k);

        let glu = super::glu_at_neurons(mlp, x, &active)?;
        let y = mlp.down_from_glu(&glu, &active)?;
        Ok(MlpForwardOutput {
            y,
            access: MlpAccessRecord {
                up: MatrixAccess::output(active.clone()),
                gate: MatrixAccess::output(active.clone()),
                down: MatrixAccess::input(active),
            },
        })
    }

    fn forward_scratch(
        &mut self,
        layer: usize,
        mlp: &GluMlp,
        x: &[f32],
        ws: &mut MlpWorkspace,
        access: &mut MlpAccessScratch,
        mirrors: Option<&lm::MlpMirrors>,
    ) -> lm::Result<()> {
        let predictor = self.predictors.get(layer).ok_or_else(|| {
            to_lm_error(crate::DipError::CalibrationMismatch {
                reason: format!("no predictor for layer {layer}"),
            })
        })?;
        // the predictor's own forward still allocates its logits (cold
        // two-layer MLP; DejaVu is not on the zero-allocation hot path)
        let logits = predictor.forward(x).map_err(to_lm_error)?;
        let k = topk::count_for_density(logits.len(), self.neuron_density)
            .map_err(|e| to_lm_error(e.into()))?;
        topk::top_k_indices_into(&logits, k, &mut ws.active_a);

        super::glu_at_neurons_scratch(mlp, x, ws)?;
        mlp.down_from_glu_into(&ws.glu, &ws.active_a, &mut ws.y, mirrors.map(|m| &m.down))?;

        access.up.set_subset(SliceAxis::Output, &ws.active_a);
        access.gate.set_subset(SliceAxis::Output, &ws.active_a);
        access.down.set_subset(SliceAxis::Input, &ws.active_a);
        Ok(())
    }

    fn name(&self) -> String {
        format!("dejavu@{:.2}", self.neuron_density)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::{train_predictors, PredictorTrainingConfig};
    use lm::{build_synthetic, eval, trace::collect_activation_trace, ModelConfig};

    fn trained_strategy(density: f32) -> (lm::TransformerModel, PredictiveGluPruning) {
        let model = build_synthetic(&ModelConfig::tiny(), 17).unwrap();
        let seqs = eval::standard_eval_corpus(&model, 3, 14, 21).unwrap();
        let trace = collect_activation_trace(&model, &seqs).unwrap();
        let cfg = PredictorTrainingConfig {
            hidden: 24,
            epochs: 3,
            ..PredictorTrainingConfig::default()
        };
        let predictors = train_predictors(&model, &trace, &cfg).unwrap();
        let strategy = PredictiveGluPruning::new(predictors, density).unwrap();
        (model, strategy)
    }

    #[test]
    fn construction_validates_inputs() {
        assert!(PredictiveGluPruning::new(vec![], 0.5).is_err());
        let (_, s) = trained_strategy(0.5);
        assert!((s.neuron_density() - 0.5).abs() < 1e-6);
        assert!(s.predictor_params() > 0);
        assert_eq!(s.n_layers(), ModelConfig::tiny().n_layers);
    }

    #[test]
    fn forward_reports_all_three_matrices_sparse() {
        let (model, mut s) = trained_strategy(0.5);
        let mlp = &model.layers[0].mlp;
        let x = vec![0.2; mlp.d_model()];
        let out = s.forward(0, mlp, &x).unwrap();
        let d = out.access.mlp_density(mlp.d_model(), mlp.d_ff());
        assert!((d - 0.5).abs() < 0.03, "density {d}");
        assert!(s.name().starts_with("dejavu@"));
    }

    #[test]
    fn missing_predictor_layer_is_an_error() {
        let (model, mut s) = trained_strategy(0.5);
        let mlp = &model.layers[0].mlp;
        let x = vec![0.2; mlp.d_model()];
        assert!(s.forward(99, mlp, &x).is_err());
    }

    #[test]
    fn predictive_pruning_is_worse_than_oracle_on_swiglu() {
        // The central observation of Section 3.3: with imperfect predictors,
        // predictive GLU pruning on a SwiGLU model loses accuracy relative to
        // magnitude (oracle) selection at the same density.
        let (model, mut dejavu) = trained_strategy(0.5);
        let seqs = eval::standard_eval_corpus(&model, 2, 14, 33).unwrap();
        let mut oracle = crate::strategies::GluOraclePruning::new(0.5).unwrap();
        let ppl_oracle = eval::perplexity(&model, &mut oracle, &seqs)
            .unwrap()
            .perplexity;
        let ppl_dejavu = eval::perplexity(&model, &mut dejavu, &seqs)
            .unwrap()
            .perplexity;
        assert!(
            ppl_dejavu >= ppl_oracle,
            "dejavu {ppl_dejavu} should not beat the oracle {ppl_oracle}"
        );
    }
}
