//! GLU pruning (Fig. 5a) and its oracle variant, plus the thresholding-study
//! variant used by the Fig. 4 reproduction.

use crate::error::to_lm_error;
use crate::threshold::ThresholdStrategy;
use lm::{
    GluMlp, MatrixAccess, MlpAccessRecord, MlpAccessScratch, MlpForward, MlpForwardOutput,
    MlpWorkspace, SliceAxis,
};
use tensor::topk;

/// Shared scratch body of [`GluPruning`] and [`GluOraclePruning`] (identical
/// computation, different access accounting): dense GLU activations, top-k
/// magnitude selection into `ws.active_a`, pruned down projection.
fn glu_prune_scratch(
    mlp: &GluMlp,
    x: &[f32],
    density: f32,
    ws: &mut MlpWorkspace,
    mirrors: Option<&lm::MlpMirrors>,
) -> lm::Result<()> {
    ws.ensure(mlp.d_model(), mlp.d_ff());
    mlp.up_activations_into(x, &mut ws.up, mirrors.map(|m| &m.up))?;
    mlp.gate_activations_into(x, &mut ws.gate, mirrors.map(|m| &m.gate))?;
    for ((g, u), gate) in ws.glu.iter_mut().zip(ws.up.iter()).zip(ws.gate.iter()) {
        *g = u * gate;
    }
    let k = topk::count_for_density(ws.glu.len(), density).map_err(|e| to_lm_error(e.into()))?;
    topk::top_k_by_magnitude_into(&ws.glu, k, &mut ws.scores, &mut ws.active_a);
    mlp.down_from_glu_into(&ws.glu, &ws.active_a, &mut ws.y, mirrors.map(|m| &m.down))
}

/// GLU pruning: the GLU activations are computed densely, the smallest
/// magnitudes are pruned, and only the corresponding columns of `W_d` are
/// loaded (Eq. 4). `W_u` and `W_g` stay dense, so the MLP density can never
/// drop below 2/3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GluPruning {
    glu_density: f32,
}

impl GluPruning {
    /// Creates GLU pruning keeping the top `glu_density` fraction of GLU
    /// activations per token.
    ///
    /// # Errors
    ///
    /// Returns an error if the density is outside `(0, 1]`.
    pub fn new(glu_density: f32) -> crate::Result<Self> {
        super::validate_density("glu_density", glu_density)?;
        Ok(GluPruning { glu_density })
    }

    /// The configured GLU activation density.
    pub fn glu_density(&self) -> f32 {
        self.glu_density
    }
}

impl MlpForward for GluPruning {
    fn forward(&mut self, _layer: usize, mlp: &GluMlp, x: &[f32]) -> lm::Result<MlpForwardOutput> {
        let glu = mlp.glu_activations(x)?;
        let k = topk::count_for_density(glu.len(), self.glu_density)
            .map_err(|e| to_lm_error(e.into()))?;
        let active = topk::top_k_by_magnitude(&glu, k);
        let y = mlp.down_from_glu(&glu, &active)?;
        Ok(MlpForwardOutput {
            y,
            access: MlpAccessRecord {
                up: MatrixAccess::dense(),
                gate: MatrixAccess::dense(),
                down: MatrixAccess::input(active),
            },
        })
    }

    fn forward_scratch(
        &mut self,
        _layer: usize,
        mlp: &GluMlp,
        x: &[f32],
        ws: &mut MlpWorkspace,
        access: &mut MlpAccessScratch,
        mirrors: Option<&lm::MlpMirrors>,
    ) -> lm::Result<()> {
        glu_prune_scratch(mlp, x, self.glu_density, ws, mirrors)?;
        access.up.set_all(SliceAxis::Input);
        access.gate.set_all(SliceAxis::Input);
        access.down.set_subset(SliceAxis::Input, &ws.active_a);
        Ok(())
    }

    fn name(&self) -> String {
        format!("glu-pruning@{:.2}", self.glu_density)
    }
}

/// The GLU-pruning *oracle*: identical outputs to [`GluPruning`], but the
/// access record assumes a perfect predictor told us the surviving neurons in
/// advance, so rows of `W_u`/`W_g` and columns of `W_d` are all skipped.
///
/// This is the upper bound the paper reports as "GLU Pruning (oracle)": the
/// best any predictive scheme could do at a given neuron density.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GluOraclePruning {
    neuron_density: f32,
}

impl GluOraclePruning {
    /// Creates the oracle at the given neuron density.
    ///
    /// # Errors
    ///
    /// Returns an error if the density is outside `(0, 1]`.
    pub fn new(neuron_density: f32) -> crate::Result<Self> {
        super::validate_density("neuron_density", neuron_density)?;
        Ok(GluOraclePruning { neuron_density })
    }

    /// The configured neuron density.
    pub fn neuron_density(&self) -> f32 {
        self.neuron_density
    }
}

impl MlpForward for GluOraclePruning {
    fn forward(&mut self, _layer: usize, mlp: &GluMlp, x: &[f32]) -> lm::Result<MlpForwardOutput> {
        let glu = mlp.glu_activations(x)?;
        let k = topk::count_for_density(glu.len(), self.neuron_density)
            .map_err(|e| to_lm_error(e.into()))?;
        let active = topk::top_k_by_magnitude(&glu, k);
        let y = mlp.down_from_glu(&glu, &active)?;
        Ok(MlpForwardOutput {
            y,
            access: MlpAccessRecord {
                up: MatrixAccess::output(active.clone()),
                gate: MatrixAccess::output(active.clone()),
                down: MatrixAccess::input(active),
            },
        })
    }

    fn forward_scratch(
        &mut self,
        _layer: usize,
        mlp: &GluMlp,
        x: &[f32],
        ws: &mut MlpWorkspace,
        access: &mut MlpAccessScratch,
        mirrors: Option<&lm::MlpMirrors>,
    ) -> lm::Result<()> {
        glu_prune_scratch(mlp, x, self.neuron_density, ws, mirrors)?;
        access.up.set_subset(SliceAxis::Output, &ws.active_a);
        access.gate.set_subset(SliceAxis::Output, &ws.active_a);
        access.down.set_subset(SliceAxis::Input, &ws.active_a);
        Ok(())
    }

    fn name(&self) -> String {
        format!("glu-oracle@{:.2}", self.neuron_density)
    }
}

/// GLU pruning driven by an arbitrary [`ThresholdStrategy`] — used by the
/// Fig. 4 study comparing global, per-layer and per-token thresholds.
#[derive(Debug, Clone, PartialEq)]
pub struct GluThresholdPruning {
    threshold: ThresholdStrategy,
    /// Per-layer densities observed during the last evaluation (mean kept
    /// fraction); useful for reproducing the per-layer density plot.
    observed: Vec<(usize, f32)>,
}

impl GluThresholdPruning {
    /// Wraps a thresholding strategy.
    pub fn new(threshold: ThresholdStrategy) -> Self {
        GluThresholdPruning {
            threshold,
            observed: Vec::new(),
        }
    }

    /// The wrapped strategy.
    pub fn threshold(&self) -> &ThresholdStrategy {
        &self.threshold
    }

    /// `(layer, density)` observations recorded since the last reset.
    pub fn observed_densities(&self) -> &[(usize, f32)] {
        &self.observed
    }
}

impl MlpForward for GluThresholdPruning {
    fn forward(&mut self, layer: usize, mlp: &GluMlp, x: &[f32]) -> lm::Result<MlpForwardOutput> {
        let glu = mlp.glu_activations(x)?;
        let active = self.threshold.select(layer, &glu);
        self.observed
            .push((layer, active.len() as f32 / glu.len().max(1) as f32));
        let y = mlp.down_from_glu(&glu, &active)?;
        Ok(MlpForwardOutput {
            y,
            access: MlpAccessRecord {
                up: MatrixAccess::dense(),
                gate: MatrixAccess::dense(),
                down: MatrixAccess::input(active),
            },
        })
    }

    fn name(&self) -> String {
        format!("glu-{}", self.threshold.name())
    }

    fn reset(&mut self) {
        self.observed.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm::{build_synthetic, eval, mlp::DenseMlp, ModelConfig};

    fn model() -> lm::TransformerModel {
        build_synthetic(&ModelConfig::tiny(), 7).unwrap()
    }

    #[test]
    fn full_density_matches_dense_output() {
        let model = model();
        let mlp = &model.layers[0].mlp;
        let x: Vec<f32> = (0..mlp.d_model()).map(|i| 0.1 * (i as f32 - 8.0)).collect();
        let dense = mlp.forward_dense(&x).unwrap();
        let mut strategy = GluPruning::new(1.0).unwrap();
        let out = strategy.forward(0, mlp, &x).unwrap();
        for (a, b) in out.y.iter().zip(dense.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
        assert!((out.access.mlp_density(mlp.d_model(), mlp.d_ff()) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn density_accounting_matches_scheme() {
        let model = model();
        let mlp = &model.layers[0].mlp;
        let x = vec![0.2; mlp.d_model()];

        let mut glu = GluPruning::new(0.5).unwrap();
        let d = glu
            .forward(0, mlp, &x)
            .unwrap()
            .access
            .mlp_density(mlp.d_model(), mlp.d_ff());
        assert!(
            (d - (2.0 + 0.5) / 3.0).abs() < 0.02,
            "glu pruning density {d}"
        );

        let mut oracle = GluOraclePruning::new(0.5).unwrap();
        let d = oracle
            .forward(0, mlp, &x)
            .unwrap()
            .access
            .mlp_density(mlp.d_model(), mlp.d_ff());
        assert!((d - 0.5).abs() < 0.02, "oracle density {d}");
    }

    #[test]
    fn oracle_and_glu_pruning_produce_identical_outputs_at_same_density() {
        let model = model();
        let mlp = &model.layers[1].mlp;
        let x: Vec<f32> = (0..mlp.d_model())
            .map(|i| ((i * 7) % 13) as f32 / 13.0 - 0.5)
            .collect();
        let mut a = GluPruning::new(0.4).unwrap();
        let mut b = GluOraclePruning::new(0.4).unwrap();
        let ya = a.forward(1, mlp, &x).unwrap().y;
        let yb = b.forward(1, mlp, &x).unwrap().y;
        assert_eq!(ya, yb);
    }

    #[test]
    fn pruning_error_grows_as_density_falls() {
        let model = model();
        let seqs = eval::standard_eval_corpus(&model, 5, 32, 3).unwrap();
        let dense = eval::perplexity(&model, &mut DenseMlp, &seqs)
            .unwrap()
            .perplexity;
        let mut ppl_prev = dense;
        for density in [0.75f32, 0.5, 0.25] {
            let mut s = GluPruning::new(density).unwrap();
            let ppl = eval::perplexity(&model, &mut s, &seqs).unwrap().perplexity;
            assert!(
                ppl >= dense * 0.97,
                "density {density}: ppl {ppl} < dense {dense}"
            );
            assert!(
                ppl >= ppl_prev * 0.97,
                "perplexity should not improve much as density falls: {ppl} vs {ppl_prev}"
            );
            ppl_prev = ppl;
        }
        // Keeping only the top-25% GLU activations loses very little because
        // the activation magnitudes are heavy-tailed — the same reason the
        // paper's GLU-pruning oracle stays close to the dense model.
        assert!(
            ppl_prev < dense * 1.5,
            "25% GLU density should still be benign"
        );
    }

    #[test]
    fn invalid_densities_are_rejected() {
        assert!(GluPruning::new(0.0).is_err());
        assert!(GluOraclePruning::new(1.5).is_err());
    }

    #[test]
    fn threshold_variant_records_observed_densities() {
        let model = model();
        let mlp = &model.layers[0].mlp;
        let x = vec![0.3; mlp.d_model()];
        let mut s = GluThresholdPruning::new(ThresholdStrategy::top_k(0.25).unwrap());
        s.forward(0, mlp, &x).unwrap();
        s.forward(1, mlp, &x).unwrap();
        assert_eq!(s.observed_densities().len(), 2);
        assert!((s.observed_densities()[0].1 - 0.25).abs() < 0.05);
        assert!(s.name().contains("per-token-topk"));
        s.reset();
        assert!(s.observed_densities().is_empty());
        assert_eq!(s.threshold().name(), "per-token-topk");
    }
}
