//! Gate pruning and Up pruning (Fig. 5b and its mirror image).
//!
//! Both compute one of the two projections densely, select neurons from that
//! *partial* signal, and then compute the other projection plus the down
//! projection only for the selected neurons. They can reach 66 % MLP
//! sparsity, but the selection is based on incomplete information, which is
//! why they trail DIP in the paper's tables.

use crate::error::to_lm_error;
use lm::{
    GluMlp, MatrixAccess, MlpAccessRecord, MlpAccessScratch, MlpForward, MlpForwardOutput,
    MlpWorkspace, SliceAxis,
};
use tensor::topk;

/// Gate pruning: select neurons by `|σ(W_g x)|` (gate computed densely), then
/// load only the selected rows of `W_u` and columns of `W_d` (Eq. 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatePruning {
    neuron_density: f32,
}

impl GatePruning {
    /// Creates gate pruning at the given neuron density.
    ///
    /// # Errors
    ///
    /// Returns an error if the density is outside `(0, 1]`.
    pub fn new(neuron_density: f32) -> crate::Result<Self> {
        super::validate_density("neuron_density", neuron_density)?;
        Ok(GatePruning { neuron_density })
    }

    /// The configured neuron density.
    pub fn neuron_density(&self) -> f32 {
        self.neuron_density
    }
}

impl MlpForward for GatePruning {
    fn forward(&mut self, _layer: usize, mlp: &GluMlp, x: &[f32]) -> lm::Result<MlpForwardOutput> {
        let gate = mlp.gate_activations(x)?;
        let k = topk::count_for_density(gate.len(), self.neuron_density)
            .map_err(|e| to_lm_error(e.into()))?;
        let active = topk::top_k_by_magnitude(&gate, k);

        let up = mlp.w_up.matvec_rows(x, &active)?;
        let mut glu = vec![0.0f32; mlp.d_ff()];
        for &i in &active {
            glu[i] = up[i] * gate[i];
        }
        let y = mlp.down_from_glu(&glu, &active)?;
        Ok(MlpForwardOutput {
            y,
            access: MlpAccessRecord {
                up: MatrixAccess::output(active.clone()),
                gate: MatrixAccess::dense(),
                down: MatrixAccess::input(active),
            },
        })
    }

    fn forward_scratch(
        &mut self,
        _layer: usize,
        mlp: &GluMlp,
        x: &[f32],
        ws: &mut MlpWorkspace,
        access: &mut MlpAccessScratch,
        mirrors: Option<&lm::MlpMirrors>,
    ) -> lm::Result<()> {
        ws.ensure(mlp.d_model(), mlp.d_ff());
        mlp.gate_activations_into(x, &mut ws.gate, mirrors.map(|m| &m.gate))?;
        let k = topk::count_for_density(ws.gate.len(), self.neuron_density)
            .map_err(|e| to_lm_error(e.into()))?;
        topk::top_k_by_magnitude_into(&ws.gate, k, &mut ws.scores, &mut ws.active_a);

        mlp.w_up.matvec_rows_into(x, &ws.active_a, &mut ws.up)?;
        ws.glu.fill(0.0);
        for &i in &ws.active_a {
            ws.glu[i] = ws.up[i] * ws.gate[i];
        }
        mlp.down_from_glu_into(&ws.glu, &ws.active_a, &mut ws.y, mirrors.map(|m| &m.down))?;

        access.up.set_subset(SliceAxis::Output, &ws.active_a);
        access.gate.set_all(SliceAxis::Input);
        access.down.set_subset(SliceAxis::Input, &ws.active_a);
        Ok(())
    }

    fn name(&self) -> String {
        format!("gate-pruning@{:.2}", self.neuron_density)
    }
}

/// Up pruning: select neurons by `|W_u x|` (up computed densely), then load
/// only the selected rows of `W_g` and columns of `W_d`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UpPruning {
    neuron_density: f32,
}

impl UpPruning {
    /// Creates up pruning at the given neuron density.
    ///
    /// # Errors
    ///
    /// Returns an error if the density is outside `(0, 1]`.
    pub fn new(neuron_density: f32) -> crate::Result<Self> {
        super::validate_density("neuron_density", neuron_density)?;
        Ok(UpPruning { neuron_density })
    }

    /// The configured neuron density.
    pub fn neuron_density(&self) -> f32 {
        self.neuron_density
    }
}

impl MlpForward for UpPruning {
    fn forward(&mut self, _layer: usize, mlp: &GluMlp, x: &[f32]) -> lm::Result<MlpForwardOutput> {
        let up = mlp.up_activations(x)?;
        let k = topk::count_for_density(up.len(), self.neuron_density)
            .map_err(|e| to_lm_error(e.into()))?;
        let active = topk::top_k_by_magnitude(&up, k);

        let mut gate_pre = mlp.w_gate.matvec_rows(x, &active)?;
        if let Some(bias) = &mlp.gate_bias {
            for &i in &active {
                gate_pre[i] += bias[i];
            }
        }
        let mut glu = vec![0.0f32; mlp.d_ff()];
        for &i in &active {
            glu[i] = up[i] * mlp.activation.apply_scalar(gate_pre[i]);
        }
        let y = mlp.down_from_glu(&glu, &active)?;
        Ok(MlpForwardOutput {
            y,
            access: MlpAccessRecord {
                up: MatrixAccess::dense(),
                gate: MatrixAccess::output(active.clone()),
                down: MatrixAccess::input(active),
            },
        })
    }

    fn forward_scratch(
        &mut self,
        _layer: usize,
        mlp: &GluMlp,
        x: &[f32],
        ws: &mut MlpWorkspace,
        access: &mut MlpAccessScratch,
        mirrors: Option<&lm::MlpMirrors>,
    ) -> lm::Result<()> {
        ws.ensure(mlp.d_model(), mlp.d_ff());
        mlp.up_activations_into(x, &mut ws.up, mirrors.map(|m| &m.up))?;
        let k = topk::count_for_density(ws.up.len(), self.neuron_density)
            .map_err(|e| to_lm_error(e.into()))?;
        topk::top_k_by_magnitude_into(&ws.up, k, &mut ws.scores, &mut ws.active_a);

        mlp.w_gate.matvec_rows_into(x, &ws.active_a, &mut ws.gate)?;
        if let Some(bias) = &mlp.gate_bias {
            for &i in &ws.active_a {
                ws.gate[i] += bias[i];
            }
        }
        ws.glu.fill(0.0);
        for &i in &ws.active_a {
            ws.glu[i] = ws.up[i] * mlp.activation.apply_scalar(ws.gate[i]);
        }
        mlp.down_from_glu_into(&ws.glu, &ws.active_a, &mut ws.y, mirrors.map(|m| &m.down))?;

        access.up.set_all(SliceAxis::Input);
        access.gate.set_subset(SliceAxis::Output, &ws.active_a);
        access.down.set_subset(SliceAxis::Input, &ws.active_a);
        Ok(())
    }

    fn name(&self) -> String {
        format!("up-pruning@{:.2}", self.neuron_density)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm::{build_synthetic, eval, mlp::DenseMlp, ModelConfig};

    fn model() -> lm::TransformerModel {
        build_synthetic(&ModelConfig::tiny(), 8).unwrap()
    }

    #[test]
    fn full_density_recovers_dense_output() {
        let model = model();
        let mlp = &model.layers[0].mlp;
        let x: Vec<f32> = (0..mlp.d_model())
            .map(|i| (i as f32 - 10.0) / 20.0)
            .collect();
        let dense = mlp.forward_dense(&x).unwrap();
        for strategy in [
            &mut GatePruning::new(1.0).unwrap() as &mut dyn MlpForward,
            &mut UpPruning::new(1.0).unwrap() as &mut dyn MlpForward,
        ] {
            let out = strategy.forward(0, mlp, &x).unwrap();
            for (a, b) in out.y.iter().zip(dense.iter()) {
                assert!((a - b).abs() < 1e-4, "{}", strategy.name());
            }
        }
    }

    #[test]
    fn density_accounting_is_two_of_three() {
        let model = model();
        let mlp = &model.layers[0].mlp;
        let x = vec![0.25; mlp.d_model()];
        let mut gate = GatePruning::new(0.5).unwrap();
        let d = gate
            .forward(0, mlp, &x)
            .unwrap()
            .access
            .mlp_density(mlp.d_model(), mlp.d_ff());
        assert!(
            (d - (1.0 + 2.0 * 0.5) / 3.0).abs() < 0.02,
            "gate density {d}"
        );

        let mut up = UpPruning::new(0.5).unwrap();
        let d = up
            .forward(0, mlp, &x)
            .unwrap()
            .access
            .mlp_density(mlp.d_model(), mlp.d_ff());
        assert!((d - (1.0 + 2.0 * 0.5) / 3.0).abs() < 0.02, "up density {d}");
    }

    #[test]
    fn partial_signal_selection_is_worse_than_oracle() {
        // Gate/Up pruning select neurons from partial information, so at the
        // same neuron density their perplexity should not beat the oracle's.
        let model = model();
        let seqs = eval::standard_eval_corpus(&model, 2, 14, 4).unwrap();
        let mut oracle = crate::strategies::GluOraclePruning::new(0.4).unwrap();
        let ppl_oracle = eval::perplexity(&model, &mut oracle, &seqs)
            .unwrap()
            .perplexity;
        let mut gate = GatePruning::new(0.4).unwrap();
        let ppl_gate = eval::perplexity(&model, &mut gate, &seqs)
            .unwrap()
            .perplexity;
        let mut up = UpPruning::new(0.4).unwrap();
        let ppl_up = eval::perplexity(&model, &mut up, &seqs).unwrap().perplexity;
        assert!(
            ppl_gate >= ppl_oracle * 0.999,
            "gate {ppl_gate} vs oracle {ppl_oracle}"
        );
        assert!(
            ppl_up >= ppl_oracle * 0.999,
            "up {ppl_up} vs oracle {ppl_oracle}"
        );
    }

    #[test]
    fn pruning_degrades_relative_to_dense() {
        let model = model();
        let seqs = eval::standard_eval_corpus(&model, 2, 14, 4).unwrap();
        let dense = eval::perplexity(&model, &mut DenseMlp, &seqs)
            .unwrap()
            .perplexity;
        let mut gate = GatePruning::new(0.3).unwrap();
        let ppl = eval::perplexity(&model, &mut gate, &seqs)
            .unwrap()
            .perplexity;
        assert!(ppl >= dense);
    }

    #[test]
    fn invalid_densities_are_rejected() {
        assert!(GatePruning::new(0.0).is_err());
        assert!(UpPruning::new(2.0).is_err());
    }

    #[test]
    fn names_include_density() {
        assert!(GatePruning::new(0.5).unwrap().name().contains("0.50"));
        assert!(UpPruning::new(0.25).unwrap().name().contains("0.25"));
    }
}
