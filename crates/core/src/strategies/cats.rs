//! CATS: contextually-aware thresholding for sparsity (Lee et al., 2024).
//!
//! CATS applies a *per-layer* magnitude threshold to the gate activations
//! `σ(W_g x)`; neurons whose gate activation falls below the threshold are
//! pruned, and only the surviving rows of `W_u` and columns of `W_d` are
//! loaded. The thresholds are calibrated offline from the activation CDF of a
//! calibration set, so — unlike top-k — the realised density fluctuates
//! slightly from token to token (the paper notes up to ~2 % drift).

use crate::error::{DipError, Result};
use lm::{
    ActivationTrace, GluMlp, MatrixAccess, MlpAccessRecord, MlpAccessScratch, MlpForward,
    MlpForwardOutput, MlpWorkspace, SliceAxis, TransformerModel,
};
use serde::{Deserialize, Serialize};
use tensor::{stats, topk};

/// The CATS pruning strategy with per-layer calibrated thresholds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CatsPruning {
    thresholds: Vec<f32>,
    target_density: f32,
}

impl CatsPruning {
    /// Creates CATS from explicit per-layer thresholds.
    pub fn from_thresholds(thresholds: Vec<f32>, target_density: f32) -> Self {
        CatsPruning {
            thresholds,
            target_density,
        }
    }

    /// Calibrates per-layer thresholds so that, on the calibration trace,
    /// each layer keeps `neuron_density` of its gate activations.
    ///
    /// # Errors
    ///
    /// Returns [`DipError::CalibrationMismatch`] if the trace does not match
    /// the model or is empty, and [`DipError::InvalidParameter`] for an
    /// invalid density.
    pub fn calibrate(
        model: &TransformerModel,
        trace: &ActivationTrace,
        neuron_density: f32,
    ) -> Result<Self> {
        super::validate_density("neuron_density", neuron_density)?;
        if trace.n_layers() != model.n_layers() {
            return Err(DipError::CalibrationMismatch {
                reason: format!(
                    "trace has {} layers but model has {}",
                    trace.n_layers(),
                    model.n_layers()
                ),
            });
        }
        if trace.n_tokens() == 0 {
            return Err(DipError::CalibrationMismatch {
                reason: "calibration trace contains no tokens".to_string(),
            });
        }
        let mut thresholds = Vec::with_capacity(model.n_layers());
        for (layer_idx, layer) in model.layers.iter().enumerate() {
            let mut gate_mags = Vec::new();
            for sample in &trace.samples[layer_idx] {
                let gate = layer.mlp.gate_activations(&sample.input)?;
                gate_mags.extend(gate.iter().map(|g| g.abs()));
            }
            thresholds.push(stats::magnitude_threshold_for_density(
                &gate_mags,
                neuron_density,
            )?);
        }
        Ok(CatsPruning {
            thresholds,
            target_density: neuron_density,
        })
    }

    /// The calibrated per-layer thresholds.
    pub fn thresholds(&self) -> &[f32] {
        &self.thresholds
    }

    /// The neuron density the thresholds were calibrated for.
    pub fn target_density(&self) -> f32 {
        self.target_density
    }

    /// Selects the neurons that survive the layer's threshold.
    pub fn select_neurons(&self, layer: usize, gate_activations: &[f32]) -> Vec<usize> {
        let t = self.thresholds.get(layer).copied().unwrap_or(0.0);
        topk::indices_above_threshold(gate_activations, t)
    }
}

impl MlpForward for CatsPruning {
    fn forward(&mut self, layer: usize, mlp: &GluMlp, x: &[f32]) -> lm::Result<MlpForwardOutput> {
        let gate = mlp.gate_activations(x)?;
        let active = self.select_neurons(layer, &gate);

        let up = mlp.w_up.matvec_rows(x, &active)?;
        let mut glu = vec![0.0f32; mlp.d_ff()];
        for &i in &active {
            glu[i] = up[i] * gate[i];
        }
        let y = mlp.down_from_glu(&glu, &active)?;
        Ok(MlpForwardOutput {
            y,
            access: MlpAccessRecord {
                up: MatrixAccess::output(active.clone()),
                gate: MatrixAccess::dense(),
                down: MatrixAccess::input(active),
            },
        })
    }

    fn forward_scratch(
        &mut self,
        layer: usize,
        mlp: &GluMlp,
        x: &[f32],
        ws: &mut MlpWorkspace,
        access: &mut MlpAccessScratch,
        mirrors: Option<&lm::MlpMirrors>,
    ) -> lm::Result<()> {
        ws.ensure(mlp.d_model(), mlp.d_ff());
        mlp.gate_activations_into(x, &mut ws.gate, mirrors.map(|m| &m.gate))?;
        let t = self.thresholds.get(layer).copied().unwrap_or(0.0);
        topk::indices_above_threshold_into(&ws.gate, t, &mut ws.active_a);

        mlp.w_up.matvec_rows_into(x, &ws.active_a, &mut ws.up)?;
        ws.glu.fill(0.0);
        for &i in &ws.active_a {
            ws.glu[i] = ws.up[i] * ws.gate[i];
        }
        mlp.down_from_glu_into(&ws.glu, &ws.active_a, &mut ws.y, mirrors.map(|m| &m.down))?;

        access.up.set_subset(SliceAxis::Output, &ws.active_a);
        access.gate.set_all(SliceAxis::Input);
        access.down.set_subset(SliceAxis::Input, &ws.active_a);
        Ok(())
    }

    fn name(&self) -> String {
        format!("cats@{:.2}", self.target_density)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm::{build_synthetic, eval, mlp::DenseMlp, trace::collect_activation_trace, ModelConfig};

    fn setup() -> (TransformerModel, ActivationTrace) {
        let model = build_synthetic(&ModelConfig::tiny(), 15).unwrap();
        let seqs = eval::standard_eval_corpus(&model, 3, 14, 9).unwrap();
        let trace = collect_activation_trace(&model, &seqs).unwrap();
        (model, trace)
    }

    #[test]
    fn calibration_produces_one_threshold_per_layer() {
        let (model, trace) = setup();
        let cats = CatsPruning::calibrate(&model, &trace, 0.5).unwrap();
        assert_eq!(cats.thresholds().len(), model.n_layers());
        assert!((cats.target_density() - 0.5).abs() < 1e-6);
        assert!(cats.thresholds().iter().all(|t| t.is_finite() && *t >= 0.0));
    }

    #[test]
    fn realised_density_is_close_to_target_on_calibration_data() {
        let (model, trace) = setup();
        let target = 0.5;
        let cats = CatsPruning::calibrate(&model, &trace, target).unwrap();
        let mut total_kept = 0usize;
        let mut total = 0usize;
        for (layer_idx, layer) in model.layers.iter().enumerate() {
            for sample in &trace.samples[layer_idx] {
                let gate = layer.mlp.gate_activations(&sample.input).unwrap();
                total_kept += cats.select_neurons(layer_idx, &gate).len();
                total += gate.len();
            }
        }
        let realised = total_kept as f32 / total as f32;
        assert!(
            (realised - target).abs() < 0.06,
            "realised density {realised} vs target {target}"
        );
    }

    #[test]
    fn cats_degrades_gracefully_and_monotonically() {
        let (model, trace) = setup();
        let seqs = eval::standard_eval_corpus(&model, 5, 32, 10).unwrap();
        let dense = eval::perplexity(&model, &mut DenseMlp, &seqs)
            .unwrap()
            .perplexity;
        let mut cats_hi = CatsPruning::calibrate(&model, &trace, 0.75).unwrap();
        let mut cats_lo = CatsPruning::calibrate(&model, &trace, 0.25).unwrap();
        let ppl_hi = eval::perplexity(&model, &mut cats_hi, &seqs)
            .unwrap()
            .perplexity;
        let ppl_lo = eval::perplexity(&model, &mut cats_lo, &seqs)
            .unwrap()
            .perplexity;
        assert!(ppl_hi >= dense * 0.97, "hi {ppl_hi} vs dense {dense}");
        assert!(
            ppl_lo >= ppl_hi * 0.97,
            "lower density should not be better: {ppl_lo} vs {ppl_hi}"
        );
        assert!(
            ppl_lo > dense,
            "25% CATS density should hurt: {ppl_lo} vs {dense}"
        );
    }

    #[test]
    fn access_record_matches_two_of_three_scheme() {
        let (model, trace) = setup();
        let cats = CatsPruning::calibrate(&model, &trace, 0.5).unwrap();
        let mlp = &model.layers[0].mlp;
        let x = &trace.samples[0][0].input;
        let mut strategy = cats.clone();
        let out = strategy.forward(0, mlp, x).unwrap();
        let d = out.access.mlp_density(mlp.d_model(), mlp.d_ff());
        // gate dense + up/down at ~0.5 -> ~0.67
        assert!((d - 0.66).abs() < 0.12, "density {d}");
        assert!(strategy.name().starts_with("cats@"));
    }

    #[test]
    fn calibration_validates_inputs() {
        let (model, trace) = setup();
        assert!(CatsPruning::calibrate(&model, &trace, 0.0).is_err());
        assert!(
            CatsPruning::calibrate(&model, &ActivationTrace::new(model.n_layers()), 0.5).is_err()
        );
        assert!(CatsPruning::calibrate(&model, &ActivationTrace::new(1), 0.5).is_err());
    }

    #[test]
    fn missing_layer_threshold_defaults_to_keeping_nonzero() {
        let cats = CatsPruning::from_thresholds(vec![0.5], 0.5);
        let idx = cats.select_neurons(3, &[0.1, 0.9]);
        assert_eq!(idx.len(), 2);
    }
}
