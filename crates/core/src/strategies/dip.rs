//! Dynamic Input Pruning (DIP) — the paper's primary contribution
//! (Section 4, Eqs. 7–8, Fig. 5d).
//!
//! DIP needs no predictor: it prunes the *input* of the MLP block by
//! per-token top-k magnitude (which sparsifies the columns of `W_u` and
//! `W_g`), computes the approximate GLU activations from the surviving
//! inputs, and prunes those by per-token top-k magnitude again (which
//! sparsifies the columns of `W_d`). All three matrices become sparse, and
//! the only error source is the approximation introduced by the pruned gating
//! — the predictor error of DejaVu-style methods is traded for approximation
//! error.

use crate::allocation::DensityAllocation;
use crate::error::to_lm_error;
use lm::{
    GluMlp, MatrixAccess, MlpAccessRecord, MlpAccessScratch, MlpBatchWorkspace, MlpForward,
    MlpForwardOutput, MlpWorkspace, SliceAxis,
};
use serde::{Deserialize, Serialize};
use tensor::topk;

/// The Dynamic Input Pruning strategy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Dip {
    input_density: f32,
    glu_density: f32,
}

impl Dip {
    /// Creates DIP with explicit input (`W_u`/`W_g` column) and GLU
    /// (`W_d` column) densities.
    ///
    /// # Errors
    ///
    /// Returns an error if either density is outside `(0, 1]`.
    pub fn new(input_density: f32, glu_density: f32) -> crate::Result<Self> {
        super::validate_density("input_density", input_density)?;
        super::validate_density("glu_density", glu_density)?;
        Ok(Dip {
            input_density,
            glu_density,
        })
    }

    /// Creates DIP for a target overall MLP density using a density
    /// allocation model (Appendix B.1).
    ///
    /// # Errors
    ///
    /// Propagates allocation and validation errors.
    pub fn for_target_density(
        target_mlp_density: f32,
        allocation: &DensityAllocation,
    ) -> crate::Result<Self> {
        let (input_density, glu_density) = allocation.split(target_mlp_density)?;
        Dip::new(input_density, glu_density)
    }

    /// The input (up/gate column) density.
    pub fn input_density(&self) -> f32 {
        self.input_density
    }

    /// The GLU (down column) density.
    pub fn glu_density(&self) -> f32 {
        self.glu_density
    }

    /// The overall MLP weight density implied by the two knobs.
    pub fn mlp_density(&self) -> f32 {
        (2.0 * self.input_density + self.glu_density) / 3.0
    }
}

impl MlpForward for Dip {
    fn forward(&mut self, _layer: usize, mlp: &GluMlp, x: &[f32]) -> lm::Result<MlpForwardOutput> {
        // Step 1: per-token top-k on |x| -> which columns of W_u / W_g to load.
        let k_in = topk::count_for_density(x.len(), self.input_density)
            .map_err(|e| to_lm_error(e.into()))?;
        let active_in = topk::top_k_by_magnitude(x, k_in);

        // Step 2: approximate GLU activations from the pruned input.
        let up = mlp.up_activations_input_pruned(x, &active_in)?;
        let gate = mlp.gate_activations_input_pruned(x, &active_in)?;
        let glu: Vec<f32> = up.iter().zip(gate.iter()).map(|(u, g)| u * g).collect();

        // Step 3: per-token top-k on |G̃LU(x)| -> which columns of W_d to load.
        let k_glu = topk::count_for_density(glu.len(), self.glu_density)
            .map_err(|e| to_lm_error(e.into()))?;
        let active_glu = topk::top_k_by_magnitude(&glu, k_glu);
        let y = mlp.down_from_glu(&glu, &active_glu)?;

        Ok(MlpForwardOutput {
            y,
            access: MlpAccessRecord {
                up: MatrixAccess::input(active_in.clone()),
                gate: MatrixAccess::input(active_in),
                down: MatrixAccess::input(active_glu),
            },
        })
    }

    fn forward_scratch(
        &mut self,
        _layer: usize,
        mlp: &GluMlp,
        x: &[f32],
        ws: &mut MlpWorkspace,
        access: &mut MlpAccessScratch,
        mirrors: Option<&lm::MlpMirrors>,
    ) -> lm::Result<()> {
        ws.ensure(mlp.d_model(), mlp.d_ff());

        let k_in = topk::count_for_density(x.len(), self.input_density)
            .map_err(|e| to_lm_error(e.into()))?;
        topk::top_k_by_magnitude_into(x, k_in, &mut ws.scores, &mut ws.active_a);

        mlp.up_activations_input_pruned_into(x, &ws.active_a, &mut ws.up, mirrors.map(|m| &m.up))?;
        mlp.gate_activations_input_pruned_into(
            x,
            &ws.active_a,
            &mut ws.gate,
            mirrors.map(|m| &m.gate),
        )?;
        for ((g, u), gate) in ws.glu.iter_mut().zip(ws.up.iter()).zip(ws.gate.iter()) {
            *g = u * gate;
        }

        let k_glu = topk::count_for_density(ws.glu.len(), self.glu_density)
            .map_err(|e| to_lm_error(e.into()))?;
        topk::top_k_by_magnitude_into(&ws.glu, k_glu, &mut ws.scores, &mut ws.active_b);
        mlp.down_from_glu_into(&ws.glu, &ws.active_b, &mut ws.y, mirrors.map(|m| &m.down))?;

        access.up.set_subset(SliceAxis::Input, &ws.active_a);
        access.gate.set_subset(SliceAxis::Input, &ws.active_a);
        access.down.set_subset(SliceAxis::Input, &ws.active_b);
        Ok(())
    }

    /// DIP is stateless, so one instance may drive a whole batch lane.
    fn batch_fusable(&self) -> bool {
        true
    }

    /// Fused batched DIP: per-row top-k selections run row by row (cheap,
    /// O(d) each), then **one** gathered weight pass per matrix serves the
    /// whole batch through the CSR-batched kernels — each row's reduction
    /// stays in its own active-list order, so every row is bitwise
    /// identical to [`Dip::forward_scratch`] on that row.
    fn forward_batch_scratch(
        &mut self,
        layer: usize,
        mlp: &GluMlp,
        xs: &[f32],
        rows: usize,
        ws: &mut MlpBatchWorkspace,
        accesses: &mut [MlpAccessScratch],
        mirrors: Option<&lm::MlpMirrors>,
    ) -> lm::Result<()> {
        let (d_model, d_ff) = (mlp.d_model(), mlp.d_ff());
        if rows == 1 {
            // a single row gains nothing from the CSR kernels; take the
            // (mirror-capable) single-token path
            self.forward_scratch(layer, mlp, xs, &mut ws.row_ws, &mut accesses[0], mirrors)?;
            ws.ensure(1, d_model, d_ff);
            ws.y.copy_from_slice(&ws.row_ws.y);
            return Ok(());
        }
        ws.ensure(rows, d_model, d_ff);

        let k_in = topk::count_for_density(d_model, self.input_density)
            .map_err(|e| to_lm_error(e.into()))?;
        ws.active_in_offsets.push(0);
        for r in 0..rows {
            let x = &xs[r * d_model..(r + 1) * d_model];
            topk::top_k_by_magnitude_into(x, k_in, &mut ws.scores, &mut ws.row_active);
            ws.active_in.extend_from_slice(&ws.row_active);
            ws.active_in_offsets.push(ws.active_in.len());
        }
        mlp.up_activations_input_pruned_batch_into(
            xs,
            rows,
            &ws.active_in,
            &ws.active_in_offsets,
            &mut ws.up,
            mirrors.map(|m| &m.up),
        )?;
        mlp.gate_activations_input_pruned_batch_into(
            xs,
            rows,
            &ws.active_in,
            &ws.active_in_offsets,
            &mut ws.gate,
            mirrors.map(|m| &m.gate),
        )?;
        for ((g, u), gate) in ws.glu.iter_mut().zip(ws.up.iter()).zip(ws.gate.iter()) {
            *g = u * gate;
        }

        let k_glu =
            topk::count_for_density(d_ff, self.glu_density).map_err(|e| to_lm_error(e.into()))?;
        ws.active_glu_offsets.push(0);
        for r in 0..rows {
            let glu = &ws.glu[r * d_ff..(r + 1) * d_ff];
            topk::top_k_by_magnitude_into(glu, k_glu, &mut ws.scores, &mut ws.row_active);
            ws.active_glu.extend_from_slice(&ws.row_active);
            ws.active_glu_offsets.push(ws.active_glu.len());
        }
        mlp.down_from_glu_batch_into(
            &ws.glu,
            rows,
            &ws.active_glu,
            &ws.active_glu_offsets,
            &mut ws.y,
            mirrors.map(|m| &m.down),
        )?;

        for (r, access) in accesses.iter_mut().enumerate().take(rows) {
            let in_row = &ws.active_in[ws.active_in_offsets[r]..ws.active_in_offsets[r + 1]];
            let glu_row = &ws.active_glu[ws.active_glu_offsets[r]..ws.active_glu_offsets[r + 1]];
            access.up.set_subset(SliceAxis::Input, in_row);
            access.gate.set_subset(SliceAxis::Input, in_row);
            access.down.set_subset(SliceAxis::Input, glu_row);
        }
        Ok(())
    }

    fn name(&self) -> String {
        format!("dip@{:.2}/{:.2}", self.input_density, self.glu_density)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm::{build_synthetic, eval, mlp::DenseMlp, ModelConfig};

    fn model() -> lm::TransformerModel {
        build_synthetic(&ModelConfig::tiny(), 23).unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let dip = Dip::new(0.6, 0.4).unwrap();
        assert!((dip.input_density() - 0.6).abs() < 1e-6);
        assert!((dip.glu_density() - 0.4).abs() < 1e-6);
        assert!((dip.mlp_density() - (2.0 * 0.6 + 0.4) / 3.0).abs() < 1e-6);
        assert!(Dip::new(0.0, 0.5).is_err());
        assert!(Dip::new(0.5, 1.5).is_err());
        assert!(dip.name().contains("dip@"));
    }

    #[test]
    fn target_density_constructor_respects_budget() {
        let dip = Dip::for_target_density(0.5, &DensityAllocation::balanced()).unwrap();
        assert!((dip.mlp_density() - 0.5).abs() < 0.02);
    }

    #[test]
    fn full_density_matches_dense_forward() {
        let model = model();
        let mlp = &model.layers[0].mlp;
        let x: Vec<f32> = (0..mlp.d_model())
            .map(|i| (i as f32 - 15.0) / 30.0)
            .collect();
        let dense = mlp.forward_dense(&x).unwrap();
        let mut dip = Dip::new(1.0, 1.0).unwrap();
        let out = dip.forward(0, mlp, &x).unwrap();
        for (a, b) in out.y.iter().zip(dense.iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn access_record_reports_input_axis_for_up_and_gate() {
        let model = model();
        let mlp = &model.layers[0].mlp;
        let x = vec![0.3; mlp.d_model()];
        let mut dip = Dip::new(0.5, 0.5).unwrap();
        let out = dip.forward(0, mlp, &x).unwrap();
        assert_eq!(out.access.up.axis, lm::SliceAxis::Input);
        assert_eq!(out.access.gate.axis, lm::SliceAxis::Input);
        assert_eq!(out.access.down.axis, lm::SliceAxis::Input);
        let d = out.access.mlp_density(mlp.d_model(), mlp.d_ff());
        assert!((d - 0.5).abs() < 0.03, "density {d}");
    }

    #[test]
    fn dip_beats_gate_pruning_at_equal_mlp_density() {
        // Table 1's headline comparison at 50% MLP density: DIP (all-three
        // sparsification guided by magnitudes) should be at least as good as
        // Gate pruning (selection from the partial gate signal only).
        let model = model();
        let seqs = eval::standard_eval_corpus(&model, 6, 32, 40).unwrap();

        let mut dip = Dip::for_target_density(0.5, &DensityAllocation::balanced()).unwrap();
        let ppl_dip = eval::perplexity(&model, &mut dip, &seqs).unwrap();

        let gate_density = crate::threshold::SparsityScheme::TwoOfThree
            .activation_density_for_target(0.5)
            .unwrap();
        let mut gate = crate::strategies::GatePruning::new(gate_density).unwrap();
        let ppl_gate = eval::perplexity(&model, &mut gate, &seqs).unwrap();

        assert!((ppl_dip.mean_mlp_density - 0.5).abs() < 0.03);
        assert!((ppl_gate.mean_mlp_density - 0.5).abs() < 0.03);
        assert!(
            ppl_dip.perplexity <= ppl_gate.perplexity,
            "DIP ({}) should not lose to Gate pruning ({}) at equal density",
            ppl_dip.perplexity,
            ppl_gate.perplexity
        );
    }

    #[test]
    fn perplexity_degrades_monotonically_with_density() {
        let model = model();
        let seqs = eval::standard_eval_corpus(&model, 5, 32, 41).unwrap();
        let dense = eval::perplexity(&model, &mut DenseMlp, &seqs)
            .unwrap()
            .perplexity;
        let mut previous = dense;
        for density in [0.8f32, 0.6, 0.4] {
            let mut dip = Dip::for_target_density(density, &DensityAllocation::balanced()).unwrap();
            let ppl = eval::perplexity(&model, &mut dip, &seqs)
                .unwrap()
                .perplexity;
            // small slack: on a short synthetic corpus mild pruning can land a
            // hair below the dense perplexity
            assert!(
                ppl >= dense * 0.97,
                "density {density}: ppl {ppl} vs dense {dense}"
            );
            assert!(
                ppl >= previous * 0.97,
                "ppl should not improve as density falls: {ppl} vs {previous}"
            );
            previous = ppl;
        }
        assert!(
            previous > dense * 1.02,
            "aggressive pruning (40% density) should measurably hurt: {previous} vs {dense}"
        );
    }
}
