//! Dynamic sparsity strategies.
//!
//! Every strategy implements [`lm::MlpForward`] and can therefore be plugged
//! into the transformer's decoding loop. The implemented schemes follow
//! Fig. 5 and Section 3–5 of the paper. Each is named by a declarative
//! [`crate::spec::StrategySpec`] (the *spec name* column) that owns its
//! metadata: the weight-slicing axis per matrix (`[up, gate, down]`; `-`
//! means dense access) and whether building it needs a calibration trace:
//!
//! | strategy | spec name | prunes | selection signal | slicing axes | calibration |
//! |---|---|---|---|---|---|
//! | (dense baseline) | `dense` | nothing | — | `[-, -, -]` | no |
//! | [`GluPruning`] | `glu` | `W_d` only | true \|GLU(x)\| (computed densely) | `[-, -, in]` | no |
//! | [`GluOraclePruning`] | `glu-oracle` | all three | true \|GLU(x)\| (perfect predictor) | `[out, out, in]` | no |
//! | [`GatePruning`] | `gate` | `W_u`, `W_d` | \|σ(W_g x)\| (gate computed densely) | `[out, -, in]` | no |
//! | [`UpPruning`] | `up` | `W_g`, `W_d` | \|W_u x\| (up computed densely) | `[-, out, in]` | no |
//! | [`CatsPruning`] | `cats` / `cats-lora` | `W_u`, `W_d` | per-layer threshold on \|σ(W_g x)\| | `[out, -, in]` | thresholds (+LoRA tuning) |
//! | [`PredictiveGluPruning`] | `dejavu` | all three | trained predictor logits (DejaVu) | `[out, out, in]` | predictor training |
//! | (static pruning) | `sparse-gpt` | weights offline | magnitude / N:M pattern | `[-, -, -]` | no |
//! | [`Dip`] | `dip` / `dip-lora` | all three | \|x\| for `W_u`/`W_g`, \|G̃LU(x)\| for `W_d` | `[in, in, in]` | no (+LoRA tuning) |
//! | [`DipCacheAware`] | `dip-ca` | all three | DIP scores re-weighted by cache state (Eq. 10) | `[in, in, in]` | no (needs device capacities) |

pub mod cats;
pub mod dip;
pub mod dip_ca;
pub mod gate_up;
pub mod glu;
pub mod predictive;

pub use cats::CatsPruning;
pub use dip::Dip;
pub use dip_ca::DipCacheAware;
pub use gate_up::{GatePruning, UpPruning};
pub use glu::{GluOraclePruning, GluPruning, GluThresholdPruning};
pub use predictive::PredictiveGluPruning;

use lm::GluMlp;

/// Computes GLU activations only at the selected neurons, returning a
/// `d_ff`-length vector that is zero everywhere else.
///
/// This is the shared kernel of every neuron-pruning scheme: only the
/// selected rows of `W_u` / `W_g` are touched.
///
/// # Errors
///
/// Propagates shape/index errors from the sparse kernels.
pub(crate) fn glu_at_neurons(mlp: &GluMlp, x: &[f32], neurons: &[usize]) -> lm::Result<Vec<f32>> {
    let mut ws = lm::MlpWorkspace::new(mlp.d_model(), mlp.d_ff());
    ws.active_a.extend_from_slice(neurons);
    glu_at_neurons_scratch(mlp, x, &mut ws)?;
    Ok(std::mem::take(&mut ws.glu))
}

/// Allocation-free [`glu_at_neurons`]: the neuron list is read from
/// [`lm::MlpWorkspace::active_a`], the up/gate buffers are reused and the
/// result lands in [`lm::MlpWorkspace::glu`]. Bitwise identical to the
/// allocating variant.
pub(crate) fn glu_at_neurons_scratch(
    mlp: &GluMlp,
    x: &[f32],
    ws: &mut lm::MlpWorkspace,
) -> lm::Result<()> {
    ws.ensure(mlp.d_model(), mlp.d_ff());
    mlp.w_up
        .matvec_rows_into(x, &ws.active_a, &mut ws.up)
        .map_err(lm::LmError::from)?;
    mlp.w_gate
        .matvec_rows_into(x, &ws.active_a, &mut ws.gate)
        .map_err(lm::LmError::from)?;
    if let Some(bias) = &mlp.gate_bias {
        for &i in &ws.active_a {
            ws.gate[i] += bias[i];
        }
    }
    ws.glu.fill(0.0);
    for &i in &ws.active_a {
        ws.glu[i] = ws.up[i] * mlp.activation.apply_scalar(ws.gate[i]);
    }
    Ok(())
}

/// Validates that a density lies in `(0, 1]`.
pub(crate) fn validate_density(name: &'static str, density: f32) -> crate::Result<()> {
    if !(density.is_finite() && density > 0.0 && density <= 1.0) {
        return Err(crate::DipError::InvalidParameter {
            name,
            reason: format!("must be in (0, 1], got {density}"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm::{build_synthetic, ModelConfig};
    use tensor::topk;

    #[test]
    fn glu_at_neurons_matches_dense_on_selected_indices() {
        let model = build_synthetic(&ModelConfig::tiny(), 1).unwrap();
        let mlp = &model.layers[0].mlp;
        let x: Vec<f32> = (0..mlp.d_model())
            .map(|i| (i as f32 % 5.0 - 2.0) / 5.0)
            .collect();
        let dense = mlp.glu_activations(&x).unwrap();
        let neurons = topk::top_k_by_magnitude(&dense, mlp.d_ff() / 2);
        let sparse = glu_at_neurons(mlp, &x, &neurons).unwrap();
        for i in 0..mlp.d_ff() {
            if neurons.contains(&i) {
                assert!((sparse[i] - dense[i]).abs() < 1e-5);
            } else {
                assert_eq!(sparse[i], 0.0);
            }
        }
    }

    #[test]
    fn density_validation() {
        assert!(validate_density("d", 0.5).is_ok());
        assert!(validate_density("d", 1.0).is_ok());
        assert!(validate_density("d", 0.0).is_err());
        assert!(validate_density("d", -0.2).is_err());
        assert!(validate_density("d", 1.5).is_err());
        assert!(validate_density("d", f32::NAN).is_err());
    }
}
