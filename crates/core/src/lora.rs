//! Lightweight LoRA adapters (Section 4, Eq. 9).
//!
//! The paper attaches rank-32 LoRA adapters to the up, gate and down matrices
//! and trains them with a knowledge-distillation loss so that the *sparsified*
//! MLP matches the dense model; after training the adapters are fused into
//! the original matrices, so they add no memory or latency overhead.
//!
//! This module implements the same mechanism with a layer-wise distillation
//! objective (each adapter is a low-rank linear correction trained by SGD to
//! cancel the residual introduced by pruning at that layer), which avoids a
//! full end-to-end backpropagation implementation while preserving the
//! mechanism being studied: a fused low-rank update that recovers part of the
//! sparsification error. The simplification is documented in DESIGN.md §1.

use crate::error::{DipError, Result};
use crate::strategies::cats::CatsPruning;
use crate::strategies::dip::Dip;
use lm::{ActivationTrace, TransformerModel};
use rand::Rng;
use serde::{Deserialize, Serialize};
use tensor::{init, topk, Matrix, Vector};

/// Hyper-parameters of LoRA fine-tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoraConfig {
    /// Rank of each adapter.
    pub rank: usize,
    /// Number of SGD epochs over the calibration samples.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// RNG seed for adapter initialisation.
    pub seed: u64,
}

impl Default for LoraConfig {
    fn default() -> Self {
        LoraConfig {
            rank: 8,
            epochs: 30,
            learning_rate: 0.05,
            seed: 0,
        }
    }
}

/// A low-rank adapter `C = A B` with `A: out x r`, `B: r x in`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LowRankAdapter {
    a: Matrix,
    b: Matrix,
}

impl LowRankAdapter {
    /// Creates an adapter with `B` random and `A` zero, so the initial
    /// correction is exactly the zero update (standard LoRA initialisation).
    pub fn new_random<R: Rng>(out_dim: usize, in_dim: usize, rank: usize, rng: &mut R) -> Self {
        let a = Matrix::zeros(out_dim, rank);
        let b = init::xavier_matrix(rng, rank, in_dim);
        LowRankAdapter { a, b }
    }

    /// Adapter rank.
    pub fn rank(&self) -> usize {
        self.a.cols()
    }

    /// Applies the correction to an input vector: `A (B x)`.
    ///
    /// # Errors
    ///
    /// Returns a shape error when `x` has the wrong length.
    pub fn apply(&self, x: &[f32]) -> Result<Vec<f32>> {
        let bx = self.b.matvec(x)?;
        Ok(self.a.matvec(&bx)?)
    }

    /// Materialises the full correction matrix `A B` (used for fusing).
    ///
    /// # Errors
    ///
    /// Never fails for a well-formed adapter; propagates shape errors.
    pub fn correction(&self) -> Result<Matrix> {
        Ok(self.a.matmul(&self.b)?)
    }

    /// One SGD step minimising `||A B x - residual||^2` for one sample.
    /// Returns the squared error before the update.
    ///
    /// # Errors
    ///
    /// Returns shape errors when the sample dimensions do not match.
    pub fn train_step(&mut self, x: &[f32], residual: &[f32], lr: f32) -> Result<f32> {
        let bx = self.b.matvec(x)?;
        let pred = self.a.matvec(&bx)?;
        let err = Vector::sub(&pred, residual)?;
        let loss = Vector::dot(&err, &err)?;

        // dA = err ⊗ bx
        let rank = self.rank();
        {
            let a = self.a.as_mut_slice();
            for (o, eo) in err.iter().enumerate() {
                if *eo == 0.0 {
                    continue;
                }
                for (k, bk) in bx.iter().enumerate() {
                    a[o * rank + k] -= lr * eo * bk;
                }
            }
        }
        // dB = (A^T err) ⊗ x
        let at_err = self.a.matvec_t(&err)?;
        {
            let in_dim = self.b.cols();
            let b = self.b.as_mut_slice();
            for (k, ek) in at_err.iter().enumerate() {
                if *ek == 0.0 {
                    continue;
                }
                for (i, xi) in x.iter().enumerate() {
                    b[k * in_dim + i] -= lr * ek * xi;
                }
            }
        }
        Ok(loss)
    }
}

/// Trains a low-rank adapter to map `inputs[i]` to `residuals[i]`.
///
/// # Errors
///
/// Returns [`DipError::InvalidParameter`] for empty or mismatched data.
pub fn train_adapter(
    inputs: &[Vec<f32>],
    residuals: &[Vec<f32>],
    out_dim: usize,
    in_dim: usize,
    cfg: &LoraConfig,
    seed_offset: u64,
) -> Result<LowRankAdapter> {
    if inputs.is_empty() || inputs.len() != residuals.len() {
        return Err(DipError::InvalidParameter {
            name: "inputs",
            reason: format!(
                "need matching non-empty inputs/residuals, got {} and {}",
                inputs.len(),
                residuals.len()
            ),
        });
    }
    if cfg.rank == 0 {
        return Err(DipError::InvalidParameter {
            name: "rank",
            reason: "must be > 0".to_string(),
        });
    }
    let mut rng = init::rng(cfg.seed.wrapping_add(seed_offset));
    let mut adapter = LowRankAdapter::new_random(out_dim, in_dim, cfg.rank, &mut rng);

    // Hold out every fifth sample for validation-based early stopping: the
    // correction that is fused into the weights is the one with the best
    // held-out loss, and the zero correction (the initial adapter) always
    // participates, so fusing can never be worse than not adapting — the
    // guarantee the paper relies on when reporting DIP+LoRA ≥ DIP.
    let is_val = |i: usize| inputs.len() >= 5 && i % 5 == 4;
    let val_loss = |adapter: &LowRankAdapter| -> Result<f32> {
        let mut loss = 0.0;
        let mut count = 0usize;
        for (i, (x, r)) in inputs.iter().zip(residuals.iter()).enumerate() {
            if !is_val(i) {
                continue;
            }
            let err = Vector::sub(&adapter.apply(x)?, r).map_err(DipError::from)?;
            loss += Vector::dot(&err, &err).map_err(DipError::from)?;
            count += 1;
        }
        Ok(if count == 0 {
            f32::INFINITY
        } else {
            loss / count as f32
        })
    };

    // Normalise the step size by the average input energy so that the
    // quadratic objective is conditioned independently of the activation
    // scale (GLU activations are heavy-tailed and can be large).
    let mean_energy: f32 = inputs
        .iter()
        .map(|x| x.iter().map(|v| v * v).sum::<f32>())
        .sum::<f32>()
        / inputs.len() as f32;
    let step = cfg.learning_rate / mean_energy.max(1e-6);

    let mut best = adapter.clone();
    let mut best_val = val_loss(&adapter)?;
    let zero_val = best_val;
    for _ in 0..cfg.epochs {
        let mut epoch_loss = 0.0f32;
        for (i, (x, r)) in inputs.iter().zip(residuals.iter()).enumerate() {
            if is_val(i) {
                continue;
            }
            epoch_loss += adapter.train_step(x, r, step)?;
        }
        if !epoch_loss.is_finite() {
            break;
        }
        let v = val_loss(&adapter)?;
        if v < best_val {
            best_val = v;
            best = adapter.clone();
        }
    }
    // require a real improvement on held-out data before fusing anything
    if best_val > 0.98 * zero_val {
        let mut zero_rng = init::rng(cfg.seed.wrapping_add(seed_offset));
        return Ok(LowRankAdapter::new_random(
            out_dim,
            in_dim,
            cfg.rank,
            &mut zero_rng,
        ));
    }
    Ok(best)
}

fn masked(values: &[f32], active: &[usize]) -> Vec<f32> {
    let mut out = vec![0.0f32; values.len()];
    for &i in active {
        out[i] = values[i];
    }
    out
}

/// Fine-tunes LoRA adapters for DIP at the given densities and returns a new
/// model with the adapters fused into `W_u`, `W_g` and `W_d` (Eq. 9).
///
/// # Errors
///
/// Returns [`DipError::CalibrationMismatch`] when the trace does not match
/// the model, plus training errors.
pub fn fine_tune_dip(
    model: &TransformerModel,
    trace: &ActivationTrace,
    dip: &Dip,
    cfg: &LoraConfig,
) -> Result<TransformerModel> {
    check_trace(model, trace)?;
    let mut tuned = model.clone();
    let d_model = model.config.d_model;
    let d_ff = model.config.d_ff;
    let k_in = topk::count_for_density(d_model, dip.input_density())?;
    let k_glu = topk::count_for_density(d_ff, dip.glu_density())?;

    for (layer_idx, layer) in tuned.layers.iter_mut().enumerate() {
        let samples = &trace.samples[layer_idx];
        if samples.is_empty() {
            continue;
        }
        let original = &model.layers[layer_idx].mlp;

        // --- up & gate adapters: compensate the input pruning error -------
        let mut pruned_inputs = Vec::with_capacity(samples.len());
        let mut up_residuals = Vec::with_capacity(samples.len());
        let mut gate_residuals = Vec::with_capacity(samples.len());
        for s in samples {
            let active_in = topk::top_k_by_magnitude(&s.input, k_in);
            let x_masked = masked(&s.input, &active_in);
            let up_dense = original.w_up.matvec(&s.input).map_err(DipError::from)?;
            let up_sparse = original.w_up.matvec(&x_masked).map_err(DipError::from)?;
            let gate_dense = original.w_gate.matvec(&s.input).map_err(DipError::from)?;
            let gate_sparse = original.w_gate.matvec(&x_masked).map_err(DipError::from)?;
            up_residuals.push(Vector::sub(&up_dense, &up_sparse).map_err(DipError::from)?);
            gate_residuals.push(Vector::sub(&gate_dense, &gate_sparse).map_err(DipError::from)?);
            pruned_inputs.push(x_masked);
        }
        let up_adapter = train_adapter(
            &pruned_inputs,
            &up_residuals,
            d_ff,
            d_model,
            cfg,
            (layer_idx as u64) * 3,
        )?;
        let gate_adapter = train_adapter(
            &pruned_inputs,
            &gate_residuals,
            d_ff,
            d_model,
            cfg,
            (layer_idx as u64) * 3 + 1,
        )?;
        layer.mlp.w_up = layer
            .mlp
            .w_up
            .add(&up_adapter.correction()?)
            .map_err(DipError::from)?;
        layer.mlp.w_gate = layer
            .mlp
            .w_gate
            .add(&gate_adapter.correction()?)
            .map_err(DipError::from)?;

        // --- down adapter: compensate the GLU pruning error ---------------
        let mut glu_inputs = Vec::with_capacity(samples.len());
        let mut down_residuals = Vec::with_capacity(samples.len());
        for s in samples {
            let active_in = topk::top_k_by_magnitude(&s.input, k_in);
            let up = layer
                .mlp
                .up_activations_input_pruned(&s.input, &active_in)
                .map_err(DipError::from)?;
            let gate = layer
                .mlp
                .gate_activations_input_pruned(&s.input, &active_in)
                .map_err(DipError::from)?;
            let glu: Vec<f32> = up.iter().zip(gate.iter()).map(|(u, g)| u * g).collect();
            let active_glu = topk::top_k_by_magnitude(&glu, k_glu);
            let glu_masked = masked(&glu, &active_glu);
            let y_dense = original.w_down.matvec(&s.glu).map_err(DipError::from)?;
            let y_sparse = original
                .w_down
                .matvec(&glu_masked)
                .map_err(DipError::from)?;
            down_residuals.push(Vector::sub(&y_dense, &y_sparse).map_err(DipError::from)?);
            glu_inputs.push(glu_masked);
        }
        let down_adapter = train_adapter(
            &glu_inputs,
            &down_residuals,
            d_model,
            d_ff,
            cfg,
            (layer_idx as u64) * 3 + 2,
        )?;
        layer.mlp.w_down = layer
            .mlp
            .w_down
            .add(&down_adapter.correction()?)
            .map_err(DipError::from)?;
    }
    Ok(tuned)
}

/// Fine-tunes a LoRA adapter on the down projection for CATS pruning and
/// returns a new model with the adapter fused into `W_d`.
///
/// # Errors
///
/// Returns [`DipError::CalibrationMismatch`] when the trace does not match
/// the model, plus training errors.
pub fn fine_tune_cats(
    model: &TransformerModel,
    trace: &ActivationTrace,
    cats: &CatsPruning,
    cfg: &LoraConfig,
) -> Result<TransformerModel> {
    check_trace(model, trace)?;
    let mut tuned = model.clone();
    let d_model = model.config.d_model;
    let d_ff = model.config.d_ff;

    for (layer_idx, layer) in tuned.layers.iter_mut().enumerate() {
        let samples = &trace.samples[layer_idx];
        if samples.is_empty() {
            continue;
        }
        let original = &model.layers[layer_idx].mlp;
        let mut glu_inputs = Vec::with_capacity(samples.len());
        let mut residuals = Vec::with_capacity(samples.len());
        for s in samples {
            let gate = original
                .gate_activations(&s.input)
                .map_err(DipError::from)?;
            let active = cats.select_neurons(layer_idx, &gate);
            let up = original
                .w_up
                .matvec_rows(&s.input, &active)
                .map_err(DipError::from)?;
            let glu: Vec<f32> = up.iter().zip(gate.iter()).map(|(u, g)| u * g).collect();
            let glu_masked = masked(&glu, &active);
            let y_dense = original.w_down.matvec(&s.glu).map_err(DipError::from)?;
            let y_sparse = original
                .w_down
                .matvec(&glu_masked)
                .map_err(DipError::from)?;
            residuals.push(Vector::sub(&y_dense, &y_sparse).map_err(DipError::from)?);
            glu_inputs.push(glu_masked);
        }
        let adapter = train_adapter(
            &glu_inputs,
            &residuals,
            d_model,
            d_ff,
            cfg,
            layer_idx as u64,
        )?;
        layer.mlp.w_down = layer
            .mlp
            .w_down
            .add(&adapter.correction()?)
            .map_err(DipError::from)?;
    }
    Ok(tuned)
}

fn check_trace(model: &TransformerModel, trace: &ActivationTrace) -> Result<()> {
    if trace.n_layers() != model.n_layers() {
        return Err(DipError::CalibrationMismatch {
            reason: format!(
                "trace has {} layers but model has {}",
                trace.n_layers(),
                model.n_layers()
            ),
        });
    }
    if trace.n_tokens() == 0 {
        return Err(DipError::CalibrationMismatch {
            reason: "calibration trace contains no tokens".to_string(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm::{build_synthetic, eval, mlp::DenseMlp, trace::collect_activation_trace, ModelConfig};

    #[test]
    fn adapter_learns_a_low_rank_map() {
        let mut rng = init::rng(4);
        // ground truth rank-1 map
        let u: Vec<f32> = (0..6).map(|i| (i as f32 - 2.5) / 3.0).collect();
        let v: Vec<f32> = (0..4).map(|i| (i as f32 + 1.0) / 4.0).collect();
        let inputs: Vec<Vec<f32>> = (0..20)
            .map(|_| (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let residuals: Vec<Vec<f32>> = inputs
            .iter()
            .map(|x| {
                let s = Vector::dot(&v, x).unwrap();
                u.iter().map(|ui| ui * s).collect()
            })
            .collect();
        let cfg = LoraConfig {
            rank: 2,
            epochs: 200,
            learning_rate: 0.3,
            seed: 1,
        };
        let adapter = train_adapter(&inputs, &residuals, 6, 4, &cfg, 0).unwrap();
        let mut err = 0.0;
        for (x, r) in inputs.iter().zip(residuals.iter()) {
            err += Vector::relative_error(&adapter.apply(x).unwrap(), r).unwrap();
        }
        err /= inputs.len() as f32;
        assert!(err < 0.2, "mean relative error {err}");
        assert_eq!(adapter.rank(), 2);
        assert_eq!(adapter.correction().unwrap().shape(), (6, 4));
    }

    #[test]
    fn train_adapter_validates_inputs() {
        let cfg = LoraConfig::default();
        assert!(train_adapter(&[], &[], 4, 4, &cfg, 0).is_err());
        assert!(train_adapter(&[vec![1.0]], &[], 4, 1, &cfg, 0).is_err());
        let bad_rank = LoraConfig { rank: 0, ..cfg };
        assert!(train_adapter(&[vec![1.0]], &[vec![1.0; 4]], 4, 1, &bad_rank, 0).is_err());
    }

    #[test]
    fn dip_lora_reduces_perplexity_gap() {
        let config = ModelConfig::tiny();
        let model = build_synthetic(&config, 13).unwrap();
        let calib = eval::standard_eval_corpus(&model, 6, 32, 50).unwrap();
        let eval_seqs = eval::standard_eval_corpus(&model, 6, 32, 60).unwrap();
        let trace = collect_activation_trace(&model, &calib).unwrap();

        let dip = Dip::new(0.5, 0.5).unwrap();
        let cfg = LoraConfig {
            rank: 8,
            epochs: 60,
            learning_rate: 0.05,
            seed: 3,
        };
        let tuned = fine_tune_dip(&model, &trace, &dip, &cfg).unwrap();

        let dense = eval::perplexity(&model, &mut DenseMlp, &eval_seqs).unwrap();
        let mut plain = Dip::new(0.5, 0.5).unwrap();
        let ppl_plain = eval::perplexity(&model, &mut plain, &eval_seqs).unwrap();
        let mut adapted = Dip::new(0.5, 0.5).unwrap();
        let ppl_lora = eval::perplexity(&tuned, &mut adapted, &eval_seqs).unwrap();

        assert!(ppl_plain.perplexity >= dense.perplexity * 0.99);
        assert!(
            ppl_lora.perplexity < ppl_plain.perplexity,
            "LoRA should reduce the DIP perplexity: {} vs {}",
            ppl_lora.perplexity,
            ppl_plain.perplexity
        );
    }

    #[test]
    fn cats_lora_reduces_perplexity_gap() {
        let config = ModelConfig::tiny();
        let model = build_synthetic(&config, 14).unwrap();
        let calib = eval::standard_eval_corpus(&model, 3, 16, 51).unwrap();
        let eval_seqs = eval::standard_eval_corpus(&model, 3, 16, 61).unwrap();
        let trace = collect_activation_trace(&model, &calib).unwrap();

        let cats = CatsPruning::calibrate(&model, &trace, 0.5).unwrap();
        let cfg = LoraConfig {
            rank: 8,
            epochs: 40,
            learning_rate: 0.05,
            seed: 3,
        };
        let tuned = fine_tune_cats(&model, &trace, &cats, &cfg).unwrap();

        let mut plain = CatsPruning::calibrate(&model, &trace, 0.5).unwrap();
        let ppl_plain = eval::perplexity(&model, &mut plain, &eval_seqs).unwrap();
        let mut adapted = CatsPruning::calibrate(&model, &trace, 0.5).unwrap();
        let ppl_lora = eval::perplexity(&tuned, &mut adapted, &eval_seqs).unwrap();
        assert!(
            ppl_lora.perplexity <= ppl_plain.perplexity * 1.02,
            "CATS LoRA should not be much worse: {} vs {}",
            ppl_lora.perplexity,
            ppl_plain.perplexity
        );
    }

    #[test]
    fn fine_tune_validates_trace() {
        let model = build_synthetic(&ModelConfig::tiny(), 13).unwrap();
        let dip = Dip::new(0.5, 0.5).unwrap();
        let empty = ActivationTrace::new(model.n_layers());
        assert!(fine_tune_dip(&model, &empty, &dip, &LoraConfig::default()).is_err());
        let wrong = ActivationTrace::new(1);
        assert!(fine_tune_dip(&model, &wrong, &dip, &LoraConfig::default()).is_err());
    }
}
