//! Density allocation between the up/gate matrices and the down matrix
//! (Appendix B.1 of the paper).
//!
//! DIP has two knobs: the input density (columns of `W_u`/`W_g` kept) and the
//! GLU density (columns of `W_d` kept). For a target overall MLP density
//! `T = (2 d_in + d_glu) / 3` there is a one-parameter family of splits; the
//! paper fits a linear model in logit space between the target density and
//! the optimal up/gate density over Pareto-optimal configurations. This
//! module provides the Pareto-front extraction, the logit-space fit, and the
//! resulting splitter.

use crate::error::{DipError, Result};
use serde::{Deserialize, Serialize};

/// Logit transform with clamping away from 0 and 1.
fn logit(p: f64) -> f64 {
    let p = p.clamp(1e-4, 1.0 - 1e-4);
    (p / (1.0 - p)).ln()
}

/// Inverse logit.
fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Linear model `logit(d_in) = intercept + slope * logit(T)` mapping a target
/// MLP density to the optimal up/gate (input) density.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DensityAllocation {
    /// Intercept of the logit-space linear model.
    pub intercept: f64,
    /// Slope of the logit-space linear model.
    pub slope: f64,
}

impl DensityAllocation {
    /// The balanced allocation: input density equals the target density
    /// (and therefore so does the GLU density).
    pub fn balanced() -> Self {
        DensityAllocation {
            intercept: 0.0,
            slope: 1.0,
        }
    }

    /// Fits the logit-space linear model by least squares over
    /// `(target_mlp_density, input_density)` pairs, typically the
    /// Pareto-optimal configurations found by a 2-D sweep.
    ///
    /// # Errors
    ///
    /// Returns [`DipError::InvalidParameter`] with fewer than two points or
    /// with degenerate (constant) x values.
    pub fn fit(points: &[(f64, f64)]) -> Result<Self> {
        if points.len() < 2 {
            return Err(DipError::InvalidParameter {
                name: "points",
                reason: "need at least two points to fit the allocation model".to_string(),
            });
        }
        let xs: Vec<f64> = points.iter().map(|(t, _)| logit(*t)).collect();
        let ys: Vec<f64> = points.iter().map(|(_, d)| logit(*d)).collect();
        let n = xs.len() as f64;
        let mean_x = xs.iter().sum::<f64>() / n;
        let mean_y = ys.iter().sum::<f64>() / n;
        let var_x: f64 = xs.iter().map(|x| (x - mean_x) * (x - mean_x)).sum();
        if var_x < 1e-12 {
            return Err(DipError::InvalidParameter {
                name: "points",
                reason: "target densities are all identical; cannot fit a slope".to_string(),
            });
        }
        let cov: f64 = xs
            .iter()
            .zip(ys.iter())
            .map(|(x, y)| (x - mean_x) * (y - mean_y))
            .sum();
        let slope = cov / var_x;
        let intercept = mean_y - slope * mean_x;
        Ok(DensityAllocation { intercept, slope })
    }

    /// Splits a target MLP density into `(input_density, glu_density)` such
    /// that `(2 * input + glu) / 3 == target` (up to clamping at the
    /// boundaries).
    ///
    /// # Errors
    ///
    /// Returns [`DipError::InvalidParameter`] if `target` is outside `(0, 1]`.
    pub fn split(&self, target: f32) -> Result<(f32, f32)> {
        if !(target.is_finite() && target > 0.0 && target <= 1.0) {
            return Err(DipError::InvalidParameter {
                name: "target",
                reason: format!("must be in (0, 1], got {target}"),
            });
        }
        let t = f64::from(target);
        let mut d_in = sigmoid(self.intercept + self.slope * logit(t));
        // glu density implied by the budget constraint
        let mut d_glu = 3.0 * t - 2.0 * d_in;
        if d_glu > 1.0 {
            d_glu = 1.0;
            d_in = (3.0 * t - 1.0) / 2.0;
        }
        if d_glu < 1e-3 {
            d_glu = 1e-3;
            d_in = ((3.0 * t - d_glu) / 2.0).min(1.0);
        }
        let d_in = d_in.clamp(1e-3, 1.0);
        Ok((d_in as f32, d_glu as f32))
    }
}

impl Default for DensityAllocation {
    fn default() -> Self {
        DensityAllocation::balanced()
    }
}

/// Returns the indices of the Pareto-optimal points for (minimise `cost`,
/// minimise `quality_loss`) — here typically (MLP density, perplexity).
///
/// A point is Pareto-optimal when no other point has both lower-or-equal cost
/// and strictly lower quality loss (or equal quality loss and strictly lower
/// cost).
pub fn pareto_front(points: &[(f64, f64)]) -> Vec<usize> {
    let mut front = Vec::new();
    'outer: for (i, &(ci, qi)) in points.iter().enumerate() {
        for (j, &(cj, qj)) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            let dominates = (cj <= ci && qj < qi) || (cj < ci && qj <= qi);
            if dominates {
                continue 'outer;
            }
        }
        front.push(i);
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_split_keeps_densities_equal() {
        let alloc = DensityAllocation::balanced();
        for target in [0.3f32, 0.5, 0.75, 1.0] {
            let (d_in, d_glu) = alloc.split(target).unwrap();
            assert!((d_in - target).abs() < 1e-5, "target {target}: d_in {d_in}");
            assert!(
                (d_glu - target).abs() < 1e-4,
                "target {target}: d_glu {d_glu}"
            );
        }
    }

    #[test]
    fn split_preserves_overall_budget() {
        let alloc = DensityAllocation {
            intercept: -0.3,
            slope: 1.2,
        };
        for target in [0.35f32, 0.5, 0.6, 0.8] {
            let (d_in, d_glu) = alloc.split(target).unwrap();
            let achieved = (2.0 * d_in + d_glu) / 3.0;
            assert!(
                (achieved - target).abs() < 0.02,
                "target {target}: achieved {achieved}"
            );
            assert!(d_in > 0.0 && d_in <= 1.0);
            assert!(d_glu > 0.0 && d_glu <= 1.0);
        }
    }

    #[test]
    fn split_validates_target() {
        let alloc = DensityAllocation::balanced();
        assert!(alloc.split(0.0).is_err());
        assert!(alloc.split(1.5).is_err());
        assert!(alloc.split(f32::NAN).is_err());
    }

    #[test]
    fn fit_recovers_identity_mapping() {
        let points: Vec<(f64, f64)> = (1..10)
            .map(|i| (i as f64 / 10.0, i as f64 / 10.0))
            .collect();
        let alloc = DensityAllocation::fit(&points).unwrap();
        assert!(alloc.intercept.abs() < 1e-6);
        assert!((alloc.slope - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fit_recovers_biased_mapping() {
        // input density consistently higher than the target in logit space
        let points: Vec<(f64, f64)> = (1..10)
            .map(|i| {
                let t = i as f64 / 10.0;
                let d = sigmoid(0.5 + 1.0 * logit(t));
                (t, d)
            })
            .collect();
        let alloc = DensityAllocation::fit(&points).unwrap();
        assert!((alloc.intercept - 0.5).abs() < 1e-6);
        assert!((alloc.slope - 1.0).abs() < 1e-6);
        let (d_in, _) = alloc.split(0.5).unwrap();
        assert!(d_in > 0.5);
    }

    #[test]
    fn fit_requires_valid_points() {
        assert!(DensityAllocation::fit(&[]).is_err());
        assert!(DensityAllocation::fit(&[(0.5, 0.5)]).is_err());
        assert!(DensityAllocation::fit(&[(0.5, 0.4), (0.5, 0.6)]).is_err());
    }

    #[test]
    fn pareto_front_picks_non_dominated_points() {
        let points = vec![
            (0.3, 8.0), // low density, high ppl - on front
            (0.5, 6.0), // on front
            (0.5, 7.0), // dominated by (0.5, 6.0)
            (0.8, 5.0), // on front
            (0.9, 5.5), // dominated by (0.8, 5.0)
        ];
        let front = pareto_front(&points);
        assert_eq!(front, vec![0, 1, 3]);
    }

    #[test]
    fn pareto_front_of_empty_and_single() {
        assert!(pareto_front(&[]).is_empty());
        assert_eq!(pareto_front(&[(1.0, 1.0)]), vec![0]);
    }
}
