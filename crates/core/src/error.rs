//! Error type for the dynamic-sparsity core crate.

use std::fmt;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, DipError>;

/// Errors produced by sparsity strategies, calibration or training.
#[derive(Debug, Clone, PartialEq)]
pub enum DipError {
    /// An underlying tensor operation failed.
    Tensor(tensor::TensorError),
    /// An underlying language-model operation failed.
    Lm(lm::LmError),
    /// A strategy or trainer parameter was invalid.
    InvalidParameter {
        /// The parameter at fault.
        name: &'static str,
        /// Explanation of the violated constraint.
        reason: String,
    },
    /// A calibration artefact (trace, predictor set, threshold table) does
    /// not match the model it is being used with.
    CalibrationMismatch {
        /// Explanation of the mismatch.
        reason: String,
    },
    /// Two strategy specs demand incompatible weight-slicing axes for the
    /// same matrix, so they cannot share one column cache
    /// (see [`crate::spec::resolve_axes`]).
    IncompatibleSpecs {
        /// Explanation of the axis conflict.
        reason: String,
    },
}

impl fmt::Display for DipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DipError::Tensor(e) => write!(f, "tensor error: {e}"),
            DipError::Lm(e) => write!(f, "model error: {e}"),
            DipError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            DipError::CalibrationMismatch { reason } => {
                write!(f, "calibration mismatch: {reason}")
            }
            DipError::IncompatibleSpecs { reason } => {
                write!(f, "incompatible strategy specs: {reason}")
            }
        }
    }
}

impl std::error::Error for DipError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DipError::Tensor(e) => Some(e),
            DipError::Lm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<tensor::TensorError> for DipError {
    fn from(e: tensor::TensorError) -> Self {
        DipError::Tensor(e)
    }
}

impl From<lm::LmError> for DipError {
    fn from(e: lm::LmError) -> Self {
        DipError::Lm(e)
    }
}

/// Converts a crate error into the `lm` error space so that strategies can be
/// used behind the [`lm::MlpForward`] trait (whose methods return
/// [`lm::Result`]).
pub fn to_lm_error(e: DipError) -> lm::LmError {
    match e {
        DipError::Tensor(t) => lm::LmError::Tensor(t),
        DipError::Lm(l) => l,
        DipError::InvalidParameter { name, reason } => lm::LmError::InvalidConfig {
            field: name,
            reason,
        },
        DipError::CalibrationMismatch { reason } => lm::LmError::BadSequence { reason },
        DipError::IncompatibleSpecs { reason } => lm::LmError::InvalidConfig {
            field: "strategy-specs",
            reason,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let te = tensor::TensorError::Empty { op: "softmax" };
        let e: DipError = te.into();
        assert!(e.to_string().contains("softmax"));
        assert!(std::error::Error::source(&e).is_some());

        let le = lm::LmError::BadSequence {
            reason: "empty".into(),
        };
        let e: DipError = le.into();
        assert!(e.to_string().contains("empty"));

        let e = DipError::InvalidParameter {
            name: "gamma",
            reason: "negative".into(),
        };
        assert!(e.to_string().contains("gamma"));
        let e = DipError::CalibrationMismatch {
            reason: "layer count".into(),
        };
        assert!(e.to_string().contains("layer count"));
    }

    #[test]
    fn lm_error_round_trip() {
        let e = DipError::InvalidParameter {
            name: "k",
            reason: "too big".into(),
        };
        let le = to_lm_error(e);
        assert!(le.to_string().contains("k"));
        let e = DipError::Tensor(tensor::TensorError::Empty { op: "argmax" });
        assert!(matches!(to_lm_error(e), lm::LmError::Tensor(_)));
    }
}
