//! JSON (de)serialization of [`StrategySpec`].
//!
//! The workspace vendors a marker-only `serde` stand-in (the build
//! environment is offline), so specs carry their own JSON codec: a flat
//! object per spec —
//!
//! ```json
//! {"method": "dip-ca", "density": 0.5, "gamma": 0.2}
//! ```
//!
//! with method-specific optional keys (`rank` for LoRA variants, `hidden` /
//! `epochs` for the DejaVu predictor, `pattern` for SparseGPT). A workload
//! mix is a JSON array of such objects; [`StrategySpec::list_from_json`]
//! parses it, so serving fleets are declarative (no recompilation for a new
//! mix).
//!
//! Floats are written with Rust's shortest round-trip formatting, so
//! `serialize → deserialize` reproduces the spec exactly (property-tested in
//! `tests/spec_roundtrip.rs`).

use super::{NmPattern, PredictorSpec, StrategySpec};
use crate::error::{DipError, Result};

/// A parsed JSON value (the tiny subset this crate needs).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object (insertion-ordered).
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_f32(&self) -> Option<f32> {
        match self {
            JsonValue::Number(n) => Some(*n as f32),
            _ => None,
        }
    }

    fn as_u32(&self) -> Option<u32> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u32),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }
}

fn err(reason: impl Into<String>) -> DipError {
    DipError::InvalidParameter {
        name: "json",
        reason: reason.into(),
    }
}

/// Maximum container nesting the parser accepts. Spec files are flat
/// arrays of flat objects; the bound exists so hostile input fails with a
/// typed error instead of overflowing the stack.
const MAX_DEPTH: usize = 64;

/// Parses one JSON document.
///
/// # Errors
///
/// Returns [`DipError::InvalidParameter`] on malformed input, container
/// nesting deeper than 64 levels, or trailing garbage.
pub fn parse_json(input: &str) -> Result<JsonValue> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<()> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(err(format!("expected `{}` at byte {}", c as char, *pos)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue> {
    if depth > MAX_DEPTH {
        return Err(err(format!("nesting deeper than {MAX_DEPTH} levels")));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err("unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: JsonValue,
) -> Result<JsonValue> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(err(format!("invalid literal at byte {}", *pos)))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII digits");
    text.parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|_| err(format!("invalid number `{text}` at byte {start}")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    while *pos < bytes.len() {
        match bytes[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let escaped = bytes
                    .get(*pos)
                    .ok_or_else(|| err("unterminated escape sequence"))?;
                out.push(match escaped {
                    b'"' => '"',
                    b'\\' => '\\',
                    b'/' => '/',
                    b'n' => '\n',
                    b't' => '\t',
                    b'r' => '\r',
                    other => return Err(err(format!("unsupported escape `\\{}`", *other as char))),
                });
                *pos += 1;
            }
            _ => {
                // Consume one UTF-8 scalar (the input is a valid &str).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| err("invalid UTF-8"))?;
                let c = rest.chars().next().expect("non-empty remainder");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
    Err(err("unterminated string"))
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(err(format!("expected `,` or `]` at byte {}", *pos))),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos, depth + 1)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(fields));
            }
            _ => return Err(err(format!("expected `,` or `}}` at byte {}", *pos))),
        }
    }
}

/// Formats an `f32` so that parsing the result reproduces the value exactly
/// (Rust's `{}` emits the shortest round-trip decimal).
fn fmt_f32(v: f32) -> String {
    format!("{v}")
}

impl StrategySpec {
    /// Serializes the spec as a flat JSON object.
    pub fn to_json(&self) -> String {
        let mut fields = vec![format!("\"method\":\"{}\"", self.method_name())];
        if !matches!(self, StrategySpec::Dense) {
            fields.push(format!("\"density\":{}", fmt_f32(self.density())));
        }
        match *self {
            StrategySpec::CatsLora { rank, .. } | StrategySpec::DipLora { rank, .. } => {
                fields.push(format!("\"rank\":{rank}"));
            }
            StrategySpec::Predictive { predictor, .. } => {
                if let Some(hidden) = predictor.hidden {
                    fields.push(format!("\"hidden\":{hidden}"));
                }
                if let Some(epochs) = predictor.epochs {
                    fields.push(format!("\"epochs\":{epochs}"));
                }
            }
            StrategySpec::SparseGpt { pattern, .. } => {
                fields.push(format!("\"pattern\":\"{}\"", pattern.name()));
            }
            StrategySpec::DipCacheAware { gamma, .. } => {
                fields.push(format!("\"gamma\":{}", fmt_f32(gamma)));
            }
            _ => {}
        }
        format!("{{{}}}", fields.join(","))
    }

    /// Parses a spec from a JSON object produced by [`StrategySpec::to_json`]
    /// (or hand-written in the same schema). The parsed spec is validated.
    ///
    /// # Errors
    ///
    /// Returns [`DipError::InvalidParameter`] for malformed JSON, an unknown
    /// method, a missing/invalid field, or parameters that fail
    /// [`StrategySpec::validate`].
    pub fn from_json(input: &str) -> Result<Self> {
        Self::from_value(&parse_json(input)?)
    }

    /// Builds a spec from an already parsed [`JsonValue`] object.
    ///
    /// # Errors
    ///
    /// See [`StrategySpec::from_json`].
    pub fn from_value(value: &JsonValue) -> Result<Self> {
        let method = value
            .get("method")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| err("spec object needs a string `method` field"))?;
        let density = |v: &JsonValue| -> Result<f32> {
            v.get("density")
                .and_then(JsonValue::as_f32)
                .ok_or_else(|| err(format!("method `{method}` needs a numeric `density`")))
        };
        let rank = |v: &JsonValue| -> Result<u32> {
            v.get("rank")
                .and_then(JsonValue::as_u32)
                .ok_or_else(|| err(format!("method `{method}` needs an integer `rank`")))
        };
        let spec = match method {
            "dense" => StrategySpec::Dense,
            "glu" => StrategySpec::GluPruning {
                density: density(value)?,
            },
            "glu-oracle" => StrategySpec::GluOracle {
                density: density(value)?,
            },
            "gate" => StrategySpec::GatePruning {
                density: density(value)?,
            },
            "up" => StrategySpec::UpPruning {
                density: density(value)?,
            },
            "cats" => StrategySpec::Cats {
                density: density(value)?,
            },
            "cats-lora" => StrategySpec::CatsLora {
                density: density(value)?,
                rank: rank(value)?,
            },
            "dejavu" => StrategySpec::Predictive {
                density: density(value)?,
                predictor: PredictorSpec {
                    hidden: value.get("hidden").and_then(JsonValue::as_u32),
                    epochs: value.get("epochs").and_then(JsonValue::as_u32),
                },
            },
            "sparse-gpt" => StrategySpec::SparseGpt {
                density: density(value)?,
                pattern: match value.get("pattern") {
                    None => NmPattern::Unstructured,
                    Some(p) => p.as_str().and_then(NmPattern::parse).ok_or_else(|| {
                        err("invalid `pattern` (use \"unstructured\" or \"n:m\")")
                    })?,
                },
            },
            "dip" => StrategySpec::Dip {
                density: density(value)?,
            },
            "dip-lora" => StrategySpec::DipLora {
                density: density(value)?,
                rank: rank(value)?,
            },
            "dip-ca" => StrategySpec::DipCacheAware {
                density: density(value)?,
                gamma: value
                    .get("gamma")
                    .and_then(JsonValue::as_f32)
                    .ok_or_else(|| err("method `dip-ca` needs a numeric `gamma`"))?,
            },
            other => {
                return Err(err(format!(
                    "unknown method `{other}` (known: {})",
                    StrategySpec::METHOD_NAMES.join(", ")
                )))
            }
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Serializes a list of specs as a JSON array (one object per line).
    pub fn list_to_json(specs: &[StrategySpec]) -> String {
        let items: Vec<String> = specs.iter().map(|s| format!("  {}", s.to_json())).collect();
        format!("[\n{}\n]\n", items.join(",\n"))
    }

    /// Parses a JSON array of spec objects (a declarative workload mix).
    ///
    /// # Errors
    ///
    /// Returns [`DipError::InvalidParameter`] for malformed JSON, a
    /// non-array document, or any invalid spec object.
    pub fn list_from_json(input: &str) -> Result<Vec<StrategySpec>> {
        match parse_json(input)? {
            JsonValue::Array(items) => items.iter().map(StrategySpec::from_value).collect(),
            _ => Err(err("expected a JSON array of spec objects")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_method() {
        let specs = vec![
            StrategySpec::Dense,
            StrategySpec::GluPruning { density: 0.75 },
            StrategySpec::GluOracle { density: 0.5 },
            StrategySpec::GatePruning { density: 0.45 },
            StrategySpec::UpPruning { density: 0.62 },
            StrategySpec::Cats { density: 0.5 },
            StrategySpec::CatsLora {
                density: 0.55,
                rank: 8,
            },
            StrategySpec::Predictive {
                density: 0.5,
                predictor: PredictorSpec {
                    hidden: Some(24),
                    epochs: Some(3),
                },
            },
            StrategySpec::Predictive {
                density: 0.5,
                predictor: PredictorSpec::default(),
            },
            StrategySpec::SparseGpt {
                density: 0.5,
                pattern: NmPattern::NofM { n: 2, m: 4 },
            },
            StrategySpec::SparseGpt {
                density: 0.31,
                pattern: NmPattern::Unstructured,
            },
            StrategySpec::Dip { density: 0.5 },
            StrategySpec::DipLora {
                density: 0.5,
                rank: 4,
            },
            StrategySpec::DipCacheAware {
                density: 0.5,
                gamma: 0.2,
            },
        ];
        for spec in &specs {
            let json = spec.to_json();
            let back = StrategySpec::from_json(&json).unwrap_or_else(|e| {
                panic!("failed to parse `{json}`: {e}");
            });
            assert_eq!(*spec, back, "round trip through `{json}`");
        }
        let list = StrategySpec::list_to_json(&specs);
        assert_eq!(StrategySpec::list_from_json(&list).unwrap(), specs);
    }

    #[test]
    fn parses_hand_written_specs() {
        let spec = StrategySpec::from_json(
            r#" { "method" : "dip-ca" , "density" : 0.5 , "gamma" : 0.2 } "#,
        )
        .unwrap();
        assert_eq!(
            spec,
            StrategySpec::DipCacheAware {
                density: 0.5,
                gamma: 0.2
            }
        );
        // pattern defaults to unstructured
        let spec = StrategySpec::from_json(r#"{"method":"sparse-gpt","density":0.4}"#).unwrap();
        assert_eq!(
            spec,
            StrategySpec::SparseGpt {
                density: 0.4,
                pattern: NmPattern::Unstructured
            }
        );
        let list = StrategySpec::list_from_json("[]").unwrap();
        assert!(list.is_empty());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(StrategySpec::from_json("").is_err());
        assert!(StrategySpec::from_json("{").is_err());
        assert!(StrategySpec::from_json("{}").is_err());
        assert!(StrategySpec::from_json(r#"{"method":"warp-drive"}"#).is_err());
        assert!(StrategySpec::from_json(r#"{"method":"dip"}"#).is_err());
        assert!(StrategySpec::from_json(r#"{"method":"dip","density":"x"}"#).is_err());
        assert!(StrategySpec::from_json(r#"{"method":"dip","density":1.7}"#).is_err());
        assert!(StrategySpec::from_json(r#"{"method":"dip-ca","density":0.5}"#).is_err());
        assert!(StrategySpec::from_json(r#"{"method":"dip-lora","density":0.5}"#).is_err());
        assert!(
            StrategySpec::from_json(r#"{"method":"sparse-gpt","density":0.5,"pattern":"x"}"#)
                .is_err()
        );
        assert!(StrategySpec::from_json(r#"{"method":"dense"} trailing"#).is_err());
        assert!(StrategySpec::list_from_json(r#"{"method":"dense"}"#).is_err());
    }

    #[test]
    fn deep_nesting_fails_with_an_error_not_a_stack_overflow() {
        let hostile = "[".repeat(100_000);
        assert!(parse_json(&hostile).is_err());
        let nested = format!("{}1{}", "[".repeat(65), "]".repeat(65));
        assert!(parse_json(&nested).is_err());
        let fine = format!("{}1{}", "[".repeat(10), "]".repeat(10));
        assert!(parse_json(&fine).is_ok());
    }

    #[test]
    fn json_value_parser_covers_the_basics() {
        let v = parse_json(r#"{"a":[1,2.5,-3e2],"b":true,"c":null,"d":"s\n"}"#).unwrap();
        assert_eq!(
            v.get("a"),
            Some(&JsonValue::Array(vec![
                JsonValue::Number(1.0),
                JsonValue::Number(2.5),
                JsonValue::Number(-300.0),
            ]))
        );
        assert_eq!(v.get("b"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("c"), Some(&JsonValue::Null));
        assert_eq!(v.get("d"), Some(&JsonValue::String("s\n".to_string())));
        assert_eq!(v.get("missing"), None);
    }
}
