//! The declarative strategy API: one serializable [`StrategySpec`] per
//! sparsity method, shared by every harness in the workspace.
//!
//! The paper contributes a *family* of dynamic-sparsity methods; this module
//! is the single place that names them. A spec carries the method, its target
//! overall MLP weight density and the method-specific parameters (γ for
//! cache-aware masking, LoRA rank, predictor configuration, N:M pattern), and
//! owns the metadata every consumer needs:
//!
//! * [`StrategySpec::label`] — the stable report label,
//! * [`StrategySpec::axis_requirements`] — the weight-slicing axis each MLP
//!   matrix is loaded along (`[up, gate, down]`),
//! * [`StrategySpec::needs_calibration`] — whether building needs an
//!   activation trace (CATS thresholds, predictor training, LoRA tuning),
//! * [`StrategySpec::weight_transform`] — whether the method replaces model
//!   weights (static pruning, LoRA fusing) before the strategy runs,
//! * [`StrategySpec::shared_cache_key`] — whether sessions with this spec
//!   must share one cache-model cell (DIP-CA in a multi-tenant engine),
//! * [`resolve_axes`] — axis-compatibility across a mix of specs.
//!
//! [`registry::StrategyRegistry`] turns a spec into a ready
//! [`lm::MlpForward`] strategy, memoizing calibration artefacts and handing
//! every DIP-CA session of a run the *same* shared cache model. Specs
//! round-trip through JSON ([`StrategySpec::to_json`] /
//! [`StrategySpec::from_json`]), so workload mixes are declarative: the
//! serving harness accepts a JSON list of specs and needs no recompilation
//! for a new mix.

pub mod json;
pub mod registry;

pub use registry::{BuildEnv, BuiltStrategy, SharedMlpForward, StrategyRegistry};

use crate::error::{DipError, Result};
use crate::threshold::SparsityScheme;
use lm::SliceAxis;
use serde::{Deserialize, Serialize};

/// Configuration of the trained predictor behind DejaVu-style pruning.
///
/// `None` fields resolve at build time: `hidden` falls back to the
/// registry's configured default (see
/// [`StrategyRegistry::set_predictor_defaults`]) or, absent that, to the
/// model-derived `max(d_model / 2, 16)`; `epochs` falls back to the
/// registry's default epoch count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PredictorSpec {
    /// Hidden width of each per-layer predictor.
    pub hidden: Option<u32>,
    /// Training epochs over the calibration trace.
    pub epochs: Option<u32>,
}

/// Sparsity pattern of a SparseGPT-style static pruner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NmPattern {
    /// Unstructured magnitude pruning to the target density.
    Unstructured,
    /// Semi-structured N:M pruning (keep `n` of every `m` weights).
    NofM {
        /// Weights kept per group.
        n: u32,
        /// Group size.
        m: u32,
    },
}

impl NmPattern {
    /// The density this pattern realises regardless of the requested target
    /// (`None` for unstructured pruning, which hits any target).
    pub fn implied_density(&self) -> Option<f32> {
        match self {
            NmPattern::Unstructured => None,
            NmPattern::NofM { n, m } => Some(*n as f32 / *m as f32),
        }
    }

    /// Short pattern name (`unstructured`, `2:4`, …).
    pub fn name(&self) -> String {
        match self {
            NmPattern::Unstructured => "unstructured".to_string(),
            NmPattern::NofM { n, m } => format!("{n}:{m}"),
        }
    }

    /// Parses a pattern name produced by [`NmPattern::name`].
    pub fn parse(s: &str) -> Option<Self> {
        if s == "unstructured" {
            return Some(NmPattern::Unstructured);
        }
        let (n, m) = s.split_once(':')?;
        Some(NmPattern::NofM {
            n: n.parse().ok()?,
            m: m.parse().ok()?,
        })
    }
}

/// A weight transform a spec requires *before* its strategy runs: these
/// methods replace model weights (offline surgery), which a per-request
/// serving engine cannot do against a shared model but the experiment
/// workbench applies when preparing a method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightTransform {
    /// SparseGPT-style static magnitude pruning of the MLP weights.
    SparseGpt {
        /// The sparsity pattern.
        pattern: NmPattern,
    },
    /// Fuse LoRA adapters fine-tuned against the DIP mask.
    LoraDip {
        /// LoRA rank.
        rank: u32,
    },
    /// Fuse LoRA adapters fine-tuned against the CATS mask.
    LoraCats {
        /// LoRA rank.
        rank: u32,
    },
}

/// One declarative sparsity strategy: method + target overall MLP weight
/// density + method-specific parameters.
///
/// `density` is always the *target overall MLP weight density* in `(0, 1]`;
/// builders convert it to per-matrix activation densities through
/// [`SparsityScheme`] exactly as the paper's evaluation does.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StrategySpec {
    /// Stream the dense model (every weight column, every token).
    Dense,
    /// GLU pruning: dense GLU, prune columns of `W_d` only (density ≥ 2/3).
    GluPruning {
        /// Target MLP weight density in `[2/3 .., 1]`.
        density: f32,
    },
    /// GLU pruning with a perfect (oracle) neuron predictor.
    GluOracle {
        /// Target MLP weight density in `(0, 1]`.
        density: f32,
    },
    /// Gate pruning: select neurons from the densely computed gate signal.
    GatePruning {
        /// Target MLP weight density in `(1/3 .., 1]`.
        density: f32,
    },
    /// Up pruning: select neurons from the densely computed up signal.
    UpPruning {
        /// Target MLP weight density in `(1/3 .., 1]`.
        density: f32,
    },
    /// CATS per-layer threshold pruning (needs a calibration trace).
    Cats {
        /// Target MLP weight density in `(1/3 .., 1]`.
        density: f32,
    },
    /// CATS with fused LoRA adapters (weight transform + calibration).
    CatsLora {
        /// Target MLP weight density in `(1/3 .., 1]`.
        density: f32,
        /// LoRA rank.
        rank: u32,
    },
    /// DejaVu-style predictive GLU pruning (trains predictors from a trace).
    Predictive {
        /// Target MLP weight density in `(0, 1]`.
        density: f32,
        /// Predictor configuration.
        predictor: PredictorSpec,
    },
    /// SparseGPT-style static pruning (weight transform; dense access).
    SparseGpt {
        /// Target MLP weight density in `(0, 1]`.
        density: f32,
        /// Sparsity pattern.
        pattern: NmPattern,
    },
    /// Dynamic Input Pruning at a target overall MLP weight density.
    Dip {
        /// Target MLP weight density in `(0, 1]`.
        density: f32,
    },
    /// DIP with fused LoRA adapters (weight transform).
    DipLora {
        /// Target MLP weight density in `(0, 1]`.
        density: f32,
        /// LoRA rank.
        rank: u32,
    },
    /// Cache-aware DIP: selection re-weighted by the (shared) DRAM cache
    /// state.
    DipCacheAware {
        /// Target MLP weight density in `(0, 1]`.
        density: f32,
        /// Cache-aware penalty γ in `(0, 1]` (the paper uses 0.2).
        gamma: f32,
    },
}

/// Quantises a float parameter for use in a sharing/memoization key.
pub(crate) fn param_key(v: f32) -> u32 {
    (v * 10_000.0).round() as u32
}

impl StrategySpec {
    /// Every method name understood by [`StrategySpec::from_json`], in the
    /// strategy table's order.
    pub const METHOD_NAMES: [&'static str; 12] = [
        "dense",
        "glu",
        "glu-oracle",
        "gate",
        "up",
        "cats",
        "cats-lora",
        "dejavu",
        "sparse-gpt",
        "dip",
        "dip-lora",
        "dip-ca",
    ];

    /// The method's stable kebab-case name (the `method` key in JSON).
    pub fn method_name(&self) -> &'static str {
        match self {
            StrategySpec::Dense => "dense",
            StrategySpec::GluPruning { .. } => "glu",
            StrategySpec::GluOracle { .. } => "glu-oracle",
            StrategySpec::GatePruning { .. } => "gate",
            StrategySpec::UpPruning { .. } => "up",
            StrategySpec::Cats { .. } => "cats",
            StrategySpec::CatsLora { .. } => "cats-lora",
            StrategySpec::Predictive { .. } => "dejavu",
            StrategySpec::SparseGpt { .. } => "sparse-gpt",
            StrategySpec::Dip { .. } => "dip",
            StrategySpec::DipLora { .. } => "dip-lora",
            StrategySpec::DipCacheAware { .. } => "dip-ca",
        }
    }

    /// The target overall MLP weight density (1.0 for the dense model).
    pub fn density(&self) -> f32 {
        match *self {
            StrategySpec::Dense => 1.0,
            StrategySpec::GluPruning { density }
            | StrategySpec::GluOracle { density }
            | StrategySpec::GatePruning { density }
            | StrategySpec::UpPruning { density }
            | StrategySpec::Cats { density }
            | StrategySpec::CatsLora { density, .. }
            | StrategySpec::Predictive { density, .. }
            | StrategySpec::SparseGpt { density, .. }
            | StrategySpec::Dip { density }
            | StrategySpec::DipLora { density, .. }
            | StrategySpec::DipCacheAware { density, .. } => density,
        }
    }

    /// Short label used in reports; stable across serialization round-trips.
    pub fn label(&self) -> String {
        match self {
            StrategySpec::Dense => "dense".to_string(),
            StrategySpec::GluPruning { density } => format!("glu@{density:.2}"),
            StrategySpec::GluOracle { density } => format!("glu-oracle@{density:.2}"),
            StrategySpec::GatePruning { density } => format!("gate@{density:.2}"),
            StrategySpec::UpPruning { density } => format!("up@{density:.2}"),
            StrategySpec::Cats { density } => format!("cats@{density:.2}"),
            StrategySpec::CatsLora { density, rank } => format!("cats+lora{rank}@{density:.2}"),
            StrategySpec::Predictive { density, .. } => format!("dejavu@{density:.2}"),
            StrategySpec::SparseGpt { density, pattern } => {
                format!("sparse-gpt[{}]@{density:.2}", pattern.name())
            }
            StrategySpec::Dip { density } => format!("dip@{density:.2}"),
            StrategySpec::DipLora { density, rank } => format!("dip+lora{rank}@{density:.2}"),
            StrategySpec::DipCacheAware { density, gamma } => {
                format!("dip-ca@{density:.2}(g={gamma})")
            }
        }
    }

    /// The weight-slicing axis each MLP matrix is loaded along
    /// (`[up, gate, down]`); `None` means dense access, which is compatible
    /// with any axis.
    pub fn axis_requirements(&self) -> [Option<SliceAxis>; 3] {
        match self {
            StrategySpec::Dense | StrategySpec::SparseGpt { .. } => [None, None, None],
            // GLU pruning computes up/gate densely and prunes W_d columns.
            StrategySpec::GluPruning { .. } => [None, None, Some(SliceAxis::Input)],
            // Whole-neuron schemes: rows of W_u/W_g, columns of W_d.
            StrategySpec::GluOracle { .. } | StrategySpec::Predictive { .. } => [
                Some(SliceAxis::Output),
                Some(SliceAxis::Output),
                Some(SliceAxis::Input),
            ],
            StrategySpec::GatePruning { .. }
            | StrategySpec::Cats { .. }
            | StrategySpec::CatsLora { .. } => {
                [Some(SliceAxis::Output), None, Some(SliceAxis::Input)]
            }
            StrategySpec::UpPruning { .. } => {
                [None, Some(SliceAxis::Output), Some(SliceAxis::Input)]
            }
            StrategySpec::Dip { .. }
            | StrategySpec::DipLora { .. }
            | StrategySpec::DipCacheAware { .. } => [
                Some(SliceAxis::Input),
                Some(SliceAxis::Input),
                Some(SliceAxis::Input),
            ],
        }
    }

    /// Whether building this spec needs a calibration activation trace
    /// (CATS thresholds, predictor training, LoRA fine-tuning).
    pub fn needs_calibration(&self) -> bool {
        matches!(
            self,
            StrategySpec::Cats { .. }
                | StrategySpec::CatsLora { .. }
                | StrategySpec::DipLora { .. }
                | StrategySpec::Predictive { .. }
        )
    }

    /// The offline weight transform this spec requires, if any. Specs with a
    /// transform cannot run per-request against a shared model (the serving
    /// engine rejects them); the experiment workbench applies the transform
    /// when preparing the method.
    pub fn weight_transform(&self) -> Option<WeightTransform> {
        match *self {
            StrategySpec::SparseGpt { pattern, .. } => Some(WeightTransform::SparseGpt { pattern }),
            StrategySpec::DipLora { rank, .. } => Some(WeightTransform::LoraDip { rank }),
            StrategySpec::CatsLora { rank, .. } => Some(WeightTransform::LoraCats { rank }),
            _ => None,
        }
    }

    /// Whether this spec's per-token weight selection depends on the input
    /// (dynamic sparsity) rather than being fixed offline.
    pub fn is_dynamic(&self) -> bool {
        !matches!(self, StrategySpec::Dense | StrategySpec::SparseGpt { .. })
    }

    /// The cache-model sharing key: sessions whose specs return the same
    /// `Some(key)` must consult *one* shared cache model (DIP-CA in a
    /// multi-tenant engine, where the physical DRAM cache is shared).
    /// `None` for strategies without cache-dependent state.
    pub fn shared_cache_key(&self) -> Option<(u32, u32)> {
        match *self {
            StrategySpec::DipCacheAware { density, gamma } => {
                Some((param_key(density), param_key(gamma)))
            }
            _ => None,
        }
    }

    /// Validates every parameter of the spec.
    ///
    /// # Errors
    ///
    /// Returns [`DipError::InvalidParameter`] for densities outside the
    /// method's reachable range (e.g. GLU pruning below 2/3), γ outside
    /// `(0, 1]`, a zero LoRA rank, an inconsistent N:M pattern, or an N:M
    /// pattern whose implied density is far from the requested target.
    pub fn validate(&self) -> Result<()> {
        let density = self.density();
        if !(density.is_finite() && density > 0.0 && density <= 1.0) {
            return Err(DipError::InvalidParameter {
                name: "density",
                reason: format!("must be in (0, 1], got {density}"),
            });
        }
        match *self {
            StrategySpec::GluPruning { density } => {
                SparsityScheme::DownOnly.activation_density_for_target(density)?;
            }
            StrategySpec::GatePruning { density }
            | StrategySpec::UpPruning { density }
            | StrategySpec::Cats { density }
            | StrategySpec::CatsLora { density, .. } => {
                SparsityScheme::TwoOfThree.activation_density_for_target(density)?;
            }
            StrategySpec::DipCacheAware { gamma, .. }
                if !(gamma.is_finite() && gamma > 0.0 && gamma <= 1.0) =>
            {
                return Err(DipError::InvalidParameter {
                    name: "gamma",
                    reason: format!("must be in (0, 1], got {gamma}"),
                });
            }
            StrategySpec::SparseGpt { density, pattern } => {
                if let NmPattern::NofM { n, m } = pattern {
                    if n == 0 || m == 0 || n >= m {
                        return Err(DipError::InvalidParameter {
                            name: "pattern",
                            reason: format!("N:M pattern needs 0 < n < m, got {n}:{m}"),
                        });
                    }
                }
                if let Some(implied) = pattern.implied_density() {
                    if (implied - density).abs() > 0.05 {
                        return Err(DipError::InvalidParameter {
                            name: "density",
                            reason: format!(
                                "{} pruning only realises {implied:.2} density, not {density:.2}",
                                pattern.name()
                            ),
                        });
                    }
                }
            }
            _ => {}
        }
        if let StrategySpec::CatsLora { rank: 0, .. } | StrategySpec::DipLora { rank: 0, .. } =
            *self
        {
            return Err(DipError::InvalidParameter {
                name: "rank",
                reason: "LoRA rank must be at least 1".to_string(),
            });
        }
        Ok(())
    }

    /// One step down the spec's graceful-degradation chain: the next
    /// *cheaper* spec a serving engine may substitute under pressure instead
    /// of shedding the request, or `None` when the spec is already at the
    /// floor of its chain (or cannot be swapped at admission at all).
    ///
    /// The chain trades accuracy headroom for service time along the paper's
    /// own family: the dense model falls back to DIP at half density
    /// (`dense → dip@0.50 → dip@0.25`), dynamic-sparsity methods halve their
    /// density down to a method-specific floor (0.25 for DIP-family and
    /// predictive specs, 0.40 for whole-neuron schemes whose reachable range
    /// bottoms out above 1/3), and GLU pruning — whose own range cannot go
    /// below 2/3 — crosses over to DIP. Specs that require an offline weight
    /// transform (SparseGPT, LoRA fusing) have no chain: the served model is
    /// fixed, so there is nothing cheaper to substitute per-request.
    ///
    /// Every spec the chain yields passes [`StrategySpec::validate`] by
    /// construction, and every chain terminates in a bounded number of
    /// steps. Whether a step is *admissible* in a given run (axis
    /// compatibility with co-tenants, calibration availability) is the
    /// engine's check, not this method's.
    pub fn degraded(&self) -> Option<StrategySpec> {
        // Halve toward `floor`; `None` once the floor is reached.
        fn halve(density: f32, floor: f32) -> Option<f32> {
            let next = (density * 0.5).max(floor);
            (next < density).then_some(next)
        }
        match *self {
            StrategySpec::Dense => Some(StrategySpec::Dip { density: 0.5 }),
            StrategySpec::Dip { density } => {
                halve(density, 0.25).map(|density| StrategySpec::Dip { density })
            }
            StrategySpec::DipCacheAware { density, gamma } => {
                halve(density, 0.25).map(|density| StrategySpec::DipCacheAware { density, gamma })
            }
            // GLU pruning bottoms out at 2/3 weight density; the cheaper
            // neighbour is DIP, which prunes all three matrices.
            StrategySpec::GluPruning { density } => Some(StrategySpec::Dip {
                density: density.min(0.5),
            }),
            StrategySpec::GluOracle { density } => {
                halve(density, 0.25).map(|density| StrategySpec::GluOracle { density })
            }
            StrategySpec::GatePruning { density } => {
                halve(density, 0.4).map(|density| StrategySpec::GatePruning { density })
            }
            StrategySpec::UpPruning { density } => {
                halve(density, 0.4).map(|density| StrategySpec::UpPruning { density })
            }
            StrategySpec::Cats { density } => {
                halve(density, 0.4).map(|density| StrategySpec::Cats { density })
            }
            StrategySpec::Predictive { density, predictor } => {
                halve(density, 0.25).map(|density| StrategySpec::Predictive { density, predictor })
            }
            StrategySpec::SparseGpt { .. }
            | StrategySpec::CatsLora { .. }
            | StrategySpec::DipLora { .. } => None,
        }
    }
}

impl std::fmt::Display for StrategySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// Checks that every spec's axis demands agree per matrix, returning the
/// resolved axes (`[up, gate, down]`, defaulting to the input axis wherever
/// every spec is dense).
///
/// Slices along different axes cannot share one column cache, so a serving
/// run must reject e.g. a CATS request (output-axis `W_u`) next to a DIP
/// request (input-axis `W_u`) before any token is served.
///
/// # Errors
///
/// Returns [`DipError::IncompatibleSpecs`] on a conflict.
pub fn resolve_axes(specs: &[StrategySpec]) -> Result<[SliceAxis; 3]> {
    let names = ["up", "gate", "down"];
    let mut resolved: [Option<SliceAxis>; 3] = [None, None, None];
    for spec in specs {
        for (i, need) in spec.axis_requirements().iter().enumerate() {
            match (resolved[i], *need) {
                (_, None) => {}
                (None, Some(a)) => resolved[i] = Some(a),
                (Some(a), Some(b)) if a == b => {}
                (Some(a), Some(b)) => {
                    return Err(DipError::IncompatibleSpecs {
                        reason: format!(
                            "matrix `{}` is sliced along {a:?} by one spec and {b:?} by `{}`; \
                             slices along different axes cannot share one column cache",
                            names[i],
                            spec.label()
                        ),
                    });
                }
            }
        }
    }
    Ok([
        resolved[0].unwrap_or(SliceAxis::Input),
        resolved[1].unwrap_or(SliceAxis::Input),
        resolved[2].unwrap_or(SliceAxis::Input),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_specs() -> Vec<StrategySpec> {
        vec![
            StrategySpec::Dense,
            StrategySpec::GluPruning { density: 0.75 },
            StrategySpec::GluOracle { density: 0.5 },
            StrategySpec::GatePruning { density: 0.5 },
            StrategySpec::UpPruning { density: 0.5 },
            StrategySpec::Cats { density: 0.5 },
            StrategySpec::CatsLora {
                density: 0.5,
                rank: 8,
            },
            StrategySpec::Predictive {
                density: 0.5,
                predictor: PredictorSpec::default(),
            },
            StrategySpec::SparseGpt {
                density: 0.5,
                pattern: NmPattern::NofM { n: 2, m: 4 },
            },
            StrategySpec::Dip { density: 0.5 },
            StrategySpec::DipLora {
                density: 0.5,
                rank: 8,
            },
            StrategySpec::DipCacheAware {
                density: 0.5,
                gamma: 0.2,
            },
        ]
    }

    #[test]
    fn labels_and_method_names_are_distinct() {
        let specs = all_specs();
        let labels: std::collections::HashSet<String> =
            specs.iter().map(StrategySpec::label).collect();
        assert_eq!(labels.len(), specs.len());
        let names: std::collections::HashSet<&str> =
            specs.iter().map(StrategySpec::method_name).collect();
        assert_eq!(names.len(), specs.len());
        for spec in &specs {
            assert!(StrategySpec::METHOD_NAMES.contains(&spec.method_name()));
            assert_eq!(spec.to_string(), spec.label());
        }
    }

    #[test]
    fn all_specs_validate() {
        for spec in all_specs() {
            assert!(spec.validate().is_ok(), "{}", spec.label());
        }
    }

    #[test]
    fn degradation_chains_validate_and_terminate() {
        for spec in all_specs() {
            let mut cur = spec;
            let mut steps = 0;
            while let Some(next) = cur.degraded() {
                assert!(next.validate().is_ok(), "{} degraded to {}", cur, next);
                assert!(
                    next.density() <= cur.density(),
                    "degradation never gets denser: {cur} -> {next}"
                );
                cur = next;
                steps += 1;
                assert!(steps <= 8, "chain from {spec} does not terminate");
            }
        }
    }

    #[test]
    fn dense_chain_walks_through_dip() {
        let step1 = StrategySpec::Dense.degraded().unwrap();
        assert_eq!(step1, StrategySpec::Dip { density: 0.5 });
        let step2 = step1.degraded().unwrap();
        assert_eq!(step2, StrategySpec::Dip { density: 0.25 });
        assert_eq!(step2.degraded(), None, "0.25 is the DIP floor");
    }

    #[test]
    fn transform_specs_have_no_chain() {
        assert_eq!(
            StrategySpec::SparseGpt {
                density: 0.5,
                pattern: NmPattern::Unstructured,
            }
            .degraded(),
            None
        );
        assert_eq!(
            StrategySpec::DipLora {
                density: 0.5,
                rank: 8,
            }
            .degraded(),
            None
        );
        // GLU pruning cannot halve in-family (range floor 2/3): it crosses
        // over to DIP, preserving a sub-1.0 density target.
        assert_eq!(
            StrategySpec::GluPruning { density: 0.7 }.degraded(),
            Some(StrategySpec::Dip { density: 0.5 })
        );
        // DIP-CA keeps its gamma through the chain.
        assert_eq!(
            StrategySpec::DipCacheAware {
                density: 0.5,
                gamma: 0.2,
            }
            .degraded(),
            Some(StrategySpec::DipCacheAware {
                density: 0.25,
                gamma: 0.2,
            })
        );
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(StrategySpec::Dip { density: 0.0 }.validate().is_err());
        assert!(StrategySpec::Dip { density: 1.5 }.validate().is_err());
        assert!(StrategySpec::Dip { density: f32::NAN }.validate().is_err());
        // GLU pruning cannot reach 50 % density (W_u/W_g stay dense).
        assert!(StrategySpec::GluPruning { density: 0.5 }
            .validate()
            .is_err());
        assert!(StrategySpec::GatePruning { density: 0.2 }
            .validate()
            .is_err());
        assert!(StrategySpec::DipCacheAware {
            density: 0.5,
            gamma: 0.0
        }
        .validate()
        .is_err());
        assert!(StrategySpec::DipLora {
            density: 0.5,
            rank: 0
        }
        .validate()
        .is_err());
        // 2:4 pruning realises 0.5 density, not 0.8.
        assert!(StrategySpec::SparseGpt {
            density: 0.8,
            pattern: NmPattern::NofM { n: 2, m: 4 }
        }
        .validate()
        .is_err());
        assert!(StrategySpec::SparseGpt {
            density: 0.5,
            pattern: NmPattern::NofM { n: 4, m: 4 }
        }
        .validate()
        .is_err());
    }

    #[test]
    fn metadata_flags() {
        assert!(!StrategySpec::Dense.is_dynamic());
        assert!(StrategySpec::Dip { density: 0.5 }.is_dynamic());
        assert!(StrategySpec::Cats { density: 0.5 }.needs_calibration());
        assert!(StrategySpec::Predictive {
            density: 0.5,
            predictor: PredictorSpec::default()
        }
        .needs_calibration());
        assert!(!StrategySpec::Dip { density: 0.5 }.needs_calibration());
        assert!(StrategySpec::SparseGpt {
            density: 0.5,
            pattern: NmPattern::Unstructured
        }
        .weight_transform()
        .is_some());
        assert!(StrategySpec::Dip { density: 0.5 }
            .weight_transform()
            .is_none());
        assert!(StrategySpec::DipCacheAware {
            density: 0.5,
            gamma: 0.2
        }
        .shared_cache_key()
        .is_some());
        assert!(StrategySpec::Dip { density: 0.5 }
            .shared_cache_key()
            .is_none());
        assert_eq!(StrategySpec::Dense.density(), 1.0);
    }

    #[test]
    fn shared_cache_keys_distinguish_parameters() {
        let a = StrategySpec::DipCacheAware {
            density: 0.5,
            gamma: 0.2,
        };
        let b = StrategySpec::DipCacheAware {
            density: 0.5,
            gamma: 0.9,
        };
        let c = StrategySpec::DipCacheAware {
            density: 0.4,
            gamma: 0.2,
        };
        assert_ne!(a.shared_cache_key(), b.shared_cache_key());
        assert_ne!(a.shared_cache_key(), c.shared_cache_key());
        assert_eq!(a.shared_cache_key(), a.shared_cache_key());
    }

    #[test]
    fn axis_resolution_accepts_input_axis_family() {
        let axes = resolve_axes(&[
            StrategySpec::Dense,
            StrategySpec::Dip { density: 0.5 },
            StrategySpec::GluPruning { density: 0.75 },
            StrategySpec::DipCacheAware {
                density: 0.4,
                gamma: 0.2,
            },
        ])
        .unwrap();
        assert_eq!(axes, [SliceAxis::Input; 3]);
    }

    #[test]
    fn axis_resolution_accepts_output_axis_family() {
        let axes = resolve_axes(&[
            StrategySpec::Dense,
            StrategySpec::Cats { density: 0.5 },
            StrategySpec::GatePruning { density: 0.5 },
            StrategySpec::UpPruning { density: 0.5 },
            StrategySpec::Predictive {
                density: 0.5,
                predictor: PredictorSpec::default(),
            },
        ])
        .unwrap();
        assert_eq!(axes[0], SliceAxis::Output);
        assert_eq!(axes[1], SliceAxis::Output);
        assert_eq!(axes[2], SliceAxis::Input);
    }

    #[test]
    fn axis_resolution_rejects_mixed_axes() {
        let err = resolve_axes(&[
            StrategySpec::Dip { density: 0.5 },
            StrategySpec::Cats { density: 0.5 },
        ])
        .unwrap_err();
        assert!(matches!(err, DipError::IncompatibleSpecs { .. }));
        let err = resolve_axes(&[
            StrategySpec::Predictive {
                density: 0.5,
                predictor: PredictorSpec::default(),
            },
            StrategySpec::DipCacheAware {
                density: 0.5,
                gamma: 0.2,
            },
        ])
        .unwrap_err();
        assert!(matches!(err, DipError::IncompatibleSpecs { .. }));
    }

    #[test]
    fn empty_mix_defaults_to_input_axes() {
        assert_eq!(resolve_axes(&[]).unwrap(), [SliceAxis::Input; 3]);
        assert_eq!(
            resolve_axes(&[StrategySpec::Dense]).unwrap(),
            [SliceAxis::Input; 3]
        );
    }
}
