//! Turning a [`StrategySpec`] into a ready [`lm::MlpForward`] strategy.
//!
//! [`StrategyRegistry`] owns the construction knowledge that used to be
//! scattered across the serving engine and the experiment workbench:
//!
//! * density conversion through [`SparsityScheme`] and the DIP
//!   [`DensityAllocation`] split,
//! * **calibration hooks** — CATS thresholds are calibrated once per density
//!   and memoized; DejaVu predictors are trained once per configuration and
//!   memoized,
//! * **shared state** — every DIP-CA spec with the same `(density, γ)` gets
//!   the *same* [`SharedMlpForward`] cell, so in a multi-tenant engine all
//!   of its sessions consult one cache model (the physical DRAM cache is
//!   shared; per-session copies would optimise for a cache that does not
//!   exist), and [`StrategyRegistry::observe_cross_traffic`] feeds co-tenant
//!   traffic into each shared model.
//!
//! Weight transforms ([`StrategySpec::weight_transform`]) are *not* applied
//! here — they are offline model surgery (static pruning, LoRA fusing) owned
//! by the caller that owns the model (the experiment workbench); the
//! registry builds the runtime strategy that runs on the transformed model.

use crate::allocation::DensityAllocation;
use crate::error::{DipError, Result};
use crate::predictor::{train_predictors, Predictor, PredictorTrainingConfig};
use crate::spec::{param_key, StrategySpec};
use crate::strategies::{
    CatsPruning, Dip, DipCacheAware, GatePruning, GluOraclePruning, GluPruning,
    PredictiveGluPruning, UpPruning,
};
use crate::threshold::SparsityScheme;
use hwsim::BlockCacheCapacity;
use lm::mlp::DenseMlp;
use lm::{ActivationTrace, GluMlp, MlpForward, MlpForwardOutput, TransformerModel};
use std::cell::RefCell;
use std::rc::Rc;

/// Everything a registry needs to build strategies for one model.
pub struct BuildEnv<'a> {
    /// The model the strategies will run on (pre-transform weights; CATS
    /// calibration and predictor training read it).
    pub model: &'a TransformerModel,
    /// Calibration activation trace, required by specs with
    /// [`StrategySpec::needs_calibration`].
    pub calibration: Option<&'a ActivationTrace>,
    /// Per-layer cache capacities sizing DIP-CA's cache model (from the same
    /// DRAM allocation the simulator uses); required by DIP-CA specs.
    pub capacities: Option<&'a [BlockCacheCapacity]>,
}

/// A built strategy plus its static memory footprint.
pub struct BuiltStrategy {
    /// The ready MLP forward strategy.
    pub strategy: Box<dyn MlpForward>,
    /// Extra bytes the method pins in DRAM (e.g. DejaVu predictors at FP16).
    pub overhead_bytes: u64,
}

impl std::fmt::Debug for BuiltStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BuiltStrategy")
            .field("strategy", &self.strategy.name())
            .field("overhead_bytes", &self.overhead_bytes)
            .finish()
    }
}

/// One strategy instance shared by several sessions (interior-mutable
/// because [`MlpForward::forward`] takes `&mut self` and sessions
/// interleave). Used for DIP-CA, whose cache model must be shared by every
/// session that shares the physical DRAM cache.
#[derive(Clone)]
pub struct SharedMlpForward {
    inner: Rc<RefCell<DipCacheAware>>,
}

impl SharedMlpForward {
    /// Wraps a cache-aware strategy for shared use.
    pub fn new(strategy: DipCacheAware) -> Self {
        SharedMlpForward {
            inner: Rc::new(RefCell::new(strategy)),
        }
    }

    /// Feeds a co-tenant's weight accesses into the shared cache model (see
    /// [`DipCacheAware::observe_access`]).
    pub fn observe_access(&self, layer: usize, input_cols: &[usize], glu_cols: &[usize]) {
        self.inner
            .borrow_mut()
            .observe_access(layer, input_cols, glu_cols);
    }
}

impl MlpForward for SharedMlpForward {
    fn forward(&mut self, layer: usize, mlp: &GluMlp, x: &[f32]) -> lm::Result<MlpForwardOutput> {
        self.inner.borrow_mut().forward(layer, mlp, x)
    }

    fn forward_scratch(
        &mut self,
        layer: usize,
        mlp: &GluMlp,
        x: &[f32],
        ws: &mut lm::MlpWorkspace,
        access: &mut lm::MlpAccessScratch,
        mirrors: Option<&lm::MlpMirrors>,
    ) -> lm::Result<()> {
        self.inner
            .borrow_mut()
            .forward_scratch(layer, mlp, x, ws, access, mirrors)
    }

    /// Lane members share this cell by construction — one handle driving
    /// the whole batch *is* the shared-state semantics.
    fn batch_fusable(&self) -> bool {
        true
    }

    fn forward_batch_scratch(
        &mut self,
        layer: usize,
        mlp: &GluMlp,
        xs: &[f32],
        rows: usize,
        ws: &mut lm::MlpBatchWorkspace,
        accesses: &mut [lm::MlpAccessScratch],
        mirrors: Option<&lm::MlpMirrors>,
    ) -> lm::Result<()> {
        self.inner
            .borrow_mut()
            .forward_batch_scratch(layer, mlp, xs, rows, ws, accesses, mirrors)
    }

    fn name(&self) -> String {
        format!("shared({})", self.inner.borrow().name())
    }

    fn reset(&mut self) {
        self.inner.borrow_mut().reset();
    }
}

/// Builds strategies from specs, memoizing calibration artefacts and shared
/// cache-model cells across the lifetime of one run.
pub struct StrategyRegistry {
    allocation: DensityAllocation,
    predictor_defaults: PredictorTrainingConfig,
    /// `Some` once [`StrategyRegistry::set_predictor_defaults`] has been
    /// called: the configured hidden width then overrides the model-derived
    /// formula for specs that leave `hidden` unset.
    predictor_hidden_default: Option<usize>,
    shared_dip_ca: Vec<((u32, u32), SharedMlpForward)>,
    calibrated_cats: Vec<(u32, CatsPruning)>,
    trained_predictors: Vec<((usize, usize), Vec<Predictor>)>,
    /// Reused index buffers for the scratch-based cross-traffic observer.
    obs_input: Vec<usize>,
    obs_glu: Vec<usize>,
}

impl StrategyRegistry {
    /// Creates a registry with the balanced density allocation and default
    /// predictor-training hyper-parameters.
    pub fn new() -> Self {
        StrategyRegistry {
            allocation: DensityAllocation::balanced(),
            predictor_defaults: PredictorTrainingConfig::default(),
            predictor_hidden_default: None,
            shared_dip_ca: Vec::new(),
            calibrated_cats: Vec::new(),
            trained_predictors: Vec::new(),
            obs_input: Vec::new(),
            obs_glu: Vec::new(),
        }
    }

    /// The density allocation model used to split DIP's budget.
    pub fn allocation(&self) -> DensityAllocation {
        self.allocation
    }

    /// Replaces the density allocation model (e.g. with a fitted one from
    /// the Appendix B.1 experiment).
    pub fn set_allocation(&mut self, allocation: DensityAllocation) {
        self.allocation = allocation;
    }

    /// Replaces the default predictor-training hyper-parameters used when a
    /// [`super::PredictorSpec`] leaves fields unset. Every field is honored:
    /// `defaults.hidden` becomes the fallback hidden width (instead of the
    /// model-derived `max(d_model / 2, 16)`), `defaults.epochs` the fallback
    /// epoch count, and learning rate / target fraction / seed apply to all
    /// subsequent training runs.
    pub fn set_predictor_defaults(&mut self, defaults: PredictorTrainingConfig) {
        self.predictor_hidden_default = Some(defaults.hidden);
        self.predictor_defaults = defaults;
    }

    /// Number of distinct shared DIP-CA cache-model cells built so far.
    pub fn shared_cell_count(&self) -> usize {
        self.shared_dip_ca.len()
    }

    /// Number of distinct CATS calibrations memoized so far.
    pub fn calibrated_cats_count(&self) -> usize {
        self.calibrated_cats.len()
    }

    fn calibration<'a>(env: &BuildEnv<'a>, spec: &StrategySpec) -> Result<&'a ActivationTrace> {
        env.calibration.ok_or_else(|| DipError::InvalidParameter {
            name: "calibration",
            reason: format!("`{}` requires a calibration trace", spec.label()),
        })
    }

    fn cats(
        &mut self,
        env: &BuildEnv<'_>,
        spec: &StrategySpec,
        density: f32,
    ) -> Result<CatsPruning> {
        // Thresholds depend only on (model, density): calibrate once per
        // density and clone for each session.
        let key = param_key(density);
        if let Some((_, cats)) = self.calibrated_cats.iter().find(|(k, _)| *k == key) {
            return Ok(cats.clone());
        }
        let trace = Self::calibration(env, spec)?;
        let neuron_density = SparsityScheme::TwoOfThree.activation_density_for_target(density)?;
        let cats = CatsPruning::calibrate(env.model, trace, neuron_density)?;
        self.calibrated_cats.push((key, cats.clone()));
        Ok(cats)
    }

    fn predictors(
        &mut self,
        env: &BuildEnv<'_>,
        spec: &StrategySpec,
        predictor: super::PredictorSpec,
    ) -> Result<Vec<Predictor>> {
        let hidden = predictor.hidden.map(|h| h as usize).unwrap_or_else(|| {
            self.predictor_hidden_default
                .unwrap_or_else(|| (env.model.config.d_model / 2).max(16))
        });
        let epochs = predictor
            .epochs
            .map(|e| e as usize)
            .unwrap_or(self.predictor_defaults.epochs);
        let key = (hidden, epochs);
        if let Some((_, trained)) = self.trained_predictors.iter().find(|(k, _)| *k == key) {
            return Ok(trained.clone());
        }
        let trace = Self::calibration(env, spec)?;
        let cfg = PredictorTrainingConfig {
            hidden,
            epochs,
            ..self.predictor_defaults
        };
        let trained = train_predictors(env.model, trace, &cfg)?;
        self.trained_predictors.push((key, trained.clone()));
        Ok(trained)
    }

    /// Builds the runtime strategy for a spec.
    ///
    /// Weight-transforming specs ([`StrategySpec::weight_transform`]) get
    /// the strategy that runs *after* the transform (dense access for
    /// SparseGPT, the base mask for LoRA variants); applying the transform to
    /// the model is the caller's responsibility.
    ///
    /// # Errors
    ///
    /// Returns [`DipError::InvalidParameter`] when the spec fails
    /// [`StrategySpec::validate`], when a calibration-requiring spec is built
    /// without `env.calibration`, or when a DIP-CA spec is built without
    /// `env.capacities`; propagates construction/calibration/training errors.
    pub fn build(&mut self, spec: &StrategySpec, env: &BuildEnv<'_>) -> Result<BuiltStrategy> {
        spec.validate()?;
        let plain = |strategy: Box<dyn MlpForward>| BuiltStrategy {
            strategy,
            overhead_bytes: 0,
        };
        Ok(match *spec {
            StrategySpec::Dense | StrategySpec::SparseGpt { .. } => plain(Box::new(DenseMlp)),
            StrategySpec::GluPruning { density } => {
                let d = SparsityScheme::DownOnly.activation_density_for_target(density)?;
                plain(Box::new(GluPruning::new(d)?))
            }
            StrategySpec::GluOracle { density } => plain(Box::new(GluOraclePruning::new(density)?)),
            StrategySpec::GatePruning { density } => {
                let d = SparsityScheme::TwoOfThree.activation_density_for_target(density)?;
                plain(Box::new(GatePruning::new(d)?))
            }
            StrategySpec::UpPruning { density } => {
                let d = SparsityScheme::TwoOfThree.activation_density_for_target(density)?;
                plain(Box::new(UpPruning::new(d)?))
            }
            StrategySpec::Cats { density } | StrategySpec::CatsLora { density, .. } => {
                plain(Box::new(self.cats(env, spec, density)?))
            }
            StrategySpec::Predictive { density, predictor } => {
                let predictors = self.predictors(env, spec, predictor)?;
                let params: usize = predictors.iter().map(Predictor::num_params).sum();
                BuiltStrategy {
                    strategy: Box::new(PredictiveGluPruning::new(predictors, density)?),
                    // predictors are pinned in DRAM at FP16
                    overhead_bytes: (params * 2) as u64,
                }
            }
            StrategySpec::Dip { density } | StrategySpec::DipLora { density, .. } => plain(
                Box::new(Dip::for_target_density(density, &self.allocation)?),
            ),
            StrategySpec::DipCacheAware { density, gamma } => {
                let key = spec.shared_cache_key().expect("DIP-CA has a sharing key");
                if let Some((_, shared)) = self.shared_dip_ca.iter().find(|(k, _)| *k == key) {
                    return Ok(plain(Box::new(shared.clone())));
                }
                let capacities = env.capacities.ok_or_else(|| DipError::InvalidParameter {
                    name: "capacities",
                    reason: format!(
                        "`{}` needs per-layer cache capacities (a device allocation)",
                        spec.label()
                    ),
                })?;
                let (input_d, glu_d) = self.allocation.split(density)?;
                let strategy = DipCacheAware::new(
                    input_d,
                    glu_d,
                    gamma,
                    env.model.config.d_model,
                    env.model.config.d_ff,
                    capacities.to_vec(),
                )?;
                let shared = SharedMlpForward::new(strategy);
                self.shared_dip_ca.push((key, shared.clone()));
                plain(Box::new(shared))
            }
        })
    }

    /// Feeds one served token's weight accesses into every shared DIP-CA
    /// cache model except the one that produced it (`served`, a
    /// [`StrategySpec::shared_cache_key`]) — its own forward pass already
    /// updated itself. This keeps each cache-aware mask consistent with the
    /// *shared* DRAM cache that all tenants' traffic flows through.
    ///
    /// Axis note: mixes of DIP-CA with output-axis strategies are rejected
    /// by [`super::resolve_axes`] before any token is served, so the `up`
    /// and `down` records seen here are always input-axis (or dense `All`).
    pub fn observe_cross_traffic(
        &self,
        served: Option<(u32, u32)>,
        records: &[lm::MlpAccessRecord],
        d_model: usize,
        d_ff: usize,
    ) {
        if self.shared_dip_ca.iter().all(|(k, _)| served == Some(*k)) {
            return;
        }
        // materialise the per-layer column indices once, not once per model
        for (layer, rec) in records.iter().enumerate() {
            let mut input_cols = Vec::new();
            rec.up.slices.extend_indices(d_model, &mut input_cols);
            let mut glu_cols = Vec::new();
            rec.down.slices.extend_indices(d_ff, &mut glu_cols);
            Self::fan_out_layer(&self.shared_dip_ca, served, layer, &input_cols, &glu_cols);
        }
    }

    /// Feeds one layer's co-tenant column accesses into every shared cell
    /// except the serving one — the single propagation rule behind both
    /// `observe_cross_traffic` variants.
    fn fan_out_layer(
        shared_cells: &[((u32, u32), SharedMlpForward)],
        served: Option<(u32, u32)>,
        layer: usize,
        input_cols: &[usize],
        glu_cols: &[usize],
    ) {
        for (k, shared) in shared_cells {
            if served == Some(*k) {
                continue;
            }
            shared.observe_access(layer, input_cols, glu_cols);
        }
    }

    /// Allocation-free cross-traffic observation of one *row* of a batched
    /// step's `[layer][row]` access records — the batched counterpart of
    /// [`StrategyRegistry::observe_cross_traffic_scratch`], called once per
    /// row in batch (= schedule) order so shared cache models see exactly
    /// the sequential access sequence.
    pub fn observe_cross_traffic_batch_row(
        &mut self,
        served: Option<(u32, u32)>,
        accesses: &[Vec<lm::MlpAccessScratch>],
        row: usize,
        d_model: usize,
        d_ff: usize,
    ) {
        if self.shared_dip_ca.iter().all(|(k, _)| served == Some(*k)) {
            return;
        }
        for (layer, rows) in accesses.iter().enumerate() {
            let acc = &rows[row];
            self.obs_input.clear();
            match acc.up.subset() {
                Some(s) => self.obs_input.extend_from_slice(s),
                None => self.obs_input.extend(0..d_model),
            }
            self.obs_glu.clear();
            match acc.down.subset() {
                Some(s) => self.obs_glu.extend_from_slice(s),
                None => self.obs_glu.extend(0..d_ff),
            }
            Self::fan_out_layer(
                &self.shared_dip_ca,
                served,
                layer,
                &self.obs_input,
                &self.obs_glu,
            );
        }
    }

    /// Allocation-free [`StrategyRegistry::observe_cross_traffic`] fed from
    /// the decode scratch's per-layer access records: the column-index
    /// buffers are reused across tokens, so steady-state serving performs no
    /// per-token allocation here.
    pub fn observe_cross_traffic_scratch(
        &mut self,
        served: Option<(u32, u32)>,
        accesses: &[lm::MlpAccessScratch],
        d_model: usize,
        d_ff: usize,
    ) {
        if self.shared_dip_ca.iter().all(|(k, _)| served == Some(*k)) {
            return;
        }
        for (layer, acc) in accesses.iter().enumerate() {
            self.obs_input.clear();
            match acc.up.subset() {
                Some(s) => self.obs_input.extend_from_slice(s),
                None => self.obs_input.extend(0..d_model),
            }
            self.obs_glu.clear();
            match acc.down.subset() {
                Some(s) => self.obs_glu.extend_from_slice(s),
                None => self.obs_glu.extend(0..d_ff),
            }
            Self::fan_out_layer(
                &self.shared_dip_ca,
                served,
                layer,
                &self.obs_input,
                &self.obs_glu,
            );
        }
    }
}

impl Default for StrategyRegistry {
    fn default() -> Self {
        StrategyRegistry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PredictorSpec;
    use lm::{build_synthetic, ModelConfig};

    fn capacities(config: &ModelConfig) -> Vec<BlockCacheCapacity> {
        (0..config.n_layers)
            .map(|_| BlockCacheCapacity {
                up: config.d_model / 2,
                gate: config.d_model / 2,
                down: config.d_ff / 2,
            })
            .collect()
    }

    fn model() -> TransformerModel {
        build_synthetic(&ModelConfig::tiny(), 5).unwrap()
    }

    fn trace(model: &TransformerModel) -> ActivationTrace {
        let seqs = lm::eval::standard_eval_corpus(model, 2, 12, 1).unwrap();
        lm::trace::collect_activation_trace(model, &seqs).unwrap()
    }

    #[test]
    fn every_non_shared_spec_builds_and_runs() {
        let model = model();
        let trace = trace(&model);
        let mut registry = StrategyRegistry::new();
        let env = BuildEnv {
            model: &model,
            calibration: Some(&trace),
            capacities: None,
        };
        let specs = vec![
            StrategySpec::Dense,
            StrategySpec::GluPruning { density: 0.75 },
            StrategySpec::GluOracle { density: 0.5 },
            StrategySpec::GatePruning { density: 0.5 },
            StrategySpec::UpPruning { density: 0.5 },
            StrategySpec::Cats { density: 0.5 },
            StrategySpec::Predictive {
                density: 0.5,
                predictor: PredictorSpec {
                    hidden: Some(16),
                    epochs: Some(1),
                },
            },
            StrategySpec::SparseGpt {
                density: 0.5,
                pattern: crate::spec::NmPattern::NofM { n: 2, m: 4 },
            },
            StrategySpec::Dip { density: 0.5 },
        ];
        let x = vec![0.2f32; model.config.d_model];
        let mlp = &model.layers[0].mlp;
        for spec in &specs {
            let mut built = registry.build(spec, &env).unwrap();
            assert!(
                built.strategy.forward(0, mlp, &x).is_ok(),
                "{}",
                spec.label()
            );
        }
    }

    #[test]
    fn predictive_reports_overhead_and_memoizes_training() {
        let model = model();
        let trace = trace(&model);
        let mut registry = StrategyRegistry::new();
        let env = BuildEnv {
            model: &model,
            calibration: Some(&trace),
            capacities: None,
        };
        let spec = StrategySpec::Predictive {
            density: 0.5,
            predictor: PredictorSpec {
                hidden: Some(16),
                epochs: Some(1),
            },
        };
        let built = registry.build(&spec, &env).unwrap();
        assert!(built.overhead_bytes > 0);
        registry.build(&spec, &env).unwrap();
        assert_eq!(registry.trained_predictors.len(), 1);
        // a different configuration trains again
        let other = StrategySpec::Predictive {
            density: 0.5,
            predictor: PredictorSpec {
                hidden: Some(20),
                epochs: Some(1),
            },
        };
        registry.build(&other, &env).unwrap();
        assert_eq!(registry.trained_predictors.len(), 2);
    }

    #[test]
    fn predictor_defaults_are_honored_including_hidden() {
        let model = model();
        let trace = trace(&model);
        let mut registry = StrategyRegistry::new();
        registry.set_predictor_defaults(PredictorTrainingConfig {
            hidden: 12,
            epochs: 1,
            ..PredictorTrainingConfig::default()
        });
        let env = BuildEnv {
            model: &model,
            calibration: Some(&trace),
            capacities: None,
        };
        let spec = StrategySpec::Predictive {
            density: 0.5,
            predictor: PredictorSpec::default(),
        };
        registry.build(&spec, &env).unwrap();
        assert_eq!(
            registry.trained_predictors[0].0,
            (12, 1),
            "unset spec fields must resolve to the configured defaults"
        );
        // an explicit spec value still wins over the default
        let explicit = StrategySpec::Predictive {
            density: 0.5,
            predictor: PredictorSpec {
                hidden: Some(20),
                epochs: Some(2),
            },
        };
        registry.build(&explicit, &env).unwrap();
        assert_eq!(registry.trained_predictors[1].0, (20, 2));
    }

    #[test]
    fn cats_calibration_is_memoized_per_density() {
        let model = model();
        let trace = trace(&model);
        let mut registry = StrategyRegistry::new();
        let spec = StrategySpec::Cats { density: 0.5 };
        registry
            .build(
                &spec,
                &BuildEnv {
                    model: &model,
                    calibration: Some(&trace),
                    capacities: None,
                },
            )
            .unwrap();
        assert_eq!(registry.calibrated_cats_count(), 1);
        // same density: memoized thresholds are reused, no trace needed
        registry
            .build(
                &spec,
                &BuildEnv {
                    model: &model,
                    calibration: None,
                    capacities: None,
                },
            )
            .unwrap();
        assert_eq!(registry.calibrated_cats_count(), 1);
        // a different density calibrates again
        registry
            .build(
                &StrategySpec::Cats { density: 0.7 },
                &BuildEnv {
                    model: &model,
                    calibration: Some(&trace),
                    capacities: None,
                },
            )
            .unwrap();
        assert_eq!(registry.calibrated_cats_count(), 2);
    }

    #[test]
    fn calibration_requiring_specs_fail_without_a_trace() {
        let model = model();
        let mut registry = StrategyRegistry::new();
        let env = BuildEnv {
            model: &model,
            calibration: None,
            capacities: None,
        };
        for spec in [
            StrategySpec::Cats { density: 0.5 },
            StrategySpec::Predictive {
                density: 0.5,
                predictor: PredictorSpec::default(),
            },
        ] {
            let err = registry.build(&spec, &env).unwrap_err();
            assert!(
                matches!(
                    err,
                    DipError::InvalidParameter {
                        name: "calibration",
                        ..
                    }
                ),
                "{}: {err}",
                spec.label()
            );
        }
    }

    #[test]
    fn dip_ca_shares_one_cell_per_configuration() {
        let config = ModelConfig::tiny();
        let model = model();
        let caps = capacities(&config);
        let mut registry = StrategyRegistry::new();
        let env = BuildEnv {
            model: &model,
            calibration: None,
            capacities: Some(&caps),
        };
        let spec = StrategySpec::DipCacheAware {
            density: 0.5,
            gamma: 0.2,
        };
        let mut a = registry.build(&spec, &env).unwrap();
        let mut b = registry.build(&spec, &env).unwrap();
        assert_eq!(registry.shared_cell_count(), 1);
        assert!(a.strategy.name().starts_with("shared("));

        // the two handles share cache state: a's accesses influence b's view.
        let x = vec![0.3f32; config.d_model];
        let mlp = &model.layers[0].mlp;
        let first = a.strategy.forward(0, mlp, &x).unwrap();
        let second = b.strategy.forward(0, mlp, &x).unwrap();
        assert_eq!(
            first.access, second.access,
            "warm shared cache keeps the selection stable"
        );

        // a different gamma gets its own cell
        let other = StrategySpec::DipCacheAware {
            density: 0.5,
            gamma: 0.9,
        };
        registry.build(&other, &env).unwrap();
        assert_eq!(registry.shared_cell_count(), 2);
    }

    #[test]
    fn dip_ca_without_capacities_is_rejected() {
        let model = model();
        let mut registry = StrategyRegistry::new();
        let err = registry
            .build(
                &StrategySpec::DipCacheAware {
                    density: 0.5,
                    gamma: 0.2,
                },
                &BuildEnv {
                    model: &model,
                    calibration: None,
                    capacities: None,
                },
            )
            .unwrap_err();
        assert!(matches!(
            err,
            DipError::InvalidParameter {
                name: "capacities",
                ..
            }
        ));
    }

    #[test]
    fn cross_traffic_observation_reaches_other_models_only() {
        let config = ModelConfig::tiny();
        let model = model();
        let caps = capacities(&config);
        let spec = StrategySpec::DipCacheAware {
            density: 0.5,
            gamma: 0.2,
        };
        let key = spec.shared_cache_key().unwrap();
        // near-uniform input so the cache-aware bias dominates the selection
        let x: Vec<f32> = (0..config.d_model).map(|i| 0.5 + 1e-4 * i as f32).collect();
        let mlp = &model.layers[0].mlp;
        // a partial co-tenant token
        let records: Vec<lm::MlpAccessRecord> = (0..config.n_layers)
            .map(|_| lm::MlpAccessRecord {
                up: lm::MatrixAccess::input((0..config.d_model / 3).collect()),
                gate: lm::MatrixAccess::input((0..config.d_model / 3).collect()),
                down: lm::MatrixAccess::input((0..config.d_ff / 3).collect()),
            })
            .collect();

        let run_with = |served: Option<(u32, u32)>| {
            let mut registry = StrategyRegistry::new();
            let env = BuildEnv {
                model: &model,
                calibration: None,
                capacities: Some(&caps),
            };
            let mut built = registry.build(&spec, &env).unwrap();
            for _ in 0..8 {
                registry.observe_cross_traffic(served, &records, config.d_model, config.d_ff);
            }
            built.strategy.forward(0, mlp, &x).unwrap().access
        };

        // traffic attributed to the model itself is not double-counted...
        let own = run_with(Some(key));
        // ...but a co-tenant's traffic shifts the cache-aware selection
        let foreign = run_with(None);
        assert_ne!(
            own, foreign,
            "co-tenant traffic must reach the shared model"
        );
    }
}
