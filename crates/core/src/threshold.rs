//! Activation thresholding strategies (Section 3.1 of the paper).
//!
//! Three ways to decide which activations are "small enough to prune":
//!
//! * a **global** magnitude threshold shared by every layer,
//! * a **per-layer** threshold calibrated from the activation CDF of each
//!   layer over a calibration set,
//! * a **per-token top-k** threshold, i.e. keep the top-`k` magnitudes of the
//!   current activation vector (the strategy DIP uses everywhere).
//!
//! The Fig. 4 experiment compares the three at the same average density.

use crate::error::{DipError, Result};
use lm::ActivationTrace;
use serde::{Deserialize, Serialize};
use tensor::{stats, topk};

/// A thresholding strategy for magnitude-based activation pruning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ThresholdStrategy {
    /// A single magnitude threshold shared by all layers.
    Global(f32),
    /// One magnitude threshold per layer.
    PerLayer(Vec<f32>),
    /// Keep the top-`density` fraction of magnitudes of each token.
    TopK {
        /// Fraction of activations to keep per token.
        density: f32,
    },
}

impl ThresholdStrategy {
    /// Calibrates a global threshold so that on the calibration trace the
    /// average kept fraction across all layers is `density`.
    ///
    /// # Errors
    ///
    /// Returns [`DipError::InvalidParameter`] for an empty trace or a density
    /// outside `(0, 1]`.
    pub fn calibrate_global(trace: &ActivationTrace, density: f32) -> Result<Self> {
        validate_density(density)?;
        let mut all: Vec<f32> = Vec::new();
        for layer in 0..trace.n_layers() {
            all.extend(trace.glu_magnitudes(layer));
        }
        if all.is_empty() {
            return Err(DipError::InvalidParameter {
                name: "trace",
                reason: "calibration trace contains no activations".to_string(),
            });
        }
        let t = stats::magnitude_threshold_for_density(&all, density)?;
        Ok(ThresholdStrategy::Global(t))
    }

    /// Calibrates one threshold per layer so each layer keeps `density` of
    /// its activations on the calibration trace.
    ///
    /// # Errors
    ///
    /// Returns [`DipError::InvalidParameter`] for an empty trace or a density
    /// outside `(0, 1]`.
    pub fn calibrate_per_layer(trace: &ActivationTrace, density: f32) -> Result<Self> {
        validate_density(density)?;
        if trace.n_layers() == 0 || trace.n_tokens() == 0 {
            return Err(DipError::InvalidParameter {
                name: "trace",
                reason: "calibration trace contains no activations".to_string(),
            });
        }
        let mut thresholds = Vec::with_capacity(trace.n_layers());
        for layer in 0..trace.n_layers() {
            let mags = trace.glu_magnitudes(layer);
            thresholds.push(stats::magnitude_threshold_for_density(&mags, density)?);
        }
        Ok(ThresholdStrategy::PerLayer(thresholds))
    }

    /// The per-token top-k strategy at the given density.
    ///
    /// # Errors
    ///
    /// Returns [`DipError::InvalidParameter`] for a density outside `(0, 1]`.
    pub fn top_k(density: f32) -> Result<Self> {
        validate_density(density)?;
        Ok(ThresholdStrategy::TopK { density })
    }

    /// Selects the indices of `values` that survive pruning at `layer`.
    pub fn select(&self, layer: usize, values: &[f32]) -> Vec<usize> {
        match self {
            ThresholdStrategy::Global(t) => topk::indices_above_threshold(values, *t),
            ThresholdStrategy::PerLayer(ts) => {
                let t = ts.get(layer).copied().unwrap_or(0.0);
                topk::indices_above_threshold(values, t)
            }
            ThresholdStrategy::TopK { density } => {
                let k = topk::count_for_density(values.len(), *density).unwrap_or(values.len());
                topk::top_k_by_magnitude(values, k)
            }
        }
    }

    /// Short name used in reports.
    pub fn name(&self) -> &'static str {
        match self {
            ThresholdStrategy::Global(_) => "global-threshold",
            ThresholdStrategy::PerLayer(_) => "per-layer-threshold",
            ThresholdStrategy::TopK { .. } => "per-token-topk",
        }
    }
}

fn validate_density(density: f32) -> Result<()> {
    if !(density.is_finite() && density > 0.0 && density <= 1.0) {
        return Err(DipError::InvalidParameter {
            name: "density",
            reason: format!("must be in (0, 1], got {density}"),
        });
    }
    Ok(())
}

/// Converts a target MLP weight density into the per-scheme activation
/// density, depending on how many of the three MLP matrices a scheme can
/// sparsify (Section 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SparsityScheme {
    /// Only `W_d` is pruned (GLU pruning): `T = (2 + d) / 3`.
    DownOnly,
    /// Two matrices are pruned, one stays dense (Gate/Up/CATS pruning):
    /// `T = (1 + 2 d) / 3`.
    TwoOfThree,
    /// All three matrices are pruned by the same fraction
    /// (DejaVu, GLU oracle): `T = d`.
    AllThree,
}

impl SparsityScheme {
    /// Activation density `d` needed to reach the target MLP weight density.
    ///
    /// # Errors
    ///
    /// Returns [`DipError::InvalidParameter`] when the target is not
    /// reachable by this scheme (e.g. 50 % MLP density with `DownOnly`,
    /// which can never go below 66.7 %).
    pub fn activation_density_for_target(self, target_mlp_density: f32) -> Result<f32> {
        validate_density(target_mlp_density)?;
        let d = match self {
            SparsityScheme::DownOnly => 3.0 * target_mlp_density - 2.0,
            SparsityScheme::TwoOfThree => (3.0 * target_mlp_density - 1.0) / 2.0,
            SparsityScheme::AllThree => target_mlp_density,
        };
        if d <= 0.0 || d > 1.0 {
            return Err(DipError::InvalidParameter {
                name: "target_mlp_density",
                reason: format!(
                    "target {target_mlp_density} is not reachable with scheme {self:?} (would need activation density {d})"
                ),
            });
        }
        Ok(d)
    }

    /// MLP weight density implied by an activation density `d`.
    pub fn mlp_density_for_activation(self, d: f32) -> f32 {
        match self {
            SparsityScheme::DownOnly => (2.0 + d) / 3.0,
            SparsityScheme::TwoOfThree => (1.0 + 2.0 * d) / 3.0,
            SparsityScheme::AllThree => d,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm::{build_synthetic, trace::collect_activation_trace, ModelConfig};

    fn calibration_trace() -> ActivationTrace {
        let model = build_synthetic(&ModelConfig::tiny(), 3).unwrap();
        let seqs = lm::eval::standard_eval_corpus(&model, 2, 12, 1).unwrap();
        collect_activation_trace(&model, &seqs).unwrap()
    }

    #[test]
    fn top_k_selects_requested_fraction() {
        let s = ThresholdStrategy::top_k(0.25).unwrap();
        let values: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let idx = s.select(0, &values);
        assert_eq!(idx.len(), 25);
        assert!(idx.contains(&99));
        assert_eq!(s.name(), "per-token-topk");
    }

    #[test]
    fn density_validation() {
        assert!(ThresholdStrategy::top_k(0.0).is_err());
        assert!(ThresholdStrategy::top_k(1.5).is_err());
        assert!(ThresholdStrategy::top_k(f32::NAN).is_err());
        assert!(ThresholdStrategy::top_k(1.0).is_ok());
    }

    #[test]
    fn per_layer_calibration_hits_target_density_per_layer() {
        let trace = calibration_trace();
        let density = 0.5;
        let s = ThresholdStrategy::calibrate_per_layer(&trace, density).unwrap();
        assert_eq!(s.name(), "per-layer-threshold");
        for layer in 0..trace.n_layers() {
            let mags = trace.glu_magnitudes(layer);
            let kept = s.select(layer, &mags).len() as f32 / mags.len() as f32;
            assert!(
                (kept - density).abs() < 0.05,
                "layer {layer}: kept {kept} vs target {density}"
            );
        }
    }

    #[test]
    fn global_calibration_hits_target_on_average_but_not_per_layer() {
        let trace = calibration_trace();
        let density = 0.5;
        let s = ThresholdStrategy::calibrate_global(&trace, density).unwrap();
        assert_eq!(s.name(), "global-threshold");
        let mut total_kept = 0usize;
        let mut total = 0usize;
        let mut per_layer = Vec::new();
        for layer in 0..trace.n_layers() {
            let mags = trace.glu_magnitudes(layer);
            let kept = s.select(layer, &mags).len();
            per_layer.push(kept as f32 / mags.len() as f32);
            total_kept += kept;
            total += mags.len();
        }
        let avg = total_kept as f32 / total as f32;
        assert!((avg - density).abs() < 0.05, "avg {avg}");
        // global thresholds produce uneven per-layer densities (this is the
        // failure mode Fig. 4 illustrates); allow but don't require large spread
        assert!(per_layer.iter().all(|d| *d >= 0.0 && *d <= 1.0));
    }

    #[test]
    fn calibration_requires_data() {
        let empty = ActivationTrace::new(2);
        assert!(ThresholdStrategy::calibrate_global(&empty, 0.5).is_err());
        assert!(ThresholdStrategy::calibrate_per_layer(&empty, 0.5).is_err());
    }

    #[test]
    fn per_layer_select_out_of_range_layer_keeps_everything_nonzero() {
        let s = ThresholdStrategy::PerLayer(vec![0.5]);
        let idx = s.select(7, &[0.1, 0.9, -0.2]);
        // missing layer falls back to threshold 0: keeps all non-zero entries
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn scheme_density_conversions_round_trip() {
        for scheme in [
            SparsityScheme::DownOnly,
            SparsityScheme::TwoOfThree,
            SparsityScheme::AllThree,
        ] {
            for target in [0.75f32, 0.8, 0.9, 1.0] {
                let d = scheme.activation_density_for_target(target).unwrap();
                let back = scheme.mlp_density_for_activation(d);
                assert!((back - target).abs() < 1e-6, "{scheme:?} target {target}");
            }
        }
    }

    #[test]
    fn unreachable_targets_are_rejected() {
        assert!(SparsityScheme::DownOnly
            .activation_density_for_target(0.5)
            .is_err());
        assert!(SparsityScheme::TwoOfThree
            .activation_density_for_target(0.2)
            .is_err());
        assert!(SparsityScheme::AllThree
            .activation_density_for_target(0.5)
            .is_ok());
        assert!(SparsityScheme::TwoOfThree
            .activation_density_for_target(0.5)
            .is_ok());
    }
}
