//! Dynamic Input Pruning (DIP) and cache-aware masking (DIP-CA) — the core
//! contribution of *"Efficient LLM Inference using Dynamic Input Pruning and
//! Cache-Aware Masking"* (MLSys 2025) — together with every dynamic-sparsity
//! baseline the paper compares against.
//!
//! The crate plugs into the `lm` crate's transformer through the
//! [`lm::MlpForward`] hook and into the `hwsim` crate's caches for the
//! cache-aware variant:
//!
//! * [`strategies`] — DIP, DIP-CA, GLU/Gate/Up pruning, CATS, DejaVu-style
//!   predictive pruning,
//! * [`spec`] — the declarative strategy API: a serializable
//!   [`spec::StrategySpec`] per method plus the [`spec::StrategyRegistry`]
//!   that builds ready strategies (shared by the experiment harness and the
//!   serving engine),
//! * [`threshold`] — global / per-layer / per-token top-k thresholding
//!   (Section 3.1) and the density bookkeeping of Section 3.2,
//! * [`predictor`] — DejaVu predictor training (Section 3.3),
//! * [`lora`] — lightweight fused LoRA adapters (Section 4, Eq. 9),
//! * [`allocation`] — up/gate vs down density allocation (Appendix B.1).
//!
//! # Example
//!
//! ```
//! use dip_core::strategies::Dip;
//! use lm::{build_synthetic, eval, ModelConfig};
//!
//! let model = build_synthetic(&ModelConfig::tiny(), 0)?;
//! let corpus = eval::standard_eval_corpus(&model, 2, 12, 0)?;
//! let mut dip = Dip::new(0.5, 0.5).expect("valid densities");
//! let result = eval::perplexity(&model, &mut dip, &corpus)?;
//! assert!(result.mean_mlp_density < 0.55);
//! # Ok::<(), lm::LmError>(())
//! ```

#![warn(missing_docs)]

pub mod allocation;
pub mod error;
pub mod lora;
pub mod predictor;
pub mod spec;
pub mod strategies;
pub mod threshold;

pub use allocation::{pareto_front, DensityAllocation};
pub use error::{DipError, Result};
pub use lora::{LoraConfig, LowRankAdapter};
pub use predictor::{Predictor, PredictorTrainingConfig};
pub use spec::{
    resolve_axes, BuildEnv, BuiltStrategy, NmPattern, PredictorSpec, SharedMlpForward,
    StrategyRegistry, StrategySpec, WeightTransform,
};
pub use strategies::{
    CatsPruning, Dip, DipCacheAware, GatePruning, GluOraclePruning, GluPruning,
    GluThresholdPruning, PredictiveGluPruning, UpPruning,
};
pub use threshold::{SparsityScheme, ThresholdStrategy};
