//! DejaVu-style activation predictors (Section 3.3 / Fig. 6).
//!
//! A predictor is a small two-layer MLP that, given the (normalised) MLP
//! input `x`, outputs one logit per intermediate neuron and is trained with a
//! binary cross-entropy loss to identify the largest-magnitude GLU
//! activations (the positives are the top fraction per token, 10 % by
//! default, following the paper's setup). Predictive GLU pruning then keeps
//! the neurons with the highest predictor logits.
//!
//! The whole point of reproducing this component is that training it is easy
//! for ReLU-fied models (predicting zeros is sign prediction of a linear map)
//! and hard for SwiGLU models — which is exactly why the paper proposes the
//! predictor-free DIP instead.

use crate::error::{DipError, Result};
use lm::{ActivationTrace, TransformerModel};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use tensor::{activation::sigmoid, init, topk, Matrix};

/// A two-layer ReLU MLP predicting which GLU activations will be large.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Predictor {
    w1: Matrix,
    b1: Vec<f32>,
    w2: Matrix,
    b2: Vec<f32>,
}

impl Predictor {
    /// Creates a randomly initialised predictor.
    pub fn new_random<R: Rng>(d_model: usize, d_ff: usize, hidden: usize, rng: &mut R) -> Self {
        Predictor {
            w1: init::xavier_matrix(rng, hidden, d_model),
            b1: vec![0.0; hidden],
            w2: init::xavier_matrix(rng, d_ff, hidden),
            b2: vec![0.0; d_ff],
        }
    }

    /// Input dimensionality.
    pub fn d_model(&self) -> usize {
        self.w1.cols()
    }

    /// Output dimensionality (number of intermediate neurons).
    pub fn d_ff(&self) -> usize {
        self.w2.rows()
    }

    /// Number of parameters (the memory overhead DejaVu adds per layer).
    pub fn num_params(&self) -> usize {
        self.w1.len() + self.b1.len() + self.w2.len() + self.b2.len()
    }

    fn hidden_preactivations(&self, x: &[f32]) -> Result<Vec<f32>> {
        let mut h = self.w1.matvec(x)?;
        for (hi, bi) in h.iter_mut().zip(self.b1.iter()) {
            *hi += bi;
        }
        Ok(h)
    }

    /// Predictor logits (one per intermediate neuron).
    ///
    /// # Errors
    ///
    /// Returns a shape error when `x.len()` differs from the input width.
    pub fn forward(&self, x: &[f32]) -> Result<Vec<f32>> {
        let pre = self.hidden_preactivations(x)?;
        let h: Vec<f32> = pre.iter().map(|v| v.max(0.0)).collect();
        let mut z = self.w2.matvec(&h)?;
        for (zi, bi) in z.iter_mut().zip(self.b2.iter()) {
            *zi += bi;
        }
        Ok(z)
    }

    /// One SGD step on a single `(input, binary targets)` sample using the
    /// mean binary cross-entropy loss. Returns the loss before the update.
    ///
    /// # Errors
    ///
    /// Returns [`DipError::InvalidParameter`] when the target length differs
    /// from the output width, plus shape errors from the forward pass.
    pub fn train_step(&mut self, x: &[f32], targets: &[bool], lr: f32) -> Result<f32> {
        if targets.len() != self.d_ff() {
            return Err(DipError::InvalidParameter {
                name: "targets",
                reason: format!("expected {} targets, got {}", self.d_ff(), targets.len()),
            });
        }
        let pre = self.hidden_preactivations(x)?;
        let h: Vec<f32> = pre.iter().map(|v| v.max(0.0)).collect();
        let mut z = self.w2.matvec(&h)?;
        for (zi, bi) in z.iter_mut().zip(self.b2.iter()) {
            *zi += bi;
        }

        let n = z.len() as f32;
        let mut loss = 0.0f32;
        // dL/dz for mean BCE with sigmoid outputs
        let mut dz = vec![0.0f32; z.len()];
        for (j, (&zj, &tj)) in z.iter().zip(targets.iter()).enumerate() {
            let p = sigmoid(zj);
            let t = if tj { 1.0 } else { 0.0 };
            let p_clamped = p.clamp(1e-7, 1.0 - 1e-7);
            loss += -(t * p_clamped.ln() + (1.0 - t) * (1.0 - p_clamped).ln());
            dz[j] = (p - t) / n;
        }
        loss /= n;

        // gradients for the second layer
        let mut dh = vec![0.0f32; h.len()];
        for (j, &dzj) in dz.iter().enumerate() {
            if dzj == 0.0 {
                continue;
            }
            self.b2[j] -= lr * dzj;
            let row_start = j * self.w2.cols();
            let w2_slice = self.w2.as_mut_slice();
            for (k, hk) in h.iter().enumerate() {
                dh[k] += w2_slice[row_start + k] * dzj;
                w2_slice[row_start + k] -= lr * dzj * hk;
            }
        }

        // gradients for the first layer (through the ReLU)
        for (k, (&dhk, &prek)) in dh.iter().zip(pre.iter()).enumerate() {
            if prek <= 0.0 || dhk == 0.0 {
                continue;
            }
            self.b1[k] -= lr * dhk;
            let row_start = k * self.w1.cols();
            let w1_slice = self.w1.as_mut_slice();
            for (i, xi) in x.iter().enumerate() {
                w1_slice[row_start + i] -= lr * dhk * xi;
            }
        }

        Ok(loss)
    }

    /// Fraction of the true top-`k` neurons that appear in the predicted
    /// top-`k` (recall@k), a direct measure of predictor quality.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the forward pass.
    pub fn top_k_recall(&self, x: &[f32], glu: &[f32], k: usize) -> Result<f32> {
        if k == 0 {
            return Ok(1.0);
        }
        let predicted: std::collections::HashSet<usize> = topk::top_k_indices(&self.forward(x)?, k)
            .into_iter()
            .collect();
        let truth = topk::top_k_by_magnitude(glu, k);
        let hit = truth.iter().filter(|i| predicted.contains(i)).count();
        Ok(hit as f32 / truth.len().max(1) as f32)
    }
}

/// Training hyper-parameters for the predictor set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PredictorTrainingConfig {
    /// Hidden width of each predictor.
    pub hidden: usize,
    /// Number of passes over the calibration samples.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// Fraction of activations labelled positive per token (paper: top 10 %).
    pub target_top_fraction: f32,
    /// RNG seed for initialisation and shuffling.
    pub seed: u64,
}

impl Default for PredictorTrainingConfig {
    fn default() -> Self {
        PredictorTrainingConfig {
            hidden: 64,
            epochs: 8,
            learning_rate: 0.5,
            target_top_fraction: 0.1,
            seed: 0,
        }
    }
}

/// Trains one predictor per layer on the calibration trace.
///
/// # Errors
///
/// Returns [`DipError::CalibrationMismatch`] when the trace has a different
/// number of layers than the model or contains no samples.
pub fn train_predictors(
    model: &TransformerModel,
    trace: &ActivationTrace,
    cfg: &PredictorTrainingConfig,
) -> Result<Vec<Predictor>> {
    if trace.n_layers() != model.n_layers() {
        return Err(DipError::CalibrationMismatch {
            reason: format!(
                "trace has {} layers but model has {}",
                trace.n_layers(),
                model.n_layers()
            ),
        });
    }
    if trace.n_tokens() == 0 {
        return Err(DipError::CalibrationMismatch {
            reason: "calibration trace contains no tokens".to_string(),
        });
    }
    let d_model = model.config.d_model;
    let d_ff = model.config.d_ff;
    let mut rng = init::rng(cfg.seed);
    let mut predictors = Vec::with_capacity(model.n_layers());

    for layer in 0..model.n_layers() {
        let mut predictor = Predictor::new_random(d_model, d_ff, cfg.hidden, &mut rng);
        let samples = &trace.samples[layer];
        let k = topk::count_for_density(d_ff, cfg.target_top_fraction)?.max(1);

        // Precompute binary targets: top fraction of |GLU| per token.
        let targets: Vec<Vec<bool>> = samples
            .iter()
            .map(|s| {
                let top: std::collections::HashSet<usize> =
                    topk::top_k_by_magnitude(&s.glu, k).into_iter().collect();
                (0..d_ff).map(|i| top.contains(&i)).collect()
            })
            .collect();

        let mut order: Vec<usize> = (0..samples.len()).collect();
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for &idx in &order {
                predictor.train_step(&samples[idx].input, &targets[idx], cfg.learning_rate)?;
            }
        }
        predictors.push(predictor);
    }
    Ok(predictors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm::{build_synthetic, trace::collect_activation_trace, ModelConfig};

    #[test]
    fn forward_shapes_and_params() {
        let mut rng = init::rng(1);
        let p = Predictor::new_random(8, 24, 16, &mut rng);
        assert_eq!(p.d_model(), 8);
        assert_eq!(p.d_ff(), 24);
        assert_eq!(p.num_params(), 16 * 8 + 16 + 24 * 16 + 24);
        let z = p.forward(&[0.1; 8]).unwrap();
        assert_eq!(z.len(), 24);
        assert!(p.forward(&[0.1; 7]).is_err());
    }

    #[test]
    fn train_step_validates_targets_and_reduces_loss() {
        let mut rng = init::rng(2);
        let mut p = Predictor::new_random(6, 10, 12, &mut rng);
        let x = vec![0.5, -0.2, 0.3, 0.8, -0.6, 0.1];
        let targets: Vec<bool> = (0..10).map(|i| i < 3).collect();
        assert!(p.train_step(&x, &[true; 3], 0.1).is_err());

        let initial = p.train_step(&x, &targets, 0.5).unwrap();
        let mut last = initial;
        for _ in 0..200 {
            last = p.train_step(&x, &targets, 0.5).unwrap();
        }
        assert!(
            last < initial * 0.5,
            "loss should fall when memorising one sample: {initial} -> {last}"
        );
    }

    #[test]
    fn recall_is_one_for_a_memorised_sample() {
        let mut rng = init::rng(3);
        let mut p = Predictor::new_random(6, 10, 16, &mut rng);
        let x = vec![0.5, -0.2, 0.3, 0.8, -0.6, 0.1];
        let glu = vec![5.0, 4.0, 3.0, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1];
        let targets: Vec<bool> = (0..10).map(|i| i < 3).collect();
        for _ in 0..400 {
            p.train_step(&x, &targets, 0.5).unwrap();
        }
        let recall = p.top_k_recall(&x, &glu, 3).unwrap();
        assert!(recall > 0.66, "recall {recall}");
        assert_eq!(p.top_k_recall(&x, &glu, 0).unwrap(), 1.0);
    }

    #[test]
    fn training_produces_one_predictor_per_layer() {
        let model = build_synthetic(&ModelConfig::tiny(), 9).unwrap();
        let seqs = lm::eval::standard_eval_corpus(&model, 2, 10, 2).unwrap();
        let trace = collect_activation_trace(&model, &seqs).unwrap();
        let cfg = PredictorTrainingConfig {
            hidden: 16,
            epochs: 2,
            ..PredictorTrainingConfig::default()
        };
        let predictors = train_predictors(&model, &trace, &cfg).unwrap();
        assert_eq!(predictors.len(), model.n_layers());
        assert_eq!(predictors[0].d_ff(), model.config.d_ff);
    }

    #[test]
    fn training_validates_trace() {
        let model = build_synthetic(&ModelConfig::tiny(), 9).unwrap();
        let empty = ActivationTrace::new(model.n_layers());
        assert!(train_predictors(&model, &empty, &PredictorTrainingConfig::default()).is_err());
        let wrong_layers = ActivationTrace::new(1);
        assert!(
            train_predictors(&model, &wrong_layers, &PredictorTrainingConfig::default()).is_err()
        );
    }

    #[test]
    fn trained_predictors_beat_untrained_ones_on_held_out_data() {
        // The predictor must learn something transferable about which neurons
        // fire strongly (it does in the paper for both model families; the
        // SwiGLU-vs-ReLU *gap* itself is an emergent property of trained
        // checkpoints that the synthetic models only partially reproduce —
        // see EXPERIMENTS.md for the measured Fig. 6 curves).
        let config = ModelConfig::tiny();
        for model in [
            build_synthetic(&config, 21).unwrap(),
            build_synthetic(&config.relufied(), 21).unwrap(),
        ] {
            let cfg = PredictorTrainingConfig {
                hidden: 32,
                epochs: 6,
                ..PredictorTrainingConfig::default()
            };
            let train_seqs = lm::eval::standard_eval_corpus(&model, 4, 24, 5).unwrap();
            let test_seqs = lm::eval::standard_eval_corpus(&model, 2, 12, 77).unwrap();
            let train_trace = collect_activation_trace(&model, &train_seqs).unwrap();
            let test_trace = collect_activation_trace(&model, &test_seqs).unwrap();
            let trained = train_predictors(&model, &train_trace, &cfg).unwrap();
            let mut rng = init::rng(123);
            let untrained: Vec<Predictor> = (0..model.n_layers())
                .map(|_| {
                    Predictor::new_random(model.config.d_model, model.config.d_ff, 32, &mut rng)
                })
                .collect();

            let k = (model.config.d_ff as f32 * 0.25) as usize;
            let mean_recall = |preds: &[Predictor]| -> f32 {
                let mut total = 0.0;
                let mut count = 0usize;
                for (pred, samples) in preds.iter().zip(&test_trace.samples) {
                    for sample in samples {
                        total += pred.top_k_recall(&sample.input, &sample.glu, k).unwrap();
                        count += 1;
                    }
                }
                total / count as f32
            };
            let trained_recall = mean_recall(&trained);
            let untrained_recall = mean_recall(&untrained);
            assert!(
                trained_recall > untrained_recall + 0.05,
                "{}: trained recall {trained_recall} should clearly beat untrained {untrained_recall}",
                model.config.name
            );
        }
    }
}
