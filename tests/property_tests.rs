//! Property-based tests over the core data structures and invariants,
//! spanning the tensor, sparsity, cache and simulator crates.

use dynamic_sparsity::dip::strategies::Dip;
use dynamic_sparsity::hwsim::cache::{BeladyColumnCache, LfuColumnCache, LruColumnCache};
use dynamic_sparsity::hwsim::ColumnCache;
use dynamic_sparsity::lm::{build_synthetic, MlpForward, ModelConfig};
use dynamic_sparsity::tensor::{topk, ColumnMask, Matrix, Vector};
use proptest::prelude::*;

fn small_f32() -> impl Strategy<Value = f32> {
    (-1000i32..1000).prop_map(|v| v as f32 / 100.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn topk_selects_exactly_k_largest(values in prop::collection::vec(small_f32(), 1..200), k in 0usize..200) {
        let idx = topk::top_k_by_magnitude(&values, k);
        prop_assert_eq!(idx.len(), k.min(values.len()));
        // every selected magnitude is >= every unselected magnitude
        let selected: std::collections::HashSet<usize> = idx.iter().copied().collect();
        let min_selected = idx.iter().map(|&i| values[i].abs()).fold(f32::INFINITY, f32::min);
        for (i, v) in values.iter().enumerate() {
            if !selected.contains(&i) && !idx.is_empty() {
                prop_assert!(v.abs() <= min_selected + 1e-6);
            }
        }
    }

    #[test]
    fn softmax_is_a_probability_distribution(logits in prop::collection::vec(small_f32(), 1..64)) {
        let p = Vector::softmax(&logits).unwrap();
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|x| *x >= 0.0 && x.is_finite()));
    }

    #[test]
    fn sparse_matvec_equals_dense_on_masked_input(
        rows in 1usize..12,
        cols in 1usize..12,
        seed in 0u64..1000,
    ) {
        let mut rng = dynamic_sparsity::tensor::init::rng(seed);
        let w = dynamic_sparsity::tensor::init::xavier_matrix(&mut rng, rows, cols);
        let x = dynamic_sparsity::tensor::init::normal_vec(&mut rng, cols, 1.0);
        let active: Vec<usize> = (0..cols).filter(|i| i % 2 == 0).collect();
        let sparse = w.matvec_cols(&x, &active).unwrap();
        let mut masked = vec![0.0; cols];
        for &i in &active { masked[i] = x[i]; }
        let dense = w.matvec(&masked).unwrap();
        for (a, b) in sparse.iter().zip(dense.iter()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn column_mask_set_algebra(len in 1usize..128, seed in 0u64..500) {
        let mut rng = dynamic_sparsity::tensor::init::rng(seed);
        let a: ColumnMask = (0..len).map(|_| rand::Rng::gen_bool(&mut rng, 0.4)).collect();
        let b: ColumnMask = (0..len).map(|_| rand::Rng::gen_bool(&mut rng, 0.4)).collect();
        let and = a.and(&b).unwrap();
        let or = a.or(&b).unwrap();
        prop_assert!(and.active_count() <= a.active_count().min(b.active_count()));
        prop_assert!(or.active_count() >= a.active_count().max(b.active_count()));
        prop_assert_eq!(
            and.active_count() + or.active_count(),
            a.active_count() + b.active_count()
        );
        let j = a.jaccard(&b).unwrap();
        prop_assert!((0.0..=1.0).contains(&j));
    }

    #[test]
    fn caches_never_exceed_capacity_and_hits_plus_misses_add_up(
        capacity in 1usize..32,
        accesses in prop::collection::vec(prop::collection::vec(0usize..64, 1..16), 1..20),
    ) {
        let n_columns = 64;
        let mut lru = LruColumnCache::new(n_columns, capacity);
        let mut lfu = LfuColumnCache::new(n_columns, capacity);
        let mut belady = BeladyColumnCache::new(n_columns, capacity, &accesses);
        for step in &accesses {
            for cache in [&mut lru as &mut dyn ColumnCache, &mut lfu, &mut belady] {
                let outcome = cache.access(step);
                prop_assert_eq!(outcome.hits + outcome.misses, step.len());
                prop_assert!(cache.len() <= cache.capacity());
            }
        }
    }

    #[test]
    fn belady_is_optimal_among_implemented_policies(
        capacity in 2usize..16,
        accesses in prop::collection::vec(prop::collection::vec(0usize..32, 1..8), 4..32),
    ) {
        let n_columns = 32;
        let total_misses = |cache: &mut dyn ColumnCache| -> usize {
            accesses.iter().map(|step| cache.access(step).misses).sum()
        };
        let belady = total_misses(&mut BeladyColumnCache::new(n_columns, capacity, &accesses));
        let lru = total_misses(&mut LruColumnCache::new(n_columns, capacity));
        let lfu = total_misses(&mut LfuColumnCache::new(n_columns, capacity));
        prop_assert!(belady <= lru);
        prop_assert!(belady <= lfu);
    }
}

proptest! {
    // model-level properties are more expensive: fewer cases
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn dip_access_density_matches_its_configuration(
        input_density in 0.2f32..1.0,
        glu_density in 0.2f32..1.0,
    ) {
        let config = ModelConfig::tiny();
        let model = build_synthetic(&config, 77).unwrap();
        let mlp = &model.layers[0].mlp;
        let x: Vec<f32> = (0..config.d_model).map(|i| ((i * 31 % 17) as f32 - 8.0) / 8.0).collect();
        let mut dip = Dip::new(input_density, glu_density).unwrap();
        let out = dip.forward(0, mlp, &x).unwrap();
        let measured = out.access.mlp_density(config.d_model, config.d_ff);
        prop_assert!((measured - dip.mlp_density()).abs() < 0.06);
        prop_assert!(out.y.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn model_logits_are_finite_for_any_valid_token(token in 0u32..64) {
        let config = ModelConfig::tiny();
        let model = build_synthetic(&config, 3).unwrap();
        let mut state = model.new_decode_state();
        let out = model.forward_token_dense(token, &mut state).unwrap();
        prop_assert_eq!(out.logits.len(), config.vocab_size);
        prop_assert!(out.logits.iter().all(|v| v.is_finite()));
    }
}

#[test]
fn matrix_and_mask_edge_cases() {
    // deterministic companions to the property tests
    let m = Matrix::zeros(0, 0);
    assert!(m.is_empty());
    assert_eq!(m.sparsity(), 0.0);
    let mask = ColumnMask::all_inactive(0);
    assert!(mask.is_empty());
    assert_eq!(mask.active_indices().len(), 0);
}
