//! Steady-state decode must be allocation-free on the dense and DIP paths.
//!
//! A counting global allocator wraps the system allocator; after a warm-up
//! phase sizes every scratch buffer (and the KV cache reserves its full
//! flat storage), a window of further decoded tokens must perform **zero**
//! heap allocations — the contract of `lm::DecodeScratch` and the `_into`
//! kernel plumbing.

use dip_core::strategies::Dip;
use dynamic_sparsity::lm::mlp::DenseMlp;
use dynamic_sparsity::lm::{build_synthetic, DecodeScratch, MlpForward, ModelConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates every operation to the system allocator unchanged; the
// counter is a relaxed atomic with no allocation of its own.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn assert_zero_alloc_decode(name: &str, mut strategy: Box<dyn MlpForward>) {
    let model = build_synthetic(&ModelConfig::tiny(), 7).expect("tiny model builds");
    let mut state = model.new_decode_state();
    let mut scratch = DecodeScratch::for_model(&model);
    let tokens: Vec<u32> = (0..24u32).map(|i| (i * 5 + 1) % 60).collect();

    // Warm-up: sizes every scratch buffer and makes the KV cache reserve
    // its full flat storage (one reservation per layer, at the first push).
    for &t in &tokens[..8] {
        model
            .forward_token_into(t, &mut state, strategy.as_mut(), &mut scratch)
            .expect("warm-up token decodes");
    }

    let before = allocations();
    for &t in &tokens[8..] {
        model
            .forward_token_into(t, &mut state, strategy.as_mut(), &mut scratch)
            .expect("steady-state token decodes");
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "{name}: steady-state decode of {} tokens allocated {} times",
        tokens.len() - 8,
        after - before
    );
}

#[test]
fn dense_decode_is_allocation_free_in_steady_state() {
    assert_zero_alloc_decode("dense", Box::new(DenseMlp));
}

#[test]
fn dip_decode_is_allocation_free_in_steady_state() {
    assert_zero_alloc_decode(
        "dip@0.5/0.5",
        Box::new(Dip::new(0.5, 0.5).expect("valid densities")),
    );
}
